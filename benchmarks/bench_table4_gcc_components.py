"""Table 4 — GCC commits introducing missed DCE opportunities, by
component.

Paper: 44 regressions bisected to 23 unique commits across 16
components.  Regenerated like Table 3, from the gcclike history."""

from repro.core.bisect import bisect_marker_regression
from repro.core.stats import format_table
from repro.frontend.typecheck import check_program
from repro.lang import parse_program

from conftest import emit

_BISECT_CASE = """
void DCEMarker0(void);
static int c[4];
int main() {
  for (int b = 0; b < 4; b++) { c[b] = 7; }
  if (c[0] != 7) { DCEMarker0(); }
  return 0;
}
"""


def test_table4_gcc_component_diversity(gcc_watch, benchmark):
    program = parse_program(_BISECT_CASE)
    info = check_program(program)
    benchmark(
        lambda: bisect_marker_regression(program, "DCEMarker0", "gcclike", "O3", info)
    )

    commits: dict[str, set[str]] = {}
    files: dict[str, set[str]] = {}
    for reg in gcc_watch.regressions:
        if reg.bisection is None:
            continue
        comp = reg.bisection.component
        commits.setdefault(comp, set()).add(reg.bisection.commit.sha)
        files.setdefault(comp, set()).update(reg.bisection.files)
    rows = [
        [comp, str(len(commits[comp])), str(len(files[comp]))]
        for comp in sorted(commits)
    ]
    table = format_table(
        ["Component", "# Commits", "# Files"],
        rows,
        title=(
            "Table 4 — gcclike commits introducing missed DCE "
            f"opportunities ({gcc_watch.programs} fresh files; paper: "
            "23 commits, 16 components, 34 files on 10k files)"
        ),
    )
    emit("table4_gcc_components", table)

    assert commits, "expected at least one bisected gcclike regression"
    assert len(commits) >= 2
