"""Persistent artifact store — warm campaign reruns must be near-free.

Runs one campaign cold against a fresh store, then reruns it warm, and
fences the two claims the store exists for:

* the warm rerun performs at least ``MIN_COMPILE_RATIO``× fewer
  optimization-pass executions (``compile.pass_execs``) than cold —
  in practice it performs *zero*, every seed replays wholesale;
* the warm rerun is at least ``MIN_SPEEDUP``× faster wall-clock.

Both runs must agree with a store-free baseline bit-for-bit (results
and timestamp-stripped events), so the speedup is free determinism-
wise.  ``STORE_WARM_PROGRAMS`` overrides the corpus size (default 50).
"""

import os
import time

from repro.core.corpus import run_campaign
from repro.core.stats import format_table
from repro.generator import GeneratorConfig
from repro.observability import EventBus, MetricsRegistry, strip_timestamps
from repro.store import ArtifactStore

from conftest import emit

PROGRAMS = int(os.environ.get("STORE_WARM_PROGRAMS", "50"))
SEED_BASE = 400

#: acceptance floors (the ISSUE's bar: >=5x fewer pass execs, >=2x wall)
MIN_COMPILE_RATIO = 5.0
MIN_SPEEDUP = 2.0

#: small programs keep 50 cold seeds affordable on one CPU
CONFIG = GeneratorConfig(
    min_globals=1, max_globals=3, min_functions=2, max_functions=3,
    max_depth=3, min_block_stmts=1, max_block_stmts=4, max_expr_depth=2,
)


def _run(store=None):
    metrics = MetricsRegistry()
    events = []
    bus = EventBus()
    bus.subscribe(events.append)
    start = time.perf_counter()
    result = run_campaign(
        n_programs=PROGRAMS, seed_base=SEED_BASE,
        generator_config=CONFIG, metrics=metrics, events=bus, store=store,
    )
    elapsed = time.perf_counter() - start
    return result, metrics.to_dict(), strip_timestamps(events), elapsed


def _counter(snapshot, name):
    return snapshot.get(name, {}).get("value", 0)


def test_warm_rerun_is_near_free(tmp_path):
    path = str(tmp_path / "store.sqlite")
    base_result, base_metrics, base_events, base_time = _run()
    with ArtifactStore(path) as store:
        cold_result, cold_metrics, cold_events, cold_time = _run(store)
    with ArtifactStore(path) as store:
        warm_result, warm_metrics, warm_events, warm_time = _run(store)

    # determinism first: the store may only change wall time
    assert cold_result == base_result and warm_result == base_result
    assert cold_events == base_events and warm_events == base_events
    assert _counter(warm_metrics, "store.errors") == 0

    cold_execs = _counter(cold_metrics, "compile.pass_execs")
    warm_execs = _counter(warm_metrics, "compile.pass_execs")
    exec_ratio = cold_execs / warm_execs if warm_execs else float("inf")
    speedup = cold_time / warm_time if warm_time else float("inf")

    rows = [
        ["cold (populating store)", f"{cold_time:.2f}",
         str(cold_execs), str(_counter(cold_metrics, "campaign.compilations")),
         "0"],
        ["warm (rerun)", f"{warm_time:.2f}", str(warm_execs),
         str(_counter(warm_metrics, "campaign.compilations")),
         str(_counter(warm_metrics, "store.seeds_skipped"))],
        ["no store (reference)", f"{base_time:.2f}",
         str(_counter(base_metrics, "compile.pass_execs")),
         str(_counter(base_metrics, "campaign.compilations")), "-"],
    ]
    table = format_table(
        ["variant", "wall (s)", "pass execs", "compilations", "replayed"],
        rows,
        title=f"warm vs cold campaign rerun — {PROGRAMS} programs",
    )
    table += (
        f"\n\npass-exec ratio: {exec_ratio if warm_execs else float('inf'):.1f}x"
        f" (floor {MIN_COMPILE_RATIO}x)"
        f"\nwall-clock speedup: {speedup:.1f}x (floor {MIN_SPEEDUP}x)"
    )
    emit("store_warm_rerun", table)

    assert _counter(warm_metrics, "store.seeds_skipped") == PROGRAMS
    assert exec_ratio >= MIN_COMPILE_RATIO
    assert speedup >= MIN_SPEEDUP
