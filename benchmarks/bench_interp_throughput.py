"""Interpreter throughput — the bytecode VM vs the AST reference.

Ground truth costs one full interpretation per seed (paper §4.1), and
on step-heavy programs that execution dominates campaign wall time, so
the bytecode engine's whole reason to exist is steps/sec.  This bench
runs both backends over the step-heaviest seeds of the bench corpus
range (where interpretation, not compilation, is the bottleneck),
reports steps/sec and seeds/sec side by side, checks the two backends
returned bit-identical results, and **asserts the VM is >= 3x the AST
interpreter on steps/sec** — the regression fence for the fast path.

``INTERP_THROUGHPUT_REPEATS`` overrides the timing repeats (default 2).
"""

import os
import time

from repro.core.stats import format_table
from repro.frontend.typecheck import check_program
from repro.generator import generate_program
from repro.interp import run_program

from conftest import emit

#: the step-heaviest seeds in range(300) (>= 20k steps each): the
#: workload where ground-truth interpretation dominates a campaign
HEAVY_SEEDS = (21, 28, 45, 133, 162, 213, 238, 268)
REPEATS = int(os.environ.get("INTERP_THROUGHPUT_REPEATS", "2"))
MIN_SPEEDUP = 3.0


def _timed(programs, backend):
    steps = 0
    start = time.perf_counter()
    results = []
    for _ in range(REPEATS):
        results = []
        for program, info in programs:
            result = run_program(program, info=info, backend=backend)
            steps += result.steps
            results.append(result)
    elapsed = time.perf_counter() - start
    return steps / elapsed, len(programs) * REPEATS / elapsed, results


def test_interp_throughput(benchmark):
    programs = []
    for seed in HEAVY_SEEDS:
        program = generate_program(seed)
        programs.append((program, check_program(program)))
    benchmark(
        lambda: run_program(programs[0][0], info=programs[0][1])
    )

    ast_sps, ast_seeds, ast_results = _timed(programs, "ast")
    vm_sps, vm_seeds, vm_results = _timed(programs, "bytecode")
    speedup = vm_sps / ast_sps
    identical = all(a == b for a, b in zip(ast_results, vm_results))

    rows = [
        ["ast", f"{ast_sps:,.0f}", f"{ast_seeds:.2f}", "1.00x"],
        ["bytecode", f"{vm_sps:,.0f}", f"{vm_seeds:.2f}", f"{speedup:.2f}x"],
    ]
    lines = [
        f"Interpreter throughput — {len(HEAVY_SEEDS)} step-heavy seeds "
        f"x{REPEATS}, results identical: {'yes' if identical else 'NO'}",
        format_table(["backend", "steps/sec", "seeds/sec", "speedup"], rows),
    ]
    emit("interp_throughput", "\n".join(lines))

    assert identical, "backends diverged — equivalence before speed"
    assert speedup >= MIN_SPEEDUP, (
        f"bytecode VM only {speedup:.2f}x the AST interpreter on "
        f"steps/sec (fence is {MIN_SPEEDUP}x)"
    )
