"""Ablation — per-analysis contribution to DCE.

Quantifies what §4.4 argues qualitatively: DCE is an optimization
*sink* whose effectiveness depends on the rest of the pipeline.  Each
row disables one analysis from the gcclike -O2 configuration and
counts how many extra dead markers survive."""

from repro.compilers import CompilerSpec, compile_minic
from repro.compilers.versions import config_at
from repro.core.ground_truth import compute_ground_truth
from repro.core.markers import instrument_program
from repro.core.stats import format_table
from repro.frontend.lower import lower_program
from repro.frontend.typecheck import check_program
from repro.generator import generate_program
from repro.backend.asm import alive_markers, emit_module
from repro.compilers.pipeline import run_pipeline

from conftest import emit

SEEDS = range(6)

KNOBS = {
    "full -O2": {},
    "no VRP": {"vrp": False},
    "no inlining": {"inline_budget": 0, "inline_single_call_bonus": 0},
    "no memory constprop": {
        "passes_filter": "memcp",
    },
    "no unrolling": {"unroll_max_trip": 0},
    "no store forwarding": {"store_forwarding": False, "gvn_across_calls": False},
    "weak alias analysis": {"alias_max_objects": 0},
}


def _missed_with(programs, knob_changes) -> int:
    base = config_at("gcclike", "O2")
    if "passes_filter" in knob_changes:
        banned = knob_changes["passes_filter"]
        config = base.with_(passes=tuple(p for p in base.passes if p != banned))
    else:
        config = base.with_(**knob_changes)
    missed = 0
    for inst, info, truth in programs:
        module = lower_program(inst.program, info)
        run_pipeline(module, config)
        alive = alive_markers(emit_module(module), "DCEMarker")
        missed += len(truth.dead & alive)
    return missed


def test_pass_contribution_to_dce(benchmark):
    programs = []
    for seed in SEEDS:
        inst = instrument_program(generate_program(seed))
        info = check_program(inst.program)
        truth = compute_ground_truth(inst, info=info)
        programs.append((inst, info, truth))

    benchmark(lambda: _missed_with(programs[:1], {}))

    baseline = _missed_with(programs, {})
    rows = []
    for label, changes in KNOBS.items():
        missed = _missed_with(programs, changes)
        delta = missed - baseline
        rows.append([label, str(missed), f"+{delta}" if delta >= 0 else str(delta)])
    table = format_table(
        ["configuration", "missed dead markers", "vs full -O2"],
        rows,
        title="Ablation — what each analysis buys DCE (gcclike -O2, "
              f"{len(programs)} files)",
    )
    emit("ablation_pass_contribution", table)

    # DCE must depend on the pipeline: several ablations hurt.
    hurts = sum(
        1 for label, changes in KNOBS.items()
        if label != "full -O2" and _missed_with(programs, changes) > baseline
    )
    assert hurts >= 3
