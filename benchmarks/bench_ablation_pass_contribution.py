"""Ablation — per-pass contribution to DCE.

Quantifies what §4.4 argues qualitatively: DCE is an optimization
*sink* whose effectiveness depends on the rest of the pipeline.  The
per-pass marker attribution is read off the observability trace — one
instrumented pipeline run records which pass killed which marker —
instead of the old brute-force scheme that re-ran an ablated pipeline
per configuration.  A brute-force prefix ablation (re-running the
pipeline truncated after every pass) cross-checks the trace on a small
corpus: the two methods must agree marker-for-marker."""

from repro.compilers.pipeline import module_markers, run_pipeline
from repro.compilers.versions import config_at
from repro.core.ground_truth import compute_ground_truth
from repro.core.markers import instrument_program
from repro.core.stats import format_table
from repro.frontend.lower import lower_program
from repro.frontend.typecheck import check_program
from repro.generator import generate_program
from repro.observability import Tracer, aggregate_contributions, pass_profiles

from conftest import emit

SEEDS = range(6)
BRUTE_FORCE_SEEDS = 2  # prefix ablation is O(passes²); keep it small
CONFIG = config_at("gcclike", "O2")


def _trace_profiles(inst, info):
    """One traced pipeline run → per-pass profiles."""
    module = lower_program(inst.program, info)
    tracer = Tracer()
    run_pipeline(module, CONFIG, tracer=tracer)
    return pass_profiles(tracer)


def _brute_force_attribution(inst, info):
    """Per-pass eliminated markers via prefix ablation: re-run the
    pipeline truncated at every length and diff the marker sets."""
    eliminated_per_pass = []
    previous = None
    for length in range(len(CONFIG.passes) + 1):
        module = lower_program(inst.program, info)
        run_pipeline(module, CONFIG.with_(passes=CONFIG.passes[:length]))
        markers = module_markers(module)
        if previous is not None:
            eliminated_per_pass.append(frozenset(previous - markers))
        previous = markers
    return eliminated_per_pass


def test_pass_contribution_to_dce(benchmark):
    programs = []
    for seed in SEEDS:
        inst = instrument_program(generate_program(seed))
        info = check_program(inst.program)
        truth = compute_ground_truth(inst, info=info)
        programs.append((inst, info, truth))

    benchmark(lambda: _trace_profiles(*programs[0][:2]))

    # Trace-based attribution over the whole corpus.
    profile_lists = [_trace_profiles(inst, info) for inst, info, _ in programs]
    totals = aggregate_contributions(profile_lists)
    dead = set().union(*(truth.dead for _, _, truth in programs))

    contributors = sorted(
        totals.values(), key=lambda c: len(c.markers_eliminated), reverse=True
    )
    rows = []
    for c in contributors:
        killed = c.markers_eliminated
        killed_dead = sum(1 for m in killed if m in dead)
        rows.append([
            c.name,
            str(len(killed)),
            str(killed_dead),
            f"{c.wall_time * 1e3:.1f}",
            f"{c.changed_runs}/{c.runs}",
        ])
    table = format_table(
        ["pass", "markers killed", "of them dead", "total ms", "changed runs"],
        rows,
        title="Ablation — which pass eliminates the dead markers "
              f"(gcclike -O2, {len(programs)} files, trace attribution)",
    )
    emit("ablation_pass_contribution", table)

    # The trace must account for every marker the pipeline eliminated.
    for (inst, info, _), profiles in zip(programs, profile_lists):
        module = lower_program(inst.program, info)
        before = module_markers(module)
        run_pipeline(module, CONFIG)
        after = module_markers(module)
        traced = {m for p in profiles for m in p.markers_eliminated}
        assert traced == before - after

    # Trace attribution and brute-force prefix ablation agree exactly.
    for inst, info, _ in programs[:BRUTE_FORCE_SEEDS]:
        profiles = _trace_profiles(inst, info)
        brute = _brute_force_attribution(inst, info)
        assert len(profiles) == len(brute)
        for profile, expected in zip(profiles, brute):
            assert frozenset(profile.markers_eliminated) == expected, profile.name

    # DCE is a sink: several distinct passes upstream kill markers.
    killers = [c for c in contributors if c.markers_eliminated]
    assert len(killers) >= 3
