"""Figure 2 / Listing 5 — primary vs secondary dead-block
classification on the nested-if CFG.

The paper's worked example: B2 (outer dead if-body) is a primary
missed block; B3 (inner, nested in B2) is secondary while B2 is
missed, and becomes primary once B2 is detected."""

from repro.core.case_studies import case_study
from repro.core.ground_truth import compute_ground_truth
from repro.core.markers import InstrumentedProgram, MarkerInfo
from repro.core.primary import build_marker_graph, primary_missed_markers
from repro.core.stats import format_table
from repro.frontend.typecheck import check_program
from repro.lang import parse_program

from conftest import emit


def _instrumented():
    case = case_study("listing5-nested-dead")
    program = parse_program(case.source)
    markers = [
        MarkerInfo(d.name, "case-study", "main")
        for d in program.extern_decls()
        if d.name.startswith("DCEMarker")
    ]
    return InstrumentedProgram(program, markers)


def test_figure2_primary_classification(benchmark):
    inst = _instrumented()
    info = check_program(inst.program)
    truth = compute_ground_truth(inst, info=info)
    graph = build_marker_graph(inst, truth.executed_functions(), info)
    benchmark(
        lambda: primary_missed_markers(inst, truth, frozenset(), graph=graph)
    )

    outer, inner = "DCEMarker0", "DCEMarker1"
    scenarios = []
    # C(2)=missed, C(3)=missed -> only B2 primary.
    p1 = primary_missed_markers(inst, truth, frozenset(), graph=graph)
    scenarios.append(["both missed", str(outer in p1), str(inner in p1)])
    # C(2)=detected, C(3)=missed -> B3 primary.
    p2 = primary_missed_markers(inst, truth, frozenset({outer}), graph=graph)
    scenarios.append(["outer detected", "-", str(inner in p2)])
    # Everything detected -> nothing missed.
    p3 = primary_missed_markers(inst, truth, truth.dead, graph=graph)
    scenarios.append(["all detected", str(outer in p3), str(inner in p3)])

    table = format_table(
        ["scenario", "B2 (outer) primary", "B3 (inner) primary"],
        scenarios,
        title="Figure 2 — primary missed dead block classification",
    )
    emit("figure2_primary_classification", table)

    assert outer in p1 and inner not in p1
    assert inner in p2
    assert not p3
