"""§4.2 'Between optimization levels' — -O3 vs -O1/-O2 of the same
compiler.

Paper: GCC fails on 308 markers at -O3 that -O1/-O2 eliminate (24
primary); LLVM on 456 (54 primary).  The shape: a small but non-empty
set of markers regress at the highest level, for both families."""

from repro.compilers import CompilerSpec
from repro.core.differential import analyze_markers, missed_between_levels
from repro.core.markers import instrument_program
from repro.core.stats import format_table
from repro.frontend.typecheck import check_program
from repro.generator import generate_program

from conftest import CAMPAIGN_PROGRAMS, PAPER, emit


def test_cross_level_differential(campaign, benchmark):
    inst = instrument_program(generate_program(4))
    info = check_program(inst.program)
    specs = [CompilerSpec("llvmlike", lvl) for lvl in ("O1", "O2", "O3")]

    def kernel():
        analysis = analyze_markers(inst, specs, info=info)
        return missed_between_levels(analysis, "llvmlike")

    benchmark(kernel)

    rows = []
    for family in ("gcclike", "llvmlike"):
        stats = campaign.cross_level[family]
        paper_missed, paper_primary = PAPER["cross_level"][family]
        rows.append([
            family, str(stats.missed_at_high), str(stats.primary),
            f"{paper_missed} ({paper_primary} primary, 10k files)",
        ])
    table = format_table(
        ["family", "missed at O3, seized at O1/O2", "primary", "paper"],
        rows,
        title=(
            "Section 4.2 — cross-level missed opportunities "
            f"(our corpus: {CAMPAIGN_PROGRAMS} files)"
        ),
    )
    emit("section42_cross_level", table)

    total = sum(s.missed_at_high for s in campaign.cross_level.values())
    assert total > 0, "expected some O3 regressions on the corpus"
    # They stay a small fraction of all dead markers (paper: ~0.03%).
    assert total < 0.05 * campaign.total_dead
