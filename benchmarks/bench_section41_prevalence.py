"""§4.1 'Dead block prevalence' — paper: 89.59% of 3,109,167
instrumented blocks are dead, 10.41% alive."""

from repro.core.ground_truth import compute_ground_truth
from repro.core.markers import instrument_program
from repro.generator import generate_program

from conftest import PAPER, emit


def test_dead_block_prevalence(campaign, benchmark):
    inst = instrument_program(generate_program(0))
    benchmark(lambda: compute_ground_truth(inst))

    measured = campaign.dead_pct
    lines = [
        "Section 4.1 — dead block prevalence",
        f"instrumented markers: {campaign.total_markers} "
        f"(paper: 3,109,167 over 10,000 files)",
        f"dead:  measured {measured:.2f}%   paper {PAPER['dead_pct']:.2f}%",
        f"alive: measured {100 - measured:.2f}%   paper {100 - PAPER['dead_pct']:.2f}%",
    ]
    emit("section41_prevalence", "\n".join(lines))
    assert 75.0 < measured < 99.5
