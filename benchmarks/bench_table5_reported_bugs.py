"""Table 5 — reported / confirmed / duplicate / fixed bug counts.

Paper: 53 GCC reports (43 confirmed, 5 duplicates, 12 fixed) and 31
LLVM reports (19 confirmed, 11 fixed).  The ledger reproduces the
counts; the executable case studies backing a subset of the reports
are re-verified against the actual compilers here."""

from repro.core.case_studies import CASE_STUDIES, verify_case_study
from repro.core.reports import LEDGER, table5_counts
from repro.core.stats import format_table

from conftest import PAPER, emit


def test_table5_reported_bugs(benchmark):
    first_backed = next(c for c in CASE_STUDIES if c.report)
    benchmark(lambda: verify_case_study(first_backed))

    counts = table5_counts()
    rows = []
    for label, key in (
        ("Reported", "reported"), ("Confirmed", "confirmed"),
        ("Marked Duplicate", "duplicate"), ("Fixed", "fixed"),
    ):
        rows.append([
            label,
            str(counts["gcclike"][key]), str(PAPER["table5"]["gcclike"][key]),
            str(counts["llvmlike"][key]), str(PAPER["table5"]["llvmlike"][key]),
        ])
    table = format_table(
        ["", "gcclike", "paper GCC", "llvmlike", "paper LLVM"],
        rows, title="Table 5 — missed optimizations reported",
    )
    emit("table5_reported_bugs", table)

    assert counts == PAPER["table5"]

    # Every case-study-backed report must still reproduce end to end.
    problems = []
    for case in CASE_STUDIES:
        if case.report:
            problems.extend(verify_case_study(case))
    assert not problems, "\n".join(problems)
    assert len(LEDGER) == 53 + 31
