"""Speculative reduction throughput — candidates evaluated per second,
oracle calls eliminated by the cross-round memo, and the jobs=4 wall
clock relative to sequential.

Two workloads, two questions:

* **Memo savings** (fenced): a repetitive program — unrolled-loop
  flavoured runs of identical statements around a small irreducible
  core — reduced under a cheap text oracle.  Identical statements
  print identical candidates, so the memo keyed on the printed text
  answers them once; the fence requires >= 25% of candidate checks to
  come from cache.  Both counters are deterministic at ``jobs=1``, so
  the fence is CPU-count independent.  A ``memoize_oracle=False``
  control run pins the exactness claim: the memo changes only the
  fresh/cached *split*, never the verdicts or the reduced program.

* **Parallel speedup** (recorded, not fenced): the listing-1-flavoured
  fixture under the real compiler-backed oracle at ``jobs=1`` vs
  ``jobs=4``.  The container may pin us to one CPU, so wall-clock
  speedup is reported as data; byte-identical output *is* asserted —
  that is the engine's contract, hardware-independent.
"""

import os
import time

from repro.compilers import CompilerSpec
from repro.core.reduction import missed_marker_predicate, reduce_program
from repro.core.stats import format_table
from repro.lang import parse_program, print_program

from conftest import emit

#: acceptance floor: fraction of candidate checks the cross-round memo
#: must answer from cache on the repetitive workload
MIN_MEMO_SAVED = 0.25

#: irreducible sentinels and identical filler statements between them
KEEPS = 4
NOISE = 40
STRIDE = 10


class SentinelOracle:
    """Cheap deterministic oracle: every sentinel and the marker call
    must survive in the printed candidate (picklable, no compilation —
    the memo measurement should not be dominated by compiler cost)."""

    cache_key = f"sentinel:{KEEPS}"

    def __call__(self, program) -> bool:
        text = print_program(program)
        return "DCEMarker0()" in text and all(
            f"keep{i} =" in text for i in range(KEEPS)
        )


def _repetitive_source() -> str:
    lines = ["void DCEMarker0(void);", "int main() {", "  int x = 1;"]
    k = 0
    for i in range(NOISE):
        lines.append("  x = x + 1;")
        if i % STRIDE == STRIDE - 1 and k < KEEPS:
            lines.append(f"  int keep{k} = {k + 1};")
            k += 1
    while k < KEEPS:
        lines.append(f"  int keep{k} = {k + 1};")
        k += 1
    lines += ["  if (x > 0) { DCEMarker0(); }", "  return x;", "}"]
    return "\n".join(lines) + "\n"


BLOATED = """
void DCEMarker0(void);
char a;
char b[2];
static int noise1 = 4;
static long noise2[3] = {1, 2, 3};
static int helper(int x) { return x * 3; }
int main() {
  int pad1 = helper(2);
  noise1 += pad1;
  long pad2 = noise2[1] + noise1;
  char *d = &a;
  char *e = &b[1];
  if (d == e) {
    DCEMarker0();
  }
  noise2[2] = pad2;
  for (int i = 0; i < 3; i++) { noise1 += i; }
  return 0;
}
"""


def _timed(program, predicate, **kwargs):
    start = time.perf_counter()
    result = reduce_program(program, predicate, **kwargs)
    return result, time.perf_counter() - start


def _row(label, result, wall):
    checks = result.oracle_calls + result.oracle_cache_hits
    return [
        label,
        f"{result.stmts_before}->{result.stmts_after}",
        str(checks),
        str(result.oracle_calls),
        str(result.oracle_cache_hits),
        f"{result.oracle_cache_hits / checks:.1%}" if checks else "-",
        f"{wall:.2f}",
        f"{checks / wall:.0f}" if wall > 0 else "-",
    ]


def test_reduction_throughput_and_memo_savings():
    rows = []

    # -- memo fence: repetitive workload, cheap oracle ---------------
    repetitive = parse_program(_repetitive_source())
    memo_on, wall_on = _timed(repetitive, SentinelOracle())
    memo_off, wall_off = _timed(
        repetitive, SentinelOracle(), memoize_oracle=False
    )
    rows.append(_row("repetitive memo=on", memo_on, wall_on))
    rows.append(_row("repetitive memo=off", memo_off, wall_off))

    checks = memo_on.oracle_calls + memo_on.oracle_cache_hits
    saved = memo_on.oracle_cache_hits / checks
    # the memo changes the fresh/cached split, nothing else
    assert print_program(memo_off.program) == print_program(memo_on.program)
    assert memo_off.attempts == memo_on.attempts
    assert memo_off.oracle_calls == checks

    # -- parallel speedup: compiler-backed oracle --------------------
    program = parse_program(BLOATED)

    def predicate():
        return missed_marker_predicate(
            "DCEMarker0",
            keeper=CompilerSpec("llvmlike", "O3"),
            witness=CompilerSpec("gcclike", "O3"),
        )

    seq, wall_seq = _timed(program, predicate())
    par, wall_par = _timed(program, predicate(), jobs=4)
    rows.append(_row("compiler jobs=1", seq, wall_seq))
    rows.append(_row("compiler jobs=4", par, wall_par))
    speedup = wall_seq / wall_par if wall_par > 0 else float("inf")

    # the engine contract: parallel output is byte-identical
    assert print_program(par.program) == print_program(seq.program)
    assert (par.attempts, par.oracle_calls, par.oracle_cache_hits) == (
        seq.attempts, seq.oracle_calls, seq.oracle_cache_hits
    )

    lines = [
        "Speculative reduction throughput "
        f"(host reports {os.cpu_count()} CPUs)",
        format_table(
            ["workload", "stmts", "checks", "oracle calls", "memo hits",
             "saved", "wall (s)", "checks/s"],
            rows,
        ),
        "",
        f"cross-round memo: {saved:.1%} of candidate checks answered "
        f"from cache (floor {MIN_MEMO_SAVED:.0%}); memo-off control "
        f"re-ran all {memo_off.oracle_calls} checks fresh with "
        "byte-identical output",
        f"jobs=4 speedup on the compiler-backed oracle: {speedup:.2f}x "
        f"({wall_seq:.2f}s -> {wall_par:.2f}s), output byte-identical",
    ]
    emit("reduction_throughput", "\n".join(lines))

    assert saved >= MIN_MEMO_SAVED
