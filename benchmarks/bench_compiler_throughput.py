"""Compiler-substrate throughput (paper §4 'Experimental environment').

The paper notes the whole 10k-file campaign (generation,
instrumentation, execution, differential testing) took about an hour.
These micro-benchmarks record our per-stage costs so campaign sizing
stays predictable."""

from repro.compilers import CompilerSpec, compile_minic
from repro.core.ground_truth import compute_ground_truth
from repro.core.markers import instrument_program
from repro.frontend.lower import lower_program
from repro.frontend.typecheck import check_program
from repro.generator import generate_program
from repro.lang import parse_program, print_program


def test_bench_generation(benchmark):
    benchmark(lambda: generate_program(99))


def test_bench_parse_roundtrip(benchmark):
    text = print_program(generate_program(99))
    benchmark(lambda: parse_program(text))


def test_bench_instrument_and_check(benchmark):
    program = generate_program(99)

    def kernel():
        inst = instrument_program(program)
        check_program(inst.program)
        return inst

    benchmark(kernel)


def test_bench_ground_truth_execution(benchmark):
    inst = instrument_program(generate_program(99))
    info = check_program(inst.program)
    benchmark(lambda: compute_ground_truth(inst, info=info))


def test_bench_lowering(benchmark):
    inst = instrument_program(generate_program(99))
    info = check_program(inst.program)
    benchmark(lambda: lower_program(inst.program, info))


def test_bench_compile_o0(benchmark):
    inst = instrument_program(generate_program(99))
    info = check_program(inst.program)
    spec = CompilerSpec("gcclike", "O0")
    benchmark(lambda: compile_minic(inst.program, spec, info=info))


def test_bench_compile_o3_both_families(benchmark):
    inst = instrument_program(generate_program(99))
    info = check_program(inst.program)
    specs = [CompilerSpec("gcclike", "O3"), CompilerSpec("llvmlike", "O3")]

    def kernel():
        for spec in specs:
            compile_minic(inst.program, spec, info=info)

    benchmark(kernel)
