"""Incremental compilation — pass executions saved by sharing the
default 9-spec matrix through one prefix-tree engine, per seed.

A differential campaign compiles every program under ~10 specs whose
pipelines overlap heavily (the two families each repeat their O1/O2
prefixes at higher levels); the incremental engine executes shared
prefixes once and converges identical intermediate states, so most of
the per-seed pass executions disappear.  The container pins us to one
CPU, so the meaningful measurement is work avoided — pass executions —
not wall-clock; correctness (bit-identical results) is covered by
``tests/property/test_incremental_equivalence.py``.

Also exercises the reduction loop's memoized interestingness oracle on
the listing-1-flavoured fixture and reports its hit rate.

``INCREMENTAL_COMPILE_PROGRAMS`` overrides the corpus size (default 25).
"""

import os
from dataclasses import astuple

from repro.compilers import CompilerSpec, IncrementalEngine
from repro.core.corpus import default_specs
from repro.core.markers import instrument_program
from repro.core.reduction import missed_marker_predicate, reduce_program
from repro.core.stats import format_table
from repro.frontend.lower import lower_program
from repro.frontend.typecheck import check_program
from repro.generator import generate_program
from repro.lang import parse_program
from repro.observability.metrics import MetricsRegistry

from conftest import emit

PROGRAMS = int(os.environ.get("INCREMENTAL_COMPILE_PROGRAMS", "25"))
SEED_BASE = 0

#: acceptance floor: the engine must avoid at least this fraction of
#: the pass executions an independent per-spec run would perform
MIN_SAVED_FRACTION = 0.30

BLOATED = """
void DCEMarker0(void);
char a;
char b[2];
static int noise1 = 4;
static long noise2[3] = {1, 2, 3};
static int helper(int x) { return x * 3; }
int main() {
  int pad1 = helper(2);
  noise1 += pad1;
  long pad2 = noise2[1] + noise1;
  char *d = &a;
  char *e = &b[1];
  if (d == e) {
    DCEMarker0();
  }
  noise2[2] = pad2;
  for (int i = 0; i < 3; i++) { noise1 += i; }
  return 0;
}
"""


def _distinct_configs():
    seen, out = set(), []
    for spec in default_specs():
        config = spec.config()
        key = astuple(config)
        if key not in seen:
            seen.add(key)
            out.append(config)
    return out


def test_incremental_compile_savings():
    configs = _distinct_configs()
    independent = sum(len(c.passes) for c in configs)  # engine-off cost
    rows = []
    total_execs = total_saved = 0
    for seed in range(SEED_BASE, SEED_BASE + PROGRAMS):
        instrumented = instrument_program(generate_program(seed))
        info = check_program(instrumented.program)
        engine = IncrementalEngine(lower_program(instrumented.program, info))
        for config in configs:
            engine.compile(config)
        assert engine.pass_execs + engine.pass_execs_saved == independent
        total_execs += engine.pass_execs
        total_saved += engine.pass_execs_saved
        rows.append([
            str(seed),
            str(independent),
            str(engine.pass_execs),
            str(engine.pass_execs_saved),
            f"{engine.pass_execs_saved / independent:.1%}",
        ])
    saved_fraction = total_saved / (total_execs + total_saved)
    rows.append([
        "total",
        str(PROGRAMS * independent),
        str(total_execs),
        str(total_saved),
        f"{saved_fraction:.1%}",
    ])

    metrics = MetricsRegistry()
    reduction = reduce_program(
        parse_program(BLOATED),
        missed_marker_predicate(
            "DCEMarker0",
            keeper=CompilerSpec("llvmlike", "O3"),
            witness=CompilerSpec("gcclike", "O3"),
        ),
        metrics=metrics,
    )
    oracle_calls = metrics.counter("reduction.oracle_calls").value

    lines = [
        f"Incremental compilation — {PROGRAMS} programs, "
        f"{len(configs)} distinct configs (default spec matrix), "
        f"seed base {SEED_BASE}",
        format_table(
            ["seed", "passes engine-off", "passes engine-on",
             "saved", "saved %"],
            rows,
        ),
        "",
        f"reduction oracle memo: {reduction.oracle_cache_hits} of "
        f"{oracle_calls + reduction.oracle_cache_hits} candidate checks "
        f"answered from cache "
        f"({reduction.oracle_cache_hits / (oracle_calls + reduction.oracle_cache_hits):.1%})",
    ]
    emit("incremental_compile", "\n".join(lines))

    assert saved_fraction >= MIN_SAVED_FRACTION
    assert reduction.oracle_cache_hits > 0
