"""§4.2 'Between GCC and LLVM' — differential testing at -O3.

Paper: LLVM eliminates 39,723 markers GCC misses (4,749 primary);
GCC eliminates 3,781 that LLVM misses (396 primary).  The shape to
hold: *both* directions are non-trivial and gcclike misses several
times more than llvmlike (per 10k-file corpus scaling)."""

from repro.compilers import CompilerSpec
from repro.core.differential import analyze_markers
from repro.core.markers import instrument_program
from repro.core.stats import format_table
from repro.frontend.typecheck import check_program
from repro.generator import generate_program

from conftest import CAMPAIGN_PROGRAMS, PAPER, emit


def test_cross_compiler_differential(campaign, benchmark):
    inst = instrument_program(generate_program(3))
    info = check_program(inst.program)
    specs = [CompilerSpec("gcclike", "O3"), CompilerSpec("llvmlike", "O3")]
    benchmark(lambda: analyze_markers(inst, specs, info=info))

    cc = campaign.cross_compiler
    paper = PAPER["cross_compiler"]
    scale = paper["corpus_files"] / CAMPAIGN_PROGRAMS
    rows = [
        ["gcclike misses, llvmlike catches", str(cc.gcc_misses_llvm_catches),
         str(cc.gcc_primary), f"{paper['gcc_misses']} ({paper['gcc_primary']} primary)"],
        ["llvmlike misses, gcclike catches", str(cc.llvm_misses_gcc_catches),
         str(cc.llvm_primary), f"{paper['llvm_misses']} ({paper['llvm_primary']} primary)"],
    ]
    table = format_table(
        ["direction", "measured", "primary", "paper (10k files)"],
        rows,
        title=(
            "Section 4.2 — cross-compiler missed opportunities at -O3\n"
            f"(our corpus: {CAMPAIGN_PROGRAMS} files; paper corpus is "
            f"{scale:.0f}x larger)"
        ),
    )
    emit("section42_cross_compiler", table)

    # Shape: both directions occur; gcclike misses more (paper: ~10x).
    assert cc.gcc_misses_llvm_catches > 0
    assert cc.gcc_misses_llvm_catches > cc.llvm_misses_gcc_catches
    assert cc.gcc_primary <= cc.gcc_misses_llvm_catches
