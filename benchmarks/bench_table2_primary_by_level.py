"""Table 2 — % of dead blocks that are *primary* missed per level.

Paper shape: much smaller than Table 1's raw misses (most misses are
secondary), settling around 1.5%/1.4% at -O2/-O3."""

from repro.core.ground_truth import compute_ground_truth
from repro.core.markers import instrument_program
from repro.core.primary import build_marker_graph, primary_missed_markers
from repro.core.stats import format_table, pct
from repro.frontend.typecheck import check_program
from repro.generator import generate_program

from conftest import PAPER, emit

LEVELS = ("O0", "O1", "Os", "O2", "O3")


def test_table2_primary_by_level(campaign, benchmark):
    inst = instrument_program(generate_program(2))
    info = check_program(inst.program)
    truth = compute_ground_truth(inst, info=info)
    graph = build_marker_graph(inst, truth.executed_functions(), info)
    benchmark(
        lambda: primary_missed_markers(inst, truth, frozenset(), graph=graph)
    )

    rows = []
    for level in LEVELS:
        gcc = campaign.level_stats("gcclike", level)
        llvm = campaign.level_stats("llvmlike", level)
        paper_gcc, paper_llvm = PAPER["table2"][level]
        rows.append([
            level,
            pct(gcc.primary_missed_pct), f"({paper_gcc:.2f}%)",
            pct(llvm.primary_missed_pct), f"({paper_llvm:.2f}%)",
        ])
    table = format_table(
        ["level", "gcclike", "paper GCC", "llvmlike", "paper LLVM"],
        rows,
        title="Table 2 — % dead blocks primary-missed (measured vs paper)",
    )
    emit("table2_primary_by_level", table)

    for family in ("gcclike", "llvmlike"):
        for level in LEVELS:
            stats = campaign.level_stats(family, level)
            # Primary misses are a strict subset of misses...
            assert stats.primary_missed <= stats.missed
            # ...and at O1+ they are a small single-digit percentage.
            if level != "O0":
                assert stats.primary_missed_pct < 6.0, (family, level)
