"""Campaign scaling — programs/sec of the parallel engine at
jobs ∈ {1, 2, 4} on one corpus.

The paper's 10k-file campaigns are embarrassingly parallel per seed
(diopter's ``generate_programs_parallel`` shape); this bench records
how our process-pool engine scales on the host and asserts that the
merged result stays byte-identical to the sequential run at every
jobs count — the determinism guarantee that makes ``--jobs`` safe to
use everywhere.

``CAMPAIGN_SCALING_PROGRAMS`` overrides the corpus size (default 50).
"""

import os
import time

from repro.core.corpus import run_campaign
from repro.core.parallel import run_campaign_parallel, shard_seeds
from repro.core.stats import format_table

from conftest import emit

JOBS = (1, 2, 4)
PROGRAMS = int(os.environ.get("CAMPAIGN_SCALING_PROGRAMS", "50"))
SEED_BASE = 40_000


def _fingerprint(result):
    return (
        result.seeds,
        result.skipped,
        result.total_markers,
        result.total_dead,
        result.by_level,
        result.cross_compiler,
        result.cross_level,
        result.findings,
        result.soundness_violations,
    )


def _engine_run(window):
    """Drive the parallel engine itself at jobs=1 (the sequential path
    in ``run_campaign`` would bypass it) with an explicit scheduler
    window — ``None`` streams at the default bounded window, a huge
    value submits every shard upfront (the old barriered scheduler)."""
    start = time.perf_counter()
    result = run_campaign_parallel(
        PROGRAMS, SEED_BASE, None, None, False, "O3",
        None, None, None, 1, window=window,
    )
    elapsed = time.perf_counter() - start
    done = len(result.seeds) + len(result.skipped)
    return result, elapsed, done / elapsed


def test_campaign_scaling(benchmark):
    benchmark(lambda: shard_seeds(range(10_000), jobs=4))
    runs = {}
    for jobs in JOBS:
        start = time.perf_counter()
        result = run_campaign(
            n_programs=PROGRAMS, seed_base=SEED_BASE, jobs=jobs
        )
        elapsed = time.perf_counter() - start
        done = len(result.seeds) + len(result.skipped)
        runs[jobs] = (result, elapsed, done / elapsed)
    # scheduler-overhead rows: the engine at jobs=1, streaming window
    # vs all-shards-upfront (barriered), against the sequential base
    scheduler_rows = {
        "1 engine/streaming": _engine_run(None),
        "1 engine/barriered": _engine_run(1_000_000),
    }

    base_fingerprint = _fingerprint(runs[JOBS[0]][0])
    base_rate = runs[JOBS[0]][2]
    rows = []
    for jobs in JOBS:
        result, elapsed, rate = runs[jobs]
        rows.append([
            str(jobs),
            f"{elapsed:.1f}",
            f"{rate:.2f}",
            f"{rate / base_rate:.2f}x",
            "yes" if _fingerprint(result) == base_fingerprint else "NO",
        ])
    for label, (result, elapsed, rate) in scheduler_rows.items():
        rows.append([
            label,
            f"{elapsed:.1f}",
            f"{rate:.2f}",
            f"{rate / base_rate:.2f}x",
            "yes" if _fingerprint(result) == base_fingerprint else "NO",
        ])
    lines = [
        f"Campaign scaling — {PROGRAMS} programs, seed base {SEED_BASE}, "
        f"{os.cpu_count()} CPU(s)",
        format_table(
            ["jobs", "seconds", "programs/sec", "speedup", "identical result"],
            rows,
        ),
    ]
    emit("campaign_scaling", "\n".join(lines))

    for jobs in JOBS:
        assert runs[jobs][2] > 0
        # determinism is the hard guarantee; speedup depends on cores
        assert _fingerprint(runs[jobs][0]) == base_fingerprint
    for label, (result, _, rate) in scheduler_rows.items():
        assert rate > 0, label
        assert _fingerprint(result) == base_fingerprint, label
