"""Table 1 — % of dead blocks missed per optimization level.

Paper shape: -O0 misses the vast majority; -O1 and up eliminate >90%;
each higher level eliminates at least as much, with only a sliver
between -O2 and -O3; llvmlike (LLVM) edges out gcclike (GCC)."""

from repro.compilers import CompilerSpec, compile_minic
from repro.core.markers import instrument_program
from repro.core.stats import format_table, pct
from repro.frontend.typecheck import check_program
from repro.generator import generate_program

from conftest import PAPER, emit

LEVELS = ("O0", "O1", "Os", "O2", "O3")


def test_table1_missed_by_level(campaign, benchmark):
    inst = instrument_program(generate_program(1))
    info = check_program(inst.program)
    benchmark(
        lambda: compile_minic(inst.program, CompilerSpec("gcclike", "O2"), info=info)
    )

    rows = []
    for level in LEVELS:
        gcc = campaign.level_stats("gcclike", level)
        llvm = campaign.level_stats("llvmlike", level)
        paper_gcc, paper_llvm = PAPER["table1"][level]
        rows.append([
            level,
            pct(gcc.missed_pct), f"({paper_gcc:.2f}%)",
            pct(llvm.missed_pct), f"({paper_llvm:.2f}%)",
        ])
    table = format_table(
        ["level", "gcclike", "paper GCC", "llvmlike", "paper LLVM"],
        rows,
        title="Table 1 — % dead blocks missed (measured vs paper)",
    )
    emit("table1_missed_by_level", table)

    # Shape assertions: O0 enormous, O1+ small; O1 >= O2; llvm <= gcc at O2.
    for family in ("gcclike", "llvmlike"):
        o0 = campaign.level_stats(family, "O0").missed_pct
        o1 = campaign.level_stats(family, "O1").missed_pct
        o2 = campaign.level_stats(family, "O2").missed_pct
        assert o0 > 3 * o1, family
        assert o1 >= o2, family
    assert (
        campaign.level_stats("llvmlike", "O2").missed_pct
        <= campaign.level_stats("gcclike", "O2").missed_pct + 0.5
    )
