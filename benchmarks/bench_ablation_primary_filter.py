"""Ablation — how much triage noise the primary filter removes.

Not a paper table, but the design choice §3.2 motivates: without the
filter every secondary miss would be triaged; the bench quantifies the
reduction factor on the corpus."""

from repro.core.stats import format_table, pct

from conftest import emit


def test_primary_filter_reduction(campaign, benchmark):
    benchmark(lambda: campaign.level_stats("gcclike", "O3"))

    rows = []
    for family in ("gcclike", "llvmlike"):
        stats = campaign.level_stats(family, "O3")
        if stats.missed:
            kept = 100.0 * stats.primary_missed / stats.missed
        else:
            kept = 0.0
        rows.append([
            family, str(stats.missed), str(stats.primary_missed), pct(kept),
        ])
    table = format_table(
        ["family", "missed @O3", "primary", "kept for triage"],
        rows,
        title="Ablation — primary filter (paper §3.2): secondary misses dropped",
    )
    emit("ablation_primary_filter", table)

    for family in ("gcclike", "llvmlike"):
        stats = campaign.level_stats(family, "O3")
        # The filter must discard a majority of raw misses.
        assert stats.primary_missed < 0.6 * max(stats.missed, 1)
