"""Table 3 — LLVM commits introducing missed DCE opportunities, by
component.

Paper: bisecting 38 -O3 regressions hit 21 unique commits across 11
components (alias analysis, jump threading, loop transforms, pass
management, peephole, SSA memory analysis, ...).  We regenerate the
table by bisecting the regressions our regression-watch finds between
an old llvmlike version and the tip."""

from repro.core.bisect import bisect_marker_regression
from repro.core.stats import format_table
from repro.frontend.typecheck import check_program
from repro.lang import parse_program

from conftest import emit

_BISECT_CASE = """
void DCEMarker0(void);
static int a = 0;
int main() {
  if (a) { DCEMarker0(); }
  a = 1;
  return 0;
}
"""


def test_table3_llvm_component_diversity(llvm_watch, benchmark):
    program = parse_program(_BISECT_CASE)
    info = check_program(program)
    benchmark(
        lambda: bisect_marker_regression(program, "DCEMarker0", "llvmlike", "O3", info)
    )

    commits: dict[str, set[str]] = {}
    files: dict[str, set[str]] = {}
    for reg in llvm_watch.regressions:
        if reg.bisection is None:
            continue
        comp = reg.bisection.component
        commits.setdefault(comp, set()).add(reg.bisection.commit.sha)
        files.setdefault(comp, set()).update(reg.bisection.files)
    rows = [
        [comp, str(len(commits[comp])), str(len(files[comp]))]
        for comp in sorted(commits)
    ]
    table = format_table(
        ["Component", "# Commits", "# Files"],
        rows,
        title=(
            "Table 3 — llvmlike commits introducing missed DCE "
            f"opportunities ({llvm_watch.programs} fresh files; paper: "
            "21 commits, 11 components, 23 files on 10k files)"
        ),
    )
    emit("table3_llvm_components", table)

    assert commits, "expected at least one bisected llvmlike regression"
    # Diversity: regressions trace to more than one component.
    assert len(commits) >= 2
    # And every offending commit is behavioural by construction.
    for reg in llvm_watch.regressions:
        if reg.bisection is not None:
            assert reg.bisection.commit.is_behavioural
