"""Shared state for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper's
evaluation (see DESIGN.md §4).  The expensive corpus campaign and the
regression-watch runs are computed once per session and shared; every
bench prints a paper-vs-measured table and also writes it under
``benchmarks/output/`` so EXPERIMENTS.md can reference the artifacts.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.corpus import run_campaign
from repro.core.regression_watch import watch

OUTPUT_DIR = Path(__file__).parent / "output"

#: corpus scale for the benches — large enough for stable shapes,
#: small enough to keep the harness in CI territory.
CAMPAIGN_PROGRAMS = 24
WATCH_PROGRAMS = 8

#: the paper's reported numbers (for side-by-side printing)
PAPER = {
    "dead_pct": 89.59,
    "table1": {  # % dead blocks missed
        "O0": (85.21, 83.82),
        "O1": (8.18, 5.20),
        "Os": (5.94, 4.75),
        "O2": (5.66, 4.35),
        "O3": (5.60, 4.31),
    },
    "table2": {  # % dead blocks primary missed
        "O0": (15.30, 4.75),
        "O1": (1.76, 1.47),
        "Os": (1.56, 1.43),
        "O2": (1.53, 1.38),
        "O3": (1.53, 1.37),
    },
    "cross_compiler": {
        "gcc_misses": 39723, "gcc_primary": 4749,
        "llvm_misses": 3781, "llvm_primary": 396,
        "corpus_files": 10_000,
    },
    "cross_level": {"gcclike": (308, 24), "llvmlike": (456, 54)},
    "table5": {
        "gcclike": {"reported": 53, "confirmed": 43, "duplicate": 5, "fixed": 12},
        "llvmlike": {"reported": 31, "confirmed": 19, "duplicate": 0, "fixed": 11},
    },
}


def emit(name: str, text: str) -> None:
    """Print a bench's table and persist it as an artifact."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def campaign():
    return run_campaign(n_programs=CAMPAIGN_PROGRAMS, seed_base=0)


@pytest.fixture(scope="session")
def gcc_watch():
    return watch("gcclike", old_version=0, n_programs=WATCH_PROGRAMS,
                 seed_base=20_000, levels=("O3", "Os"), bisect=True,
                 bisect_limit_per_program=2)


@pytest.fixture(scope="session")
def llvm_watch():
    return watch("llvmlike", old_version=4, n_programs=WATCH_PROGRAMS,
                 seed_base=30_000, levels=("O3", "Os"), bisect=True,
                 bisect_limit_per_program=2)
