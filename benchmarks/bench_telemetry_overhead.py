"""Telemetry overhead — the observability pipeline must be ~free.

Runs the same small campaign with the full telemetry stack attached
(metrics registry, event bus fanning out to a JSONL writer and the
non-TTY dashboard, ledger recording with finding fingerprints) and
with everything disabled, and asserts the overhead stays under 5%.
Wall-clock on a single pinned CPU is noisy at this scale, so each
variant runs ``REPS`` times interleaved and the minima are compared —
the minimum is the run least disturbed by the machine, and telemetry
cost is systematic, so it survives in the minimum if it exists.

``TELEMETRY_OVERHEAD_PROGRAMS`` overrides the corpus size (default 8).
"""

import io
import os
import time

from repro.core.corpus import run_campaign
from repro.core.stats import format_table
from repro.generator import GeneratorConfig
from repro.observability import (
    EventBus,
    JsonlEventWriter,
    LiveDashboard,
    MetricsRegistry,
    RunLedger,
)

from conftest import emit

PROGRAMS = int(os.environ.get("TELEMETRY_OVERHEAD_PROGRAMS", "8"))
SEED_BASE = 50
REPS = 3

#: acceptance ceiling: full telemetry may cost at most this fraction
MAX_OVERHEAD = 0.05

#: small programs keep one rep in seconds while still emitting real
#: events/findings through the whole pipeline
CONFIG = GeneratorConfig(
    min_globals=1, max_globals=3, min_functions=2, max_functions=3,
    max_depth=3, min_block_stmts=1, max_block_stmts=4, max_expr_depth=2,
)


def _run(telemetry: bool) -> float:
    start = time.perf_counter()
    if telemetry:
        metrics = MetricsRegistry()
        bus = EventBus()
        writer = JsonlEventWriter(io.StringIO())
        bus.subscribe(writer)
        LiveDashboard(io.StringIO(), force_tty=False).attach(bus)
        result = run_campaign(
            n_programs=PROGRAMS, seed_base=SEED_BASE,
            generator_config=CONFIG, metrics=metrics, events=bus,
        )
        with RunLedger(":memory:") as ledger:
            ledger.record_run(
                result, n_programs=PROGRAMS, seed_base=SEED_BASE,
                generator_config=CONFIG, metrics=metrics,
                wall_time=time.perf_counter() - start,
            )
    else:
        run_campaign(
            n_programs=PROGRAMS, seed_base=SEED_BASE,
            generator_config=CONFIG,
        )
    return time.perf_counter() - start


def test_telemetry_overhead_under_five_percent():
    _run(telemetry=False)  # warm caches/imports outside the timings
    bare, full = [], []
    for _ in range(REPS):
        bare.append(_run(telemetry=False))
        full.append(_run(telemetry=True))
    best_bare, best_full = min(bare), min(full)
    overhead = (best_full - best_bare) / best_bare
    rows = [
        ["disabled", f"{best_bare:.3f}", ", ".join(f"{t:.3f}" for t in bare)],
        ["enabled", f"{best_full:.3f}", ", ".join(f"{t:.3f}" for t in full)],
    ]
    table = format_table(
        ["telemetry", "best (s)", f"all {REPS} reps (s)"], rows,
        title=f"telemetry overhead — {PROGRAMS} programs, "
              f"overhead {overhead:+.2%} (ceiling {MAX_OVERHEAD:.0%})",
    )
    emit("telemetry_overhead", table)
    assert overhead < MAX_OVERHEAD, (
        f"telemetry costs {overhead:.2%} (> {MAX_OVERHEAD:.0%}): "
        f"enabled {best_full:.3f}s vs disabled {best_bare:.3f}s"
    )
