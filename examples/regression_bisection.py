#!/usr/bin/env python3
"""Regression hunting and bisection (paper §4.2, Tables 3 & 4).

Part 1 replays the paper's Listing 6a story: LLVM up to 3.7.1 could
eliminate the dead block, 3.8 regressed — our llvmlike history carries
the same regression (the GlobalOpt rewrite), and bisection pins it.

Part 2 runs the continuous regression watch the paper recommends:
fresh random programs, old release vs tip, every regression bisected
to its offending commit and grouped by component.

Run:  python examples/regression_bisection.py
"""

from repro.compilers import CompilerSpec, compile_minic
from repro.compilers.versions import history, latest
from repro.core.bisect import bisect_marker_regression
from repro.core.regression_watch import watch
from repro.lang import parse_program

LISTING_6A = """
void DCEMarker0(void);
static int a = 0;

int main() {
  if (a) {
    DCEMarker0();
  }
  a = 1;
  return 0;
}
"""


def main() -> None:
    program = parse_program(LISTING_6A)

    print("=== Part 1: bisecting the Listing 6a regression ===")
    tip = latest("llvmlike")
    for version in (0, tip):
        spec = CompilerSpec("llvmlike", "O3", version)
        alive = compile_minic(program, spec).alive_markers("DCEMarker")
        verdict = "MISSED" if "DCEMarker0" in alive else "eliminated"
        print(f"  llvmlike-O3 @ version {version:2d}: {verdict}")

    result = bisect_marker_regression(program, "DCEMarker0", "llvmlike", "O3")
    assert result is not None
    print(f"\n  first bad version: {result.first_bad} ({result.steps} compiles)")
    print(f"  offending commit : {result.commit.sha} {result.commit.subject}")
    print(f"  component        : {result.commit.component}")
    print(f"  files            : {', '.join(result.commit.files)}")

    print("\n=== Part 2: continuous regression watch (old release vs tip) ===")
    report = watch("llvmlike", old_version=4, n_programs=6, seed_base=777,
                   levels=("O3",), bisect=True)
    print(f"  programs tested : {report.programs}")
    print(f"  regressions     : {len(report.regressions)}")
    print(f"  improvements    : {report.improvements}")
    for component, count in sorted(report.components().items()):
        print(f"    {component}: {count}")
    for regression in report.regressions[:5]:
        commit = regression.bisection.commit if regression.bisection else None
        print(
            f"  seed {regression.seed} {regression.marker} at {regression.level}"
            + (f" -> {commit.sha} ({commit.component})" if commit else "")
        )

    print(f"\nThe llvmlike history has {len(history('llvmlike'))} commits; "
          "see repro/compilers/versions.py for the full changelog.")


if __name__ == "__main__":
    main()
