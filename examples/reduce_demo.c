void DCEMarker0(void);
char a;
char b[2];
static int noise1 = 4;
static long noise2[3] = {1, 2, 3};
static int helper(int x) { return x * 3; }
int main() {
  int pad1 = helper(2);
  noise1 += pad1;
  long pad2 = noise2[1] + noise1;
  char *d = &a;
  char *e = &b[1];
  if (d == e) {
    DCEMarker0();
  }
  noise2[2] = pad2;
  for (int i = 0; i < 3; i++) { noise1 += i; }
  return 0;
}
