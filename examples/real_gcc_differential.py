#!/usr/bin/env python3
"""The paper's actual experiment against a *real* compiler.

Generated MiniC programs print as UB-free C, so the optimization-marker
technique runs unchanged against the host ``gcc``: compile the
instrumented program at several -O levels, grep the assembly for
surviving ``DCEMarkerN`` calls, and compare — including against the
ground truth obtained by actually executing the binary.

Run:  python examples/real_gcc_differential.py [n_programs]
"""

import sys

from repro.core.ground_truth import compute_ground_truth
from repro.core.markers import instrument_program
from repro.generator import generate_program
from repro.realworld import differential_real_gcc, executable_check, gcc_available


def main() -> None:
    if not gcc_available():
        print("no system gcc found — this example needs a host compiler")
        return
    n_programs = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    levels = ("O0", "O1", "O2", "O3")

    total = {level: 0 for level in levels}
    total_dead = 0
    cross_level_findings = 0
    for seed in range(n_programs):
        inst = instrument_program(generate_program(seed))
        truth = compute_ground_truth(inst)

        # Sanity: the real binary's execution trace must agree with our
        # interpreter's ground truth.
        real_alive = executable_check(inst)
        assert real_alive == truth.alive, "interpreter/real-execution mismatch!"

        result = differential_real_gcc(inst, levels=levels)
        total_dead += len(truth.dead)
        for level in levels:
            missed = len(result.outcomes[level].alive & truth.dead)
            total[level] += missed
        regressed = result.missed_at("O3", "O1")
        cross_level_findings += len(regressed & truth.dead)
        print(
            f"seed {seed}: {len(inst.markers)} markers, {len(truth.dead)} dead | "
            + " | ".join(
                f"-{lvl} missed {len(result.outcomes[lvl].alive & truth.dead)}"
                for lvl in levels
            )
        )

    print(f"\n=== real gcc, {n_programs} generated files, {total_dead} dead markers ===")
    for level in levels:
        pct = 100.0 * total[level] / total_dead if total_dead else 0.0
        print(f"  -{level}: missed {total[level]:4d} dead markers ({pct:.2f}%)")
    print(f"  markers kept at -O3 but eliminated at -O1: {cross_level_findings}")


if __name__ == "__main__":
    main()
