#!/usr/bin/env python3
"""Quickstart: find missed optimizations in one program.

Reproduces the paper's illustrative example (Listings 1 & 2): the
GCC-like compiler proves the address comparison dead but misses the
static-global check; the LLVM-like compiler does the reverse.

Run:  python examples/quickstart.py
"""

from repro import api
from repro.compilers import CompilerSpec

LISTING_1 = """
char a;
char b[2];
static int c = 0;

int main() {
  char *d = &a;
  char *e = &b[1];
  if (d == e) {
    int f = 0;
    int g = 0;
    for (; f < 10; f++) {
      g += f;
    }
    b[0] = (char)g;
  }
  if (c) {
    b[0] = 1;
    b[1] = 1;
  }
  c = 0;
  return 0;
}
"""


def main() -> None:
    print("=== The instrumented program (paper Figure 1, step 1) ===")
    print(api.instrumented_source(LISTING_1))

    specs = [CompilerSpec("gcclike", "O3"), CompilerSpec("llvmlike", "O3")]
    report = api.analyze_source(LISTING_1, specs)

    print("=== Ground truth ===")
    print(f"dead markers : {sorted(report.dead_markers)}")
    print(f"alive markers: {sorted(report.alive_markers)}")
    print()
    print("=== Missed optimization opportunities (paper steps 2-4) ===")
    print(report.summary())
    print()
    gcc_missed = report.missed[str(specs[0])]
    llvm_missed = report.missed[str(specs[1])]
    print(
        "Each compiler misses what the other proves dead:\n"
        f"  gcclike keeps  {sorted(gcc_missed)}\n"
        f"  llvmlike keeps {sorted(llvm_missed)}"
    )


if __name__ == "__main__":
    main()
