#!/usr/bin/env python3
"""A miniature bug-hunting campaign (paper §4.2).

Generates random Csmith-like programs, instruments them with
optimization markers, differentially compiles them with both compiler
families at -O3, and reduces the first cross-compiler finding to a
small reportable test case — the full workflow behind the paper's 84
bug reports.

Run:  python examples/hunt_missed_optimizations.py [n_programs]
"""

import sys

from repro.compilers import CompilerSpec
from repro.core.differential import analyze_markers
from repro.core.ground_truth import compute_ground_truth
from repro.core.markers import instrument_program
from repro.core.reduction import missed_marker_predicate, reduce_program
from repro.frontend.typecheck import check_program
from repro.generator import generate_program
from repro.interp import StepLimitExceeded
from repro.lang import print_program

GCC = CompilerSpec("gcclike", "O3")
LLVM = CompilerSpec("llvmlike", "O3")


def main() -> None:
    n_programs = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    findings = []
    for seed in range(n_programs):
        inst = instrument_program(generate_program(seed))
        info = check_program(inst.program)
        try:
            truth = compute_ground_truth(inst, info=info)
        except StepLimitExceeded:
            continue
        analysis = analyze_markers(inst, [GCC, LLVM], info=info, ground_truth=truth)
        for missing, witness in ((GCC, LLVM), (LLVM, GCC)):
            for marker in sorted(analysis.missed_vs(missing, witness)):
                findings.append((seed, marker, missing, witness, inst))
        print(
            f"seed {seed:3d}: {len(inst.markers):4d} markers, "
            f"{len(truth.dead):4d} dead, "
            f"gcc misses {len(analysis.missed_vs(GCC, LLVM))}, "
            f"llvm misses {len(analysis.missed_vs(LLVM, GCC))}"
        )

    print(f"\n{len(findings)} cross-compiler missed opportunities found")
    if not findings:
        return

    seed, marker, missing, witness, inst = findings[0]
    print(f"\nReducing the first finding: seed {seed}, {marker} "
          f"(kept by {missing}, eliminated by {witness}) ...")
    predicate = missed_marker_predicate(marker, keeper=missing, witness=witness)
    result = reduce_program(inst.program, predicate)
    print(
        f"reduced from {result.stmts_before} to {result.stmts_after} "
        f"statements in {result.attempts} attempts\n"
    )
    print("=== Reduced reportable test case ===")
    print(print_program(result.program))


if __name__ == "__main__":
    main()
