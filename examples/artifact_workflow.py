#!/usr/bin/env python3
"""The paper's artifact workflow (appendix A), end to end.

Builds a small corpus (generate → instrument → ground truth →
per-compiler eliminated sets), persists it to disk exactly like the
paper's published artifact, then re-validates the recorded results —
the "a few minutes to validate the existing results" step of the
artifact appendix.

Run:  python examples/artifact_workflow.py [directory]
"""

import sys
import tempfile

from repro.core.artifact import build_corpus, load_corpus, validate_corpus


def main() -> None:
    if len(sys.argv) > 1:
        directory = sys.argv[1]
    else:
        directory = tempfile.mkdtemp(prefix="dce-corpus-")
    print(f"building corpus in {directory} ...")
    records = build_corpus(directory, seeds=list(range(6)))

    manifest, loaded = load_corpus(directory)
    print(f"corpus: {len(loaded)} programs, specs: {', '.join(manifest['specs'])}")
    for record in loaded:
        by_spec = ", ".join(
            f"{spec.split('@')[0]}:{len(elim)}"
            for spec, elim in sorted(record.eliminated_by.items())
        )
        print(
            f"  seed {record.seed}: {len(record.markers)} markers, "
            f"{len(record.dead)} dead | eliminated {by_spec}"
        )

    print("\nvalidating recorded results against a fresh run ...")
    report = validate_corpus(directory)
    status = "OK" if report.ok else "MISMATCH"
    print(f"{status}: {report.checked} programs re-checked, "
          f"{len(report.mismatches)} mismatches")


if __name__ == "__main__":
    main()
