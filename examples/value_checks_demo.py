#!/usr/bin/env python3
"""Value-check instrumentation (paper §4.4, "Future directions").

Instead of waiting for naturally-dead blocks, insert checks
``if (g != C) DCEValueCheckN();`` where ``C`` is the value ``g``
provably holds at that point (recorded from one execution).  Every
check is dead by construction; a compiler that cannot eliminate one
has failed to prove the value — a targeted probe of its value
analyses.

Run:  python examples/value_checks_demo.py
"""

from repro.compilers import CompilerSpec, compile_minic
from repro.core.value_checks import instrument_value_checks
from repro.frontend.typecheck import check_program
from repro.lang import parse_program, print_program

SOURCE = """
static int counter = 0;
static long acc = 1;

int main() {
  counter = 5;
  acc = acc * 2;
  for (int i = 0; i < 4; i++) {
    acc = acc + counter;
  }
  counter = 0;
  return (int)acc;
}
"""


def main() -> None:
    program = parse_program(SOURCE)
    checked = instrument_value_checks(program)
    print("=== Program with value checks inserted ===")
    print(print_program(checked.program))
    print(f"{len(checked.markers)} value checks inserted, all dead by construction\n")

    info = check_program(checked.program)
    print("=== Which compilers prove which values? ===")
    for family in ("gcclike", "llvmlike"):
        for level in ("O1", "O3"):
            spec = CompilerSpec(family, level)
            alive = compile_minic(checked.program, spec, info=info).alive_markers(
                "DCEValueCheck"
            )
            proven = len(checked.markers) - len(alive)
            print(
                f"  {family}-{level}: proved {proven}/{len(checked.markers)} "
                + (f"(missed: {', '.join(sorted(alive))})" if alive else "(all)")
            )


if __name__ == "__main__":
    main()
