import pytest

from repro.frontend.typecheck import CheckError, check_program
from repro.lang import parse_program
from repro.lang.types import INT, LONG, PointerType, UINT


def check(source: str):
    return check_program(parse_program(source))


def test_valid_program_returns_symbol_info():
    info = check("static int g = 1; void mk(void); int main() { mk(); return g; }")
    assert "g" in info.globals
    assert info.functions["mk"].is_defined is False
    assert info.functions["main"].is_defined is True
    assert info.opaque_functions() == {"mk"}


def test_expression_types_are_annotated():
    prog = parse_program("int main() { char c = 1; long l = c + 2; return (int)l; }")
    check_program(prog)
    decl = prog.function("main").body.stmts[1]
    assert decl.init.ty == INT  # char + int literal promotes to int


def test_undeclared_identifier():
    with pytest.raises(CheckError, match="undeclared"):
        check("int main() { return nope; }")


def test_duplicate_global():
    with pytest.raises(CheckError, match="duplicate"):
        check("int a; int a;")


def test_call_arity_mismatch():
    with pytest.raises(CheckError, match="expects"):
        check("static int f(int x) { return x; } int main() { return f(1, 2); }")


def test_call_to_unknown_function():
    with pytest.raises(CheckError, match="undeclared function"):
        check("int main() { ghost(); return 0; }")


def test_void_value_use_rejected():
    with pytest.raises(CheckError, match="void value"):
        check("void mk(void); int main() { return mk(); }")


def test_assign_to_array_rejected():
    with pytest.raises(CheckError, match="array"):
        check("int a[2]; int b[2]; int main() { a = b; return 0; }")


def test_break_outside_loop_rejected():
    with pytest.raises(CheckError):
        check("int main() { break; return 0; }")


def test_pointer_arithmetic_rejected():
    with pytest.raises(CheckError):
        check("char c; int main() { char *p = &c; p = p + 1; return 0; }")


def test_pointer_comparison_against_zero_allowed():
    check("char c; int main() { char *p = &c; if (p == 0) { return 1; } return 0; }")


def test_pointer_compare_lt_rejected():
    with pytest.raises(CheckError):
        check("char c; char d; int main() { return &c < &d; }")


def test_deref_of_non_pointer_rejected():
    with pytest.raises(CheckError):
        check("int main() { int a = 1; return *a; }")


def test_address_of_rvalue_rejected():
    from repro.lang.parser import ParseError

    with pytest.raises(ParseError):
        parse_program("int main() { int *p = &(1 + 2); return 0; }")


def test_return_type_mismatch_void():
    with pytest.raises(CheckError):
        check("void f(void) { return 1; } int main() { return 0; }")


def test_condition_must_be_scalar():
    # Arrays are not scalars; using one as a condition decays... MiniC
    # rejects it outright.
    with pytest.raises(CheckError):
        check("int a[2]; int main() { if (a) { return 1; } return 0; }")


def test_switch_duplicate_case_rejected():
    with pytest.raises(CheckError, match="duplicate switch"):
        check(
            "int main() { switch (1) { case 1: break; case 1: break; } return 0; }"
        )


def test_shadowing_in_nested_blocks_is_allowed():
    check("int main() { int a = 1; { int a = 2; a += 1; } return a; }")


def test_redeclaration_in_same_scope_rejected():
    with pytest.raises(CheckError, match="redeclaration"):
        check("int main() { int a = 1; int a = 2; return a; }")
