from repro.analysis.loops import find_loops, is_invariant, loop_preheader
from repro.frontend.lower import lower_program
from repro.frontend.typecheck import check_program
from repro.ir.dominators import DominatorTree
from repro.lang import parse_program


def main_of(source):
    program = parse_program(source)
    info = check_program(program)
    module = lower_program(program, info)
    from repro.passes import promote_memory_to_registers, simplify_cfg

    main = module.functions["main"]
    simplify_cfg(main)
    promote_memory_to_registers(main)
    return main


def test_single_loop_detected():
    main = main_of(
        """
        int opaque_source(void);
        int main() {
          int n = opaque_source();
          int acc = 0;
          for (int i = 0; i < n; i++) { acc += 1; }
          return acc;
        }
        """
    )
    loops = find_loops(main, DominatorTree(main))
    assert len(loops) == 1
    loop = loops[0]
    assert loop.single_latch is not None
    assert loop_preheader(loop, main) is not None
    assert len(loop.exits()) == 1


def test_nested_loops_inner_first():
    main = main_of(
        """
        int opaque_source(void);
        int main() {
          int n = opaque_source();
          int acc = 0;
          for (int i = 0; i < n; i++) {
            for (int j = 0; j < n; j++) { acc += 1; }
          }
          return acc;
        }
        """
    )
    loops = find_loops(main, DominatorTree(main))
    assert len(loops) == 2
    assert len(loops[0].blocks) < len(loops[1].blocks)
    # The inner loop's blocks are a subset of the outer's.
    assert loops[0].block_ids() <= loops[1].block_ids()


def test_no_loops_in_straight_line_code():
    main = main_of("int main() { int a = 1; return a + 2; }")
    assert find_loops(main, DominatorTree(main)) == []


def test_invariance_query():
    main = main_of(
        """
        int opaque_source(void);
        int main() {
          int p = opaque_source();
          int n = opaque_source();
          int acc = 0;
          for (int i = 0; i < n; i++) {
            if (p) { acc += 1; }
          }
          return acc;
        }
        """
    )
    loop = find_loops(main, DominatorTree(main))[0]
    from repro.ir import instructions as ins

    branch = None
    for block in loop.blocks:
        term = block.terminator
        if isinstance(term, ins.Br) and loop.contains(term.if_true) and loop.contains(term.if_false):
            branch = term
    assert branch is not None
    assert is_invariant(branch.cond, loop)
