from repro.analysis.alias import AliasResult, MemorySSAish, trace_root
from repro.frontend.lower import lower_program
from repro.frontend.typecheck import check_program
from repro.ir import instructions as ins
from repro.lang import parse_program


def build(source):
    program = parse_program(source)
    info = check_program(program)
    return lower_program(program, info)


def find(module, kind, func="main"):
    return [
        i for b in module.functions[func].blocks for i in b.instrs
        if isinstance(i, kind)
    ]


def test_trace_root_through_gep_chain():
    module = build(
        """
        static int xs[4];
        int main() { xs[2] = 1; return xs[2]; }
        """
    )
    store = find(module, ins.Store)[0]
    root = trace_root(store.address)
    assert root.kind == "global" and root.key == "xs" and root.offset == 2


def test_distinct_globals_never_alias():
    module = build(
        """
        static int a;
        static int b;
        int main() { a = 1; b = 2; return a; }
        """
    )
    memory = MemorySSAish(module)
    stores = find(module, ins.Store)
    assert memory.alias(stores[0].address, stores[1].address) is AliasResult.NO


def test_same_cell_must_alias_modulo_length():
    module = build(
        """
        static int xs[3];
        int main() { xs[1] = 1; xs[4] = 2; return xs[1]; }
        """
    )
    memory = MemorySSAish(module)
    stores = find(module, ins.Store)
    # index 4 wraps to 1 in MiniC's model.
    assert memory.alias(stores[0].address, stores[1].address) is AliasResult.MUST


def test_static_global_not_escaped_by_direct_use():
    module = build("static int g; int main() { g = 1; return g; }")
    memory = MemorySSAish(module)
    assert not memory.global_escaped("g")


def test_external_global_is_escaped():
    module = build("int g; int main() { g = 1; return g; }")
    memory = MemorySSAish(module)
    assert memory.global_escaped("g")


def test_passing_address_to_call_escapes():
    module = build(
        """
        void sink(int *p);
        static int g;
        int main() { sink(&g); return g; }
        """
    )
    memory = MemorySSAish(module)
    assert memory.global_escaped("g")


def test_pointer_comparison_does_not_escape():
    module = build(
        """
        static char g;
        static char h;
        int main() {
          char *p = &g;
          return p == &h;
        }
        """
    )
    memory = MemorySSAish(module)
    # Comparing addresses publishes nothing.
    assert not memory.global_escaped("h")


def test_storing_address_into_memory_escapes():
    module = build(
        """
        static int g;
        int *holder;
        int main() { holder = &g; return 0; }
        """
    )
    memory = MemorySSAish(module)
    assert memory.global_escaped("g")


def test_opaque_call_cannot_touch_non_escaped():
    module = build(
        """
        void opaque(void);
        static int g;
        int main() { g = 1; opaque(); return g; }
        """
    )
    memory = MemorySSAish(module)
    call = find(module, ins.Call)[0]
    store = find(module, ins.Store)[0]
    assert not memory.call_may_access(call, store.address)


def test_precision_budget_forces_conservatism():
    module = build("static int g; int main() { g = 1; return g; }")
    memory = MemorySSAish(module, max_objects=0)
    assert memory.imprecise
    assert memory.global_escaped("g")
