"""The bounded busy-retry helper shared by every SQLite writer."""

from __future__ import annotations

import sqlite3

import pytest

from repro.store.retry import (
    DEFAULT_ATTEMPTS,
    is_locked_error,
    retry_locked,
)


def _locked_error() -> sqlite3.OperationalError:
    return sqlite3.OperationalError("database is locked")


class TestIsLockedError:
    def test_locked_message_matches(self):
        assert is_locked_error(_locked_error())

    def test_busy_message_matches(self):
        assert is_locked_error(sqlite3.OperationalError("database is busy"))

    def test_other_operational_errors_do_not(self):
        assert not is_locked_error(
            sqlite3.OperationalError("no such table: jobs")
        )

    def test_non_sqlite_errors_do_not(self):
        assert not is_locked_error(RuntimeError("database is locked"))


class TestRetryLocked:
    def test_success_passes_through(self):
        assert retry_locked(lambda: 42) == 42

    def test_retries_until_unlock(self):
        calls = []
        sleeps = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise _locked_error()
            return "ok"

        assert retry_locked(flaky, sleep=sleeps.append) == "ok"
        assert len(calls) == 3
        # exponential: base * 2^0, base * 2^1
        assert sleeps == [0.05, 0.1]

    def test_gives_up_after_attempts(self):
        calls = []

        def always_locked():
            calls.append(1)
            raise _locked_error()

        with pytest.raises(sqlite3.OperationalError, match="locked"):
            retry_locked(always_locked, sleep=lambda _: None)
        assert len(calls) == DEFAULT_ATTEMPTS

    def test_non_lock_errors_raise_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise sqlite3.OperationalError("no such table")

        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            retry_locked(broken, sleep=lambda _: None)
        assert len(calls) == 1

    def test_on_retry_sees_each_attempt(self):
        seen = []
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise _locked_error()
            return None

        retry_locked(
            flaky, sleep=lambda _: None, on_retry=seen.append
        )
        assert seen == [0, 1]

    def test_attempts_below_one_rejected(self):
        with pytest.raises(ValueError):
            retry_locked(lambda: 1, attempts=0)


def test_real_contention_is_absorbed(tmp_path):
    """Two connections to one file: a held write lock really produces
    'database is locked', and the helper rides it out."""
    path = str(tmp_path / "contended.sqlite")
    writer = sqlite3.connect(path)
    writer.execute("CREATE TABLE t (x)")
    writer.commit()
    other = sqlite3.connect(path, timeout=0)
    writer.execute("BEGIN IMMEDIATE")
    writer.execute("INSERT INTO t VALUES (1)")

    released = []

    def release_then_sleep(_delay):
        if not released:
            writer.commit()
            released.append(True)

    def insert():
        with other:
            other.execute("INSERT INTO t VALUES (2)")

    retry_locked(insert, sleep=release_then_sleep)
    assert other.execute("SELECT COUNT(*) FROM t").fetchone()[0] == 2
    writer.close()
    other.close()
