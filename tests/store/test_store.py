"""Unit tests for the persistent content-addressed artifact store.

Covers the storage layer in isolation: program round-trips, the three
memo tables, seed-analysis persistence, session/delta semantics,
cacheability policy, stats/gc maintenance, and — the part campaigns
rely on — the degrade-to-cold failure policy: a corrupt or unwritable
store must turn itself off, never raise into the analysis loop.
"""

import sqlite3

import pytest

from repro.core.resilience import CrashEnvelope, SeedReport
from repro.observability import MetricsRegistry
from repro.store import (
    ArtifactStore,
    StoreDelta,
    open_store,
    program_text_key,
    seed_scope_fingerprint,
)
from repro.store.artifact import report_is_cacheable


@pytest.fixture
def store(tmp_path):
    with ArtifactStore(str(tmp_path / "store.sqlite")) as st:
        yield st


SCOPE = "a" * 16


def _ok_report(seed: int) -> SeedReport:
    # outcome only needs to be picklable for the storage layer
    return SeedReport(seed=seed, outcome=("outcome", seed))


# -- content-addressed programs -------------------------------------------


def test_program_round_trip(store):
    text = "int main(void) { return 42; }\n"
    key = program_text_key(text)
    delta = StoreDelta(programs={key: text})
    store.apply_delta(delta)
    store.commit()
    assert store.get_program(key) == text
    assert store.get_program("0" * 64) is None
    assert [h for h, _ in store.program_hashes()] == [key]


def test_program_key_is_sha256_of_text():
    import hashlib

    text = "void f(void) {}\n"
    assert program_text_key(text) == hashlib.sha256(text.encode()).hexdigest()


# -- memo tables -----------------------------------------------------------


def test_compile_memo_round_trip(store):
    delta = StoreDelta(
        compile_memo={("modfp", "cfgfp"): ("DCEMarker1", "DCEMarker0")}
    )
    store.apply_delta(delta)
    store.commit()
    # the raw read returns a sorted tuple; sessions frozenset it
    assert store.get_compile("modfp", "cfgfp") == (
        "DCEMarker0", "DCEMarker1",
    )
    assert store.get_compile("modfp", "other") is None
    assert store.get_compile("other", "cfgfp") is None


def test_truth_memo_round_trip(store):
    record = {"status": "ok", "exit_code": 0, "steps": 7,
              "marker_hits": {"DCEMarker0": 1}}
    store.apply_delta(StoreDelta(truth_memo={("h" * 64, 100): record}))
    store.commit()
    assert store.get_truth("h" * 64, 100) == record
    # the step limit is part of the key: a different budget re-runs
    assert store.get_truth("h" * 64, 200) is None


def test_oracle_entries_round_trip(store):
    store.record_oracle_entries({"key1": True, "key2": False})
    assert store.oracle_entries() == {"key1": True, "key2": False}
    # INSERT OR IGNORE: first verdict wins, re-recording is a no-op
    store.record_oracle_entries({"key1": False, "key3": True})
    assert store.oracle_entries() == {
        "key1": True, "key2": False, "key3": True,
    }


# -- seed analyses ---------------------------------------------------------


def test_seed_report_round_trip(store):
    report = _ok_report(5)
    store.record_seed_report(SCOPE, report)
    store.commit()
    loaded = store.load_seed_reports(SCOPE, 0, 10)
    assert set(loaded) == {5}
    assert loaded[5].seed == 5
    assert loaded[5].outcome == ("outcome", 5)
    # range and scope are both part of the key
    assert store.load_seed_reports(SCOPE, 6, 10) == {}
    assert store.load_seed_reports("b" * 16, 0, 10) == {}


def test_uncacheable_reports_are_not_recorded(store):
    crash = CrashEnvelope(seed=1, phase="compile", exc_type="ValueError",
                          message="boom", bucket="b")
    for report in (
        SeedReport(seed=1, crash=crash),
        SeedReport(seed=2, budget_exceeded=True),
        SeedReport(seed=3, outcome=("o", 3), degraded=True),
        SeedReport(seed=4),  # neither outcome nor skipped
    ):
        store.record_seed_report(SCOPE, report)
    store.commit()
    assert store.load_seed_reports(SCOPE, 0, 10) == {}


def test_report_is_cacheable_policy():
    crash = CrashEnvelope(seed=1, phase="p", exc_type="E",
                          message="m", bucket="b")
    assert report_is_cacheable(_ok_report(1))
    assert report_is_cacheable(SeedReport(seed=1, skipped=True))
    assert not report_is_cacheable(SeedReport(seed=1, crash=crash))
    assert not report_is_cacheable(SeedReport(seed=1, budget_exceeded=True))
    assert not report_is_cacheable(
        SeedReport(seed=1, outcome=("o", 1), degraded=True)
    )
    assert not report_is_cacheable(SeedReport(seed=1))


# -- sessions and deltas ---------------------------------------------------


def test_session_prefers_delta_then_store(store):
    store.apply_delta(
        StoreDelta(compile_memo={("m", "c"): ("DCEMarker0",)})
    )
    store.commit()
    metrics = MetricsRegistry()
    session = store.session(metrics)
    # store-backed lookup counts a hit
    assert session.lookup_compile("m", "c") == frozenset({"DCEMarker0"})
    assert metrics.counter("store.compile_hits").value == 1
    # a recorded entry resolves from the delta before touching disk
    session.record_compile("m2", "c2", frozenset({"DCEMarker1"}))
    assert session.lookup_compile("m2", "c2") == frozenset({"DCEMarker1"})
    assert session.delta.compile_memo[("m2", "c2")] == ("DCEMarker1",)
    # misses return None and count nothing
    assert session.lookup_compile("nope", "nope") is None


def test_session_truth_records_program_text(store):
    session = store.session()
    text = "int main(void) { return 0; }\n"
    key = program_text_key(text)
    session.record_truth(key, 50, {"status": "ok"}, text)
    assert session.lookup_truth(key, 50) == {"status": "ok"}
    store.apply_delta(session.delta)
    store.commit()
    assert store.get_truth(key, 50) == {"status": "ok"}
    assert store.get_program(key) == text


def test_delta_bool_and_apply_is_idempotent(store):
    assert not StoreDelta()
    delta = StoreDelta(compile_memo={("m", "c"): ()})
    assert delta
    store.apply_delta(delta)
    store.apply_delta(delta)  # INSERT OR IGNORE
    store.commit()
    assert store.get_compile("m", "c") == ()


# -- failure policy --------------------------------------------------------


def test_open_store_on_garbage_returns_none(tmp_path):
    path = tmp_path / "garbage.sqlite"
    path.write_bytes(b"this is not a sqlite database at all")
    assert open_store(str(path)) is None


def test_corrupt_store_degrades_instead_of_raising(tmp_path):
    path = str(tmp_path / "store.sqlite")
    with ArtifactStore(path) as st:
        st.record_oracle_entries({"k": True})
    # valid sqlite file, wrong schema: opens, then every op degrades
    with open(path, "wb") as fh:
        fh.write(b"\0" * 64)
    store = open_store(path)
    assert store is None
    # a store whose tables vanish mid-run also degrades quietly
    path2 = str(tmp_path / "store2.sqlite")
    store = ArtifactStore(path2)
    store._con.executescript("DROP TABLE compile_memo; DROP TABLE programs;")
    assert store.get_compile("m", "c") is None
    assert store.disabled
    assert store.errors >= 1
    # everything after the trip is a silent no-op / miss
    store.apply_delta(StoreDelta(compile_memo={("a", "b"): ()}))
    assert store.get_compile("a", "b") is None
    assert store.oracle_entries() == {}
    assert store.load_seed_reports(SCOPE, 0, 10) == {}
    store.close()


def test_store_error_counter(tmp_path):
    metrics = MetricsRegistry()
    store = ArtifactStore(
        str(tmp_path / "s.sqlite"), metrics=metrics
    )
    store._con.executescript("DROP TABLE compile_memo;")
    assert store.get_compile("m", "c") is None
    assert metrics.counter("store.errors").value >= 1
    store.close()


def test_unreadable_seed_report_is_a_miss(store):
    store.record_seed_report(SCOPE, _ok_report(7))
    store.commit()
    store._con.execute(
        "UPDATE seed_analyses SET report = ?", (b"not a pickle",)
    )
    store._con.commit()
    assert store.load_seed_reports(SCOPE, 0, 10) == {}


def test_read_only_store_rejects_writes(tmp_path):
    path = str(tmp_path / "store.sqlite")
    with ArtifactStore(path) as st:
        st.record_oracle_entries({"k": True})
    ro = ArtifactStore(path, read_only=True)
    assert ro.read_only
    assert ro.oracle_entries() == {"k": True}
    # writes are no-ops, not errors
    ro.record_oracle_entries({"k2": True})
    ro.apply_delta(StoreDelta(compile_memo={("m", "c"): ()}))
    ro.record_seed_report(SCOPE, _ok_report(1))
    ro.commit()
    assert ro.oracle_entries() == {"k": True}
    assert not ro.disabled
    ro.close()


def test_open_store_read_only_missing_file(tmp_path):
    assert open_store(str(tmp_path / "absent.sqlite"), read_only=True) is None


# -- maintenance -----------------------------------------------------------


def test_stats_and_gc(store):
    text = "int main(void) { return 1; }\n"
    key = program_text_key(text)
    session = store.session()
    session.record_truth(key, 10, {"status": "ok"}, text)
    orphan = "void orphan(void) {}\n"
    session.delta.programs[program_text_key(orphan)] = orphan
    store.apply_delta(session.delta)
    store.record_oracle_entries({"k": True})
    store.record_seed_report(SCOPE, _ok_report(3))
    store.commit()

    stats = store.stats()
    assert stats["programs"] == 2
    assert stats["truth_memo"] == 1
    assert stats["oracle_memo"] == 1
    assert stats["seed_analyses"] == 1
    assert stats["seed_scopes"] == 1
    # tiny fixtures can compress larger than raw; both must be tracked
    assert stats["program_bytes"] > 0
    assert stats["compressed_bytes"] > 0

    outcome = store.gc()
    assert outcome["removed"] == 1  # the orphan; the truth-referenced stays
    assert store.get_program(key) == text
    assert store.stats()["programs"] == 1


def test_scope_fingerprint_stability():
    from repro.generator import GeneratorConfig

    base = seed_scope_fingerprint(None, None)
    assert base == seed_scope_fingerprint(None, None)
    assert len(base) == 16
    # version and generator shape both split the scope
    assert seed_scope_fingerprint(3, None) != base
    assert seed_scope_fingerprint(None, GeneratorConfig(max_depth=2)) != base
    # a config equal to the default still fingerprints like the default
    assert seed_scope_fingerprint(None, GeneratorConfig()) == (
        seed_scope_fingerprint(None, GeneratorConfig())
    )


def test_schema_version_recorded(store):
    con = sqlite3.connect(store.path)
    row = con.execute(
        "SELECT value FROM meta WHERE key = 'schema_version'"
    ).fetchone()
    con.close()
    assert row is not None
