"""Run reports and the cross-run regression comparator."""

import pytest

from repro.observability import (
    CompareThresholds,
    RunLedger,
    compare_runs,
    comparison_text,
    run_report_html,
    run_report_text,
)
from repro.observability.ledger import RunRow

from .conftest import SMALL_CONFIG, SMALL_PROGRAMS, SMALL_SEED_BASE


def mk_run(run_id=1, **over):
    """A synthetic RunRow with healthy defaults."""
    base = dict(
        run_id=run_id, started_at=1_700_000_000.0, wall_time=30.0,
        config_fingerprint="cafe" * 4, programs=10, seed_base=0,
        jobs=1, incremental=True, compare_level="O3", version=None,
        completed=10, skipped=0, crashed=0, budget_exceeded=0,
        degraded=0, total_markers=100, total_dead=90, total_alive=10,
        findings=5, soundness_violations=0,
        metrics={
            "compile.pass_execs_saved": {"type": "counter", "value": 600},
            "campaign.compilations": {"type": "counter", "value": 90},
        },
    )
    base.update(over)
    return RunRow(**base)


def test_compare_flags_pass_execs_saved_drop():
    baseline = mk_run(1)
    candidate = mk_run(2, metrics={
        "compile.pass_execs_saved": {"type": "counter", "value": 300},
        "campaign.compilations": {"type": "counter", "value": 90},
    })
    comparison = compare_runs(baseline, candidate)
    assert not comparison.ok
    [regression] = comparison.regressions
    assert regression.name == "pass_execs_saved/program"
    assert regression.change == pytest.approx(-0.5)


def test_compare_treats_missing_counter_as_total_drop():
    """A --no-incremental candidate never creates the counter: that is
    a 100% reuse drop, not a silent pass."""
    candidate = mk_run(2, incremental=False, metrics={
        "campaign.compilations": {"type": "counter", "value": 90},
    })
    comparison = compare_runs(mk_run(1), candidate)
    [regression] = comparison.regressions
    assert regression.name == "pass_execs_saved/program"
    assert regression.candidate == 0.0
    assert regression.change == pytest.approx(-1.0)


def test_compare_flags_compilation_increase_and_yield_drop():
    candidate = mk_run(2, findings=2, metrics={
        "compile.pass_execs_saved": {"type": "counter", "value": 600},
        "campaign.compilations": {"type": "counter", "value": 150},
    })
    comparison = compare_runs(mk_run(1), candidate)
    names = {d.name for d in comparison.regressions}
    assert names == {"compilations/program", "findings/program"}


def test_compare_thresholds_are_configurable():
    candidate = mk_run(2, metrics={
        "compile.pass_execs_saved": {"type": "counter", "value": 550},
        "campaign.compilations": {"type": "counter", "value": 90},
    })
    # an 8.3% drop passes the default 10% gate but fails a 5% one
    assert compare_runs(mk_run(1), candidate).ok
    strict = CompareThresholds(pass_execs_saved_drop=0.05)
    assert not compare_runs(mk_run(1), candidate, strict).ok


def test_compare_identical_runs_is_clean():
    comparison = compare_runs(mk_run(1), mk_run(2))
    assert comparison.ok
    text = comparison_text(comparison)
    assert "no regressions" in text
    assert "REGRESSION" not in text


def test_comparison_text_names_regressions():
    candidate = mk_run(2, metrics={
        "campaign.compilations": {"type": "counter", "value": 90},
    })
    text = comparison_text(compare_runs(mk_run(1), candidate))
    assert "REGRESSION" in text
    assert "pass_execs_saved/program" in text
    assert "-100.0%" in text


@pytest.fixture(scope="module")
def recorded(small_campaign):
    """(RunRow, findings) for the shared small campaign."""
    with RunLedger(":memory:") as ledger:
        result, metrics = small_campaign
        run_id = ledger.record_run(
            result, n_programs=SMALL_PROGRAMS, seed_base=SMALL_SEED_BASE,
            generator_config=SMALL_CONFIG, metrics=metrics, wall_time=3.0,
        )
        return ledger.run(run_id), ledger.findings(run_id)


def test_run_report_text_sections(recorded):
    run, findings = recorded
    text = run_report_text(run, findings)
    assert f"run {run.run_id}" in text
    assert "== Outcome ==" in text
    assert "== Marker yield by O-level ==" in text
    assert "gcclike-O3" in text and "llvmlike-O0" in text
    assert "== Yield by program shape ==" in text
    assert "== Marker kills by pass ==" in text
    assert "== Compile latency (ms) ==" in text
    assert "p50" in text and "p99" in text
    assert "== Findings (deduplicated) ==" in text
    assert findings[0].fingerprint in text


def test_run_report_html_is_self_contained(recorded):
    run, findings = recorded
    document = run_report_html(run, findings)
    assert document.startswith("<!DOCTYPE html>")
    assert "</html>" in document
    # no external fetches: archivable as a single CI artifact
    assert "http://" not in document and "https://" not in document
    assert "<script" not in document and "src=" not in document
    assert "Marker kills by pass" in document
    assert findings[0].fingerprint in document


def test_report_store_section_present_only_for_store_runs():
    plain = run_report_text(mk_run(1), [])
    assert "Persistent store" not in plain

    warm = mk_run(2, store_seeds_skipped=10, store_compile_hits=30,
                  store_truth_hits=4, store_oracle_hits=7,
                  metrics={
                      "campaign.compilations": {"type": "counter",
                                                "value": 60},
                      "store.errors": {"type": "counter", "value": 0},
                  })
    text = run_report_text(warm, [])
    assert "Persistent store" in text
    # 30 store hits out of 30 + 60 cold compiles
    assert "33.3%" in text
    html = run_report_html(warm, [])
    assert "Persistent store" in html

    # store on but stone cold: section shows zeros, hit rate defined
    cold = mk_run(3, store_seeds_skipped=0, store_compile_hits=0,
                  store_truth_hits=0, store_oracle_hits=0)
    text = run_report_text(cold, [])
    assert "Persistent store" in text
