"""Event bus, per-seed event records, and the JSONL sink/source."""

import json
from types import SimpleNamespace

import pytest

from repro.observability import (
    Event,
    EventBus,
    JsonlEventWriter,
    read_events_jsonl,
    strip_timestamps,
)
from repro.observability.events import (
    BUDGET_EXCEEDED,
    CRASH,
    SEED_DONE,
    SEED_START,
    report_status,
    seed_event_records,
    seed_outcome_records,
)


def test_bus_assigns_gapfree_increasing_seq():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    bus.emit("campaign_start", programs=3)
    bus.emit_all([("seed_start", {"seed": 1}), ("seed_done", {"seed": 1})])
    bus.emit("campaign_end")
    assert [e.seq for e in seen] == [0, 1, 2, 3]
    assert [e.type for e in seen] == [
        "campaign_start", "seed_start", "seed_done", "campaign_end",
    ]
    assert seen[0].attrs == {"programs": 3}
    assert all(e.ts > 0 for e in seen)


def test_bus_fans_out_and_unsubscribes():
    bus = EventBus()
    a, b = [], []
    bus.subscribe(a.append)
    sub_b = bus.subscribe(b.append)
    bus.emit("seed_start", seed=7)
    bus.unsubscribe(sub_b)
    bus.emit("seed_done", seed=7)
    assert len(a) == 2 and len(b) == 1


def test_bus_propagates_subscriber_errors():
    bus = EventBus()

    def broken(event):
        raise RuntimeError("sink died")

    bus.subscribe(broken)
    with pytest.raises(RuntimeError, match="sink died"):
        bus.emit("campaign_start")


def _report(**over):
    base = dict(
        seed=5, outcome=None, crash=None,
        budget_exceeded=False, degraded=False,
    )
    base.update(over)
    return SimpleNamespace(**base)


def test_seed_outcome_records_budget_and_crash():
    assert seed_outcome_records(_report(budget_exceeded=True)) == [
        (BUDGET_EXCEEDED, {"seed": 5})
    ]
    crash = SimpleNamespace(
        phase="compile", exc_type="ValueError", bucket="ValueError@x.py:3"
    )
    assert seed_outcome_records(_report(crash=crash)) == [
        (CRASH, {
            "seed": 5, "phase": "compile", "exc_type": "ValueError",
            "bucket": "ValueError@x.py:3",
        })
    ]
    assert report_status(_report(budget_exceeded=True)) == "budget"
    assert report_status(_report(crash=crash)) == "crash"
    assert report_status(_report()) == "skipped"


def test_seed_outcome_records_ok_and_degraded():
    outcome = SimpleNamespace(marker_count=12, dead_count=9)
    records = seed_outcome_records(_report(outcome=outcome))
    assert records == [
        (SEED_DONE, {"seed": 5, "status": "ok", "markers": 12, "dead": 9})
    ]
    degraded = seed_outcome_records(_report(outcome=outcome, degraded=True))
    assert degraded[0][1]["degraded"] is True
    assert seed_event_records(_report(outcome=outcome))[0] == (
        SEED_START, {"seed": 5}
    )
    assert report_status(_report(outcome=outcome)) == "ok"


def test_jsonl_writer_reader_round_trip(tmp_path):
    path = str(tmp_path / "events.jsonl")
    bus = EventBus()
    with JsonlEventWriter(path) as writer:
        bus.subscribe(writer)
        bus.emit("campaign_start", programs=1, seed_base=0)
        bus.emit("seed_done", seed=0, status="ok", markers=3, dead=2)
        bus.emit("campaign_end", completed=1)
        assert writer.written == 3
    events = read_events_jsonl(path)
    assert [e.type for e in events] == [
        "campaign_start", "seed_done", "campaign_end",
    ]
    assert events[1].attrs == {
        "seed": 0, "status": "ok", "markers": 3, "dead": 2,
    }
    # key-sorted serialization: equal events give equal bytes
    line = open(path).readline()
    assert line == json.dumps(json.loads(line), sort_keys=True) + "\n"


def test_jsonl_reader_tolerates_torn_tail(tmp_path):
    path = tmp_path / "events.jsonl"
    good = [
        Event(0, 1.0, "campaign_start", {"programs": 2}),
        Event(1, 2.0, "seed_done", {"seed": 0}),
    ]
    lines = [json.dumps(e.to_dict(), sort_keys=True) for e in good]
    # a campaign killed mid-write leaves a truncated trailing line
    torn = json.dumps(
        Event(2, 3.0, "campaign_end", {}).to_dict(), sort_keys=True
    )[:25]
    path.write_text("\n".join(lines) + "\n\n" + torn)
    events = read_events_jsonl(str(path))
    assert [e.seq for e in events] == [0, 1]
    assert events[0].attrs == {"programs": 2}


def test_strip_timestamps_drops_only_ts():
    events = [Event(0, 123.456, "seed_start", {"seed": 1})]
    stripped = strip_timestamps(events)
    assert stripped == [{"seq": 0, "type": "seed_start", "attrs": {"seed": 1}}]
    assert events[0].ts == 123.456  # original untouched
