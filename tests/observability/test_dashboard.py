"""Live dashboard rendering: TTY single-line mode and the plain
fallback."""

import io
import itertools

from repro.observability import EventBus, LiveDashboard, ProgressPrinter


def clock(step=0.5):
    counter = itertools.count()
    return lambda: next(counter) * step


def drive(bus):
    bus.emit("campaign_start", programs=4, seed_base=10)
    bus.emit("seed_start", seed=10)
    bus.emit("seed_done", seed=10, status="ok", markers=20, dead=15)
    bus.emit("finding", seed=10, kind="cross-compiler")
    bus.emit("seed_start", seed=11)
    bus.emit("crash", seed=11, phase="compile", exc_type="ValueError",
             bucket="ValueError@passes/gvn.py:10")
    bus.emit("seed_start", seed=12)
    bus.emit("budget_exceeded", seed=12)
    bus.emit("checkpoint_replayed", seed=13, status="ok")
    bus.emit("campaign_end", completed=2, findings=1, crashed=1)


def test_tty_mode_renders_single_updating_line():
    bus = EventBus()
    stream = io.StringIO()
    dashboard = LiveDashboard(stream, force_tty=True, now=clock())
    dashboard.attach(bus)
    drive(bus)
    output = stream.getvalue()
    # in-place updates: carriage return + erase, one real newline at end
    assert "\r\x1b[K" in output
    assert output.count("\n") == 2  # line close + final summary
    final = output.rsplit("\r\x1b[K", 1)[-1]
    assert final.startswith("[4/4]")
    assert "findings" in final and "crashes" in final
    assert "over budget" in final
    assert "ETA" in final
    assert "campaign done: 2 seeds, 1 findings, 1 crashes" in output


def test_status_line_reports_rate_and_eta():
    dashboard = LiveDashboard(io.StringIO(), force_tty=True, now=clock(1.0))
    bus = EventBus()
    dashboard.attach(bus)
    bus.emit("campaign_start", programs=10, seed_base=0)  # t=0
    bus.emit("seed_done", seed=0, status="ok", markers=1, dead=1)  # t=1
    bus.emit("seed_done", seed=1, status="ok", markers=1, dead=1)  # t=2
    line = dashboard.status_line()  # t=3: 2 done in 3s
    assert line.startswith("[ 2/10]")
    assert "0.67 seeds/s" in line
    assert "ETA 12s" in line


def test_non_tty_falls_back_to_plain_lines():
    bus = EventBus()
    stream = io.StringIO()
    LiveDashboard(stream, force_tty=False).attach(bus)
    drive(bus)
    lines = stream.getvalue().splitlines()
    assert lines[0] == "campaign: 4 programs from seed 10"
    assert "[1/4] seed 10: ok (20 markers, 15 dead)" in lines
    assert "[2/4] seed 11: crash [ValueError@passes/gvn.py:10]" in lines
    assert "[3/4] seed 12: over budget" in lines
    assert "[4/4] seed 13: ok" in lines
    assert "\r" not in stream.getvalue()


def test_non_tty_detection_defaults_off_for_stringio():
    stream = io.StringIO()
    dashboard = LiveDashboard(stream)
    bus = EventBus()
    dashboard.attach(bus)
    bus.emit("campaign_start", programs=1, seed_base=0)
    assert "\r" not in stream.getvalue()


def test_progress_printer_mirrors_classic_lines():
    bus = EventBus()
    stream = io.StringIO()
    printer = ProgressPrinter(stream).attach(bus)
    bus.emit("campaign_start", programs=2, seed_base=0)
    bus.emit("seed_done", seed=0, status="ok", markers=5, dead=4)
    printer.detach(bus)
    bus.emit("seed_done", seed=1, status="ok", markers=5, dead=4)
    output = stream.getvalue()
    assert "[1/2] seed 0: ok (5 markers, 4 dead)" in output
    assert "seed 1" not in output  # detached


def test_status_line_surfaces_store_metrics():
    from repro.observability import MetricsRegistry

    metrics = MetricsRegistry()
    bus = EventBus()
    dashboard = LiveDashboard(
        io.StringIO(), force_tty=True, now=clock(), metrics=metrics
    )
    dashboard.attach(bus)
    bus.emit("campaign_start", programs=4, seed_base=0)
    # store activity is visible only through counters — warm replays
    # keep the event stream identical to a cold run by design
    assert "store" not in dashboard.status_line()
    metrics.counter("store.seeds_skipped").inc(3)
    metrics.counter("store.compile_hits").inc(5)
    metrics.counter("store.oracle_hits").inc(2)
    line = dashboard.status_line()
    assert "store 3 replayed+7 hits" in line


def test_status_line_without_metrics_has_no_store_blurb():
    dashboard = LiveDashboard(io.StringIO(), force_tty=True, now=clock())
    bus = EventBus()
    dashboard.attach(bus)
    bus.emit("campaign_start", programs=2, seed_base=0)
    assert "store" not in dashboard.status_line()
