import pytest

from repro.backend.asm import alive_markers, emit_module
from repro.compilers import CompilerSpec, compile_minic
from repro.compilers.pipeline import (
    PassPipelineError,
    module_markers,
    module_size,
    run_pipeline,
    validate_passes,
)
from repro.compilers.versions import config_at
from repro.core.markers import instrument_program
from repro.frontend.lower import lower_program
from repro.frontend.typecheck import check_program
from repro.lang import parse_program
from repro.observability import (
    PASS_SPAN,
    PIPELINE_SPAN,
    Tracer,
    marker_attribution,
    pass_profiles,
    use_tracer,
)

SOURCE = """
int live = 0;
int main() {
  int i = 0;
  int x = 0;
  if (x) { x = 1; }
  for (i = 0; i < 4; i = i + 1) { live = live + i; }
  if (x > 2) { live = 9; }
  return live;
}
"""


def _instrumented():
    inst = instrument_program(parse_program(SOURCE))
    info = check_program(inst.program)
    return inst, info


def test_one_span_per_configured_pass():
    inst, info = _instrumented()
    module = lower_program(inst.program, info)
    config = config_at("gcclike", "O2")
    tracer = Tracer()
    changed = run_pipeline(module, config, tracer=tracer)

    pass_spans = tracer.find(PASS_SPAN)
    assert [s.attrs["pass"] for s in pass_spans] == list(config.passes)
    assert [s.attrs["index"] for s in pass_spans] == list(range(len(config.passes)))
    pipeline_spans = tracer.find(PIPELINE_SPAN)
    assert len(pipeline_spans) == 1
    assert all(s.parent_id == pipeline_spans[0].span_id for s in pass_spans)
    assert pipeline_spans[0].attrs["changed_passes"] == len(changed)
    # changed flags in the spans agree with the returned list
    changed_in_spans = [s.attrs["pass"] for s in pass_spans if s.attrs["changed"]]
    assert changed_in_spans == changed


def test_span_size_deltas_chain_and_match_module():
    inst, info = _instrumented()
    module = lower_program(inst.program, info)
    before = module_size(module)
    tracer = Tracer()
    run_pipeline(module, config_at("gcclike", "O2"), tracer=tracer)
    profiles = pass_profiles(tracer)
    assert (profiles[0].instrs_before, profiles[0].blocks_before) == before
    for prev, cur in zip(profiles, profiles[1:]):
        assert cur.instrs_before == prev.instrs_after
        assert cur.blocks_before == prev.blocks_after
    assert (profiles[-1].instrs_after, profiles[-1].blocks_after) == module_size(
        module
    )


def test_marker_attribution_matches_asm_oracle():
    inst, info = _instrumented()
    module = lower_program(inst.program, info)
    in_ir_before = module_markers(module)
    tracer = Tracer()
    run_pipeline(module, config_at("gcclike", "O2"), tracer=tracer)

    killed_by = marker_attribution(tracer)
    eliminated_per_asm = in_ir_before - (
        alive_markers(emit_module(module), "DCEMarker") & in_ir_before
    )
    assert frozenset(killed_by) == eliminated_per_asm
    assert eliminated_per_asm  # the dead `if (x)` / `if (x > 2)` bodies
    # every killer is a real configured pass
    assert set(killed_by.values()) <= set(config_at("gcclike", "O2").passes)


def test_compile_minic_nests_pipeline_under_compile_span():
    inst, _ = _instrumented()
    tracer = Tracer()
    with use_tracer(tracer):
        compile_minic(inst.program, CompilerSpec("llvmlike", "O2"))
    compile_spans = tracer.find("compile")
    assert len(compile_spans) == 1
    pipeline_spans = tracer.find(PIPELINE_SPAN)
    assert pipeline_spans[0].parent_id == compile_spans[0].span_id
    assert compile_spans[0].attrs["spec"] == str(CompilerSpec("llvmlike", "O2"))


def test_disabled_tracer_records_nothing_and_result_is_identical():
    inst, info = _instrumented()
    module_a = lower_program(inst.program, info)
    module_b = lower_program(inst.program, info)
    config = config_at("gcclike", "O2")
    disabled = Tracer(enabled=False)
    changed_a = run_pipeline(module_a, config, tracer=disabled)
    changed_b = run_pipeline(module_b, config, tracer=Tracer())
    assert disabled.spans == []
    assert changed_a == changed_b
    assert emit_module(module_a) == emit_module(module_b)


def test_unknown_pass_raises_pipeline_error_listing_valid_names():
    inst, info = _instrumented()
    module = lower_program(inst.program, info)
    config = config_at("gcclike", "O2").with_(passes=("sccp", "scpc", "dec"))
    with pytest.raises(PassPipelineError) as exc:
        run_pipeline(module, config)
    message = str(exc.value)
    assert "'scpc'" in message and "'dec'" in message
    assert "sccp" in message and "adce" in message  # valid names listed
    # validation happens before any pass runs
    assert module_size(module) == module_size(lower_program(inst.program, info))
    with pytest.raises(PassPipelineError):
        validate_passes(["nope"])
    validate_passes(["sccp", "adce"])  # no error


def test_ground_truth_and_interp_spans_nest():
    inst, info = _instrumented()
    from repro.core.ground_truth import compute_ground_truth

    tracer = Tracer()
    with use_tracer(tracer):
        truth = compute_ground_truth(inst, info=info)
    truth_spans = tracer.find("ground_truth")
    interp_spans = tracer.find("interp.run")
    assert len(truth_spans) == 1 and len(interp_spans) == 1
    assert interp_spans[0].parent_id == truth_spans[0].span_id
    assert interp_spans[0].attrs["steps"] == truth.execution.steps > 0
    assert truth_spans[0].attrs["dead"] == len(truth.dead)
    assert truth_spans[0].attrs["alive"] == len(truth.alive)
