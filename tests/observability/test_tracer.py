import threading

from repro.observability import (
    NULL_SPAN,
    Tracer,
    current_tracer,
    set_tracer,
    use_tracer,
)


def test_nested_spans_record_parent_links():
    tracer = Tracer()
    with tracer.span("outer", kind="test") as outer:
        with tracer.span("inner") as inner:
            inner.set("x", 1)
        with tracer.span("inner") as second:
            second.set("x", 2)
    assert len(tracer.spans) == 3
    outer_span = tracer.find("outer")[0]
    inner_spans = tracer.find("inner")
    assert outer_span.parent_id is None
    assert [s.parent_id for s in inner_spans] == [outer_span.span_id] * 2
    assert [s.attrs["x"] for s in inner_spans] == [1, 2]
    assert tracer.children(outer_span) == inner_spans
    assert tracer.roots() == [outer_span]
    # children finish before the parent, durations nest
    assert outer_span.duration >= sum(s.duration for s in inner_spans) * 0.0
    assert all(s.end <= outer_span.end for s in inner_spans)


def test_span_attrs_and_duration():
    tracer = Tracer(clock=iter([1.0, 3.5]).__next__)
    with tracer.span("timed", a=1) as span:
        span.update(b=2)
    assert span.duration == 2.5
    assert span.attrs == {"a": 1, "b": 2}


def test_disabled_tracer_is_a_no_op():
    tracer = Tracer(enabled=False)
    context = tracer.span("anything", big=list(range(3)))
    with context as span:
        span.set("ignored", True)
        span.update(more=1)
    assert span is NULL_SPAN
    assert tracer.spans == []
    # the disabled path hands out one shared context manager object
    assert tracer.span("other") is context


def test_current_tracer_defaults_to_disabled():
    assert current_tracer().enabled is False


def test_use_tracer_installs_and_restores():
    before = current_tracer()
    tracer = Tracer()
    with use_tracer(tracer):
        assert current_tracer() is tracer
        with current_tracer().span("inside"):
            pass
    assert current_tracer() is before
    assert [s.name for s in tracer.spans] == ["inside"]


def test_set_tracer_none_means_disabled():
    previous = set_tracer(None)
    try:
        assert current_tracer().enabled is False
    finally:
        set_tracer(previous)


def test_tracer_is_thread_safe():
    tracer = Tracer()
    errors = []

    def worker(tag):
        try:
            for i in range(50):
                with tracer.span("w", tag=tag, i=i):
                    with tracer.span("w.child"):
                        pass
        except Exception as err:  # pragma: no cover
            errors.append(err)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(tracer.spans) == 4 * 50 * 2
    # every child's parent is a span from the same thread's stack
    by_id = {s.span_id: s for s in tracer.spans}
    for span in tracer.spans:
        if span.name == "w.child":
            assert by_id[span.parent_id].name == "w"


def test_max_spans_drops_and_counts():
    tracer = Tracer(max_spans=2)
    for i in range(5):
        with tracer.span("s", i=i):
            pass
    assert len(tracer.spans) == 2
    assert tracer.dropped == 3
    tracer.reset()
    assert tracer.spans == [] and tracer.dropped == 0


def test_adopt_spans_reparents_a_worker_subtree():
    worker = Tracer()
    with worker.span("campaign.program", seed=7) as program:
        with worker.span("compile", spec="gcclike-O2@24"):
            pass
    exported = [s.to_dict() for s in worker.spans]

    parent = Tracer()
    with parent.span("campaign") as campaign:
        adopted = parent.adopt_spans(exported, parent_id=campaign.span_id)
    assert len(adopted) == 2
    campaign_span = parent.find("campaign")[0]
    program_span = parent.find("campaign.program")[0]
    compile_span = parent.find("compile")[0]
    # the worker root hangs off the campaign span; internal links
    # remap to the fresh ids
    assert program_span.parent_id == campaign_span.span_id
    assert compile_span.parent_id == program_span.span_id
    assert program_span.attrs["seed"] == 7
    # adopted ids never collide with the parent's own
    ids = [s.span_id for s in parent.spans]
    assert len(ids) == len(set(ids))
    assert parent.roots() == [campaign_span]


def test_adopt_spans_respects_max_spans_and_disabled():
    worker = Tracer()
    for i in range(4):
        with worker.span("s", i=i):
            pass
    exported = [s.to_dict() for s in worker.spans]

    limited = Tracer(max_spans=2)
    limited.adopt_spans(exported)
    assert len(limited.spans) == 2
    assert limited.dropped == 2

    disabled = Tracer(enabled=False)
    assert disabled.adopt_spans(exported) == []
    assert disabled.spans == []
