"""RunLedger schema migration chain.

Ledger files created by older releases must open cleanly under the
current code: each era's column set gets ALTERed forward, existing
rows read back with ``None`` in the new columns, and new runs record
with the full current schema.  One synthetic ledger per era:

* **PR 6** — the original schema (through ``metrics_json``);
* **PR 7** — + ``interp``, ``sched_window``;
* **PR 8** — + ``reduce_jobs`` and the three reduction rollups;
* current (PR 9) adds the four ``store_*`` hit counters.
"""

import json
import sqlite3

import pytest

from repro.observability import RunLedger

#: the original (PR 6 era) runs-table columns, in order
_PR6_COLUMNS = [
    ("run_id", "INTEGER PRIMARY KEY AUTOINCREMENT"),
    ("started_at", "REAL NOT NULL"),
    ("wall_time", "REAL NOT NULL"),
    ("config_fingerprint", "TEXT NOT NULL"),
    ("programs", "INTEGER NOT NULL"),
    ("seed_base", "INTEGER NOT NULL"),
    ("jobs", "INTEGER NOT NULL"),
    ("incremental", "INTEGER NOT NULL"),
    ("compare_level", "TEXT NOT NULL"),
    ("version", "INTEGER"),
    ("completed", "INTEGER NOT NULL"),
    ("skipped", "INTEGER NOT NULL"),
    ("crashed", "INTEGER NOT NULL"),
    ("budget_exceeded", "INTEGER NOT NULL"),
    ("degraded", "INTEGER NOT NULL"),
    ("total_markers", "INTEGER NOT NULL"),
    ("total_dead", "INTEGER NOT NULL"),
    ("total_alive", "INTEGER NOT NULL"),
    ("findings", "INTEGER NOT NULL"),
    ("soundness_violations", "INTEGER NOT NULL"),
    ("by_level_json", "TEXT NOT NULL"),
    ("cross_compiler_json", "TEXT NOT NULL"),
    ("cross_level_json", "TEXT NOT NULL"),
    ("shape_yield_json", "TEXT NOT NULL"),
    ("pass_attribution_json", "TEXT NOT NULL"),
    ("crash_buckets_json", "TEXT NOT NULL"),
    ("metrics_json", "TEXT NOT NULL"),
]

_PR7_EXTRA = [("interp", "TEXT"), ("sched_window", "INTEGER")]
_PR8_EXTRA = [
    ("reduce_jobs", "INTEGER"),
    ("reduction_oracle_calls", "INTEGER"),
    ("reduction_speculative_wasted", "INTEGER"),
    ("reduction_wall_time", "REAL"),
]
_PR9_EXTRA = [
    ("store_seeds_skipped", "INTEGER"),
    ("store_compile_hits", "INTEGER"),
    ("store_truth_hits", "INTEGER"),
    ("store_oracle_hits", "INTEGER"),
]

ERAS = {
    "pr6": _PR6_COLUMNS,
    "pr7": _PR6_COLUMNS + _PR7_EXTRA,
    "pr8": _PR6_COLUMNS + _PR7_EXTRA + _PR8_EXTRA,
}

#: every column the current code must guarantee after opening
CURRENT_COLUMNS = [
    name for name, _ in _PR6_COLUMNS + _PR7_EXTRA + _PR8_EXTRA + _PR9_EXTRA
]


def _make_era_ledger(path: str, columns) -> None:
    """A ledger file exactly as that era's code would have written it,
    holding one run row."""
    con = sqlite3.connect(path)
    decls = ",\n    ".join(f"{name} {decl}" for name, decl in columns)
    con.executescript(f"""
        CREATE TABLE runs (
            {decls}
        );
        CREATE INDEX idx_runs_config ON runs(config_fingerprint);
        CREATE TABLE findings (
            fingerprint TEXT PRIMARY KEY,
            kind TEXT NOT NULL,
            detail_json TEXT NOT NULL,
            seeds_json TEXT NOT NULL,
            first_seen_run INTEGER NOT NULL,
            last_seen_run INTEGER NOT NULL,
            occurrences INTEGER NOT NULL
        );
        CREATE TABLE run_findings (
            run_id INTEGER NOT NULL,
            fingerprint TEXT NOT NULL,
            seed INTEGER NOT NULL,
            kind TEXT NOT NULL,
            PRIMARY KEY (run_id, fingerprint, seed)
        );
    """)
    values = {
        "started_at": 1_700_000_000.0,
        "wall_time": 12.5,
        "config_fingerprint": "cafe0123cafe0123",
        "programs": 10,
        "seed_base": 0,
        "jobs": 1,
        "incremental": 1,
        "compare_level": "O3",
        "version": None,
        "completed": 10,
        "skipped": 0,
        "crashed": 0,
        "budget_exceeded": 0,
        "degraded": 0,
        "total_markers": 100,
        "total_dead": 60,
        "total_alive": 40,
        "findings": 3,
        "soundness_violations": 0,
        "by_level_json": json.dumps({}),
        "cross_compiler_json": json.dumps({}),
        "cross_level_json": json.dumps({}),
        "shape_yield_json": json.dumps({}),
        "pass_attribution_json": json.dumps({}),
        "crash_buckets_json": json.dumps({}),
        "metrics_json": json.dumps({}),
        "interp": "bytecode",
        "sched_window": None,
        "reduce_jobs": 2,
        "reduction_oracle_calls": 123,
        "reduction_speculative_wasted": 4,
        "reduction_wall_time": 1.5,
    }
    names = [name for name, _ in columns if name != "run_id"]
    con.execute(
        f"INSERT INTO runs ({', '.join(names)})"
        f" VALUES ({', '.join('?' * len(names))})",
        [values[name] for name in names],
    )
    con.commit()
    con.close()


@pytest.mark.parametrize("era", sorted(ERAS))
def test_era_ledger_migrates_to_current_schema(tmp_path, era):
    path = str(tmp_path / f"{era}.sqlite")
    _make_era_ledger(path, ERAS[era])
    with RunLedger(path) as ledger:
        pass
    con = sqlite3.connect(path)
    have = [r[1] for r in con.execute("PRAGMA table_info(runs)")]
    con.close()
    assert set(CURRENT_COLUMNS) <= set(have)


@pytest.mark.parametrize("era", sorted(ERAS))
def test_era_rows_read_back_with_none_in_new_columns(tmp_path, era):
    path = str(tmp_path / f"{era}.sqlite")
    _make_era_ledger(path, ERAS[era])
    with RunLedger(path) as ledger:
        row = ledger.run(1)
    assert row is not None
    assert row.config_fingerprint == "cafe0123cafe0123"
    assert row.completed == 10
    # columns the era lacked migrate in as None
    if era == "pr6":
        assert row.interp is None
        assert row.window is None
    else:
        assert row.interp == "bytecode"
    if era in ("pr6", "pr7"):
        assert row.reduce_jobs is None
        assert row.reduction_oracle_calls is None
    else:
        assert row.reduce_jobs == 2
        assert row.reduction_oracle_calls == 123
    # the store columns are new in every era
    assert row.store_seeds_skipped is None
    assert row.store_compile_hits is None
    assert row.store_truth_hits is None
    assert row.store_oracle_hits is None


@pytest.mark.parametrize("era", sorted(ERAS))
def test_migration_is_idempotent(tmp_path, era):
    path = str(tmp_path / f"{era}.sqlite")
    _make_era_ledger(path, ERAS[era])
    for _ in range(3):  # every open runs _migrate; reruns must no-op
        with RunLedger(path) as ledger:
            assert len(ledger) == 1
    with RunLedger(path) as ledger:
        assert ledger.run(1) is not None


@pytest.mark.parametrize("era", sorted(ERAS))
def test_era_ledger_gains_case_lifecycle_tables(tmp_path, era):
    """PR 10 adds the case lifecycle; opening any older file must
    create the ``cases``/``case_aliases`` tables and the case API must
    work against the migrated ledger."""
    path = str(tmp_path / f"{era}.sqlite")
    _make_era_ledger(path, ERAS[era])
    with RunLedger(path) as ledger:
        assert ledger.lifecycle_counts() == {
            "found": 0, "reduced": 0, "bisected": 0, "reported": 0,
        }
        finding = {"seed": 3, "kind": "cross-compiler"}
        canonical, created = ledger.record_case(
            finding, "fp-migrated", job="j1"
        )
        assert created
        ledger.advance_case(canonical, "reported")
        assert ledger.lifecycle_counts()["reported"] == 1
        # the era's original run row is untouched
        assert ledger.run(1).config_fingerprint == "cafe0123cafe0123"
    con = sqlite3.connect(path)
    tables = {
        r[0] for r in con.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
        )
    }
    con.close()
    assert {"cases", "case_aliases"} <= tables


def test_new_runs_record_into_migrated_ledger(tmp_path):
    """After migrating a PR 6 file, the current record_run writes the
    full 36-column row alongside the old one."""
    from repro.core.corpus import run_campaign
    from repro.generator import GeneratorConfig
    from repro.observability import MetricsRegistry

    path = str(tmp_path / "old.sqlite")
    _make_era_ledger(path, ERAS["pr6"])
    config = GeneratorConfig(
        min_globals=1, max_globals=2, min_functions=1, max_functions=2,
        max_depth=2, min_block_stmts=1, max_block_stmts=2, max_expr_depth=2,
    )
    metrics = MetricsRegistry()
    metrics.counter("store.seeds_skipped").inc(5)
    result = run_campaign(
        n_programs=1, seed_base=0, generator_config=config, metrics=metrics
    )
    with RunLedger(path) as ledger:
        run_id = ledger.record_run(
            result, n_programs=1, seed_base=0,
            generator_config=config, metrics=metrics, store_used=True,
        )
        new = ledger.run(run_id)
        old = ledger.run(1)
    assert run_id == 2
    assert new.store_seeds_skipped == 5
    assert new.store_compile_hits == 0
    assert old.store_seeds_skipped is None
