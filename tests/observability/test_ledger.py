"""Run ledger: persistence, cross-run finding dedup, fingerprints."""

import dataclasses

import pytest

from repro.observability import (
    RunLedger,
    config_fingerprint,
    finding_fingerprint,
)

from .conftest import SMALL_CONFIG, SMALL_PROGRAMS, SMALL_SEED_BASE


def record(ledger, campaign, **over):
    result, metrics = campaign
    kwargs = dict(
        n_programs=SMALL_PROGRAMS, seed_base=SMALL_SEED_BASE,
        generator_config=SMALL_CONFIG, metrics=metrics, wall_time=3.0,
    )
    kwargs.update(over)
    return ledger.record_run(result, **kwargs)


def test_run_row_round_trips_campaign_result(small_campaign):
    result, metrics = small_campaign
    with RunLedger(":memory:") as ledger:
        run_id = record(ledger, small_campaign, jobs=3, started_at=1000.0)
        row = ledger.run(run_id)
    assert row.run_id == run_id
    assert row.started_at == 1000.0
    assert row.jobs == 3 and row.incremental is True
    assert row.programs == SMALL_PROGRAMS
    assert row.seed_base == SMALL_SEED_BASE
    assert row.completed == len(result.seeds)
    assert row.total_markers == result.total_markers
    assert row.total_dead == result.total_dead
    assert row.findings == len(result.findings)
    assert row.dead_pct == pytest.approx(result.dead_pct)
    # JSON columns parse back into the same shapes
    for (family, level), stats in result.by_level.items():
        stored = row.by_level[f"{family}-{level}"]
        assert stored["missed"] == stats.missed
        assert stored["dead_total"] == stats.dead_total
    for shape, stats in result.by_shape.items():
        assert row.shape_yield[shape] == stats.to_dict()
    assert row.cross_compiler == dataclasses.asdict(result.cross_compiler)
    # pass attribution rolled up from the metrics counters
    assert row.pass_attribution
    for name, kills in row.pass_attribution.items():
        counter = metrics.counter(f"attribution.marker_kills/{name}")
        assert counter.value == kills
    assert row.metric_value("campaign.compilations") > 0
    assert row.per_program("campaign.compilations") == pytest.approx(
        row.metric_value("campaign.compilations") / row.completed
    )


def test_same_config_twice_dedupes_findings(small_campaign):
    """The acceptance criterion: two runs of one config share finding
    rows with occurrence count 2."""
    result, _ = small_campaign
    with RunLedger(":memory:") as ledger:
        first = record(ledger, small_campaign)
        second = record(ledger, small_campaign, jobs=2)
        rows = ledger.runs()
        assert len(ledger) == 2
        assert rows[0].config_fingerprint == rows[1].config_fingerprint
        findings = ledger.findings()
        assert findings
        for row in findings:
            assert row.occurrences == 2
            assert row.first_seen_run == first
            assert row.last_seen_run == second
            assert row.detail["kind"] == row.kind
        # both runs link to the same deduplicated rows
        assert {f.fingerprint for f in ledger.findings(first)} == {
            f.fingerprint for f in ledger.findings(second)
        }


def test_runs_filtering_and_limit(small_campaign):
    with RunLedger(":memory:") as ledger:
        record(ledger, small_campaign, started_at=100.0)
        record(ledger, small_campaign, incremental=False, started_at=200.0)
        record(ledger, small_campaign, started_at=300.0)
        assert [r.run_id for r in ledger.runs()] == [3, 2, 1]
        assert [r.run_id for r in ledger.runs(limit=1)] == [3]
        assert [r.run_id for r in ledger.runs(since=150.0)] == [3, 2]
        base_config = ledger.run(1).config_fingerprint
        assert [r.run_id for r in ledger.runs(config=base_config[:6])] == [3, 1]
        assert ledger.run(99) is None
        assert ledger.runs(config="zz") == []


def test_ledger_persists_across_reopen(small_campaign, tmp_path):
    path = str(tmp_path / "ledger.sqlite")
    with RunLedger(path) as ledger:
        record(ledger, small_campaign)
    with RunLedger(path) as ledger:
        record(ledger, small_campaign)
        assert len(ledger) == 2
        assert all(f.occurrences == 2 for f in ledger.findings())


def test_config_fingerprint_ignores_jobs_not_config():
    base = config_fingerprint(10, 50, None, SMALL_CONFIG, "O3", True)
    assert base == config_fingerprint(10, 50, None, SMALL_CONFIG, "O3", True)
    assert base != config_fingerprint(11, 50, None, SMALL_CONFIG, "O3", True)
    assert base != config_fingerprint(10, 51, None, SMALL_CONFIG, "O3", True)
    assert base != config_fingerprint(10, 50, None, SMALL_CONFIG, "O2", True)
    assert base != config_fingerprint(10, 50, None, SMALL_CONFIG, "O3", False)
    assert base != config_fingerprint(10, 50, None, None, "O3", True)


def test_structural_fingerprint_deterministic(small_campaign):
    result, _ = small_campaign
    finding = result.findings[0]
    first = finding_fingerprint(finding, SMALL_CONFIG)
    assert first == finding_fingerprint(finding, SMALL_CONFIG)
    # the kind participates, so an identical marker set under another
    # kind cannot collide
    other = dict(finding, kind="cross-level", family="gcclike",
                 markers=["DCEMarker0"])
    other.pop("gcc_misses", None)
    other.pop("llvm_misses", None)
    assert finding_fingerprint(other, SMALL_CONFIG) != first


def test_reduced_fingerprint_deterministic_and_recorded(small_campaign):
    """The paper-faithful mode: reduce, lower, hash the canonical IR."""
    result, _ = small_campaign
    finding = result.findings[0]
    reduced = finding_fingerprint(finding, SMALL_CONFIG, reduce=True)
    assert reduced == finding_fingerprint(finding, SMALL_CONFIG, reduce=True)
    assert reduced != finding_fingerprint(finding, SMALL_CONFIG)
    with RunLedger(":memory:") as ledger:
        run_id = record(ledger, small_campaign, reduce_findings=True)
        fingerprints = {f.fingerprint for f in ledger.findings(run_id)}
    assert reduced in fingerprints
