import json

from repro.cli import main as cli_main
from repro.observability import RunLedger, read_events_jsonl

SOURCE = """
int main() {
  int x = 0;
  if (x) { x = 1; }
  return x;
}
"""


def test_cli_profile_prints_per_pass_table(tmp_path, capsys):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    assert cli_main(["profile", str(path), "--instrument",
                     "--family", "gcclike", "--level", "O2"]) == 0
    out = capsys.readouterr().out
    assert "per-pass profile — gcclike-O2" in out
    header = next(line for line in out.splitlines() if "Δinstrs" in line)
    assert "pass" in header and "ms" in header and "killed markers" in header
    assert "sccp" in out and "adce" in out
    assert "DCEMarker0" in out  # the dead `if (g)` marker, attributed
    assert "total pipeline:" in out


def test_cli_profile_on_generated_program(tmp_path, capsys):
    assert cli_main(["generate", "--seed", "5", "--instrument"]) == 0
    source = capsys.readouterr().out
    path = tmp_path / "gen.c"
    path.write_text(source)
    assert cli_main(["profile", str(path)]) == 0
    out = capsys.readouterr().out
    assert "per-pass profile" in out
    assert "DCEMarker" in out  # some marker got attributed to a pass
    assert "markers" in out


def test_cli_analyze_trace_prints_span_tree(tmp_path, capsys):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    assert cli_main(["analyze", "--trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert "markers:" in out  # the normal report is still there
    assert "trace:" in out
    assert "ground_truth" in out
    assert "interp.run" in out
    assert "pipeline.pass" in out
    # one compile span per distinct pipeline config: 2 families x 5
    # levels, minus the O0 config the families share (served from the
    # cross-spec compile cache)
    assert out.count("compile ") == 9
    assert out.count("compile.cached") == 1


def test_cli_campaign_metrics_out(tmp_path, capsys):
    metrics_path = tmp_path / "metrics.json"
    assert cli_main([
        "campaign", "--programs", "1", "--seed-base", "901",
        "--metrics-out", str(metrics_path), "--progress",
    ]) == 0
    captured = capsys.readouterr()
    assert "Tables 1 & 2 shape" in captured.out
    assert "programs/sec" in captured.err  # --progress reporting

    snapshot = json.loads(metrics_path.read_text())
    latency_hists = {
        name: value
        for name, value in snapshot.items()
        if name.startswith("compile_latency_ms/")
    }
    # one histogram per (family, level) spec, each with one observation
    assert len(latency_hists) == 10
    for value in latency_hists.values():
        assert value["type"] == "histogram"
        assert value["count"] == 1
        assert value["p50"] > 0
    assert snapshot["campaign.programs_analyzed"]["value"] == 1
    assert snapshot["campaign.program_latency_ms"]["count"] == 1
    # the two families share one O0 config, so 9 real compiles + 1 hit
    assert snapshot["campaign.compilations"]["value"] == 9
    assert snapshot["campaign.compile_cache_hits"]["value"] == 1
    assert "campaign.missed/gcclike-O2" in snapshot
    assert "campaign.primary_missed/llvmlike-O3" in snapshot


def test_cli_campaign_telemetry_pipeline(tmp_path, capsys):
    """campaign --events-out/--ledger/--dashboard, then the ledger
    subcommands, end to end on one tiny seed."""
    events_path = tmp_path / "events.jsonl"
    ledger_path = tmp_path / "ledger.sqlite"
    args = [
        "campaign", "--programs", "1", "--seed-base", "901",
        "--events-out", str(events_path), "--ledger", str(ledger_path),
        "--dashboard",
    ]
    assert cli_main(args) == 0
    captured = capsys.readouterr()
    # stdout stays machine-clean: every telemetry line is on stderr
    assert "Tables 1 & 2 shape" in captured.out
    for line in ("campaign done:", "ledger: recorded run", "seed 901"):
        assert line not in captured.out
        assert line in captured.err

    events = read_events_jsonl(str(events_path))
    types = [e.type for e in events]
    assert types[0] == "campaign_start"
    assert types.count("campaign_end") == 1
    assert [e.seq for e in events] == list(range(len(events)))
    done = next(e for e in events if e.type == "seed_done")
    assert done.attrs["seed"] == 901 and done.attrs["status"] == "ok"

    # second run, same config: the findings rows dedupe across runs
    assert cli_main(args) == 0
    capsys.readouterr()
    with RunLedger(str(ledger_path)) as ledger:
        rows = ledger.runs()
        assert len(rows) == 2
        assert rows[0].config_fingerprint == rows[1].config_fingerprint
        assert rows[0].wall_time > 0
        assert all(f.occurrences == 2 for f in ledger.findings())

    assert cli_main(["runs", str(ledger_path)]) == 0
    out = capsys.readouterr().out
    assert "config" in out and str(rows[0].run_id) in out

    assert cli_main(["show-run", str(ledger_path), "1"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["programs"] == 1 and payload["seed_base"] == 901

    assert cli_main(["report", str(ledger_path), "1"]) == 0
    out = capsys.readouterr().out
    assert "== Outcome ==" in out and "== Marker yield by O-level ==" in out

    html_path = tmp_path / "report.html"
    assert cli_main([
        "report", str(ledger_path), "1", "--html", str(html_path),
    ]) == 0
    capsys.readouterr()
    document = html_path.read_text()
    assert document.startswith("<!DOCTYPE html>")
    assert "https://" not in document

    assert cli_main([
        "compare", str(ledger_path), "1", "2", "--fail-on-regression",
    ]) == 0  # identical configs: no regressions
    assert "no regressions" in capsys.readouterr().out


def test_cli_compare_flags_no_incremental_regression(tmp_path, capsys):
    """The acceptance drill: an incremental run vs a --no-incremental
    run of the same seeds flags the pass_execs_saved regression."""
    ledger_path = str(tmp_path / "ledger.sqlite")
    base = ["campaign", "--programs", "1", "--seed-base", "902",
            "--ledger", ledger_path]
    assert cli_main(base) == 0
    assert cli_main(base + ["--no-incremental"]) == 0
    capsys.readouterr()
    assert cli_main([
        "compare", ledger_path, "1", "2", "--fail-on-regression",
    ]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert "pass_execs_saved/program" in out
    assert "-100.0%" in out


def test_cli_ledger_subcommands_reject_missing_files(tmp_path, capsys):
    missing = str(tmp_path / "nope.sqlite")
    assert cli_main(["runs", missing]) == 1
    assert cli_main(["show-run", missing, "1"]) == 1
    assert cli_main(["report", missing, "1"]) == 1
    assert cli_main(["compare", missing, "1", "2"]) == 1
    err = capsys.readouterr().err
    assert "no such ledger" in err
