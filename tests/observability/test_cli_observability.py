import json

from repro.cli import main as cli_main

SOURCE = """
int main() {
  int x = 0;
  if (x) { x = 1; }
  return x;
}
"""


def test_cli_profile_prints_per_pass_table(tmp_path, capsys):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    assert cli_main(["profile", str(path), "--instrument",
                     "--family", "gcclike", "--level", "O2"]) == 0
    out = capsys.readouterr().out
    assert "per-pass profile — gcclike-O2" in out
    header = next(line for line in out.splitlines() if "Δinstrs" in line)
    assert "pass" in header and "ms" in header and "killed markers" in header
    assert "sccp" in out and "adce" in out
    assert "DCEMarker0" in out  # the dead `if (g)` marker, attributed
    assert "total pipeline:" in out


def test_cli_profile_on_generated_program(tmp_path, capsys):
    assert cli_main(["generate", "--seed", "5", "--instrument"]) == 0
    source = capsys.readouterr().out
    path = tmp_path / "gen.c"
    path.write_text(source)
    assert cli_main(["profile", str(path)]) == 0
    out = capsys.readouterr().out
    assert "per-pass profile" in out
    assert "DCEMarker" in out  # some marker got attributed to a pass
    assert "markers" in out


def test_cli_analyze_trace_prints_span_tree(tmp_path, capsys):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    assert cli_main(["analyze", "--trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert "markers:" in out  # the normal report is still there
    assert "trace:" in out
    assert "ground_truth" in out
    assert "interp.run" in out
    assert "pipeline.pass" in out
    # one compile span per distinct pipeline config: 2 families x 5
    # levels, minus the O0 config the families share (served from the
    # cross-spec compile cache)
    assert out.count("compile ") == 9
    assert out.count("compile.cached") == 1


def test_cli_campaign_metrics_out(tmp_path, capsys):
    metrics_path = tmp_path / "metrics.json"
    assert cli_main([
        "campaign", "--programs", "1", "--seed-base", "901",
        "--metrics-out", str(metrics_path), "--progress",
    ]) == 0
    captured = capsys.readouterr()
    assert "Tables 1 & 2 shape" in captured.out
    assert "programs/sec" in captured.err  # --progress reporting

    snapshot = json.loads(metrics_path.read_text())
    latency_hists = {
        name: value
        for name, value in snapshot.items()
        if name.startswith("compile_latency_ms/")
    }
    # one histogram per (family, level) spec, each with one observation
    assert len(latency_hists) == 10
    for value in latency_hists.values():
        assert value["type"] == "histogram"
        assert value["count"] == 1
        assert value["p50"] > 0
    assert snapshot["campaign.programs_analyzed"]["value"] == 1
    assert snapshot["campaign.program_latency_ms"]["count"] == 1
    # the two families share one O0 config, so 9 real compiles + 1 hit
    assert snapshot["campaign.compilations"]["value"] == 9
    assert snapshot["campaign.compile_cache_hits"]["value"] == 1
    assert "campaign.missed/gcclike-O2" in snapshot
    assert "campaign.primary_missed/llvmlike-O3" in snapshot
