"""Shared fixtures for the telemetry/ledger/report tests: one small
real campaign (tiny generator config keeps the compiles cheap) reused
across modules."""

import pytest

from repro.core.corpus import run_campaign
from repro.generator import GeneratorConfig
from repro.observability import MetricsRegistry

#: small enough to keep per-seed analysis fast, large enough that the
#: seed range below yields at least one finding
SMALL_CONFIG = GeneratorConfig(
    min_globals=1, max_globals=3, min_functions=2, max_functions=3,
    max_depth=3, min_block_stmts=1, max_block_stmts=4, max_expr_depth=2,
)
SMALL_PROGRAMS = 10
SMALL_SEED_BASE = 50


@pytest.fixture(scope="session")
def small_campaign():
    """(result, metrics) for a 10-seed tiny-program campaign with at
    least one finding."""
    metrics = MetricsRegistry()
    result = run_campaign(
        n_programs=SMALL_PROGRAMS, seed_base=SMALL_SEED_BASE,
        generator_config=SMALL_CONFIG, metrics=metrics,
    )
    assert result.findings, "fixture seeds are expected to yield findings"
    return result, metrics
