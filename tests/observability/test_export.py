import io

from repro.observability import (
    Span,
    Tracer,
    format_trace,
    read_spans_jsonl,
    spans_to_dicts,
    write_spans_jsonl,
    write_trace_json,
)


def _sample_tracer() -> Tracer:
    tracer = Tracer(clock=iter([float(i) for i in range(10)]).__next__)
    with tracer.span("root", kind="compile"):
        with tracer.span("child", n=3, name="sccp"):
            pass
    return tracer


def test_jsonl_round_trip_via_file(tmp_path):
    tracer = _sample_tracer()
    path = tmp_path / "trace.jsonl"
    written = write_spans_jsonl(tracer.spans, str(path))
    assert written == 2
    loaded = read_spans_jsonl(str(path))
    assert [s.to_dict() for s in loaded] == spans_to_dicts(tracer)
    # parent/child structure survives the round trip
    child, root = loaded  # completion order: child finishes first
    assert child.name == "child" and root.name == "root"
    assert child.parent_id == root.span_id
    assert child.attrs == {"n": 3, "name": "sccp"}
    assert child.duration == 1.0


def test_jsonl_round_trip_via_stream_skips_blank_lines():
    tracer = _sample_tracer()
    buffer = io.StringIO()
    write_spans_jsonl(tracer.spans, buffer)
    text = buffer.getvalue() + "\n\n"
    loaded = read_spans_jsonl(io.StringIO(text))
    assert len(loaded) == 2


def test_write_trace_json(tmp_path):
    import json

    tracer = _sample_tracer()
    path = tmp_path / "trace.json"
    write_trace_json(tracer, str(path))
    payload = json.loads(path.read_text())
    assert payload["dropped"] == 0
    assert [s["name"] for s in payload["spans"]] == ["child", "root"]


def test_format_trace_indents_children():
    tracer = _sample_tracer()
    lines = format_trace(tracer).splitlines()
    assert lines[0].startswith("root")
    assert lines[1].startswith("  child")
    assert "ms" in lines[0]
    assert "kind=compile" in lines[0]
    assert "name=sccp" in lines[1]


def test_format_trace_reports_dropped_spans():
    tracer = Tracer(max_spans=1)
    with tracer.span("a"):
        pass
    with tracer.span("b"):
        pass
    assert "1 span(s) dropped" in format_trace(tracer)


def test_span_from_dict_defaults():
    span = Span.from_dict({"span_id": 7, "name": "x"})
    assert span.span_id == 7
    assert span.parent_id is None
    assert span.attrs == {}
    assert span.duration == 0.0
