import json
import threading

import pytest

from repro.observability import MetricsRegistry


def test_counter_monotonic():
    registry = MetricsRegistry()
    counter = registry.counter("hits")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)
    # get-or-create returns the same instrument
    assert registry.counter("hits") is counter


def test_gauge_set_and_add():
    gauge = MetricsRegistry().gauge("temp")
    gauge.set(3.5)
    gauge.add(0.5)
    assert gauge.value == 4.0


def test_histogram_percentiles_nearest_rank():
    hist = MetricsRegistry().histogram("latency")
    for v in range(1, 101):  # 1..100, shuffled insert order must not matter
        hist.observe(101 - v)
    assert hist.count == 100
    assert hist.percentile(50) == 50
    assert hist.percentile(90) == 90
    assert hist.percentile(99) == 99
    assert hist.percentile(100) == 100
    assert hist.percentile(0) == 1
    summary = hist.summary()
    assert summary["min"] == 1 and summary["max"] == 100
    assert summary["mean"] == pytest.approx(50.5)
    assert summary["p50"] == 50 and summary["p90"] == 90 and summary["p99"] == 99
    with pytest.raises(ValueError):
        hist.percentile(101)


def test_empty_histogram_summary():
    hist = MetricsRegistry().histogram("empty")
    assert hist.summary() == {"count": 0}
    assert hist.percentile(50) == 0.0
    assert hist.mean == 0.0


def test_registry_snapshot_is_json_serializable(tmp_path):
    registry = MetricsRegistry()
    registry.counter("a.count").inc(2)
    registry.gauge("b.gauge").set(1.5)
    registry.histogram("c.hist").observe(10)
    snapshot = registry.to_dict()
    assert snapshot["a.count"] == {"type": "counter", "value": 2}
    assert snapshot["b.gauge"] == {"type": "gauge", "value": 1.5}
    assert snapshot["c.hist"]["type"] == "histogram"
    assert snapshot["c.hist"]["count"] == 1

    path = tmp_path / "metrics.json"
    registry.write_json(str(path))
    assert json.loads(path.read_text()) == snapshot
    assert registry.names() == ["a.count", "b.gauge", "c.hist"]


def test_registry_rejects_type_confusion():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_registry_thread_safety():
    registry = MetricsRegistry()

    def worker():
        for _ in range(200):
            registry.counter("n").inc()
            registry.histogram("h").observe(1.0)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert registry.counter("n").value == 800
    assert registry.histogram("h").count == 800


def test_dump_carries_raw_histogram_observations():
    registry = MetricsRegistry()
    registry.counter("n").inc(3)
    registry.gauge("g").set(2.5)
    for v in (5.0, 1.0, 9.0):
        registry.histogram("h").observe(v)
    dump = registry.dump()
    assert dump["n"] == {"type": "counter", "value": 3}
    assert dump["g"] == {"type": "gauge", "value": 2.5}
    # unlike to_dict, the dump keeps every observation, in order
    assert dump["h"] == {"type": "histogram", "values": [5.0, 1.0, 9.0]}
    # the dump is a snapshot, not a view
    registry.histogram("h").observe(7.0)
    assert dump["h"]["values"] == [5.0, 1.0, 9.0]


def test_merge_folds_worker_snapshots_additively():
    parent = MetricsRegistry()
    parent.counter("n").inc(1)
    parent.histogram("h").observe(1.0)
    parent.gauge("g").set(10.0)

    worker = MetricsRegistry()
    worker.counter("n").inc(2)
    worker.counter("only.worker").inc(5)
    worker.histogram("h").observe(2.0)
    worker.histogram("h").observe(3.0)
    worker.gauge("g").set(4.0)

    parent.merge(worker.dump())
    assert parent.counter("n").value == 3
    assert parent.counter("only.worker").value == 5
    # histogram observations extend in snapshot order
    assert parent.histogram("h").values == [1.0, 2.0, 3.0]
    # gauges accumulate (worker gauges are partial tallies)
    assert parent.gauge("g").value == 14.0


def test_merge_in_fixed_order_is_deterministic():
    def worker(values):
        registry = MetricsRegistry()
        for v in values:
            registry.histogram("h").observe(v)
        return registry.dump()

    snapshots = [worker([1.0, 2.0]), worker([3.0]), worker([4.0, 5.0])]
    a, b = MetricsRegistry(), MetricsRegistry()
    for snap in snapshots:
        a.merge(snap)
    for snap in snapshots:
        b.merge(snap)
    assert a.histogram("h").values == b.histogram("h").values == [
        1.0, 2.0, 3.0, 4.0, 5.0,
    ]


def test_merge_rejects_unknown_instrument_type():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.merge({"x": {"type": "mystery", "value": 1}})
