import json
import threading

import pytest

from repro.observability import MetricsRegistry


def test_counter_monotonic():
    registry = MetricsRegistry()
    counter = registry.counter("hits")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)
    # get-or-create returns the same instrument
    assert registry.counter("hits") is counter


def test_gauge_set_and_add():
    gauge = MetricsRegistry().gauge("temp")
    gauge.set(3.5)
    gauge.add(0.5)
    assert gauge.value == 4.0


def test_histogram_percentiles_nearest_rank():
    hist = MetricsRegistry().histogram("latency")
    for v in range(1, 101):  # 1..100, shuffled insert order must not matter
        hist.observe(101 - v)
    assert hist.count == 100
    assert hist.percentile(50) == 50
    assert hist.percentile(90) == 90
    assert hist.percentile(99) == 99
    assert hist.percentile(100) == 100
    assert hist.percentile(0) == 1
    summary = hist.summary()
    assert summary["min"] == 1 and summary["max"] == 100
    assert summary["mean"] == pytest.approx(50.5)
    assert summary["p50"] == 50 and summary["p90"] == 90 and summary["p99"] == 99
    with pytest.raises(ValueError):
        hist.percentile(101)


def test_empty_histogram_summary():
    hist = MetricsRegistry().histogram("empty")
    assert hist.summary() == {"count": 0}
    assert hist.percentile(50) == 0.0
    assert hist.mean == 0.0


def test_registry_snapshot_is_json_serializable(tmp_path):
    registry = MetricsRegistry()
    registry.counter("a.count").inc(2)
    registry.gauge("b.gauge").set(1.5)
    registry.histogram("c.hist").observe(10)
    snapshot = registry.to_dict()
    assert snapshot["a.count"] == {"type": "counter", "value": 2}
    assert snapshot["b.gauge"] == {"type": "gauge", "value": 1.5}
    assert snapshot["c.hist"]["type"] == "histogram"
    assert snapshot["c.hist"]["count"] == 1

    path = tmp_path / "metrics.json"
    registry.write_json(str(path))
    assert json.loads(path.read_text()) == snapshot
    assert registry.names() == ["a.count", "b.gauge", "c.hist"]


def test_registry_rejects_type_confusion():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_registry_thread_safety():
    registry = MetricsRegistry()

    def worker():
        for _ in range(200):
            registry.counter("n").inc()
            registry.histogram("h").observe(1.0)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert registry.counter("n").value == 800
    assert registry.histogram("h").count == 800
