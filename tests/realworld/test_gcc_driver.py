import pytest

from repro.core.ground_truth import compute_ground_truth
from repro.core.markers import instrument_program
from repro.generator import generate_program
from repro.lang import parse_program
from repro.realworld import (
    compile_with_gcc,
    differential_real_gcc,
    executable_check,
    gcc_available,
)

pytestmark = pytest.mark.skipif(not gcc_available(), reason="no system gcc")


def test_real_gcc_compiles_simple_instrumented_case():
    source = """
        void DCEMarker0(void);
        void DCEMarker1(void);
        int main() {
          int x = 0;
          if (x) { DCEMarker0(); }
          if (!x) { DCEMarker1(); }
          return 0;
        }
    """
    result = compile_with_gcc(source, "O2")
    assert "DCEMarker0" not in result.alive
    assert "DCEMarker1" in result.alive


def test_real_gcc_cross_level_on_generated_program():
    inst = instrument_program(generate_program(42))
    result = differential_real_gcc(inst, levels=("O0", "O2"))
    # -O2 must eliminate at least as many markers as -O0 overall; exact
    # subset relations don't hold in general, but the counts shape must.
    assert len(result.outcomes["O2"].alive) <= len(result.outcomes["O0"].alive)


def test_real_execution_matches_our_ground_truth():
    inst = instrument_program(generate_program(7))
    ours = compute_ground_truth(inst)
    theirs = executable_check(inst)
    assert theirs == ours.alive


def test_real_gcc_agrees_on_minic_safe_math():
    # x / 0 folds to x in MiniC; printed-safe C must preserve that.
    source_prog = parse_program(
        """
        void DCEMarker0(void);
        int opaque_source(void);
        int main() {
          int x = opaque_source();
          int y = x / 1;
          if (y != x) { DCEMarker0(); }
          return 0;
        }
        """
    )
    from repro.core.markers import InstrumentedProgram, MarkerInfo

    inst = InstrumentedProgram(
        source_prog, [MarkerInfo("DCEMarker0", "if-then", "main")]
    )
    ours = compute_ground_truth(inst)
    theirs = executable_check(inst)
    assert theirs == ours.alive == frozenset()
