"""The reducer's fast AST clone: full detachment from the original."""

from repro.lang import ast_nodes as ast
from repro.lang import parse_program, print_program

SOURCE = """
void DCEMarker0(void);
static int g = 4;
static long arr[3] = {1, 2, 3};
int *p = &g;
static int helper(int x) { return x * 3; }
int main() {
  int a = helper(2);
  unsigned char b = (unsigned char)a;
  char *d = &arr;
  for (int i = 0; i < 3; i++) { a += arr[i]; }
  while (a > 100) { a /= 2; }
  do { a -= 1; } while (a > 50);
  switch (a & 3) {
    case 0: a += 1; break;
    default: a -= 1; break;
  }
  if (a == b) { DCEMarker0(); } else { a = -a; }
  return a;
}
"""


def _all_nodes_and_lists(node, out):
    if isinstance(node, ast.Node):
        out.append(node)
        for f in node.__dataclass_fields__:
            _all_nodes_and_lists(getattr(node, f), out)
    elif isinstance(node, list):
        out.append(node)
        for item in node:
            _all_nodes_and_lists(item, out)


def test_clone_prints_identically():
    program = parse_program(SOURCE)
    clone = ast.clone_program(program)
    assert print_program(clone) == print_program(program)


def test_clone_shares_no_nodes_or_lists():
    program = parse_program(SOURCE)
    clone = ast.clone_program(program)
    originals, clones = [], []
    _all_nodes_and_lists(program, originals)
    _all_nodes_and_lists(clone, clones)
    # same shape, fully disjoint object graphs
    assert len(originals) == len(clones)
    assert {id(x) for x in originals}.isdisjoint({id(x) for x in clones})


def test_mutating_clone_never_reaches_original():
    program = parse_program(SOURCE)
    before = print_program(program)
    clone = ast.clone_program(program)

    # statement-level: delete main's body contents
    clone.function("main").body.stmts.clear()
    # decl-level: drop the helper entirely
    clone.decls = [
        d for d in clone.decls
        if not (isinstance(d, ast.FuncDef) and d.name == "helper")
    ]
    # expression-level: rewrite every int literal
    for func in clone.functions():
        for stmt in ast.walk_stmts(func.body):
            for expr in ast.walk_exprs_of_stmt(stmt):
                if isinstance(expr, ast.IntLit):
                    expr.value = 999
    # global initializer list
    clone.global_var("arr").init[0] = 777

    assert print_program(program) == before


def test_mutating_original_never_reaches_clone():
    program = parse_program(SOURCE)
    clone = ast.clone_program(program)
    before = print_program(clone)
    program.function("main").body.stmts.clear()
    program.global_var("arr").init.append(4)
    assert print_program(clone) == before
