import pytest

from repro.lang.lexer import LexError, parse_int_literal, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "eof"]


def test_tokenize_simple_declaration():
    assert kinds("int a = 5;") == [
        ("keyword", "int"), ("ident", "a"), ("op", "="), ("number", "5"), ("op", ";"),
    ]


def test_keywords_are_distinguished_from_identifiers():
    toks = kinds("if ifx else elsey")
    assert toks[0] == ("keyword", "if")
    assert toks[1] == ("ident", "ifx")
    assert toks[2] == ("keyword", "else")
    assert toks[3] == ("ident", "elsey")


def test_multichar_operators_longest_match():
    assert [t for _, t in kinds("a <<= b >> c <= d < e")] == [
        "a", "<<=", "b", ">>", "c", "<=", "d", "<", "e",
    ]


def test_line_numbers_advance():
    toks = tokenize("int a;\nint b;\n")
    assert toks[0].line == 1
    assert toks[3].line == 2


def test_line_comments_are_skipped():
    assert kinds("int a; // comment\nint b;")[3] == ("keyword", "int")


def test_block_comments_are_skipped_and_track_lines():
    toks = tokenize("/* multi\nline */ int a;")
    assert toks[0].text == "int"
    assert toks[0].line == 2


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("/* never ends")


def test_preprocessor_lines_are_skipped():
    assert kinds("#include <stdio.h>\nint a;")[0] == ("keyword", "int")


def test_hex_literals():
    assert parse_int_literal("0x10") == 16
    assert parse_int_literal("0XFF") == 255


def test_integer_suffixes_are_swallowed():
    assert parse_int_literal("42UL") == 42
    assert parse_int_literal("7L") == 7


def test_char_literals_become_numbers():
    toks = kinds("'a' '\\n' '\\0'")
    assert [t for _, t in toks] == [str(ord("a")), "10", "0"]


def test_unknown_character_raises():
    with pytest.raises(LexError):
        tokenize("int a = $;")


def test_empty_input_yields_only_eof():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind == "eof"
