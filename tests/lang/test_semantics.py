import pytest

from repro.lang.semantics import (
    ALL_BINARY_OPS,
    eval_binop,
    eval_unop,
    is_commutative,
    wrap,
)
from repro.lang.types import CHAR, INT, LONG, UCHAR, UINT


def test_wrap_signed_overflow_wraps_two_complement():
    assert wrap(INT.max_value + 1, INT) == INT.min_value
    assert wrap(-1, UINT) == UINT.max_value
    assert wrap(300, CHAR) == 300 - 256
    assert wrap(300, UCHAR) == 44


def test_wrap_is_idempotent():
    for value in (-129, -1, 0, 127, 255, 1 << 40):
        assert wrap(wrap(value, CHAR), CHAR) == wrap(value, CHAR)


def test_division_truncates_toward_zero():
    assert eval_binop("/", -7, 2, INT) == -3
    assert eval_binop("/", 7, -2, INT) == -3
    assert eval_binop("%", -7, 2, INT) == -1
    assert eval_binop("%", 7, -2, INT) == 1


def test_division_by_zero_is_identity():
    assert eval_binop("/", 42, 0, INT) == 42
    assert eval_binop("%", 42, 0, INT) == 42
    assert eval_binop("/", -5, 0, LONG) == -5


def test_int_min_divided_by_minus_one_wraps():
    assert eval_binop("/", INT.min_value, -1, INT) == INT.min_value


def test_shift_counts_are_masked():
    assert eval_binop("<<", 1, 33, INT) == 2  # 33 & 31 == 1
    assert eval_binop(">>", 8, 35, INT) == 1
    assert eval_binop("<<", 1, 64, LONG) == 1  # 64 & 63 == 0


def test_right_shift_is_arithmetic_for_signed():
    assert eval_binop(">>", -8, 1, INT) == -4
    assert eval_binop(">>", UINT.max_value, 1, UINT) == UINT.max_value >> 1


def test_comparisons_yield_zero_or_one():
    assert eval_binop("<", -1, 0, INT) == 1
    assert eval_binop(">=", -1, 0, INT) == 0
    assert eval_binop("==", 5, 5, INT) == 1


def test_unary_operators():
    assert eval_unop("-", INT.min_value, INT) == INT.min_value  # wraps
    assert eval_unop("~", 0, INT) == -1
    assert eval_unop("!", 0, INT) == 1
    assert eval_unop("!", 17, INT) == 0


def test_commutativity_table_is_sound():
    for op in ALL_BINARY_OPS:
        if op in ("&&", "||"):
            continue
        if is_commutative(op):
            for a, b in ((3, 5), (-7, 2), (0, 9)):
                assert eval_binop(op, a, b, INT) == eval_binop(op, b, a, INT), op


def test_unknown_operator_raises():
    with pytest.raises(ValueError):
        eval_binop("**", 2, 3, INT)
    with pytest.raises(ValueError):
        eval_unop("+", 2, INT)


def test_multiplication_wraps_at_width():
    assert eval_binop("*", 1 << 20, 1 << 20, INT) == wrap(1 << 40, INT)
    assert eval_binop("*", 1 << 20, 1 << 20, LONG) == 1 << 40
