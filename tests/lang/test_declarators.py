from repro.lang.printer import declare, type_prefix
from repro.lang.types import CHAR, INT, LONG, ArrayType, PointerType, VoidType


def test_type_prefix_spellings():
    assert type_prefix(INT) == "int"
    assert type_prefix(VoidType()) == "void"
    assert type_prefix(PointerType(CHAR)) == "char *"
    assert type_prefix(ArrayType(LONG, 3)) == "long"


def test_declarators():
    assert declare(INT, "a") == "int a"
    assert declare(PointerType(CHAR), "p") == "char *p"
    assert declare(ArrayType(INT, 4), "xs") == "int xs[4]"


def test_declared_source_parses_back():
    from repro.frontend.typecheck import check_program
    from repro.lang import parse_program

    source = "\n".join(
        [
            declare(INT, "a") + ";",
            declare(PointerType(CHAR), "p") + ";",
            declare(ArrayType(INT, 4), "xs") + ";",
            "int main() { return a; }",
        ]
    )
    check_program(parse_program(source))
