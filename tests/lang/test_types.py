import pytest

from repro.lang.types import (
    CHAR,
    INT,
    LONG,
    SHORT,
    UCHAR,
    UINT,
    ULONG,
    USHORT,
    ArrayType,
    IntType,
    PointerType,
    int_type_by_name,
    promote,
    usual_arithmetic_conversion,
)


def test_ranges():
    assert (CHAR.min_value, CHAR.max_value) == (-128, 127)
    assert (UCHAR.min_value, UCHAR.max_value) == (0, 255)
    assert INT.max_value == 2**31 - 1
    assert ULONG.max_value == 2**64 - 1


def test_c_names_round_trip():
    for ty in (CHAR, UCHAR, SHORT, USHORT, INT, UINT, LONG, ULONG):
        assert int_type_by_name(ty.c_name) == ty


def test_unknown_type_name():
    with pytest.raises(ValueError):
        int_type_by_name("float")


def test_promotion_widens_to_int():
    assert promote(CHAR) == INT
    assert promote(USHORT) == INT
    assert promote(LONG) == LONG
    assert promote(UINT) == UINT


def test_usual_arithmetic_conversions():
    assert usual_arithmetic_conversion(CHAR, SHORT) == INT
    assert usual_arithmetic_conversion(INT, LONG) == LONG
    assert usual_arithmetic_conversion(UINT, INT) == UINT  # same rank: unsigned wins
    assert usual_arithmetic_conversion(UINT, LONG) == LONG  # wider signed wins
    assert usual_arithmetic_conversion(ULONG, LONG) == ULONG


def test_invalid_widths_rejected():
    with pytest.raises(ValueError):
        IntType(12, True)


def test_array_type_properties():
    arr = ArrayType(INT, 4)
    assert arr.element == INT and arr.length == 4
    with pytest.raises(ValueError):
        ArrayType(INT, 0)


def test_pointer_type_str():
    assert str(PointerType(CHAR)) == "char *"
