from repro.frontend.typecheck import check_program
from repro.interp import run_program
from repro.lang import parse_program, print_expr, print_program
from repro.lang.parser import parse_expression

ROUND_TRIP_SOURCES = [
    "static int a = 5;\nint main() { return a; }",
    """
    char buf[4] = {1, 2, 3, 4};
    int main() {
      char *p = &buf[2];
      long total = 0;
      for (int i = 0; i < 4; i++) {
        total += buf[i];
      }
      if (*p == 3) { total += 100; } else { total -= 1; }
      while (total > 90) { total -= 7; }
      do { total += 1; } while (total < 50);
      switch (total & 3) {
        case 0: total += 1; break;
        default: total += 2; break;
      }
      return (int)total;
    }
    """,
    """
    void ext(int x);
    static unsigned int g;
    static long helper(unsigned char c) { return c * 2; }
    int main() { g += 3; ext((int)helper(9)); return (int)g; }
    """,
]


def test_round_trip_preserves_semantics():
    for source in ROUND_TRIP_SOURCES:
        prog1 = parse_program(source)
        check_program(prog1)
        res1 = run_program(prog1)
        text = print_program(prog1)
        prog2 = parse_program(text)
        check_program(prog2)
        res2 = run_program(prog2)
        assert res1.exit_code == res2.exit_code
        assert res1.checksum == res2.checksum
        assert res1.marker_hits == res2.marker_hits


def test_second_print_is_fixpoint():
    for source in ROUND_TRIP_SOURCES:
        prog = parse_program(source)
        once = print_program(prog)
        twice = print_program(parse_program(once))
        assert once == twice


def test_precedence_parentheses_minimal_but_correct():
    expr = parse_expression("(1 + 2) * 3")
    assert print_expr(expr) == "(1 + 2) * 3"
    expr = parse_expression("1 + 2 * 3")
    assert print_expr(expr) == "1 + 2 * 3"


def test_safe_mode_wraps_division_and_shift():
    source = "int main() { int a = 7; int b = 0; return a / b + (a << 40); }"
    prog = parse_program(source)
    check_program(prog)
    text = print_program(prog, safe=True)
    assert "SAFE_DIV" in text
    assert "& 31" in text


def test_safe_mode_signed_add_goes_unsigned():
    source = "int main() { int a = 7; return a + a; }"
    prog = parse_program(source)
    check_program(prog)
    text = print_program(prog, safe=True)
    assert "unsigned int" in text


def test_plain_mode_has_no_safe_macros():
    source = "int main() { int a = 7; return a / 2; }"
    prog = parse_program(source)
    check_program(prog)
    assert "SAFE_DIV" not in print_program(prog)
