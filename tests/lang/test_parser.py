import pytest

from repro.lang import ast_nodes as ast
from repro.lang.parser import ParseError, parse_expression, parse_program
from repro.lang.types import CHAR, INT, LONG, ArrayType, PointerType, UINT


def test_global_scalar_with_initializer():
    prog = parse_program("static int a = 5;")
    g = prog.global_var("a")
    assert g.static and g.ty == INT and g.init == 5


def test_global_array_with_brace_initializer():
    prog = parse_program("int xs[3] = {1, 2, 3};")
    g = prog.global_var("xs")
    assert g.ty == ArrayType(INT, 3)
    assert g.init == [1, 2, 3]


def test_global_array_initializer_zero_fills():
    prog = parse_program("int xs[4] = {7};")
    assert prog.global_var("xs").init == [7, 0, 0, 0]


def test_global_pointer_initializer():
    prog = parse_program("char b[2]; static char *p = &b[1];")
    g = prog.global_var("p")
    assert g.ty == PointerType(CHAR)
    assert isinstance(g.init, ast.AddrOf)


def test_function_with_parameters_and_body():
    prog = parse_program("long f(int a, char *b) { return a; }")
    func = prog.function("f")
    assert func.return_ty == LONG
    assert [p.ty for p in func.params] == [INT, PointerType(CHAR)]


def test_extern_function_declaration():
    prog = parse_program("void marker(void);")
    decl = prog.extern_decls()[0]
    assert decl.name == "marker" and not decl.params


def test_if_else_chain():
    prog = parse_program(
        "int main() { int a = 0; if (a) { a = 1; } else if (a == 2) { a = 3; } return a; }"
    )
    body = prog.function("main").body
    if_stmt = body.stmts[1]
    assert isinstance(if_stmt, ast.If)
    assert isinstance(if_stmt.els.stmts[0], ast.If)


def test_for_loop_with_declaration_init():
    prog = parse_program("int main() { for (int i = 0; i < 4; i++) { } return 0; }")
    loop = prog.function("main").body.stmts[0]
    assert isinstance(loop, ast.For)
    assert isinstance(loop.init, ast.VarDecl)
    assert isinstance(loop.step, ast.Assign) and loop.step.op == "+"


def test_while_and_do_while():
    prog = parse_program(
        "int main() { int i = 3; while (i) { i--; } do { i++; } while (i < 3); return i; }"
    )
    stmts = prog.function("main").body.stmts
    assert isinstance(stmts[1], ast.While)
    assert isinstance(stmts[2], ast.DoWhile)


def test_switch_with_cases_and_default():
    prog = parse_program(
        """
        int main() {
          int a = 2;
          switch (a) {
            case 1: a = 10; break;
            case 2: a = 20; break;
            default: a = 30;
          }
          return a;
        }
        """
    )
    switch = prog.function("main").body.stmts[1]
    assert isinstance(switch, ast.Switch)
    assert [c.value for c in switch.cases] == [1, 2, None]


def test_operator_precedence():
    expr = parse_expression("1 + 2 * 3")
    assert isinstance(expr, ast.Binary) and expr.op == "+"
    assert isinstance(expr.rhs, ast.Binary) and expr.rhs.op == "*"


def test_unary_operators_and_address_of():
    expr = parse_expression("-~!x")
    assert isinstance(expr, ast.Unary) and expr.op == "-"
    addr = parse_expression("&xs[2]")
    assert isinstance(addr, ast.AddrOf)


def test_cast_expression():
    expr = parse_expression("(unsigned char)(x + 1)")
    assert isinstance(expr, ast.Cast)
    assert expr.target.width == 8 and not expr.target.signed


def test_compound_assignment_forms():
    prog = parse_program("int main() { int a = 1; a += 2; a <<= 1; a++; return a; }")
    stmts = prog.function("main").body.stmts
    assert stmts[1].op == "+"
    assert stmts[2].op == "<<"
    assert stmts[3].op == "+"  # a++ sugar


def test_ternary_desugars_to_arithmetic_select():
    prog = parse_program("int main() { int a = 1; int b = a ? 10 : 20; return b; }")
    decl = prog.function("main").body.stmts[1]
    assert isinstance(decl.init, ast.Binary) and decl.init.op == "|"


def test_assignment_to_non_lvalue_rejected():
    with pytest.raises(ParseError):
        parse_program("int main() { 1 = 2; return 0; }")


def test_missing_semicolon_rejected():
    with pytest.raises(ParseError):
        parse_program("int main() { int a = 1 return a; }")


def test_single_statement_bodies_become_blocks():
    prog = parse_program("int main() { int c = 1; if (c) c = 2; while (c) c--; return c; }")
    stmts = prog.function("main").body.stmts
    assert isinstance(stmts[1].then, ast.Block)
    assert isinstance(stmts[2].body, ast.Block)
