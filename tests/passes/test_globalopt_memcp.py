from repro.compilers.config import PipelineConfig
from repro.ir import instructions as ins

from .helpers import calls_to, count_instrs, run_passes

PRE = ["simplify-cfg", "mem2reg"]
POST = ["sccp", "instcombine", "adce", "simplify-cfg"]

LISTING_4A = """
    void marker(void);
    static int a = 0;
    int main() {
      if (a) { marker(); }
      a = 0;
      return 0;
    }
"""

LISTING_6A = """
    void marker(void);
    static int a = 0;
    int main() {
      if (a) { marker(); }
      a = 1;
      return 0;
    }
"""


def test_readonly_mode_requires_no_stores():
    cfg = PipelineConfig(global_fold_mode="readonly")
    module = run_passes(LISTING_4A, PRE + ["globalopt"] + POST, cfg)
    assert calls_to(module, "marker") == 1  # GCC's miss (paper Listing 4a)


def test_stored_init_mode_folds_reset_stores():
    cfg = PipelineConfig(global_fold_mode="stored-init")
    module = run_passes(LISTING_4A, PRE + ["globalopt"] + POST, cfg)
    assert calls_to(module, "marker") == 0  # LLVM catches it


def test_stored_init_mode_blocked_by_other_constant():
    cfg = PipelineConfig(global_fold_mode="stored-init")
    module = run_passes(LISTING_6A, PRE + ["globalopt"] + POST, cfg)
    assert calls_to(module, "marker") == 1  # paper Listing 6a: both miss


def test_flow_mode_folds_even_listing_6a():
    cfg = PipelineConfig(global_fold_mode="flow")
    module = run_passes(LISTING_6A, PRE + ["globalopt", "memcp"] + POST, cfg)
    assert calls_to(module, "marker") == 0  # old LLVM (pre-3.8) behaviour


def test_never_written_global_folds_in_every_mode():
    source = """
        void marker(void);
        static int k = 7;
        int main() {
          if (k != 7) { marker(); }
          return 0;
        }
    """
    for mode in ("readonly", "stored-init", "flow"):
        module = run_passes(
            source, PRE + ["globalopt"] + POST, PipelineConfig(global_fold_mode=mode)
        )
        assert calls_to(module, "marker") == 0, mode


def test_external_global_never_folds():
    source = """
        void marker(void);
        int k = 7;
        int main() {
          if (k != 7) { marker(); }
          return 0;
        }
    """
    module = run_passes(source, PRE + ["globalopt"] + POST)
    assert calls_to(module, "marker") == 1


def test_uniform_const_array_fold_is_gated():
    source = """
        void marker(void);
        int idx;
        static int b[2] = {0, 0};
        int main() {
          if (b[idx]) { marker(); }
          return 0;
        }
    """
    on = run_passes(
        source, PRE + ["globalopt"] + POST,
        PipelineConfig(fold_uniform_const_arrays=True),
    )
    assert calls_to(on, "marker") == 0  # LLVM folds it
    off = run_passes(
        source, PRE + ["globalopt"] + POST,
        PipelineConfig(fold_uniform_const_arrays=False),
    )
    assert calls_to(off, "marker") == 1  # GCC bug #99419 / paper 9f


def test_const_index_load_of_readonly_array_folds_everywhere():
    source = """
        void marker(void);
        static int b[3] = {4, 5, 6};
        int main() {
          if (b[1] != 5) { marker(); }
          return 0;
        }
    """
    module = run_passes(
        source, PRE + ["globalopt"] + POST,
        PipelineConfig(fold_uniform_const_arrays=False),
    )
    assert calls_to(module, "marker") == 0


def test_unread_static_global_stores_are_deleted():
    module = run_passes(
        """
        static int sink;
        int opaque_source(void);
        int main() {
          sink = opaque_source();
          sink = 3;
          return 0;
        }
        """,
        PRE + ["globalopt", "adce"],
    )
    assert count_instrs(module, ins.Store) == 0


def test_memcp_forwards_across_blocks():
    module = run_passes(
        """
        void marker(void);
        int opaque_source(void);
        static int g;
        int main() {
          g = 5;
          if (opaque_source()) { marker(); }  /* alive; keeps a join */
          if (g != 5) { marker(); }
          return 0;
        }
        """,
        PRE + ["memcp"] + POST,
    )
    assert calls_to(module, "marker") == 1  # only the alive one remains


def test_memcp_meet_requires_agreement():
    module = run_passes(
        """
        void marker(void);
        int opaque_source(void);
        static int g;
        int main() {
          if (opaque_source()) { g = 1; } else { g = 2; }
          if (g == 3) { marker(); }
          return 0;
        }
        """,
        PRE + ["memcp"] + POST,
    )
    # The meet of {g=1} and {g=2} is empty: no folding (conservative).
    assert calls_to(module, "marker") == 1


def test_memcp_meet_agreeing_branches_folds():
    module = run_passes(
        """
        void marker(void);
        int opaque_source(void);
        static int g;
        int main() {
          if (opaque_source()) { g = 4; } else { g = 4; }
          if (g != 4) { marker(); }
          return 0;
        }
        """,
        PRE + ["memcp"] + POST,
    )
    assert calls_to(module, "marker") == 0


def test_memcp_kills_on_defined_call():
    module = run_passes(
        """
        void marker(void);
        static int g;
        static void touch(void) { g = 9; }
        int main() {
          g = 5;
          touch();
          if (g != 5) { marker(); }
          return 0;
        }
        """,
        PRE + ["memcp"] + POST,
    )
    assert calls_to(module, "marker") == 1  # conservative: callee stores


def test_memcp_survives_opaque_calls():
    module = run_passes(
        """
        void marker(void);
        void opaque_sink(void);
        static int g;
        int main() {
          g = 5;
          opaque_sink();
          if (g != 5) { marker(); }
          return 0;
        }
        """,
        PRE + ["memcp"] + POST,
    )
    assert calls_to(module, "marker") == 0


def test_memcp_array_cells_with_constant_indices():
    module = run_passes(
        """
        void marker(void);
        static int xs[3];
        int main() {
          xs[0] = 1;
          xs[1] = 2;
          if (xs[0] + xs[1] != 3) { marker(); }
          return 0;
        }
        """,
        PRE + ["memcp"] + POST,
    )
    assert calls_to(module, "marker") == 0


def test_memcp_unknown_index_store_kills_object():
    module = run_passes(
        """
        void marker(void);
        int opaque_source(void);
        static int xs[3];
        int main() {
          xs[0] = 1;
          int i = opaque_source();
          xs[i] = 9;
          if (xs[0] != 1) { marker(); }
          return 0;
        }
        """,
        PRE + ["memcp"] + POST,
    )
    assert calls_to(module, "marker") == 1  # xs[i] may be xs[0]
