from repro.compilers.config import PipelineConfig
from repro.ir import instructions as ins

from .helpers import calls_to, count_instrs, run_passes

PRE = ["simplify-cfg", "mem2reg", "sccp"]


def test_constant_branch_is_folded():
    module = run_passes(
        """
        void marker(void);
        int main() {
          int a = 0;
          if (a) { marker(); }
          return a;
        }
        """,
        PRE,
    )
    assert calls_to(module, "marker") == 0


def test_constants_propagate_through_phis():
    module = run_passes(
        """
        void marker(void);
        int opaque_source(void);
        int main() {
          int x = 5;
          if (opaque_source()) { x = 5; }
          if (x != 5) { marker(); }
          return x;
        }
        """,
        PRE + ["simplify-cfg", "sccp"],
    )
    assert calls_to(module, "marker") == 0


def test_sccp_tracks_reachability_not_just_values():
    # x is only ever 1 on executable paths; the dead branch assigning 2
    # must not pollute the lattice.
    module = run_passes(
        """
        void marker(void);
        int main() {
          int x = 1;
          if (0) { x = 2; }
          if (x == 2) { marker(); }
          return x;
        }
        """,
        PRE,
    )
    assert calls_to(module, "marker") == 0


def test_pointer_compare_folds_under_all_rule():
    source = """
        void marker(void);
        char a;
        char b[2];
        int main() {
          char *p = &a;
          char *q = &b[1];
          if (p == q) { marker(); }
          return 0;
        }
    """
    module = run_passes(source, PRE, PipelineConfig(addr_cmp="all"))
    assert calls_to(module, "marker") == 0


def test_pointer_compare_zero_index_rule_is_weaker():
    source = """
        void marker(void);
        char a;
        char b[2];
        int main() {
          char *p = &a;
          char *q = &b[1];
          if (p == q) { marker(); }
          return 0;
        }
    """
    module = run_passes(source, PRE, PipelineConfig(addr_cmp="zero-index"))
    assert calls_to(module, "marker") == 1  # missed, like LLVM's EarlyCSE


def test_same_object_different_index_folds_always():
    source = """
        void marker(void);
        char b[4];
        int main() {
          char *p = &b[1];
          char *q = &b[3];
          if (p == q) { marker(); }
          return 0;
        }
    """
    module = run_passes(source, PRE, PipelineConfig(addr_cmp="zero-index"))
    assert calls_to(module, "marker") == 0


def test_null_compare_folds():
    module = run_passes(
        """
        void marker(void);
        char a;
        int main() {
          char *p = &a;
          if (p == 0) { marker(); }
          return 0;
        }
        """,
        PRE,
    )
    assert calls_to(module, "marker") == 0


def test_arithmetic_chains_fold_to_constants():
    module = run_passes(
        """
        int main() {
          int a = 6;
          int b = a * 7;
          int c = b - 2;
          return c / 4;
        }
        """,
        PRE + ["adce"],
    )
    main = module.functions["main"]
    assert count_instrs(module, ins.BinOp) == 0
    ret = main.entry.terminator
    assert isinstance(ret, ins.Ret)
