from repro.ir import instructions as ins
from repro.ir.function import IRFunction
from repro.ir.values import const_int
from repro.lang.types import INT
from repro.passes.utils import (
    clone_region,
    function_size,
    replace_all_uses,
    resolve_mapping,
    split_block,
)


def _simple_function():
    func = IRFunction("f", INT, [])
    entry = func.new_block("entry")
    a = entry.append(ins.BinOp("+", const_int(1, INT), const_int(2, INT), INT))
    b = entry.append(ins.BinOp("*", a, const_int(3, INT), INT))
    entry.append(ins.Ret(b))
    return func, a, b


def test_resolve_mapping_collapses_chains():
    x, y, z = object(), object(), object()
    resolved = resolve_mapping({x: y, y: z})
    assert resolved[x] is z
    assert resolved[y] is z


def test_replace_all_uses():
    func, a, b = _simple_function()
    replacement = const_int(9, INT)
    assert replace_all_uses(func, {a: replacement})
    assert b.lhs is replacement


def test_split_block_moves_tail_and_terminator():
    func, a, b = _simple_function()
    entry = func.entry
    tail = split_block(func, entry, 1, "tail")
    assert entry.instrs == [a]
    assert tail.instrs[-1] is not None and isinstance(tail.terminator, ins.Ret)
    assert b.block is tail


def test_split_block_fixes_successor_phis():
    func = IRFunction("f", INT, [])
    a = func.new_block("a")
    join = func.new_block("join")
    value = a.append(ins.BinOp("+", const_int(1, INT), const_int(1, INT), INT))
    a.append(ins.Jmp(join))
    phi = ins.Phi(INT, [(a, value)])
    join.insert_phi(phi)
    join.append(ins.Ret(phi))
    tail = split_block(func, a, 1, "tail")
    assert phi.incomings[0][0] is tail


def test_clone_region_remaps_internal_edges():
    func, a, b = _simple_function()
    value_map = {}
    block_map = clone_region(func, [func.entry], value_map, "c")
    clone = block_map[id(func.entry)]
    assert clone is not func.entry
    cloned_b = value_map[b]
    assert isinstance(cloned_b, ins.BinOp)
    assert cloned_b.lhs is value_map[a]  # operand remapped to the clone


def test_clone_region_respects_seeded_mappings():
    func, a, b = _simple_function()
    seeded = const_int(42, INT)
    value_map = {a: seeded}
    clone_region(func, [func.entry], value_map, "c")
    assert value_map[a] is seeded  # seed not overwritten
    cloned_b = value_map[b]
    assert cloned_b.lhs is seeded


def test_function_size_counts_instructions():
    func, _, _ = _simple_function()
    assert function_size(func) == 3
