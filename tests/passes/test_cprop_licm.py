from repro.compilers.config import PipelineConfig
from repro.ir import instructions as ins

from .helpers import calls_to, count_instrs, run_passes

PRE = ["simplify-cfg", "mem2reg"]
CLEAN = ["sccp", "instcombine", "adce", "simplify-cfg"]


def test_cprop_folds_redundant_recheck():
    module = run_passes(
        """
        void marker(void);
        int opaque_source(void);
        int main() {
          int x = opaque_source();
          if (x == 5) {
            if (x != 5) { marker(); }
          }
          return 0;
        }
        """,
        PRE + ["cprop"] + CLEAN,
    )
    assert calls_to(module, "marker") == 0


def test_cprop_refines_through_arithmetic():
    module = run_passes(
        """
        void marker(void);
        int opaque_source(void);
        int main() {
          int x = opaque_source();
          if (x == 3) {
            if (x * 10 != 30) { marker(); }
          }
          return 0;
        }
        """,
        PRE + ["cprop"] + CLEAN,
    )
    assert calls_to(module, "marker") == 0


def test_cprop_false_edge_of_inequality():
    module = run_passes(
        """
        void marker(void);
        int opaque_source(void);
        int main() {
          int x = opaque_source();
          if (x != 9) {
            return 0;
          }
          if (x == 9) { return 1; }
          marker();   /* unreachable: x must be 9 here */
          return 2;
        }
        """,
        PRE + ["cprop"] + CLEAN,
    )
    assert calls_to(module, "marker") == 0


def test_cprop_does_not_refine_unrelated_paths():
    module = run_passes(
        """
        void marker(void);
        int opaque_source(void);
        int main() {
          int x = opaque_source();
          if (x == 5) {
            x += 0;
          }
          if (x != 5) { marker(); }  /* reachable: first if not taken */
          return 0;
        }
        """,
        PRE + ["cprop"] + CLEAN,
    )
    assert calls_to(module, "marker") == 1


def test_licm_hoists_invariant_arithmetic():
    module = run_passes(
        """
        int opaque_source(void);
        static int out[4];
        int main() {
          int a = opaque_source();
          int n = opaque_source();
          for (int i = 0; i < n; i++) {
            out[i & 3] = a * 7 + 1;
          }
          return 0;
        }
        """,
        PRE + ["licm"],
    )
    # The multiply/add moved out of the loop body: they now live in a
    # block that is not part of any loop.
    from repro.analysis.loops import find_loops
    from repro.ir.dominators import DominatorTree

    main = module.functions["main"]
    loops = find_loops(main, DominatorTree(main))
    assert loops
    inside = loops[0].block_ids()
    for block in main.blocks:
        for instr in block.instrs:
            if isinstance(instr, ins.BinOp) and instr.op == "*":
                assert id(block) not in inside


def test_licm_hoists_loop_invariant_load():
    module = run_passes(
        """
        int opaque_source(void);
        static int factor = 3;
        static long acc;
        int main() {
          int n = opaque_source();
          for (int i = 0; i < n; i++) {
            acc += factor;   /* factor never written: load hoists */
          }
          return (int)acc;
        }
        """,
        PRE + ["licm"],
    )
    from repro.analysis.loops import find_loops
    from repro.ir.dominators import DominatorTree

    main = module.functions["main"]
    loops = find_loops(main, DominatorTree(main))
    inside = loops[0].block_ids()
    hoisted_loads = [
        i for b in main.blocks for i in b.instrs
        if isinstance(i, ins.Load) and id(i.block) not in inside
    ]
    assert hoisted_loads


def test_licm_keeps_load_of_written_cell_inside():
    module = run_passes(
        """
        int opaque_source(void);
        static int cell;
        static long acc;
        int main() {
          int n = opaque_source();
          for (int i = 0; i < n; i++) {
            acc += cell;
            cell += 1;       /* cell written: its load must stay */
          }
          return (int)acc;
        }
        """,
        PRE + ["licm"],
    )
    from repro.analysis.loops import find_loops
    from repro.ir.dominators import DominatorTree

    from repro.analysis.alias import trace_root

    main = module.functions["main"]
    loops = find_loops(main, DominatorTree(main))
    inside = loops[0].block_ids()
    cell_loads = [
        i for b in main.blocks for i in b.instrs
        if isinstance(i, ins.Load) and trace_root(i.address).key == "cell"
    ]
    assert cell_loads
    for load in cell_loads:
        assert id(load.block) in inside
