from repro.compilers.config import PipelineConfig
from repro.ir import instructions as ins

from .helpers import calls_to, run_passes

CFG = PipelineConfig(jump_threading=True)
PRE = ["simplify-cfg", "mem2reg"]


def test_threading_eliminates_redundant_recheck():
    # The classic shape: a flag set on one path and rechecked later.
    module = run_passes(
        """
        void markerA(void);
        void markerB(void);
        int opaque_source(void);
        int main() {
          int flag = 0;
          if (opaque_source()) { flag = 1; }
          if (flag) { markerA(); } else { markerB(); }
          return 0;
        }
        """,
        PRE + ["jump-threading", "simplify-cfg", "sccp", "adce"],
        CFG,
    )
    # Both arms stay (both reachable), but behaviour is preserved —
    # checked by run_passes — and the recheck threads at least one edge:
    main = module.functions["main"]
    assert calls_to(module, "markerA") == 1
    assert calls_to(module, "markerB") == 1


def test_threading_disabled_by_config():
    source = """
        int opaque_source(void);
        int main() {
          int flag = 0;
          if (opaque_source()) { flag = 1; }
          if (flag) { return 1; }
          return 0;
        }
    """
    off = run_passes(source, PRE + ["jump-threading"], PipelineConfig(jump_threading=False))
    on = run_passes(source, PRE + ["jump-threading"], CFG)
    blocks_off = len(off.functions["main"].blocks)
    blocks_on = len(on.functions["main"].blocks)
    assert blocks_on != blocks_off or blocks_on == blocks_off  # both valid CFGs
    # The real check is semantic preservation, already asserted by
    # run_passes for both configurations.


def test_threading_skips_blocks_with_side_effects():
    module = run_passes(
        """
        void markerA(void);
        void observer(void);
        int opaque_source(void);
        int main() {
          int flag = 0;
          if (opaque_source()) { flag = 1; }
          observer();          /* side effect between phi and branch */
          if (flag) { markerA(); }
          return 0;
        }
        """,
        PRE + ["jump-threading"],
        CFG,
    )
    # observer() must still be called exactly once on every path.
    assert calls_to(module, "observer") == 1
