from repro.compilers.config import PipelineConfig

from .helpers import calls_to, run_passes

PRE = ["simplify-cfg", "mem2reg"]
CLEAN = ["sccp", "instcombine", "adce", "simplify-cfg"]


def test_memcp_constant_survives_a_loop_that_cannot_write_it():
    module = run_passes(
        """
        void marker(void);
        int opaque_source(void);
        static int g;
        static long acc;
        int main() {
          g = 5;
          int n = opaque_source();
          for (int i = 0; i < n; i++) {
            acc += i;             /* writes acc, never g */
          }
          if (g != 5) { marker(); }
          return (int)acc;
        }
        """,
        PRE + ["memcp"] + CLEAN,
    )
    assert calls_to(module, "marker") == 0


def test_memcp_kills_constant_written_inside_loop():
    module = run_passes(
        """
        void marker(void);
        int opaque_source(void);
        static int g;
        int main() {
          g = 5;
          int n = opaque_source();
          for (int i = 0; i < n; i++) {
            g = i;                /* may rewrite g */
          }
          if (g != 5) { marker(); }
          return 0;
        }
        """,
        PRE + ["memcp"] + CLEAN,
    )
    assert calls_to(module, "marker") == 1


def test_memcp_loop_body_sees_preheader_constants():
    module = run_passes(
        """
        void marker(void);
        int opaque_source(void);
        static int limit;
        static long acc;
        int main() {
          limit = 100;
          int n = opaque_source();
          for (int i = 0; i < n; i++) {
            if (limit != 100) { marker(); }   /* dead inside the loop */
            acc += 1;
          }
          return (int)acc;
        }
        """,
        PRE + ["memcp"] + CLEAN,
    )
    assert calls_to(module, "marker") == 0


def test_memcp_same_constant_reestablished_in_loop():
    module = run_passes(
        """
        void marker(void);
        int opaque_source(void);
        static int g;
        int main() {
          g = 7;
          int n = opaque_source();
          for (int i = 0; i < n; i++) {
            g = 7;                /* rewrites the same constant */
          }
          if (g != 7) { marker(); }
          return 0;
        }
        """,
        PRE + ["memcp"] + CLEAN,
    )
    assert calls_to(module, "marker") == 0


def test_memcp_flow_seed_only_for_main():
    source = """
        void marker(void);
        static int g = 4;
        static int probe(void) {
          if (g != 4) { marker(); }
          return 0;
        }
        int main() {
          int r = probe();
          g = 9;
          return r;
        }
    """
    # Even in flow mode the *callee* cannot assume the initializer —
    # only main's entry is the program start.
    module = run_passes(
        source,
        PRE + ["memcp"] + CLEAN,
        PipelineConfig(global_fold_mode="flow", inline_budget=0,
                       inline_single_call_bonus=0),
    )
    assert calls_to(module, "marker") == 1
