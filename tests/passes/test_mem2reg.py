from repro.ir import instructions as ins

from .helpers import count_instrs, run_passes

BASE = ["simplify-cfg", "mem2reg"]


def test_scalar_locals_are_promoted():
    module = run_passes(
        "int main() { int a = 1; int b = a + 2; return b; }", BASE
    )
    assert count_instrs(module, ins.Alloca) == 0
    assert count_instrs(module, ins.Load) == 0


def test_branchy_variable_gets_phi():
    module = run_passes(
        """
        int opaque_source(void);
        int main() {
          int a = opaque_source();
          int r = 0;
          if (a) { r = 1; } else { r = 2; }
          return r;
        }
        """,
        BASE,
    )
    assert count_instrs(module, ins.Phi) >= 1
    assert count_instrs(module, ins.Alloca) == 0


def test_loop_variable_gets_phi():
    module = run_passes(
        """
        int opaque_source(void);
        int main() {
          int n = opaque_source();
          int i = 0;
          int acc = 0;
          while (i < n) { acc += i; i += 1; }
          return acc;
        }
        """,
        BASE,
    )
    assert count_instrs(module, ins.Phi) >= 2


def test_arrays_are_not_promoted():
    module = run_passes(
        "int main() { int xs[2] = {1, 2}; return xs[0]; }", BASE
    )
    assert count_instrs(module, ins.Alloca) == 1


def test_address_taken_locals_are_not_promoted():
    module = run_passes(
        """
        int opaque_take(char *p);
        int main() {
          char c = 3;
          opaque_take(&c);
          return c;
        }
        """,
        BASE,
    )
    assert count_instrs(module, ins.Alloca) == 1


def test_pointer_slots_are_promoted():
    module = run_passes(
        """
        char g[2];
        int main() {
          char *p = &g[1];
          *p = 7;
          return g[1];
        }
        """,
        BASE,
    )
    # The pointer variable p is gone; only the global accesses remain.
    assert count_instrs(module, ins.Alloca) == 0
    assert count_instrs(module, ins.LoadPtr) == 0
