"""Helpers for pass unit tests."""

from __future__ import annotations

from repro.compilers.config import PipelineConfig
from repro.frontend.lower import lower_program
from repro.frontend.typecheck import check_program
from repro.interp import run_program
from repro.ir import instructions as ins
from repro.ir import run_module, verify_module
from repro.ir.function import Module
from repro.lang import parse_program
from repro.passes.registry import PASS_REGISTRY


def build(source: str) -> Module:
    program = parse_program(source)
    info = check_program(program)
    return lower_program(program, info)


def run_passes(source: str, passes: list[str], config: PipelineConfig | None = None):
    """Lower, run the given pass names, verify, and check semantics
    against the reference interpreter.  Returns the module."""
    program = parse_program(source)
    info = check_program(program)
    ref = run_program(program, info=info)
    module = lower_program(program, info)
    config = config or PipelineConfig()
    for name in passes:
        PASS_REGISTRY[name](module, config)
        verify_module(module)
    got = run_module(module)
    assert got.exit_code == ref.exit_code
    assert got.marker_hits == ref.marker_hits
    assert got.checksum == ref.checksum
    assert got.call_trace == ref.call_trace
    return module


def count_instrs(module: Module, kind) -> int:
    return sum(
        1
        for func in module.functions.values()
        for block in func.blocks
        for instr in block.instrs
        if isinstance(instr, kind)
    )


def calls_to(module: Module, name: str) -> int:
    return sum(
        1
        for func in module.functions.values()
        for block in func.blocks
        for instr in block.instrs
        if isinstance(instr, ins.Call) and instr.callee == name
    )
