from repro.compilers.config import PipelineConfig
from repro.ir import instructions as ins

from .helpers import calls_to, count_instrs, run_passes

PRE = ["simplify-cfg", "mem2reg"]
FOLD = ["memcp", "gvn", "sccp", "instcombine", "memcp", "sccp", "adce", "simplify-cfg"]


def test_counted_for_loop_fully_unrolls():
    module = run_passes(
        """
        int main() {
          int acc = 0;
          for (int i = 0; i < 10; i++) { acc += i; }
          return acc;
        }
        """,
        PRE + ["unroll"] + FOLD,
    )
    main = module.functions["main"]
    assert len(main.blocks) == 1
    term = main.entry.terminator
    assert isinstance(term, ins.Ret)
    from repro.ir.values import Constant

    assert isinstance(term.value, Constant) and term.value.value == 45


def test_zero_trip_loop_unrolls_to_nothing():
    module = run_passes(
        """
        void marker(void);
        int main() {
          for (int i = 0; i < 0; i++) { marker(); }
          return 0;
        }
        """,
        PRE + ["unroll"] + FOLD,
    )
    assert calls_to(module, "marker") == 0


def test_loop_with_internal_branch_still_unrolls():
    module = run_passes(
        """
        int opaque_source(void);
        int main() {
          int p = opaque_source();
          int acc = 0;
          for (int i = 0; i < 4; i++) {
            if (p) { acc += 1; } else { acc += 2; }
          }
          return acc;
        }
        """,
        PRE + ["unroll"] + FOLD,
    )
    # Unrolled: no loop left (no block dominates itself via back edge).
    from repro.analysis.loops import find_loops
    from repro.ir.dominators import DominatorTree

    main = module.functions["main"]
    assert find_loops(main, DominatorTree(main)) == []


def test_unroll_respects_trip_limit():
    source = """
        int main() {
          int acc = 0;
          for (int i = 0; i < 100; i++) { acc += 1; }
          return acc;
        }
    """
    module = run_passes(source, PRE + ["unroll"], PipelineConfig(unroll_max_trip=16))
    from repro.analysis.loops import find_loops
    from repro.ir.dominators import DominatorTree

    main = module.functions["main"]
    assert find_loops(main, DominatorTree(main))  # still a loop


def test_unknown_bound_loop_not_unrolled():
    module = run_passes(
        """
        int opaque_source(void);
        int main() {
          int n = opaque_source();
          int acc = 0;
          for (int i = 0; i < n; i++) { acc += 1; }
          return acc;
        }
        """,
        PRE + ["unroll"],
    )
    from repro.analysis.loops import find_loops
    from repro.ir.dominators import DominatorTree

    main = module.functions["main"]
    assert find_loops(main, DominatorTree(main))


def test_vectorizer_claims_loop_and_blocks_unroll():
    source = """
        void marker(void);
        static int c[4];
        int main() {
          for (int b = 0; b < 4; b++) { c[b] = 7; }
          if (c[0] != 7) { marker(); }
          return 0;
        }
    """
    blocked = run_passes(
        source, PRE + ["vectorize", "unroll"] + FOLD,
        PipelineConfig(vectorize=True, vectorize_min_trip=4),
    )
    assert calls_to(blocked, "marker") == 1  # paper Listing 9e
    free = run_passes(
        source, PRE + ["vectorize", "unroll"] + FOLD,
        PipelineConfig(vectorize=False),
    )
    assert calls_to(free, "marker") == 0


def test_vectorizer_skips_short_loops():
    source = """
        void marker(void);
        static int c[2];
        int main() {
          for (int b = 0; b < 2; b++) { c[b] = 7; }
          if (c[0] != 7) { marker(); }
          return 0;
        }
    """
    module = run_passes(
        source, PRE + ["vectorize", "unroll"] + FOLD,
        PipelineConfig(vectorize=True, vectorize_min_trip=4),
    )
    assert calls_to(module, "marker") == 0


def test_unswitch_versions_invariant_branch():
    source = """
        int opaque_source(void);
        int acc;
        int main() {
          int p = opaque_source();
          int n = opaque_source();
          for (int i = 0; i < n; i++) {
            if (p) { acc += 1; } else { acc += 2; }
          }
          return acc;
        }
    """
    module = run_passes(
        source, PRE + ["unswitch"], PipelineConfig(unswitch=True)
    )
    # Two loop versions exist now.
    from repro.analysis.loops import find_loops
    from repro.ir.dominators import DominatorTree

    main = module.functions["main"]
    assert len(find_loops(main, DominatorTree(main))) == 2


def test_inline_called_once_static():
    module = run_passes(
        """
        void marker(void);
        static int helper(int x) {
          if (x == 0) { marker(); }
          return x * 2;
        }
        int main() { return helper(21); }
        """,
        PRE + ["inline", "mem2reg"] + FOLD,
    )
    assert "helper" not in module.functions  # inlined and dropped
    assert calls_to(module, "marker") == 0  # x == 21 propagated


def test_inline_respects_budget_for_multi_site_callees():
    source = """
        static int big(int x) {
          int acc = x;
          acc += 1; acc += 2; acc += 3; acc += 4; acc += 5;
          acc += 6; acc += 7; acc += 8; acc += 9; acc += 10;
          return acc;
        }
        int main() { return big(1) + big(2) + big(3); }
    """
    module = run_passes(
        source, PRE + ["inline"],
        PipelineConfig(inline_budget=5, inline_single_call_bonus=0),
    )
    assert "big" in module.functions
    assert calls_to(module, "big") == 3


def test_inline_handles_multiple_returns():
    module = run_passes(
        """
        static int pick(int x) {
          if (x > 10) { return 1; }
          return 2;
        }
        int main() { return pick(50) * 10 + pick(3); }
        """,
        PRE + ["inline", "mem2reg"] + FOLD,
    )
    main = module.functions["main"]
    term = main.entry.terminator
    from repro.ir.values import Constant

    assert isinstance(term, ins.Ret)
    assert isinstance(term.value, Constant) and term.value.value == 12


def test_recursive_functions_are_not_inlined():
    module = run_passes(
        """
        static int down(int x) {
          if (x <= 0) { return 0; }
          return down(x - 1) + 1;
        }
        int main() { return down(5); }
        """,
        PRE + ["inline"],
    )
    assert "down" in module.functions
    assert calls_to(module, "down") >= 1


def test_vrp_folds_type_range_comparisons():
    module = run_passes(
        """
        void marker(void);
        int opaque_source(void);
        int main() {
          char narrow = opaque_source();
          if (narrow > 1000) { marker(); }
          return 0;
        }
        """,
        PRE + ["vrp", "sccp", "adce", "simplify-cfg"],
        PipelineConfig(vrp=True),
    )
    assert calls_to(module, "marker") == 0


def test_vrp_folds_masked_ranges():
    module = run_passes(
        """
        void marker(void);
        int opaque_source(void);
        int main() {
          int x = opaque_source();
          if ((x & 7) > 9) { marker(); }
          if (x % 5 == 11) { marker(); }
          return 0;
        }
        """,
        PRE + ["vrp", "sccp", "adce", "simplify-cfg"],
        PipelineConfig(vrp=True),
    )
    assert calls_to(module, "marker") == 0


def test_vrp_gate_off_keeps_branches():
    module = run_passes(
        """
        void marker(void);
        int opaque_source(void);
        int main() {
          int x = opaque_source();
          if ((x & 7) > 9) { marker(); }
          return 0;
        }
        """,
        PRE + ["vrp"],
        PipelineConfig(vrp=False),
    )
    assert calls_to(module, "marker") == 1


def test_jump_threading_threads_constant_phi_edges():
    source = """
        void markerA(void);
        int opaque_source(void);
        int main() {
          int cond = 0;
          if (opaque_source()) { cond = 1; }
          if (cond == 0) { markerA(); }
          return 0;
        }
    """
    module = run_passes(
        source,
        PRE + ["jump-threading", "simplify-cfg"],
        PipelineConfig(jump_threading=True),
    )
    # markerA is alive (cond==0 on the untaken path) — threading must
    # preserve behaviour; this is covered by run_passes' semantic check.
    assert calls_to(module, "markerA") >= 1


def test_do_while_latch_exit_unrolls():
    module = run_passes(
        """
        void marker(void);
        static int g[3];
        int main() {
          int i = 0;
          do {
            g[i] = 4;
            i += 1;
          } while (i < 3);
          if (g[1] != 4) { marker(); }
          return 0;
        }
        """,
        PRE + ["unroll"] + FOLD,
    )
    assert calls_to(module, "marker") == 0
    from repro.analysis.loops import find_loops
    from repro.ir.dominators import DominatorTree

    main = module.functions["main"]
    assert find_loops(main, DominatorTree(main)) == []


def test_do_while_single_iteration():
    module = run_passes(
        """
        void marker(void);
        static int g;
        int main() {
          int i = 9;
          do { g = i; i += 1; } while (i < 3);
          if (g != 9) { marker(); }
          return 0;
        }
        """,
        PRE + ["unroll"] + FOLD,
    )
    assert calls_to(module, "marker") == 0


def test_while_loop_with_trailing_decrement_unrolls():
    # The generator's while form: counter decremented inside the body.
    # The accumulator is local, so mem2reg + unrolling fold it fully.
    # (A *static global* accumulator would stay unfolded: its initial
    # value is exactly what the paper's Listing 4a says these
    # compilers cannot use.)
    module = run_passes(
        """
        void marker(void);
        int main() {
          int w = 4;
          int total = 0;
          while (w > 0) {
            total += 2;
            w -= 1;
          }
          if (total != 8) { marker(); }
          return 0;
        }
        """,
        PRE + ["unroll"] + FOLD,
    )
    assert calls_to(module, "marker") == 0
