"""Per-pass translation validation on random programs.

Every optimization pass, run in isolation after SSA construction, must
preserve the reference semantics on generator output.  This localizes
miscompilations to a single pass, unlike the whole-pipeline
integration tests.
"""

import pytest

from repro.compilers.config import PipelineConfig
from repro.core.markers import instrument_program
from repro.frontend.lower import lower_program
from repro.frontend.typecheck import check_program
from repro.generator import GeneratorConfig, generate_program
from repro.interp import run_program
from repro.ir import run_module, verify_module
from repro.passes.registry import PASS_REGISTRY

SEEDS = (3, 11, 27)

_CONFIG = PipelineConfig(
    vrp=True,
    jump_threading=True,
    unswitch=True,
    vectorize=True,
    gvn_across_calls=True,
)

_SMALL = GeneratorConfig(
    min_globals=3, max_globals=6, min_functions=1, max_functions=2,
    min_block_stmts=1, max_block_stmts=4, max_depth=2,
)

PASSES = sorted(PASS_REGISTRY)


@pytest.mark.parametrize("pass_name", PASSES)
@pytest.mark.parametrize("seed", SEEDS)
def test_single_pass_preserves_semantics(pass_name, seed):
    inst = instrument_program(generate_program(seed, _SMALL))
    info = check_program(inst.program)
    ref = run_program(inst.program, info=info)

    module = lower_program(inst.program, info)
    for prep in ("simplify-cfg", "mem2reg"):
        PASS_REGISTRY[prep](module, _CONFIG)
    PASS_REGISTRY[pass_name](module, _CONFIG)
    verify_module(module)
    got = run_module(module)
    assert got.exit_code == ref.exit_code, pass_name
    assert got.marker_hits == ref.marker_hits, pass_name
    assert got.checksum == ref.checksum, pass_name
    assert got.call_trace == ref.call_trace, pass_name


@pytest.mark.parametrize("seed", SEEDS)
def test_pass_pairs_compose(seed):
    """A handful of historically-delicate pass pairs."""
    pairs = [
        ("unswitch", "unroll"),
        ("vectorize", "unroll"),
        ("inline", "mem2reg"),
        ("jump-threading", "simplify-cfg"),
        ("licm", "gvn"),
        ("cprop", "sccp"),
    ]
    inst = instrument_program(generate_program(seed, _SMALL))
    info = check_program(inst.program)
    ref = run_program(inst.program, info=info)
    for first, second in pairs:
        module = lower_program(inst.program, info)
        for name in ("simplify-cfg", "mem2reg", first, second):
            PASS_REGISTRY[name](module, _CONFIG)
        verify_module(module)
        got = run_module(module)
        assert got.marker_hits == ref.marker_hits, (first, second)
        assert got.checksum == ref.checksum, (first, second)
