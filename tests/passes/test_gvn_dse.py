from repro.compilers.config import PipelineConfig
from repro.ir import instructions as ins

from .helpers import calls_to, count_instrs, run_passes

PRE = ["simplify-cfg", "mem2reg"]


def test_pure_expressions_are_numbered():
    module = run_passes(
        """
        int opaque_source(void);
        int main() {
          int x = opaque_source();
          int a = x * 3 + 1;
          int b = x * 3 + 1;
          return a - b;
        }
        """,
        PRE + ["gvn", "instcombine", "sccp", "adce"],
    )
    # a - b folds to 0 once both sides share a value number.
    assert count_instrs(module, ins.BinOp) == 0


def test_commutative_operands_share_a_number():
    module = run_passes(
        """
        int opaque_source(void);
        int main() {
          int x = opaque_source();
          int y = opaque_source();
          return (x + y) - (y + x);
        }
        """,
        PRE + ["gvn", "instcombine", "adce"],
    )
    assert count_instrs(module, ins.BinOp) == 0


def test_store_to_load_forwarding_within_block():
    module = run_passes(
        """
        void marker(void);
        static int g;
        int opaque_source(void);
        int main() {
          int v = opaque_source();
          g = v;
          if (g != v) { marker(); }
          return 0;
        }
        """,
        PRE + ["gvn", "instcombine", "sccp", "adce", "simplify-cfg"],
    )
    assert calls_to(module, "marker") == 0


def test_forwarding_across_opaque_calls_is_gated():
    source = """
        void marker(void);
        void opaque_sink(void);
        int opaque_source(void);
        int main() {
          long t[2];
          t[0] = opaque_source();
          long x = t[0];
          opaque_sink();
          if (t[0] != x) { marker(); }
          return 0;
        }
    """
    passes = PRE + ["gvn", "instcombine", "sccp", "adce", "simplify-cfg"]
    kept = run_passes(source, passes, PipelineConfig(gvn_across_calls=False))
    assert calls_to(kept, "marker") == 1
    gone = run_passes(source, passes, PipelineConfig(gvn_across_calls=True))
    assert calls_to(gone, "marker") == 0


def test_forwarding_killed_by_may_alias_store():
    module = run_passes(
        """
        void marker(void);
        int opaque_source(void);
        static int g;
        int main() {
          g = 1;
          int i = opaque_source();
          int xs[2];
          xs[i] = 5;     /* cannot alias g */
          if (g != 1) { marker(); }
          return 0;
        }
        """,
        PRE + ["memcp", "sccp", "adce", "simplify-cfg"],
    )
    assert calls_to(module, "marker") == 0


def test_dse_removes_overwritten_store():
    module = run_passes(
        """
        static int g;
        int main() {
          g = 1;
          g = 2;
          return g;
        }
        """,
        PRE + ["dse"],
    )
    assert count_instrs(module, ins.Store) == 1


def test_dse_keeps_store_with_intervening_read():
    module = run_passes(
        """
        static int g;
        int acc;
        int main() {
          g = 1;
          acc = g;
          g = 2;
          return acc;
        }
        """,
        PRE + ["dse"],
        PipelineConfig(dse_dead_at_exit=False),
    )
    assert count_instrs(module, ins.Store) == 3


def test_dse_dead_at_exit_for_static_global():
    source = """
        static int c;
        int main() {
          c = 0;
          return 0;
        }
    """
    on = run_passes(source, PRE + ["dse"], PipelineConfig(dse_dead_at_exit=True))
    assert count_instrs(on, ins.Store) == 0
    off = run_passes(source, PRE + ["dse"], PipelineConfig(dse_dead_at_exit=False))
    assert count_instrs(off, ins.Store) == 1  # the paper's GCC bug #99357


def test_dse_keeps_exit_store_to_external_global():
    module = run_passes(
        "int c; int main() { c = 5; return 0; }",
        PRE + ["dse"],
        PipelineConfig(dse_dead_at_exit=True),
    )
    assert count_instrs(module, ins.Store) == 1


def test_dse_keeps_exit_store_when_opaque_call_sees_it():
    module = run_passes(
        """
        void peek(int *p);
        static int c;
        int main() {
          peek(&c);   /* c escapes */
          c = 9;
          return 0;
        }
        """,
        PRE + ["dse"],
        PipelineConfig(dse_dead_at_exit=True),
    )
    assert count_instrs(module, ins.Store) == 1
