from repro.ir import instructions as ins

from .helpers import build, calls_to, count_instrs, run_passes


def test_constant_branch_folds_to_jump():
    module = run_passes(
        """
        void marker(void);
        int main() {
          if (0) { marker(); }
          return 0;
        }
        """,
        ["simplify-cfg"],
    )
    assert calls_to(module, "marker") == 0
    main = module.functions["main"]
    assert all(not isinstance(b.terminator, ins.Br) for b in main.blocks)


def test_straight_line_blocks_merge():
    module = run_passes(
        """
        int opaque_source(void);
        static int g;
        int main() {
          g = opaque_source();
          g += 1;
          g += 2;
          return g;
        }
        """,
        ["simplify-cfg"],
    )
    assert len(module.functions["main"].blocks) == 1


def test_single_incoming_phi_is_simplified():
    # After folding `if (1)`, the join's phi has one incoming left.
    module = run_passes(
        """
        int main() {
          int r = 5;
          if (1) { r = 7; }
          return r;
        }
        """,
        ["simplify-cfg", "mem2reg", "simplify-cfg"],
    )
    assert count_instrs(module, ins.Phi) == 0
    term = module.functions["main"].entry.terminator
    assert isinstance(term, ins.Ret)


def test_diamond_is_preserved_when_condition_unknown():
    module = run_passes(
        """
        int opaque_source(void);
        int main() {
          int r = 0;
          if (opaque_source()) { r = 1; } else { r = 2; }
          return r;
        }
        """,
        ["simplify-cfg", "mem2reg"],
    )
    main = module.functions["main"]
    assert any(isinstance(b.terminator, ins.Br) for b in main.blocks)
    assert count_instrs(module, ins.Phi) == 1


def test_forwarder_blocks_are_threaded_away():
    # Lowering produces endif/forwarding blocks; after cleanup no block
    # should consist of a lone jmp (unless phi constraints block it).
    module = run_passes(
        """
        int opaque_source(void);
        static int g;
        int main() {
          if (opaque_source()) { g = 1; }
          g += 1;
          return g;
        }
        """,
        ["simplify-cfg"],
    )
    for block in module.functions["main"].blocks:
        if len(block.instrs) == 1 and isinstance(block.terminator, ins.Jmp):
            target = block.terminator.target
            assert target.phis(), "lone-jmp block should have been threaded"
