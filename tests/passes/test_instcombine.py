from repro.compilers.config import PipelineConfig
from repro.ir import instructions as ins

from .helpers import calls_to, count_instrs, run_passes

PRE = ["simplify-cfg", "mem2reg", "instcombine"]


def _module_with(source, config=None):
    return run_passes(source, PRE + ["sccp", "adce"], config)


def test_algebraic_identities_eliminate_work():
    module = _module_with(
        """
        int opaque_source(void);
        int main() {
          int x = opaque_source();
          int a = x * 0;
          int b = x - x;
          int c = x ^ x;
          return a + b + c;
        }
        """
    )
    assert count_instrs(module, ins.BinOp) == 0


def test_mul_by_zero_can_kill_a_branch():
    module = _module_with(
        """
        void marker(void);
        int opaque_source(void);
        int main() {
          int x = opaque_source();
          if (x * 0) { marker(); }
          return 0;
        }
        """
    )
    assert calls_to(module, "marker") == 0


def test_division_identities_follow_minic_semantics():
    module = _module_with(
        """
        void marker(void);
        int opaque_source(void);
        int main() {
          int x = opaque_source();
          if (x / 1 != x) { marker(); }   /* x/1 == x */
          if (0 / x) { marker(); }        /* 0/x == 0, even x==0 */
          if (0 % x) { marker(); }        /* 0%x == 0 */
          return 0;
        }
        """
    )
    assert calls_to(module, "marker") == 0


def test_cmp_of_equal_operands():
    module = _module_with(
        """
        void marker(void);
        int opaque_source(void);
        int main() {
          int x = opaque_source();
          if (x != x) { marker(); }
          return 0;
        }
        """
    )
    assert calls_to(module, "marker") == 0


def test_unsigned_below_zero_is_false():
    module = _module_with(
        """
        void marker(void);
        int opaque_source(void);
        int main() {
          unsigned int x = opaque_source();
          if (x < 0) { marker(); }
          return 0;
        }
        """
    )
    assert calls_to(module, "marker") == 0


def test_not_of_comparison_is_negated():
    module = _module_with(
        """
        void marker(void);
        int opaque_source(void);
        int main() {
          int x = opaque_source();
          if (!(x == x)) { marker(); }
          return 0;
        }
        """
    )
    assert calls_to(module, "marker") == 0


def test_cast_chain_collapse_is_gated():
    source = """
        void marker(void);
        int opaque_source(void);
        int main() {
          char c = opaque_source();
          long wide = c;
          int back = (int)wide;
          if (back != c) { marker(); }
          return 0;
        }
    """
    on = run_passes(
        source, PRE + ["gvn", "instcombine", "sccp", "adce"],
        PipelineConfig(collapse_cast_chains=True),
    )
    # i8 -> i64 -> i32 collapses to i8 -> i32, which GVN then matches
    # with the compare's own conversion; the branch folds.
    assert calls_to(on, "marker") == 0


def test_peephole_algebraic_gate_disables_identities():
    source = """
        void marker(void);
        int opaque_source(void);
        int main() {
          int x = opaque_source();
          if (x * 0) { marker(); }
          return 0;
        }
    """
    off = run_passes(source, PRE, PipelineConfig(peephole_algebraic=False))
    assert calls_to(off, "marker") == 1
    on = run_passes(source, PRE + ["sccp"], PipelineConfig(peephole_algebraic=True))
    assert calls_to(on, "marker") == 0
