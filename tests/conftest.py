"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.compilers import CompilerSpec, compile_minic
from repro.frontend.typecheck import check_program
from repro.interp import run_program
from repro.ir import run_module, verify_module
from repro.lang import parse_program


@pytest.fixture
def checked():
    """Parse + typecheck helper: returns (program, info)."""

    def _checked(source: str):
        program = parse_program(source)
        info = check_program(program)
        return program, info

    return _checked


@pytest.fixture
def run_source(checked):
    """Interpret a source program and return its ExecutionResult."""

    def _run(source: str):
        program, info = checked(source)
        return run_program(program, info=info)

    return _run


@pytest.fixture
def compile_source(checked):
    """Compile source under a (family, level) and return the result."""

    def _compile(source: str, family: str = "gcclike", level: str = "O2",
                 version=None, verify: bool = True):
        program, info = checked(source)
        result = compile_minic(
            program, CompilerSpec(family, level, version), info=info,
            verify_each=verify,
        )
        verify_module(result.module)
        return result

    return _compile


@pytest.fixture
def validate_semantics(checked):
    """Assert compiled IR behaves exactly like the reference
    interpreter for every requested spec; returns the reference."""

    def _validate(source: str, specs=None):
        program, info = checked(source)
        ref = run_program(program, info=info)
        specs = specs or [
            CompilerSpec(f, l)
            for f in ("gcclike", "llvmlike")
            for l in ("O0", "O1", "Os", "O2", "O3")
        ]
        for spec in specs:
            result = compile_minic(program, spec, info=info)
            verify_module(result.module)
            got = run_module(result.module)
            assert got.exit_code == ref.exit_code, spec
            assert got.marker_hits == ref.marker_hits, spec
            assert got.checksum == ref.checksum, spec
            assert got.call_trace == ref.call_trace, spec
        return ref

    return _validate
