"""End-to-end daemon drill (the CI service smoke, runnable locally).

A real ``dce-hunt serve`` subprocess: 20 seeds POSTed from two
concurrent clients, a worker killed mid-campaign via the chaos API,
SIGTERM mid-stream, restart — then assert the lifecycle table shows
every submission exactly once and no found case was lost.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.observability.ledger import RunLedger

SMALL_CONFIG = {
    "min_globals": 2, "max_globals": 4,
    "min_functions": 1, "max_functions": 2,
    "max_depth": 2, "min_block_stmts": 1, "max_block_stmts": 3,
    "max_loop_trip": 5,
}

SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
)


class DaemonProcess:
    def __init__(self, data_dir, *extra_args):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(data_dir),
             "--port", "0", *extra_args],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        banner = self.proc.stdout.readline().strip()
        assert banner.startswith("listening on http://"), banner
        self.port = int(banner.rsplit(":", 1)[-1])
        # keep the pipe drained so the daemon never blocks on stdout
        self._drain = threading.Thread(
            target=self.proc.stdout.read, daemon=True
        )
        self._drain.start()

    def request(self, method, path, body=None, timeout=30):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}",
            data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def sigterm_and_wait(self, timeout=60):
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def kill(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


@pytest.fixture
def data_dir(tmp_path):
    return tmp_path / "data"


def submit_batch(daemon, seeds_lists, results, index):
    """One 'client': submit its share of the seed batches."""
    for seeds in seeds_lists:
        status, payload = daemon.request(
            "POST", "/api/v1/seeds",
            {"seeds": seeds, "config": SMALL_CONFIG},
        )
        results[index].append((status, payload["job"]["job_id"]))


@pytest.mark.slow
def test_service_survives_kill_sigterm_and_restart(data_dir):
    daemon = DaemonProcess(data_dir, "--chaos-api", "--job-timeout", "60")
    submitted = {}
    try:
        # 20 seeds in 4 batches of 5, from two concurrent clients
        batches = [
            [list(range(0, 5)), list(range(5, 10))],
            [list(range(10, 15)), list(range(15, 20))],
        ]
        results = ([], [])
        clients = [
            threading.Thread(
                target=submit_batch, args=(daemon, batches[i], results, i)
            )
            for i in range(2)
        ]
        for client in clients:
            client.start()
        for client in clients:
            client.join(30)
        for client_results in results:
            assert len(client_results) == 2
            for status, job_id in client_results:
                assert status == 201
                submitted[job_id] = True
        assert len(submitted) == 4

        # kill the worker mid-campaign: a process-exit fault at the
        # worker_hang site takes the whole daemon down un-gracefully
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            _, health = daemon.request("GET", "/healthz")
            if health["in_flight"] > 0 or health["jobs"]["running"] > 0:
                break
            time.sleep(0.05)
        daemon.request(
            "POST", "/api/v1/chaos", {"faults": ["worker_hang:kill"]}
        )
        # the next claimed job hits the site and the process dies hard
        assert daemon.proc.wait(timeout=90) == 86
    finally:
        daemon.kill()

    # restart: orphaned running jobs are reset and work continues
    daemon = DaemonProcess(data_dir, "--job-timeout", "60")
    try:
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            _, health = daemon.request("GET", "/healthz")
            done = health["jobs"]["done"]
            if done >= 2:
                break
            time.sleep(0.2)
        assert health["jobs"]["done"] >= 2, health

        # SIGTERM mid-stream: graceful drain, zero exit
        assert daemon.sigterm_and_wait() == 0
    finally:
        daemon.kill()

    # final restart finishes whatever queued work remains
    daemon = DaemonProcess(data_dir, "--job-timeout", "60")
    try:
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            _, health = daemon.request("GET", "/healthz")
            if health["jobs"]["done"] == 4:
                break
            time.sleep(0.2)
        assert health["jobs"]["done"] == 4, health
        assert daemon.sigterm_and_wait() == 0
    finally:
        daemon.kill()

    # exactly-once accounting, straight from the database
    with RunLedger(str(data_dir / "service.sqlite")) as ledger:
        counts = ledger.lifecycle_counts()
        cases = ledger.cases()
    total_found = sum(counts.values())
    assert total_found > 0, "the 20-seed corpus must surface findings"
    seen_jobs = sorted({job for case in cases for job in case.jobs})
    assert set(seen_jobs) <= set(submitted)
    for case in cases:
        # a job folds each case at most once, kills notwithstanding
        assert len(case.jobs) == len(set(case.jobs))
        assert case.occurrences == len(case.jobs)

    # and the job table itself: every submission exactly once, done
    import sqlite3

    conn = sqlite3.connect(str(data_dir / "service.sqlite"))
    rows = conn.execute(
        "SELECT job_id, status, COUNT(*) FROM jobs GROUP BY job_id"
    ).fetchall()
    conn.close()
    assert sorted(r[0] for r in rows) == sorted(submitted)
    assert all(r[1] == "done" for r in rows)
    assert all(r[2] == 1 for r in rows)


@pytest.mark.slow
def test_sigterm_before_work_is_clean(data_dir):
    daemon = DaemonProcess(data_dir)
    try:
        assert daemon.request("GET", "/readyz")[0] == 200
        assert daemon.sigterm_and_wait() == 0
    finally:
        daemon.kill()
