"""Durable job queue: idempotent submission, FIFO claims, recovery."""

from __future__ import annotations

import pytest

from repro.service.jobs import JobStore, job_id_for


@pytest.fixture
def store(tmp_path):
    store = JobStore(str(tmp_path / "service.sqlite"))
    yield store
    store.close()


PAYLOAD = {"seeds": [1, 2, 3]}


class TestSubmission:
    def test_submit_creates_queued_job(self, store):
        job, created = store.submit("seeds", PAYLOAD)
        assert created
        assert job.status == "queued"
        assert job.attempts == 0
        assert job.payload == PAYLOAD
        assert job.job_id == job_id_for("seeds", PAYLOAD)

    def test_resubmit_is_idempotent(self, store):
        first, _ = store.submit("seeds", PAYLOAD)
        second, created = store.submit("seeds", PAYLOAD)
        assert not created
        assert second.job_id == first.job_id
        assert store.counts()["queued"] == 1

    def test_different_payloads_get_different_ids(self, store):
        a, _ = store.submit("seeds", {"seeds": [1]})
        b, _ = store.submit("seeds", {"seeds": [2]})
        assert a.job_id != b.job_id

    def test_same_payload_different_type_distinct(self, store):
        a, _ = store.submit("seeds", {"seeds": [1]})
        assert job_id_for("campaign", {"seeds": [1]}) != a.job_id

    def test_resubmitting_failed_job_requeues(self, store):
        job, _ = store.submit("seeds", PAYLOAD)
        store.claim_next()
        store.fail(job.job_id, {"kind": "crash"})
        again, created = store.submit("seeds", PAYLOAD)
        assert not created
        assert again.status == "queued"
        assert again.attempts == 0
        assert again.error is None

    def test_unknown_type_rejected(self, store):
        with pytest.raises(ValueError, match="job type"):
            store.submit("nope", PAYLOAD)


class TestWorkerProtocol:
    def test_claims_are_fifo_by_submission(self, store):
        first, _ = store.submit("seeds", {"seeds": [1]})
        second, _ = store.submit("seeds", {"seeds": [2]})
        assert store.claim_next().job_id == first.job_id
        assert store.claim_next().job_id == second.job_id
        assert store.claim_next() is None

    def test_claim_marks_running(self, store):
        job, _ = store.submit("seeds", PAYLOAD)
        claimed = store.claim_next()
        assert claimed.status == "running"
        assert store.job(job.job_id).status == "running"

    def test_finish_records_result(self, store):
        job, _ = store.submit("seeds", PAYLOAD)
        store.claim_next()
        store.finish(job.job_id, {"findings": 2})
        done = store.job(job.job_id)
        assert done.status == "done"
        assert done.result == {"findings": 2}

    def test_requeue_backs_off(self, store):
        job, _ = store.submit("seeds", PAYLOAD)
        store.claim_next(now=100.0)
        attempts = store.requeue(
            job.job_id, delay=30.0, error={"kind": "crash"}, now=100.0
        )
        assert attempts == 1
        # not eligible until the backoff expires
        assert store.claim_next(now=110.0) is None
        assert store.claim_next(now=130.1).job_id == job.job_id

    def test_requeued_error_is_visible(self, store):
        job, _ = store.submit("seeds", PAYLOAD)
        store.claim_next()
        store.requeue(job.job_id, delay=0.0, error={"kind": "timeout"})
        assert store.job(job.job_id).error == {"kind": "timeout"}

    def test_fail_retires_job(self, store):
        job, _ = store.submit("seeds", PAYLOAD)
        store.claim_next()
        store.fail(job.job_id, {"kind": "crash", "bucket": "X"})
        failed = store.job(job.job_id)
        assert failed.status == "failed"
        assert failed.error["bucket"] == "X"
        assert store.claim_next() is None


class TestCrashRecovery:
    def test_reset_running_requeues(self, tmp_path):
        path = str(tmp_path / "service.sqlite")
        store = JobStore(path)
        job, _ = store.submit("seeds", PAYLOAD)
        store.claim_next()
        store.requeue(job.job_id, delay=0.0)
        store.claim_next()  # running again, attempt count 1
        store.close()

        # a new daemon opening the same file finds the orphan
        reborn = JobStore(path)
        assert reborn.reset_running() == 1
        recovered = reborn.claim_next()
        assert recovered.job_id == job.job_id
        assert recovered.attempts == 1  # preserved across recovery
        reborn.close()

    def test_reset_running_noop_when_clean(self, store):
        store.submit("seeds", PAYLOAD)
        assert store.reset_running() == 0


class TestQueries:
    def test_counts_and_depth(self, store):
        a, _ = store.submit("seeds", {"seeds": [1]})
        b, _ = store.submit("seeds", {"seeds": [2]})
        store.submit("seeds", {"seeds": [3]})
        store.claim_next()
        store.finish(a.job_id, {})
        store.claim_next()
        counts = store.counts()
        assert counts == {
            "queued": 1, "running": 1, "done": 1, "failed": 0,
        }
        assert store.queue_depth() == 2  # queued + running

    def test_jobs_filter_validates_status(self, store):
        with pytest.raises(ValueError, match="unknown status"):
            store.jobs("sleeping")

    def test_jobs_listing_ordered(self, store):
        for n in range(3):
            store.submit("seeds", {"seeds": [n]})
        listed = store.jobs()
        assert [j.ordinal for j in listed] == [1, 2, 3]

    def test_missing_job_is_none(self, store):
        assert store.job("deadbeef") is None
