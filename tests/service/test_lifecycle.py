"""The ledger's case-lifecycle table: found → reduced → bisected →
reported, with merge-on-reduction and idempotent per-job folding."""

from __future__ import annotations

import pytest

from repro.observability.ledger import CASE_STATES, RunLedger


@pytest.fixture
def ledger(tmp_path):
    with RunLedger(str(tmp_path / "service.sqlite")) as ledger:
        yield ledger


def finding(seed=3, kind="cross-compiler"):
    return {
        "seed": seed,
        "kind": kind,
        "gcc_misses": ["DCEMarker0"],
        "llvm_misses": [],
    }


class TestRecordCase:
    def test_new_case_starts_found(self, ledger):
        canonical, created = ledger.record_case(finding(), "fp-a", job="j1")
        assert created
        case = ledger.case(canonical)
        assert case.state == "found"
        assert case.seeds == [3]
        assert case.jobs == ["j1"]
        assert case.occurrences == 1

    def test_same_fingerprint_other_job_accumulates(self, ledger):
        ledger.record_case(finding(seed=3), "fp-a", job="j1")
        canonical, created = ledger.record_case(
            finding(seed=9), "fp-a", job="j2"
        )
        assert not created
        case = ledger.case(canonical)
        assert case.seeds == [3, 9]
        assert sorted(case.jobs) == ["j1", "j2"]
        assert case.occurrences == 2

    def test_refold_same_job_is_idempotent(self, ledger):
        """A resumed job re-folding its findings changes nothing —
        the job id is the dedup key."""
        ledger.record_case(finding(), "fp-a", job="j1")
        before = ledger.lifecycle_digest()
        canonical, created = ledger.record_case(finding(), "fp-a", job="j1")
        assert not created
        assert ledger.lifecycle_digest() == before
        assert ledger.case(canonical).occurrences == 1

    def test_counts_track_states(self, ledger):
        ledger.record_case(finding(), "fp-a", job="j1")
        ledger.record_case(finding(seed=5), "fp-b", job="j1")
        assert ledger.lifecycle_counts() == {
            "found": 2, "reduced": 0, "bisected": 0, "reported": 0,
        }


class TestAdvance:
    def test_full_lifecycle_walk(self, ledger):
        ledger.record_case(finding(), "fp-a", job="j1")
        for state in CASE_STATES[1:]:
            kwargs = (
                {"reduced_fingerprint": "red-a"}
                if state == "reduced" else {}
            )
            canonical, advanced = ledger.advance_case(
                "fp-a", state, **kwargs
            )
            assert advanced
            assert ledger.case(canonical).state == state

    def test_transitions_are_forward_only(self, ledger):
        ledger.record_case(finding(), "fp-a", job="j1")
        ledger.advance_case("fp-a", "reported")
        canonical, advanced = ledger.advance_case(
            "fp-a", "reduced", reduced_fingerprint="red-a"
        )
        assert not advanced
        assert ledger.case(canonical).state == "reported"

    def test_readvancing_same_state_is_noop(self, ledger):
        ledger.record_case(finding(), "fp-a", job="j1")
        ledger.advance_case("fp-a", "reduced", reduced_fingerprint="red-a")
        digest = ledger.lifecycle_digest()
        _, advanced = ledger.advance_case(
            "fp-a", "reduced", reduced_fingerprint="red-a"
        )
        assert not advanced
        assert ledger.lifecycle_digest() == digest

    def test_reduced_requires_fingerprint(self, ledger):
        ledger.record_case(finding(), "fp-a", job="j1")
        with pytest.raises(ValueError, match="reduced"):
            ledger.advance_case("fp-a", "reduced")

    def test_found_is_not_a_transition_target(self, ledger):
        ledger.record_case(finding(), "fp-a", job="j1")
        with pytest.raises(ValueError, match="cannot advance"):
            ledger.advance_case("fp-a", "found")

    def test_unknown_case_raises(self, ledger):
        with pytest.raises(KeyError):
            ledger.advance_case("missing", "reported")

    def test_bisect_payload_round_trips(self, ledger):
        ledger.record_case(finding(), "fp-a", job="j1")
        ledger.advance_case("fp-a", "reduced", reduced_fingerprint="red-a")
        payload = {"family": "gcclike", "first_bad": "12.0", "steps": 3}
        ledger.advance_case("fp-a", "bisected", bisect=payload)
        assert ledger.case("fp-a").bisect == payload


class TestReducedMerge:
    def _two_reduced_equal(self, ledger):
        """Two distinct found cases whose reductions coincide."""
        ledger.record_case(finding(seed=3), "fp-a", job="j1")
        ledger.record_case(finding(seed=9), "fp-b", job="j2")
        ledger.advance_case("fp-a", "reduced", reduced_fingerprint="red-x")
        return ledger.advance_case(
            "fp-b", "reduced", reduced_fingerprint="red-x"
        )

    def test_same_reduction_merges_cases(self, ledger):
        canonical, advanced = self._two_reduced_equal(ledger)
        assert advanced
        assert canonical == "fp-a"  # survivor is the earlier case
        assert ledger.lifecycle_counts()["reduced"] == 1
        merged = ledger.case(canonical)
        assert merged.seeds == [3, 9]
        assert merged.occurrences == 2

    def test_merged_fingerprint_aliases_to_survivor(self, ledger):
        self._two_reduced_equal(ledger)
        # looking up the merged case lands on the survivor
        assert ledger.case("fp-b").fingerprint == "fp-a"

    def test_refold_after_merge_is_idempotent(self, ledger):
        self._two_reduced_equal(ledger)
        digest = ledger.lifecycle_digest()
        # the resumed job re-records fp-b; the alias absorbs it
        canonical, created = ledger.record_case(
            finding(seed=9), "fp-b", job="j2"
        )
        assert not created
        assert canonical == "fp-a"
        assert ledger.lifecycle_digest() == digest

    def test_advance_through_alias(self, ledger):
        self._two_reduced_equal(ledger)
        canonical, advanced = ledger.advance_case("fp-b", "reported")
        assert advanced
        assert canonical == "fp-a"
        assert ledger.case("fp-a").state == "reported"


class TestQueriesAndDigest:
    def test_cases_filtered_by_state(self, ledger):
        ledger.record_case(finding(), "fp-a", job="j1")
        ledger.record_case(finding(seed=5), "fp-b", job="j1")
        ledger.advance_case("fp-b", "reported")
        assert [c.fingerprint for c in ledger.cases("found")] == ["fp-a"]
        assert [c.fingerprint for c in ledger.cases()] == ["fp-a", "fp-b"]

    def test_bad_state_filter_rejected(self, ledger):
        with pytest.raises(ValueError, match="state"):
            ledger.cases("sleeping")

    def test_digest_ignores_timestamps(self, ledger):
        ledger.record_case(finding(), "fp-a", job="j1", now=100.0)
        digest_a = ledger.lifecycle_digest()
        ledger.record_case(finding(), "fp-a", job="j1", now=999.0)
        assert ledger.lifecycle_digest() == digest_a

    def test_digest_differs_across_content(self, ledger):
        ledger.record_case(finding(), "fp-a", job="j1")
        before = ledger.lifecycle_digest()
        ledger.advance_case("fp-a", "reported")
        assert ledger.lifecycle_digest() != before

    def test_lifecycle_rows_include_aliases(self, ledger):
        ledger.record_case(finding(seed=3), "fp-a", job="j1")
        ledger.record_case(finding(seed=9), "fp-b", job="j2")
        ledger.advance_case("fp-a", "reduced", reduced_fingerprint="red-x")
        ledger.advance_case("fp-b", "reduced", reduced_fingerprint="red-x")
        rows = ledger.lifecycle_rows()
        assert rows[-1] == {"aliases": {"fp-b": "fp-a"}}

    def test_case_to_dict_omits_timestamp_when_asked(self, ledger):
        ledger.record_case(finding(), "fp-a", job="j1")
        case = ledger.case("fp-a")
        assert "updated_at" in case.to_dict()
        assert "updated_at" not in case.to_dict(timestamps=False)
