"""Supervisor robustness: crashes contained, timeouts retried, caps.

The runner here is a stub — campaign-engine integration lives in
``test_service_core.py``.  These tests pin the supervision contract
itself: a crashing job retries with exponential backoff and fails
permanently at the cap, a hung job (injected ``worker_hang`` spin)
converts into a timeout, and drain leaves queued work for the next
daemon.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.corpus import CampaignCancelled
from repro.observability.events import EventBus
from repro.observability.metrics import MetricsRegistry
from repro.service.jobs import JobStore
from repro.service.supervisor import Supervisor
from repro.testing.chaos import Fault, FaultPlan, clear_plan, install_plan


@pytest.fixture
def store(tmp_path):
    store = JobStore(str(tmp_path / "service.sqlite"))
    yield store
    store.close()


@pytest.fixture(autouse=True)
def _no_chaos_leak():
    yield
    clear_plan()


def wait_for(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def run_until_terminal(supervisor, store, job_id, timeout=10.0):
    supervisor.start()
    try:
        assert wait_for(
            lambda: store.job(job_id).status in ("done", "failed"),
            timeout=timeout,
        ), f"job never finished: {store.job(job_id).to_dict()}"
    finally:
        supervisor.drain(timeout=5.0)
    return store.job(job_id)


class TestHappyPath:
    def test_job_runs_and_finishes(self, store):
        seen = []

        def runner(job, cancel):
            seen.append(job.job_id)
            return {"ok": True}

        job, _ = store.submit("seeds", {"seeds": [1]})
        sup = Supervisor(runner, store, backoff_base=0.0)
        done = run_until_terminal(sup, store, job.job_id)
        assert done.status == "done"
        assert done.result == {"ok": True}
        assert seen == [job.job_id]

    def test_jobs_drain_in_submission_order(self, store):
        order = []

        def runner(job, cancel):
            order.append(job.payload["seeds"][0])
            return {}

        for n in range(4):
            store.submit("seeds", {"seeds": [n]})
        sup = Supervisor(runner, store, backoff_base=0.0)
        sup.start()
        try:
            assert wait_for(lambda: store.counts()["done"] == 4)
        finally:
            sup.drain(timeout=5.0)
        assert order == [0, 1, 2, 3]

    def test_events_emitted(self, store):
        bus = EventBus()
        events = []
        bus.subscribe(lambda e: events.append(e.type))
        job, _ = store.submit("seeds", {"seeds": [1]})
        sup = Supervisor(
            lambda j, c: {}, store, backoff_base=0.0, events=bus
        )
        run_until_terminal(sup, store, job.job_id)
        assert events == ["job.started", "job.done"]


class TestCrashContainment:
    def test_crash_retries_then_fails_at_cap(self, store):
        attempts = []

        def runner(job, cancel):
            attempts.append(job.attempts)
            raise RuntimeError("boom")

        job, _ = store.submit("seeds", {"seeds": [1]})
        metrics = MetricsRegistry()
        sup = Supervisor(
            runner, store, retry_cap=3, backoff_base=0.0, metrics=metrics,
        )
        failed = run_until_terminal(sup, store, job.job_id)
        assert failed.status == "failed"
        assert attempts == [0, 1, 2]
        snapshot = metrics.to_dict()
        assert snapshot["service.job_crashes"]["value"] == 3
        assert snapshot["service.jobs_failed"]["value"] == 1

    def test_crash_error_is_an_envelope(self, store):
        def runner(job, cancel):
            raise ValueError("exploded in the engine")

        job, _ = store.submit("seeds", {"seeds": [1]})
        sup = Supervisor(runner, store, retry_cap=1, backoff_base=0.0)
        failed = run_until_terminal(sup, store, job.job_id)
        assert failed.error["exc_type"] == "ValueError"
        assert failed.error["phase"] == "serve"
        assert job.job_id in failed.error["repro"]

    def test_transient_crash_recovers(self, store):
        calls = []

        def runner(job, cancel):
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("only once")
            return {"recovered": True}

        job, _ = store.submit("seeds", {"seeds": [1]})
        sup = Supervisor(runner, store, retry_cap=3, backoff_base=0.0)
        done = run_until_terminal(sup, store, job.job_id)
        assert done.status == "done"
        assert done.result == {"recovered": True}
        assert len(calls) == 2

    def test_backoff_is_exponential(self, store):
        def runner(job, cancel):
            raise RuntimeError("boom")

        job, _ = store.submit("seeds", {"seeds": [1]})
        delays = []
        bus = EventBus()
        bus.subscribe(
            lambda e: delays.append(e.attrs["delay"])
            if e.type == "job.retried" else None
        )
        sup = Supervisor(
            runner, store, retry_cap=3, backoff_base=0.01, events=bus,
        )
        run_until_terminal(sup, store, job.job_id)
        assert delays == [0.01, 0.02]


class TestTimeouts:
    def test_cancelled_job_is_retried_as_timeout(self, store):
        def runner(job, cancel):
            raise CampaignCancelled("cancelled before seed 3", seeds_done=3)

        job, _ = store.submit("seeds", {"seeds": [1]})
        sup = Supervisor(runner, store, retry_cap=2, backoff_base=0.0)
        failed = run_until_terminal(sup, store, job.job_id)
        assert failed.status == "failed"
        assert failed.error["kind"] == "timeout"

    def test_watchdog_sets_cancel_event(self, store):
        observed = []

        def runner(job, cancel):
            # a cooperative engine: wait for the watchdog to fire
            observed.append(cancel.wait(5.0))
            raise CampaignCancelled("stopped at a seed boundary")

        job, _ = store.submit("seeds", {"seeds": [1]})
        sup = Supervisor(
            runner, store, job_timeout=0.1, retry_cap=1, backoff_base=0.0,
        )
        failed = run_until_terminal(sup, store, job.job_id)
        assert observed == [True]
        assert failed.status == "failed"

    def test_worker_hang_fault_becomes_timeout(self, store):
        """The hang drill: an injected busy-spin at the worker_hang
        site must convert into a bounded timeout, not a wedged
        thread."""
        install_plan(FaultPlan((Fault("worker_hang", "spin", ()),)))
        ran = []

        def runner(job, cancel):
            ran.append(1)  # pragma: no cover - must not be reached
            return {}

        job, _ = store.submit("seeds", {"seeds": [1]})
        sup = Supervisor(
            runner, store, job_timeout=0.2, retry_cap=1, backoff_base=0.0,
        )
        failed = run_until_terminal(sup, store, job.job_id, timeout=15.0)
        assert failed.status == "failed"
        assert failed.error["kind"] == "timeout"
        assert not ran
        # the worker survived the spin and still drains cleanly
        assert sup.workers_alive() == 0


class TestDrainAndLiveness:
    def test_drain_leaves_queued_jobs(self, store):
        release = threading.Event()

        def runner(job, cancel):
            release.wait(5.0)
            return {}

        first, _ = store.submit("seeds", {"seeds": [1]})
        second, _ = store.submit("seeds", {"seeds": [2]})
        sup = Supervisor(runner, store, backoff_base=0.0)
        sup.start()
        assert wait_for(lambda: sup.in_flight == 1)
        drainer = threading.Thread(target=sup.drain)
        drainer.start()
        release.set()
        drainer.join(5.0)
        # in-flight finished; the queued one waits for the next daemon
        assert store.job(first.job_id).status == "done"
        assert store.job(second.job_id).status == "queued"

    def test_start_recovers_orphaned_running_jobs(self, store):
        job, _ = store.submit("seeds", {"seeds": [1]})
        store.claim_next()  # simulate a dead daemon's claim
        metrics = MetricsRegistry()
        sup = Supervisor(
            lambda j, c: {}, store, backoff_base=0.0, metrics=metrics,
        )
        done = run_until_terminal(sup, store, job.job_id)
        assert done.status == "done"
        assert metrics.to_dict()["service.jobs_recovered"]["value"] == 1

    def test_heartbeats_cover_every_worker(self, store):
        sup = Supervisor(lambda j, c: {}, store, workers=3)
        sup.start()
        try:
            assert wait_for(lambda: len(sup.heartbeats()) == 3)
            assert sup.workers_alive() == 3
            assert all(age < 5.0 for age in sup.heartbeats().values())
        finally:
            sup.drain(timeout=5.0)
        assert sup.workers_alive() == 0

    def test_double_start_rejected(self, store):
        sup = Supervisor(lambda j, c: {}, store)
        sup.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                sup.start()
        finally:
            sup.drain(timeout=5.0)

    def test_bad_knobs_rejected(self, store):
        with pytest.raises(ValueError, match="workers"):
            Supervisor(lambda j, c: {}, store, workers=0)
        with pytest.raises(ValueError, match="retry_cap"):
            Supervisor(lambda j, c: {}, store, retry_cap=0)
