"""CampaignService integration: real (tiny) campaigns end to end.

Uses the calibrated small generator config — ~0.4s/seed — so each
test runs a handful of real seeds through the full engine: generate,
instrument, interpret, compile under both families, fold findings
into the case lifecycle.
"""

from __future__ import annotations

import time

import pytest

from repro.observability.events import EventBus
from repro.observability.ledger import RunLedger
from repro.service import CampaignService, ServiceDraining, validate_payload
from repro.testing.chaos import Fault, FaultPlan, clear_plan, install_plan

# seeds 0..9 of this config yield findings at a few seeds in ~4s total
SMALL_CONFIG = {
    "min_globals": 2, "max_globals": 4,
    "min_functions": 1, "max_functions": 2,
    "max_depth": 2, "min_block_stmts": 1, "max_block_stmts": 3,
    "max_loop_trip": 5,
}
SEEDS = list(range(10))


@pytest.fixture(autouse=True)
def _no_chaos_leak():
    yield
    clear_plan()


def start_service(tmp_path, **kwargs):
    service = CampaignService(str(tmp_path / "data"), **kwargs)
    service.start()
    return service


def wait_done(service, job_id, timeout=90.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = service.jobs.job(job_id)
        if job.status in ("done", "failed"):
            return job
        time.sleep(0.1)
    raise AssertionError(
        f"job still {service.jobs.job(job_id).status} after {timeout}s"
    )


class TestValidation:
    def test_seeds_payload_normalized(self):
        payload = validate_payload("seeds", {"seeds": [5, 1, 5, 3]})
        assert payload["seeds"] == [1, 3, 5]

    def test_seeds_must_be_ints(self):
        with pytest.raises(ValueError, match="seeds"):
            validate_payload("seeds", {"seeds": ["one"]})

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="seeds"):
            validate_payload("seeds", {"seeds": []})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown payload keys"):
            validate_payload("seeds", {"seeds": [1], "bogus": True})

    def test_campaign_needs_programs(self):
        with pytest.raises(ValueError, match="programs"):
            validate_payload("campaign", {"seed_base": 0})

    def test_bad_generator_config_rejected(self):
        with pytest.raises(ValueError, match="generator config"):
            validate_payload(
                "seeds", {"seeds": [1], "config": {"no_such_knob": 3}}
            )


class TestExecution:
    def test_seeds_job_finds_and_folds_cases(self, tmp_path):
        bus = EventBus()
        events = []
        bus.subscribe(lambda e: events.append(e))
        service = start_service(tmp_path, events=bus)
        try:
            job, created = service.submit(
                "seeds", {"seeds": SEEDS, "config": SMALL_CONFIG}
            )
            assert created
            done = wait_done(service, job.job_id)
            assert done.status == "done"
            assert done.result["seeds"] == len(SEEDS)
            assert done.result["findings"] > 0
            assert done.result["crashes"] == 0
            counts = service.lifecycle_counts()
            assert counts["found"] == done.result["cases_new"]
            # every case row remembers which job found it
            for case in service.cases():
                assert case["jobs"] == [job.job_id]
            types = [e.type for e in events]
            assert "job.submitted" in types
            assert "case.found" in types
            assert types[-1] == "job.done"
        finally:
            service.drain(timeout=10.0)

    def test_campaign_job_records_ledger_run(self, tmp_path):
        service = start_service(tmp_path)
        try:
            job, _ = service.submit(
                "campaign", {"programs": 6, "config": SMALL_CONFIG}
            )
            done = wait_done(service, job.job_id)
            assert done.status == "done"
            with RunLedger(service.jobs.path) as ledger:
                runs = ledger.runs()
                assert len(runs) == 1
                assert runs[0].programs == 6
        finally:
            service.drain(timeout=10.0)

    def test_noncontiguous_seeds_match_contiguous_findings(self, tmp_path):
        """A seeds job over {0..4} ∪ {7..9} behaves as two blocks."""
        service = start_service(tmp_path)
        try:
            job, _ = service.submit(
                "seeds",
                {"seeds": [0, 1, 2, 3, 4, 7, 8, 9],
                 "config": SMALL_CONFIG},
            )
            done = wait_done(service, job.job_id)
            assert done.status == "done"
            assert done.result["seeds"] == 8
            seen = {
                seed
                for case in service.cases()
                for seed in case["seeds"]
            }
            assert seen <= {0, 1, 2, 3, 4, 7, 8, 9}
            assert 5 not in seen and 6 not in seen
        finally:
            service.drain(timeout=10.0)

    def test_resubmission_during_run_is_idempotent(self, tmp_path):
        service = start_service(tmp_path)
        try:
            payload = {"seeds": SEEDS, "config": SMALL_CONFIG}
            job, created = service.submit("seeds", payload)
            again, created2 = service.submit("seeds", payload)
            assert created and not created2
            assert again.job_id == job.job_id
            wait_done(service, job.job_id)
            assert service.jobs.counts()["done"] == 1
        finally:
            service.drain(timeout=10.0)


class TestStoreWriteFault:
    def test_store_fault_degrades_but_job_completes(self, tmp_path):
        """An injected store-write fault must not fail the job: the
        store degrades to cold (PR 9 contract), ``store.errors`` bumps,
        findings still fold into the lifecycle."""
        install_plan(FaultPlan((Fault("store_write", "raise"),)))
        service = start_service(tmp_path)
        try:
            job, _ = service.submit(
                "seeds", {"seeds": SEEDS, "config": SMALL_CONFIG}
            )
            done = wait_done(service, job.job_id)
            assert done.status == "done"
            assert done.result["findings"] > 0
            assert service.lifecycle_counts()["found"] > 0
            snapshot = service.metrics.to_dict()
            assert snapshot["store.errors"]["value"] >= 1
        finally:
            service.drain(timeout=10.0)


class TestDrain:
    def test_drain_refuses_submissions(self, tmp_path):
        service = start_service(tmp_path)
        service.drain(timeout=10.0)
        with pytest.raises(ServiceDraining):
            service.submit("seeds", {"seeds": [1]})

    def test_drained_queue_survives_restart(self, tmp_path):
        """Jobs queued at drain time are claimed by the next daemon
        and the final lifecycle equals an uninterrupted run."""
        first = CampaignService(str(tmp_path / "data"))
        # never started: the job stays queued, as if drained under load
        job, _ = first.submit(
            "seeds", {"seeds": SEEDS, "config": SMALL_CONFIG}
        )
        first.drain(timeout=5.0)

        second = CampaignService(str(tmp_path / "data"))
        second.start()
        try:
            done = wait_done(second, job.job_id)
            assert done.status == "done"
            assert done.result["findings"] > 0
        finally:
            second.drain(timeout=10.0)

        # control: the same job in a fresh service, uninterrupted
        control = CampaignService(str(tmp_path / "control"))
        control.start()
        try:
            cjob, _ = control.submit(
                "seeds", {"seeds": SEEDS, "config": SMALL_CONFIG}
            )
            wait_done(control, cjob.job_id)
        finally:
            control.drain(timeout=10.0)
        with RunLedger(second.jobs.path) as a, \
                RunLedger(control.jobs.path) as b:
            assert a.lifecycle_digest() == b.lifecycle_digest()


class TestHealth:
    def test_health_shape(self, tmp_path):
        service = start_service(tmp_path, workers=2)
        try:
            health = service.health()
            assert health["status"] == "ok"
            assert health["workers_alive"] == 2
            assert health["queue_depth"] == 0
            assert set(health["lifecycle"]) == {
                "found", "reduced", "bisected", "reported",
            }
            assert health["last_commit_age"] >= 0
            assert service.ready()
        finally:
            service.drain(timeout=10.0)
        assert not service.ready()
        assert service.health()["status"] == "draining"
