"""The JSON HTTP API against an in-process daemon on an ephemeral
port: submission, queries, health, chaos containment."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.observability.ledger import RunLedger
from repro.service import CampaignService, ServiceHTTPServer
from repro.testing.chaos import Fault, FaultPlan, clear_plan, install_plan

SMALL_CONFIG = {
    "min_globals": 2, "max_globals": 4,
    "min_functions": 1, "max_functions": 2,
    "max_depth": 2, "min_block_stmts": 1, "max_block_stmts": 3,
    "max_loop_trip": 5,
}


@pytest.fixture(autouse=True)
def _no_chaos_leak():
    yield
    clear_plan()


class Daemon:
    """An in-process service + HTTP server on port 0."""

    def __init__(self, data_dir, *, chaos_api=False, start_workers=True,
                 **service_kwargs):
        self.service = CampaignService(str(data_dir), **service_kwargs)
        if start_workers:
            self.service.start()
        self.httpd = ServiceHTTPServer(
            ("127.0.0.1", 0), self.service, chaos_api=chaos_api
        )
        self.port = self.httpd.server_address[1]
        self.thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self.thread.start()

    def request(self, method, path, body=None):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def wait_job(self, job_id, timeout=90.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _, payload = self.request("GET", f"/api/v1/jobs/{job_id}")
            if payload["job"]["status"] in ("done", "failed"):
                return payload["job"]
            time.sleep(0.1)
        raise AssertionError("job never finished")

    def stop(self):
        self.httpd.shutdown()
        self.thread.join(5.0)
        self.httpd.server_close()
        self.service.drain(timeout=10.0)
        self.service.close()


@pytest.fixture
def daemon(tmp_path):
    daemon = Daemon(tmp_path / "data")
    yield daemon
    daemon.stop()


class TestSubmission:
    def test_post_seeds_creates_job(self, daemon):
        status, payload = daemon.request(
            "POST", "/api/v1/seeds",
            {"seeds": [1, 2], "config": SMALL_CONFIG},
        )
        assert status == 201
        assert payload["created"]
        assert payload["job"]["status"] in ("queued", "running")

    def test_repost_returns_same_job(self, daemon):
        body = {"seeds": [1, 2], "config": SMALL_CONFIG}
        _, first = daemon.request("POST", "/api/v1/seeds", body)
        status, second = daemon.request("POST", "/api/v1/seeds", body)
        assert status == 200
        assert not second["created"]
        assert second["job"]["job_id"] == first["job"]["job_id"]

    def test_bad_payload_is_400(self, daemon):
        status, payload = daemon.request(
            "POST", "/api/v1/seeds", {"seeds": []}
        )
        assert status == 400
        assert "seeds" in payload["error"]

    def test_malformed_json_is_400(self, daemon):
        request = urllib.request.Request(
            f"http://127.0.0.1:{daemon.port}/api/v1/seeds",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400

    def test_unknown_endpoint_is_404(self, daemon):
        assert daemon.request("GET", "/api/v1/nothing")[0] == 404
        assert daemon.request("GET", "/whatever")[0] == 404

    def test_full_round_trip_with_cases(self, daemon):
        _, out = daemon.request(
            "POST", "/api/v1/seeds",
            {"seeds": list(range(10)), "config": SMALL_CONFIG},
        )
        job = daemon.wait_job(out["job"]["job_id"])
        assert job["status"] == "done"
        assert job["result"]["findings"] > 0
        _, listing = daemon.request("GET", "/api/v1/cases")
        assert len(listing["cases"]) == job["result"]["cases_new"]
        fingerprint = listing["cases"][0]["fingerprint"]
        _, one = daemon.request("GET", f"/api/v1/cases/{fingerprint}")
        assert one["case"]["state"] == "found"
        status, advanced = daemon.request(
            "POST", f"/api/v1/cases/{fingerprint}/advance",
            {"state": "reported"},
        )
        assert status == 200
        assert advanced["case"]["state"] == "reported"
        _, filtered = daemon.request(
            "GET", "/api/v1/cases?state=reported"
        )
        assert [c["fingerprint"] for c in filtered["cases"]] == [
            fingerprint
        ]

    def test_advance_validates_state(self, daemon):
        status, payload = daemon.request(
            "POST", "/api/v1/cases/whatever/advance", {"state": "found"}
        )
        assert status == 400
        status, _ = daemon.request(
            "POST", "/api/v1/cases/missing/advance", {"state": "reported"}
        )
        assert status == 404


class TestHealth:
    def test_healthz_reports_liveness(self, daemon):
        status, health = daemon.request("GET", "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["workers_alive"] == 1
        assert health["queue_depth"] == 0
        assert "last_commit_age" in health
        assert "worker_heartbeat_age" in health

    def test_readyz_is_200_when_accepting(self, daemon):
        status, ready = daemon.request("GET", "/readyz")
        assert status == 200
        assert ready["ready"]

    def test_readyz_503_when_workers_never_started(self, tmp_path):
        daemon = Daemon(tmp_path / "data", start_workers=False)
        try:
            status, ready = daemon.request("GET", "/readyz")
            assert status == 503
            assert not ready["ready"]
        finally:
            daemon.stop()

    def test_draining_refuses_posts_but_health_stays(self, daemon):
        daemon.service.supervisor.drain(timeout=10.0)
        status, payload = daemon.request(
            "POST", "/api/v1/seeds", {"seeds": [1]}
        )
        assert status == 503
        assert "draining" in payload["error"]
        assert daemon.request("GET", "/healthz")[0] == 200
        assert daemon.request("GET", "/readyz")[0] == 503


class TestHandlerChaos:
    def test_handler_fault_is_one_500_then_recovery(self, daemon):
        """An injected serve:handler fault maps to a 500 on the faulted
        request; the daemon keeps serving afterwards."""
        install_plan(FaultPlan((Fault("serve:handler", "raise"),)))
        status, payload = daemon.request("GET", "/api/v1/jobs")
        assert status == 500
        assert "InjectedFault" in payload["error"]
        # health bypasses the chaos hook entirely
        assert daemon.request("GET", "/healthz")[0] == 200
        clear_plan()
        assert daemon.request("GET", "/api/v1/jobs")[0] == 200
        snapshot = daemon.service.metrics.to_dict()
        assert snapshot["service.handler_errors"]["value"] == 1


class TestChaosApi:
    def test_gated_off_by_default(self, daemon):
        assert daemon.request(
            "POST", "/api/v1/chaos", {"faults": []}
        )[0] == 404

    def test_install_and_clear_over_http(self, tmp_path):
        daemon = Daemon(tmp_path / "data", chaos_api=True)
        try:
            status, out = daemon.request(
                "POST", "/api/v1/chaos",
                {"faults": ["serve:handler:raise"]},
            )
            assert status == 200
            assert out["installed"] == ["serve:handler"]
            assert daemon.request("GET", "/api/v1/jobs")[0] == 500
            # clearing goes through even while the handler site faults
            status, _ = daemon.request(
                "POST", "/api/v1/chaos", {"faults": []}
            )
            assert daemon.request("GET", "/api/v1/jobs")[0] == 200
        finally:
            daemon.stop()

    def test_bad_fault_spec_is_400(self, tmp_path):
        daemon = Daemon(tmp_path / "data", chaos_api=True)
        try:
            status, payload = daemon.request(
                "POST", "/api/v1/chaos", {"faults": ["nonsense"]}
            )
            assert status == 400
        finally:
            daemon.stop()
