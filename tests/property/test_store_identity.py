"""Warm-vs-cold byte-identity of store-backed campaigns.

The artifact store's contract: a campaign run against a warm store
produces *exactly* what the cold run produced — the same
:class:`CampaignResult`, the same event stream modulo timestamps, and
the same result-derived counters — at any jobs count.  The only
permitted difference is wall time (and the ``store.*`` hit counters,
which are observability, not results).
"""

import pytest

from repro.core.corpus import run_campaign
from repro.generator import GeneratorConfig
from repro.observability import EventBus, MetricsRegistry, strip_timestamps
from repro.store import ArtifactStore

#: small programs keep a 4-run matrix affordable on one CPU
CONFIG = GeneratorConfig(
    min_globals=1, max_globals=3, min_functions=2, max_functions=3,
    max_depth=3, min_block_stmts=1, max_block_stmts=4, max_expr_depth=2,
)
PROGRAMS = 6
SEED_BASE = 210


def _run(store=None, jobs=1):
    metrics = MetricsRegistry()
    events = []
    bus = EventBus()
    bus.subscribe(events.append)
    result = run_campaign(
        n_programs=PROGRAMS, seed_base=SEED_BASE,
        generator_config=CONFIG, metrics=metrics, events=bus,
        jobs=jobs, store=store,
    )
    return result, metrics.to_dict(), strip_timestamps(events)


def _counter(snapshot, name):
    return snapshot.get(name, {}).get("value", 0)


@pytest.fixture(scope="module")
def baseline():
    """The no-store reference run."""
    return _run()


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    return str(tmp_path_factory.mktemp("store") / "campaign.sqlite")


@pytest.fixture(scope="module")
def cold(baseline, store_path):
    """First store-backed run: populates the store."""
    with ArtifactStore(store_path) as store:
        outcome = _run(store=store)
    return outcome


def test_cold_run_matches_no_store_run(baseline, cold):
    """Writing the store must not perturb results or events."""
    assert cold[0] == baseline[0]
    assert cold[2] == baseline[2]
    assert _counter(cold[1], "store.seeds_skipped") == 0
    assert _counter(cold[1], "store.errors") == 0
    # the cold run compiled everything itself
    assert _counter(cold[1], "campaign.compilations") == _counter(
        baseline[1], "campaign.compilations"
    )


@pytest.mark.parametrize("jobs", [1, 4])
def test_warm_rerun_is_byte_identical(baseline, cold, store_path, jobs):
    with ArtifactStore(store_path) as store:
        result, snapshot, events = _run(store=store, jobs=jobs)
    assert result == baseline[0]
    assert events == baseline[2]
    # every seed replayed from the store; nothing recompiled or re-run
    assert _counter(snapshot, "store.seeds_skipped") == PROGRAMS
    assert _counter(snapshot, "campaign.compilations") == 0
    assert _counter(snapshot, "compile.pass_execs") == 0
    assert _counter(snapshot, "interp.steps") == 0
    assert _counter(snapshot, "store.errors") == 0


@pytest.mark.parametrize("jobs", [1, 4])
def test_memo_layers_alone_reproduce_results(
    baseline, cold, store_path, tmp_path, jobs
):
    """With seed replay disabled the compile/truth memos still carry
    the rerun — and still reproduce results exactly (partial-warmth
    path: new seeds or a changed campaign scope)."""
    import shutil
    import sqlite3

    memo_only = str(tmp_path / f"memo-only-{jobs}.sqlite")
    shutil.copy(store_path, memo_only)
    con = sqlite3.connect(memo_only)
    con.execute("DELETE FROM seed_analyses")
    con.commit()
    con.close()

    with ArtifactStore(memo_only) as store:
        result, snapshot, events = _run(store=store, jobs=jobs)
    assert result == baseline[0]
    assert events == baseline[2]
    assert _counter(snapshot, "store.seeds_skipped") == 0
    # ground truth resolves from the truth memo, compiles from the
    # compile memo: nothing executes or compiles cold
    assert _counter(snapshot, "store.truth_hits") == PROGRAMS
    assert _counter(snapshot, "store.compile_hits") > 0
    assert _counter(snapshot, "campaign.compilations") == 0
    assert _counter(snapshot, "interp.steps") == 0


def test_superset_campaign_reuses_stored_seeds(baseline, cold, store_path):
    """The seed scope excludes n_programs/seed_base: a larger campaign
    over a superset range replays the stored seeds and analyzes only
    the new ones."""
    with ArtifactStore(store_path) as store:
        result, snapshot, _ = _run_range(
            store, SEED_BASE - 1, PROGRAMS + 2
        )
    assert _counter(snapshot, "store.seeds_skipped") == PROGRAMS
    # the two new seeds (one below, one above) were analyzed fresh
    assert len(result.seeds) + len(result.skipped) == PROGRAMS + 2
    # and rerunning the original range afterwards is still identical
    result2, snapshot2, events2 = _run(store=store)
    assert result2 == baseline[0]
    assert events2 == baseline[2]


def _run_range(store, seed_base, n_programs):
    metrics = MetricsRegistry()
    events = []
    bus = EventBus()
    bus.subscribe(events.append)
    result = run_campaign(
        n_programs=n_programs, seed_base=seed_base,
        generator_config=CONFIG, metrics=metrics, events=bus, store=store,
    )
    return result, metrics.to_dict(), strip_timestamps(events)
