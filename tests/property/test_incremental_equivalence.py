"""Incremental compilation must be observationally identical to
independent per-spec compilation — over many generated programs, every
default spec, and the reduction loop with the oracle memo on or off."""

from dataclasses import astuple

import pytest

from repro.compilers import CompilerSpec, IncrementalEngine, run_pipeline
from repro.compilers.pipeline import module_markers
from repro.core.corpus import default_specs
from repro.core.differential import analyze_markers
from repro.core.ground_truth import compute_ground_truth
from repro.core.markers import instrument_program
from repro.core.reduction import missed_marker_predicate, reduce_program
from repro.frontend.lower import lower_program
from repro.frontend.typecheck import check_program
from repro.generator import generate_program
from repro.ir.printer import fingerprint_module
from repro.lang import parse_program, print_program
from repro.observability.metrics import MetricsRegistry

SEEDS = range(25)


def _prepared(seed):
    instrumented = instrument_program(generate_program(seed))
    info = check_program(instrumented.program)
    return instrumented, info


@pytest.mark.parametrize("seed", SEEDS)
def test_engine_equivalent_to_independent_pipelines(seed):
    """Final IR, surviving markers, and changed-pass lists all agree
    with a fresh ``run_pipeline`` for every distinct default config."""
    instrumented, info = _prepared(seed)
    engine = IncrementalEngine(lower_program(instrumented.program, info))
    seen = set()
    for spec in default_specs():
        config = spec.config()
        key = astuple(config)
        if key in seen:
            continue
        seen.add(key)
        expected = lower_program(instrumented.program, info)
        expected_changed = run_pipeline(expected, config)
        got = engine.compile(config)
        label = f"seed {seed}, {spec}"
        assert got.changed_passes == expected_changed, label
        assert fingerprint_module(got.module) == fingerprint_module(
            expected
        ), label
        assert module_markers(got.module) == module_markers(expected), label


@pytest.mark.parametrize("seed", [0, 11])
def test_analyze_markers_identical_with_and_without_engine(seed):
    """End to end (ground truth included): the report is the same."""
    instrumented, info = _prepared(seed)
    specs = default_specs()
    truth = compute_ground_truth(instrumented, info=info)
    # verify_ir doubles as the post-pass sanity check's happy-path test:
    # every pass of every config must produce verifier-clean IR here
    fast = analyze_markers(
        instrumented, specs, info=info, ground_truth=truth, incremental=True,
        verify_ir=True,
    )
    slow = analyze_markers(
        instrumented, specs, info=info, ground_truth=truth, incremental=False,
        verify_ir=True,
    )
    assert fast.ground_truth.dead == slow.ground_truth.dead
    assert fast.ground_truth.alive == slow.ground_truth.alive
    assert set(fast.outcomes) == set(slow.outcomes)
    for name, outcome in fast.outcomes.items():
        assert outcome.alive == slow.outcomes[name].alive, (seed, name)
        assert outcome.all_markers == slow.outcomes[name].all_markers


# Mirrors the listing-1 shape used by the reduction tests: a dead
# marker llvmlike -O3 keeps, gcclike -O3 eliminates, plus noise.
BLOATED = """
void DCEMarker0(void);
char a;
char b[2];
static int noise1 = 4;
static long noise2[3] = {1, 2, 3};
static int helper(int x) { return x * 3; }
int main() {
  int pad1 = helper(2);
  noise1 += pad1;
  long pad2 = noise2[1] + noise1;
  char *d = &a;
  char *e = &b[1];
  if (d == e) {
    DCEMarker0();
  }
  noise2[2] = pad2;
  for (int i = 0; i < 3; i++) { noise1 += i; }
  return 0;
}
"""


def test_reduction_byte_identical_with_memoized_oracle():
    predicate = missed_marker_predicate(
        "DCEMarker0",
        keeper=CompilerSpec("llvmlike", "O3"),
        witness=CompilerSpec("gcclike", "O3"),
    )
    metrics = MetricsRegistry()
    memoized = reduce_program(
        parse_program(BLOATED), predicate, metrics=metrics
    )
    plain = reduce_program(
        parse_program(BLOATED), predicate, memoize_oracle=False
    )
    assert print_program(memoized.program) == print_program(plain.program)
    assert memoized.attempts == plain.attempts
    assert memoized.successes == plain.successes
    assert memoized.stmts_before == plain.stmts_before
    assert memoized.stmts_after == plain.stmts_after
    # the memo actually fired, and the metrics agree with the result
    assert memoized.oracle_cache_hits > 0
    assert plain.oracle_cache_hits == 0
    assert (
        metrics.counter("reduction.oracle_cache_hits").value
        == memoized.oracle_cache_hits
    )
