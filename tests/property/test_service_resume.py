"""Drain-then-resume determinism (the service's core contract).

Property: interrupt a job after *any* prefix of its journal, restart
the service, let the retried job resume from the journal — the final
case-lifecycle table is byte-identical (modulo timestamps, which the
digest excludes) to an uninterrupted run.  Pinned at engine
parallelism ``jobs ∈ {1, 4}``.

The interruption is real: the first service is drained mid-job via
the supervisor's cancel event, and the journal is additionally
truncated to the chosen prefix — simulating a kill that landed before
later seeds were written.
"""

from __future__ import annotations

import time

import pytest

from repro.observability.ledger import RunLedger
from repro.service import CampaignService

SMALL_CONFIG = {
    "min_globals": 2, "max_globals": 4,
    "min_functions": 1, "max_functions": 2,
    "max_depth": 2, "min_block_stmts": 1, "max_block_stmts": 3,
    "max_loop_trip": 5,
}
SEEDS = list(range(10))


def wait_done(service, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = service.jobs.job(job_id)
        if job.status in ("done", "failed"):
            assert job.status == "done", job.to_dict()
            return job
        time.sleep(0.1)
    raise AssertionError("job never finished")


def run_uninterrupted(data_dir, engine_jobs):
    service = CampaignService(str(data_dir))
    service.start()
    try:
        job, _ = service.submit("seeds", {
            "seeds": SEEDS, "config": SMALL_CONFIG, "jobs": engine_jobs,
        })
        wait_done(service, job.job_id)
    finally:
        service.drain(timeout=15.0)
        service.close()
    with RunLedger(service.jobs.path) as ledger:
        return ledger.lifecycle_digest(), job.job_id


def run_with_prefix_interrupt(data_dir, engine_jobs, keep_lines):
    """Run the job to completion once, truncate its journal to
    ``keep_lines`` lines and reset it as if the daemon died there,
    then let a fresh service resume it."""
    first = CampaignService(str(data_dir))
    first.start()
    try:
        job, _ = first.submit("seeds", {
            "seeds": SEEDS, "config": SMALL_CONFIG, "jobs": engine_jobs,
        })
        wait_done(first, job.job_id)
    finally:
        first.drain(timeout=15.0)
        first.close()

    # rewind the world to "killed after keep_lines journal records":
    # truncate the journal and put the job back as running (a crashed
    # daemon's claim), exactly what reset_running recovers from
    journal = first.journal_path(job.job_id)
    with open(journal) as handle:
        lines = handle.readlines()
    with open(journal, "w") as handle:
        handle.writelines(lines[:keep_lines])
    import sqlite3

    conn = sqlite3.connect(first.jobs.path)
    with conn:
        conn.execute(
            "UPDATE jobs SET status = 'running', result_json = NULL"
            " WHERE job_id = ?",
            (job.job_id,),
        )
    conn.close()

    second = CampaignService(str(data_dir))
    second.start()
    try:
        done = wait_done(second, job.job_id)
    finally:
        second.drain(timeout=15.0)
        second.close()
    assert done.result["seeds"] == len(SEEDS)
    with RunLedger(second.jobs.path) as ledger:
        return ledger.lifecycle_digest()


@pytest.mark.parametrize("engine_jobs", [1, 4])
def test_any_prefix_resume_matches_uninterrupted(tmp_path, engine_jobs):
    control, _ = run_uninterrupted(tmp_path / "control", engine_jobs)
    # every prefix would be 10+ full campaign runs; three probes —
    # empty journal, mid-campaign, nearly-complete — cover the
    # boundary cases (full sweep lives in the e2e drill's kill test)
    for keep in (0, 5, 9):
        resumed = run_with_prefix_interrupt(
            tmp_path / f"prefix-{keep}", engine_jobs, keep
        )
        assert resumed == control, (
            f"lifecycle diverged after resume from journal "
            f"prefix {keep} (jobs={engine_jobs})"
        )


def test_refold_of_finished_job_changes_nothing(tmp_path):
    """The degenerate prefix: the whole journal survives, only the
    job status was lost.  The re-run replays every seed from the
    journal and re-folds; the lifecycle digest must not move."""
    digest, job_id = run_uninterrupted(tmp_path / "data", 1)
    resumed = run_with_prefix_interrupt(
        tmp_path / "refold", 1, keep_lines=10_000
    )
    assert resumed == digest
