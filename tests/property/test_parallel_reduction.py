"""Parallel speculative reduction must be byte-identical to sequential.

The engine's contract (``src/repro/core/reduction.py``): every
speculative batch is evaluated in full, verdicts are a pure function of
the printed candidate, and the first interesting candidate in
enumeration order commits.  ``jobs`` therefore only moves fresh
evaluations onto a process pool — the reduced program, the commit
sequence, and every counter must match ``jobs=1`` exactly.  These tests
pin that over 20 synthesized programs with a cheap oracle (so the
matrix stays fast), one real compiler-backed oracle, and two hostile
oracles (one that raises, one that kills its worker).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.compilers import CompilerSpec
from repro.core.reduction import (
    DEFAULT_SPECULATION,
    count_statements,
    missed_marker_predicate,
    reduce_program,
)
from repro.lang import parse_program, print_program
from repro.observability.metrics import MetricsRegistry

SEEDS = range(20)
JOBS = (1, 2, 4)

#: the counters that must be jobs-invariant (wall_time is excluded)
COUNTERS = (
    "attempts", "successes", "oracle_calls", "oracle_cache_hits",
    "oracle_errors", "speculative_wasted", "rounds",
    "stmts_before", "stmts_after",
)


class MarkerTextOracle:
    """Cheap picklable oracle: interesting iff the marker call survives.

    A pure function of the printed program (parse/print only, no
    compilation), so the 20-seed × 3-jobs matrix runs in seconds while
    still exercising the full speculative machinery.
    """

    cache_key = "marker-text:DCEMarker0"

    def __call__(self, program) -> bool:
        return "DCEMarker0()" in print_program(program)


class FragileOracle:
    """Raises on candidates that dropped the tripwire statement.

    A crashing oracle must be *contained*: the candidate is declined
    (never committed), the round continues, and the error is counted —
    identically whether the exception fires in a pool worker or
    in-process.
    """

    cache_key = "fragile:DCEMarker0"

    def __call__(self, program) -> bool:
        text = print_program(program)
        if "int trip" not in text:
            raise RuntimeError("oracle lost its tripwire")
        return "DCEMarker0()" in text


class KamikazeOracle:
    """Kills its worker process once, then behaves like the text oracle.

    ``os._exit`` in a pool worker breaks the whole executor
    (``BrokenProcessPool``) — the engine must drop the pool, re-answer
    the batch in-process, and keep reducing.  The flag file makes the
    death one-shot so the in-process retry (and any restarted worker)
    survives.
    """

    cache_key = "kamikaze:DCEMarker0"

    def __init__(self, flag_path: str) -> None:
        self.flag_path = flag_path
        # only a *worker* may die — the initial check runs in-process
        self.parent_pid = os.getpid()

    def __call__(self, program) -> bool:
        if os.getpid() != self.parent_pid and not os.path.exists(
            self.flag_path
        ):
            with open(self.flag_path, "w") as fh:
                fh.write("died once\n")
            os._exit(3)
        return "DCEMarker0()" in print_program(program)


def _synthesize(seed: int) -> str:
    """A small deterministic program with one marker call buried in
    removable noise — varied statement counts and nesting per seed."""
    rng = random.Random(seed)
    lines = [
        "void DCEMarker0(void);",
        f"static int pad{seed} = {rng.randrange(9)};",
        "int main() {",
        f"  int x = {rng.randrange(10)};",
    ]
    marker_at = rng.randrange(3, 9)
    for i in range(rng.randrange(10, 18)):
        if i == marker_at:
            lines.append("  if (x < 99) { DCEMarker0(); }")
        pick = rng.randrange(4)
        if pick == 0:
            lines.append(f"  x = x + {rng.randrange(1, 6)};")
        elif pick == 1:
            lines.append(f"  int y{i} = x * {rng.randrange(2, 5)};")
            lines.append(f"  x = x - y{i};")
        elif pick == 2:
            lines.append(
                f"  if (x > {rng.randrange(50)}) {{ x = x + 1; }}"
            )
        else:
            lines.append(
                f"  for (int k{i} = 0; k{i} < {rng.randrange(2, 5)}; "
                f"k{i}++) {{ x = x + k{i}; }}"
            )
    lines += ["  return x;", "}"]
    return "\n".join(lines) + "\n"


def _observe(program, predicate, jobs, **kwargs):
    """One reduction run → (printed program, counters, events, metric
    counter values) with timing stripped — everything that must be
    jobs-invariant."""
    registry = MetricsRegistry()
    events = []
    result = reduce_program(
        program, predicate, jobs=jobs, metrics=registry,
        event_sink=lambda type_, attrs: events.append((type_, attrs)),
        **kwargs,
    )
    counters = {name: getattr(result, name) for name in COUNTERS}
    metric_counters = {
        name: entry["value"]
        for name, entry in registry.dump().items()
        if entry.get("type") == "counter"
        and name != "reduction.worker_restarts"  # pool-only by design
    }
    return print_program(result.program), counters, events, metric_counters


@pytest.mark.parametrize("seed", SEEDS)
def test_reduction_identical_across_jobs(seed):
    source = _synthesize(seed)
    program = parse_program(source)
    assert "DCEMarker0()" in source
    baseline = _observe(program, MarkerTextOracle(), jobs=1)
    assert "DCEMarker0()" in baseline[0]
    assert baseline[1]["stmts_after"] < baseline[1]["stmts_before"]
    assert any(type_ == "reduction.commit" for type_, _ in baseline[2])
    for jobs in JOBS[1:]:
        run = _observe(program, MarkerTextOracle(), jobs=jobs)
        assert run[0] == baseline[0], f"program differs at jobs={jobs}"
        assert run[1] == baseline[1], f"counters differ at jobs={jobs}"
        assert run[2] == baseline[2], f"events differ at jobs={jobs}"
        assert run[3] == baseline[3], f"metrics differ at jobs={jobs}"


def test_budgeted_reduction_identical_across_jobs():
    """The oracle-call budget is checked on a jobs-invariant counter at
    batch boundaries, so a budgeted (partial) reduction is byte-
    identical at any jobs count too."""
    program = parse_program(_synthesize(7))
    budget = 3 * DEFAULT_SPECULATION
    runs = [
        _observe(program, MarkerTextOracle(), jobs=jobs,
                 max_oracle_calls=budget)
        for jobs in JOBS
    ]
    # the budget is checked before each batch, so the overshoot is at
    # most one batch
    assert runs[0][1]["oracle_calls"] < budget + DEFAULT_SPECULATION
    assert runs[1] == runs[0]
    assert runs[2] == runs[0]


# the one compiler-backed case: slow, so a single fixture and jobs=2
BLOATED = """
void DCEMarker0(void);
char a;
char b[2];
static int noise1 = 4;
static long noise2[3] = {1, 2, 3};
static int helper(int x) { return x * 3; }
int main() {
  int pad1 = helper(2);
  noise1 += pad1;
  long pad2 = noise2[1] + noise1;
  char *d = &a;
  char *e = &b[1];
  if (d == e) {
    DCEMarker0();
  }
  noise2[2] = pad2;
  for (int i = 0; i < 3; i++) { noise1 += i; }
  return 0;
}
"""


def test_real_oracle_identical_across_jobs():
    program = parse_program(BLOATED)
    predicate = missed_marker_predicate(
        "DCEMarker0",
        keeper=CompilerSpec("llvmlike", "O3"),
        witness=CompilerSpec("gcclike", "O3"),
    )
    sequential = _observe(program, predicate, jobs=1)
    parallel = _observe(program, predicate, jobs=2)
    assert parallel == sequential
    assert sequential[1]["stmts_after"] < sequential[1]["stmts_before"]


def test_crashing_oracle_is_contained_and_counted():
    """A raising oracle declines the candidate instead of aborting the
    reduction, and ``reduction.oracle_errors`` merges identically from
    pool workers and in-process evaluation."""
    source = _synthesize(3).replace(
        "int main() {", "int main() {\n  int trip = 1;", 1
    )
    program = parse_program(source)
    sequential = _observe(program, FragileOracle(), jobs=1)
    parallel = _observe(program, FragileOracle(), jobs=2)
    assert parallel == sequential
    assert sequential[1]["oracle_errors"] > 0
    assert (
        sequential[3]["reduction.oracle_errors"]
        == sequential[1]["oracle_errors"]
    )
    # the tripwire survived: deleting it always errors, never commits
    assert "int trip" in sequential[0]
    assert "DCEMarker0()" in sequential[0]


def test_worker_death_recovers_with_identical_result(tmp_path):
    """One worker dying mid-batch (BrokenProcessPool) must not doom the
    reduction: the engine re-answers the batch in-process and the final
    program still matches the sequential run."""
    flag = tmp_path / "died-once"
    program = parse_program(_synthesize(11))
    baseline = _observe(program, MarkerTextOracle(), jobs=1)

    registry = MetricsRegistry()
    result = reduce_program(
        program, KamikazeOracle(str(flag)), jobs=2, metrics=registry,
    )
    assert flag.exists(), "the kamikaze oracle never fired"
    assert print_program(result.program) == baseline[0]
    restarts = registry.dump().get("reduction.worker_restarts")
    assert restarts is not None and restarts["value"] >= 1
