"""The bytecode VM must be bit-identical to the AST interpreter.

Ground truth decides marker liveness from ONE deterministic execution
(paper §4.1), so the fast backend may not diverge from the reference
in any observable way: not in the checksum fold, not in the call-trace
accumulator, not in the step count, and not in how the step limit or
the cooperative seed budget cut an execution short.  These tests pin
that contract over >100 generated programs, instrumented and not.
"""

from __future__ import annotations

import pytest

from repro.budget import SeedBudgetExceeded
from repro.core.markers import instrument_program
from repro.frontend.typecheck import check_program
from repro.generator import generate_program
from repro.interp import (
    DEFAULT_STEP_LIMIT,
    StepLimitExceeded,
    get_default_backend,
    run_program,
    set_default_backend,
)
from repro.interp import bytecode as bytecode_mod
from repro.interp import interpreter as interpreter_mod

SEEDS = range(120)

#: fields of ExecutionResult compared one by one (better failure
#: messages than whole-object equality)
RESULT_FIELDS = (
    "exit_code", "steps", "checksum", "call_trace", "marker_hits",
    "function_calls",
)


def _programs(seed):
    """(label, program, info) for the seed, uninstrumented and
    instrumented (markers add calls, so both layouts must agree)."""
    program = generate_program(seed)
    out = [("plain", program, check_program(program))]
    instrumented = instrument_program(program)
    out.append((
        "instrumented", instrumented.program,
        check_program(instrumented.program),
    ))
    return out


def _both(program, info, step_limit=DEFAULT_STEP_LIMIT):
    ast_result = run_program(
        program, step_limit=step_limit, info=info, backend="ast"
    )
    vm_result = run_program(
        program, step_limit=step_limit, info=info, backend="bytecode"
    )
    return ast_result, vm_result


def _assert_identical(ast_result, vm_result, label):
    for name in RESULT_FIELDS:
        assert getattr(vm_result, name) == getattr(ast_result, name), (
            f"{label}: {name} diverged "
            f"(ast={getattr(ast_result, name)!r}, "
            f"vm={getattr(vm_result, name)!r})"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_execution_results_bit_identical(seed):
    for label, program, info in _programs(seed):
        ast_result, vm_result = _both(program, info)
        _assert_identical(ast_result, vm_result, f"seed {seed} {label}")


@pytest.mark.parametrize("seed", [0, 3, 7, 11, 21, 28, 45, 62, 87, 101])
def test_step_limit_boundary_identical(seed):
    """At limit = steps, steps - 1, and steps // 2 both backends agree
    on whether the limit trips, and on the exception message when it
    does — the bytecode engine's batched step accounting must land on
    exactly the same totals along every cut point."""
    for label, program, info in _programs(seed):
        full = run_program(program, info=info, backend="bytecode")
        limits = {full.steps, max(1, full.steps - 1), max(1, full.steps // 2)}
        for limit in sorted(limits):
            outcomes = []
            for backend in ("ast", "bytecode"):
                try:
                    result = run_program(
                        program, step_limit=limit, info=info, backend=backend
                    )
                    outcomes.append(("ok", result))
                except StepLimitExceeded as exc:
                    outcomes.append(("limit", str(exc)))
            tag = f"seed {seed} {label} limit {limit}"
            assert outcomes[0][0] == outcomes[1][0], (tag, outcomes)
            if outcomes[0][0] == "ok":
                _assert_identical(outcomes[0][1], outcomes[1][1], tag)
            else:
                assert outcomes[0][1] == outcomes[1][1], tag


class _PollProbe:
    """Stand-in for ``budget.check_deadline``: counts polls, optionally
    raising at the Nth — a deterministic chaos-budget boundary."""

    def __init__(self, raise_at=None):
        self.calls = 0
        self.raise_at = raise_at

    def __call__(self):
        self.calls += 1
        if self.raise_at is not None and self.calls == self.raise_at:
            raise SeedBudgetExceeded("injected budget trip")


def _poll_run(monkeypatch, program, info, backend, raise_at):
    module = interpreter_mod if backend == "ast" else bytecode_mod
    probe = _PollProbe(raise_at)
    monkeypatch.setattr(module, "check_deadline", probe)
    try:
        result = run_program(program, info=info, backend=backend)
        return ("ok", result.steps, probe.calls)
    except SeedBudgetExceeded:
        return ("budget", None, probe.calls)


@pytest.mark.parametrize("seed", [21, 28, 45, 133])
def test_budget_poll_boundary_identical(monkeypatch, seed):
    """Both backends poll the seed budget at the same every-2048-steps
    cadence: identical poll counts on a full run, and an injected trip
    at the first/second/last poll cuts both at the same boundary."""
    program = generate_program(seed)
    info = check_program(program)
    base_ast = _poll_run(monkeypatch, program, info, "ast", None)
    base_vm = _poll_run(monkeypatch, program, info, "bytecode", None)
    assert base_ast == base_vm, f"seed {seed}: poll cadence diverged"
    polls = base_ast[2]
    assert polls >= 1, f"seed {seed} too small to exercise the poll"
    for raise_at in {1, min(2, polls), polls}:
        got_ast = _poll_run(monkeypatch, program, info, "ast", raise_at)
        got_vm = _poll_run(monkeypatch, program, info, "bytecode", raise_at)
        assert got_ast == got_vm == ("budget", None, raise_at), (
            f"seed {seed} raise_at {raise_at}: {got_ast} vs {got_vm}"
        )


def test_backend_dispatch_knobs():
    """The dispatcher defaults to bytecode, rejects unknown names, and
    honors a temporary AST default."""
    assert get_default_backend() == "bytecode"
    with pytest.raises(ValueError):
        set_default_backend("tree-walking")
    program = generate_program(5)
    info = check_program(program)
    try:
        set_default_backend("ast")
        via_default = run_program(program, info=info)
    finally:
        set_default_backend("bytecode")
    explicit = run_program(program, info=info, backend="bytecode")
    _assert_identical(via_default, explicit, "dispatch knobs")
