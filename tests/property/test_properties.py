"""Property-based tests (hypothesis) over core invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lang.semantics import ALL_BINARY_OPS, eval_binop, eval_unop, wrap
from repro.lang.types import ALL_INT_TYPES, INT, IntType, usual_arithmetic_conversion

int_types = st.sampled_from(ALL_INT_TYPES)
small_ints = st.integers(min_value=-(2**70), max_value=2**70)
arith_ops = st.sampled_from([op for op in ALL_BINARY_OPS if op not in ("&&", "||")])


@given(int_types, small_ints)
def test_wrap_lands_in_range(ty, value):
    wrapped = wrap(value, ty)
    assert ty.min_value <= wrapped <= ty.max_value
    assert (wrapped - value) % (1 << ty.width) == 0


@given(int_types, small_ints)
def test_wrap_idempotent(ty, value):
    assert wrap(wrap(value, ty), ty) == wrap(value, ty)


@given(arith_ops, int_types, small_ints, small_ints)
def test_eval_binop_is_total_and_in_range(op, ty, a, b):
    lhs, rhs = wrap(a, ty), wrap(b, ty)
    result = eval_binop(op, lhs, rhs, ty)
    if op in ("==", "!=", "<", "<=", ">", ">="):
        assert result in (0, 1)
    else:
        assert ty.min_value <= result <= ty.max_value


@given(int_types, small_ints, small_ints)
def test_division_identity(ty, a, b):
    lhs, rhs = wrap(a, ty), wrap(b, ty)
    quotient = eval_binop("/", lhs, rhs, ty)
    remainder = eval_binop("%", lhs, rhs, ty)
    if rhs != 0 and not (lhs == ty.min_value and rhs == -1):
        assert quotient * rhs + remainder == lhs
    else:
        # The MiniC total-function convention.
        if rhs == 0:
            assert quotient == lhs and remainder == lhs


@given(int_types, int_types)
def test_usual_conversion_is_commutative_and_wide(a, b):
    common = usual_arithmetic_conversion(a, b)
    assert common == usual_arithmetic_conversion(b, a)
    assert common.width >= min(max(a.width, 32), max(b.width, 32))


@given(int_types, small_ints)
def test_unary_ops_total(ty, value):
    v = wrap(value, ty)
    for op in ("-", "~", "!"):
        result = eval_unop(op, v, ty)
        assert ty.min_value <= result <= ty.max_value


@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_literal_expression_round_trip(value):
    from repro.lang.parser import parse_expression
    from repro.lang.printer import print_expr

    expr = parse_expression(str(value))
    assert print_expr(expr) == str(value)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_generated_programs_always_check_and_print(seed):
    from repro.frontend.typecheck import check_program
    from repro.generator import GeneratorConfig, generate_program
    from repro.lang import parse_program, print_program

    config = GeneratorConfig(
        min_globals=3, max_globals=5, min_functions=1, max_functions=2,
        min_block_stmts=1, max_block_stmts=3, max_depth=2,
    )
    program = generate_program(seed, config)
    text = print_program(program)
    reparsed = parse_program(text)
    check_program(reparsed)


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_instrumentation_never_changes_behaviour(seed):
    """Markers are observers: exit code and checksum are unchanged."""
    from repro.core.markers import instrument_program
    from repro.frontend.typecheck import check_program
    from repro.generator import GeneratorConfig, generate_program
    from repro.interp import run_program

    config = GeneratorConfig(
        min_globals=3, max_globals=5, min_functions=1, max_functions=2,
        min_block_stmts=1, max_block_stmts=3, max_depth=2,
    )
    program = generate_program(seed, config)
    plain = run_program(program)
    inst = instrument_program(program)
    info = check_program(inst.program)
    traced = run_program(inst.program, info=info)
    assert traced.exit_code == plain.exit_code
    assert traced.checksum == plain.checksum


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000), st.sampled_from(["gcclike", "llvmlike"]))
def test_compilation_preserves_semantics_property(seed, family):
    """Translation validation as a property: any program, any family,
    -O2 output behaves exactly like the reference interpreter."""
    from repro.compilers import CompilerSpec, compile_minic
    from repro.core.markers import instrument_program
    from repro.frontend.typecheck import check_program
    from repro.generator import GeneratorConfig, generate_program
    from repro.interp import run_program
    from repro.ir import run_module

    config = GeneratorConfig(
        min_globals=3, max_globals=5, min_functions=1, max_functions=2,
        min_block_stmts=1, max_block_stmts=3, max_depth=2,
    )
    inst = instrument_program(generate_program(seed, config))
    info = check_program(inst.program)
    ref = run_program(inst.program, info=info)
    result = compile_minic(inst.program, CompilerSpec(family, "O2"), info=info)
    got = run_module(result.module)
    assert got.exit_code == ref.exit_code
    assert got.marker_hits == ref.marker_hits
    assert got.checksum == ref.checksum
    assert got.call_trace == ref.call_trace
