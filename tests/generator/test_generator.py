import pytest

from repro.frontend.typecheck import check_program
from repro.generator import GeneratorConfig, generate_program
from repro.interp import run_program
from repro.lang import ast_nodes as ast
from repro.lang import parse_program, print_program


def test_generation_is_deterministic():
    a = print_program(generate_program(1234))
    b = print_program(generate_program(1234))
    assert a == b


def test_different_seeds_differ():
    assert print_program(generate_program(1)) != print_program(generate_program(2))


def test_generated_programs_check_and_terminate():
    for seed in range(12):
        program = generate_program(seed)
        info = check_program(program)
        result = run_program(program, info=info)
        assert isinstance(result.exit_code, int)


def test_generated_programs_round_trip_through_source():
    for seed in range(6):
        program = generate_program(seed)
        text = print_program(program)
        reparsed = parse_program(text)
        check_program(reparsed)
        assert run_program(program).checksum == run_program(reparsed).checksum


def test_call_graph_is_acyclic_and_sparse():
    program = generate_program(7)
    defined = {f.name for f in program.functions()}
    order = {f.name: i for i, f in enumerate(program.functions())}
    counts: dict[str, int] = {}
    for func in program.functions():
        for stmt in ast.walk_stmts(func.body):
            for expr in ast.walk_exprs_of_stmt(stmt):
                if isinstance(expr, ast.Call) and expr.callee in defined:
                    assert order[expr.callee] < order[func.name]
                    counts[expr.callee] = counts.get(expr.callee, 0) + 1
    assert all(count <= 3 for count in counts.values())


def test_main_is_last_and_not_static():
    program = generate_program(3)
    funcs = program.functions()
    assert funcs[-1].name == "main"
    assert not funcs[-1].static
    assert all(f.static for f in funcs[:-1])


def test_config_controls_size():
    small = GeneratorConfig(min_globals=2, max_globals=2, min_functions=1,
                            max_functions=1, min_block_stmts=1, max_block_stmts=2,
                            max_depth=1)
    program = generate_program(5, small)
    assert len(program.globals()) <= 3  # +1 possible pointer global
    assert len(program.functions()) == 2


def test_loop_counters_are_not_reassigned_in_bodies():
    program = generate_program(11)
    for func in program.functions():
        for stmt in ast.walk_stmts(func.body):
            if isinstance(stmt, ast.For):
                counter = stmt.init.name if isinstance(stmt.init, ast.VarDecl) else None
                if counter is None:
                    continue
                for inner in ast.walk_stmts(stmt.body):
                    if isinstance(inner, ast.Assign) and isinstance(inner.target, ast.VarRef):
                        assert inner.target.name != counter


def test_dead_fraction_is_csmith_like():
    from repro.core.ground_truth import compute_ground_truth
    from repro.core.markers import instrument_program

    total_dead = total = 0
    for seed in range(8):
        inst = instrument_program(generate_program(seed))
        truth = compute_ground_truth(inst)
        total += len(inst.markers)
        total_dead += len(truth.dead)
    fraction = total_dead / total
    assert 0.75 < fraction < 0.99  # paper: 89.6%
