from repro.backend import alive_markers, emit_module
from repro.compilers import CompilerSpec, compile_minic
from repro.frontend.lower import lower_program
from repro.frontend.typecheck import check_program
from repro.lang import parse_program


def test_alive_markers_scans_call_lines():
    asm = """
main:
\tcall\tDCEMarker0
\tmov\t$1, %rax
\tcall\tprintf
\tcall\tDCEMarker7
\tret
"""
    assert alive_markers(asm, "DCEMarker") == {"DCEMarker0", "DCEMarker7"}
    assert alive_markers(asm) == {"DCEMarker0", "printf", "DCEMarker7"}


def test_emitted_module_contains_globals_and_functions():
    program = parse_program(
        """
        static int counter = 3;
        int values[2] = {7, 8};
        int main() { counter += 1; return values[0]; }
        """
    )
    info = check_program(program)
    asm = emit_module(lower_program(program, info))
    assert ".local\tcounter" in asm
    assert ".globl\tvalues" in asm
    assert "main:" in asm
    assert "ret" in asm


def test_unoptimized_asm_keeps_markers_optimized_drops_them():
    source = """
        void DCEMarker0(void);
        int main() {
          int dead = 0;
          if (dead) { DCEMarker0(); }
          return 0;
        }
    """
    o0 = compile_minic(source, CompilerSpec("gcclike", "O0"))
    o2 = compile_minic(source, CompilerSpec("gcclike", "O2"))
    assert "DCEMarker0" in o0.alive_markers("DCEMarker")
    assert o2.alive_markers("DCEMarker") == frozenset()


def test_call_arguments_are_pushed():
    asm = compile_minic(
        "void take(int a, int b); int main() { take(1, 2); return 0; }",
        CompilerSpec("gcclike", "O0"),
    ).asm
    assert asm.count("push") >= 2
    assert "call\ttake" in asm
