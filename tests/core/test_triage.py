from repro.compilers import CompilerSpec
from repro.core.triage import (
    Finding,
    deduplicate,
    guarding_condition_shape,
    sensitive_knobs,
    signature_of,
)
from repro.lang import parse_program

ADDR_CASE = """
void DCEMarker0(void);
char a;
char b[2];
int main() {
  char *c = &a;
  char *d = &b[1];
  if (c == d) {
    DCEMarker0();
  }
  return 0;
}
"""

GLOBAL_CASE = """
void DCEMarker0(void);
static int a = 0;
int main() {
  if (a) {
    DCEMarker0();
  }
  a = 0;
  return 0;
}
"""


def test_condition_shape_abstracts_names_and_values():
    shape = guarding_condition_shape(parse_program(ADDR_CASE), "DCEMarker0")
    assert shape == "(v == v)"
    shape2 = guarding_condition_shape(parse_program(GLOBAL_CASE), "DCEMarker0")
    assert shape2 == "v"


def test_sensitive_knobs_identify_root_cause():
    llvm_finding = Finding(0, "DCEMarker0", CompilerSpec("llvmlike", "O3"),
                           parse_program(ADDR_CASE))
    knobs = sensitive_knobs(llvm_finding)
    assert "addr_cmp" in knobs

    gcc_finding = Finding(1, "DCEMarker0", CompilerSpec("gcclike", "O3"),
                          parse_program(GLOBAL_CASE))
    knobs2 = sensitive_knobs(gcc_finding)
    assert "global_fold_mode" in knobs2


def test_deduplicate_groups_same_root_cause():
    variant = ADDR_CASE.replace("char b[2]", "char b[4]").replace("&b[1]", "&b[3]")
    findings = [
        Finding(0, "DCEMarker0", CompilerSpec("llvmlike", "O3"), parse_program(ADDR_CASE)),
        Finding(1, "DCEMarker0", CompilerSpec("llvmlike", "O3"), parse_program(variant)),
        Finding(2, "DCEMarker0", CompilerSpec("gcclike", "O3"), parse_program(GLOBAL_CASE)),
    ]
    result = deduplicate(findings)
    assert len(result.unique) == 2
    assert result.duplicates_removed == 1
    reps = result.representative_findings()
    assert reps[0].seed == 0 and reps[1].seed == 2


def test_signature_distinguishes_families():
    a = signature_of(
        Finding(0, "DCEMarker0", CompilerSpec("llvmlike", "O3"), parse_program(ADDR_CASE))
    )
    b = signature_of(
        Finding(0, "DCEMarker0", CompilerSpec("gcclike", "O3"), parse_program(ADDR_CASE))
    )
    assert a != b
