import pytest

from repro.compilers.versions import history, latest
from repro.core.bisect import (
    bisect_marker_regression,
    bisect_versions,
    marker_regression_predicate,
)
from repro.lang import parse_program

# The llvmlike GlobalOpt rewrite (3cc38703) regresses this program:
# old versions fold `if (a)` via the flow-sensitive analysis.
LISTING_6A = """
void DCEMarker0(void);
static int a = 0;
int main() {
  if (a) {
    DCEMarker0();
  }
  a = 1;
  return 0;
}
"""

# The O3-only MemDep change (3cc38712) regresses this one.
CSE_CASE = """
void DCEMarker0(void);
void opaque_sink(void);
int opaque_source(void);
int main() {
  long t[2];
  t[0] = opaque_source();
  t[1] = 0;
  long x = t[0];
  opaque_sink();
  if (t[0] != x) {
    DCEMarker0();
  }
  return 0;
}
"""


def test_bisect_finds_globalopt_rewrite():
    program = parse_program(LISTING_6A)
    result = bisect_marker_regression(program, "DCEMarker0", "llvmlike", "O3")
    assert result is not None
    assert result.commit.sha == "3cc38703"
    assert result.commit.component == "Value Propagation"


def test_bisect_finds_memdep_change():
    program = parse_program(CSE_CASE)
    result = bisect_marker_regression(program, "DCEMarker0", "llvmlike", "O3")
    assert result is not None
    assert result.commit.sha == "3cc38712"
    assert result.commit.component == "SSA Memory Analysis"


def test_bisect_finds_gcc_vectorizer_commit():
    program = parse_program(
        """
        void DCEMarker0(void);
        static int c[4];
        int main() {
          for (int b = 0; b < 4; b++) { c[b] = 7; }
          if (c[0] != 7) { DCEMarker0(); }
          return 0;
        }
        """
    )
    result = bisect_marker_regression(program, "DCEMarker0", "gcclike", "O3")
    assert result is not None
    assert result.commit.sha == "92acae07"
    assert result.commit.component == "Loop Transformations"


def test_non_regression_returns_none():
    program = parse_program(
        """
        void DCEMarker0(void);
        int opaque_source(void);
        int main() {
          if (opaque_source() == 12345) { DCEMarker0(); }
          return 0;
        }
        """
    )
    # Missed at every version: not a regression.
    assert bisect_marker_regression(program, "DCEMarker0", "gcclike", "O3") is None


def test_always_eliminated_returns_none():
    program = parse_program(
        """
        void DCEMarker0(void);
        int main() {
          if (0) { DCEMarker0(); }
          return 0;
        }
        """
    )
    assert bisect_marker_regression(program, "DCEMarker0", "llvmlike", "O3") is None


def test_bisect_step_count_is_logarithmic():
    program = parse_program(LISTING_6A)
    is_bad = marker_regression_predicate(program, "DCEMarker0", "llvmlike", "O3")
    result = bisect_versions("llvmlike", is_bad)
    import math

    assert result.steps <= math.ceil(math.log2(latest("llvmlike"))) + 3


def test_bisect_validates_endpoints():
    with pytest.raises(ValueError):
        bisect_versions("llvmlike", lambda v: True)
    with pytest.raises(ValueError):
        bisect_versions("llvmlike", lambda v: False)
