from repro.core.case_studies import case_study
from repro.core.reports import LEDGER, reports_for, table5_counts


def test_table5_counts_match_paper():
    counts = table5_counts()
    assert counts["gcclike"] == {
        "reported": 53, "confirmed": 43, "duplicate": 5, "fixed": 12,
    }
    assert counts["llvmlike"] == {
        "reported": 31, "confirmed": 19, "duplicate": 0, "fixed": 11,
    }


def test_ledger_ids_unique():
    ids = [r.report_id for r in LEDGER]
    assert len(ids) == len(set(ids))


def test_backed_reports_reference_real_case_studies():
    backed = [r for r in LEDGER if r.case_id is not None]
    assert backed, "some reports should be case-study-backed"
    for report in backed:
        case = case_study(report.case_id)
        assert case.report["family"] == report.family
        assert case.report["status"] == report.status


def test_component_diversity():
    for family in ("gcclike", "llvmlike"):
        components = {r.component for r in reports_for(family)}
        assert len(components) >= 8, family


def test_statuses_are_valid():
    from repro.core.reports import STATUSES

    assert all(r.status in STATUSES for r in LEDGER)
