"""Parallel campaign engine: jobs=N must be indistinguishable from
the sequential run (except wall time)."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.corpus import run_campaign
from repro.core.parallel import MAX_SHARD_SIZE, WINDOW_FACTOR, shard_seeds
from repro.observability import (
    EventBus,
    MetricsRegistry,
    Tracer,
    strip_timestamps,
)

PROGRAMS = 4
SEED_BASE = 100


@pytest.fixture(scope="module")
def sequential():
    metrics = MetricsRegistry()
    events = []
    bus = EventBus()
    bus.subscribe(events.append)
    result = run_campaign(
        n_programs=PROGRAMS, seed_base=SEED_BASE,
        keep_analyses=True, metrics=metrics, events=bus,
    )
    return result, metrics, events


@pytest.fixture(scope="module")
def parallel():
    metrics = MetricsRegistry()
    tracer = Tracer()
    ticks = []
    events = []
    bus = EventBus()
    bus.subscribe(events.append)
    result = run_campaign(
        n_programs=PROGRAMS, seed_base=SEED_BASE,
        keep_analyses=True, metrics=metrics, tracer=tracer,
        progress=ticks.append, jobs=4, events=bus,
    )
    return result, metrics, tracer, ticks, events


@pytest.fixture(scope="module")
def streamed():
    """jobs=2 at the smallest legal window (1): every shard waits for
    the previous completion before submission, the maximal-churn case
    for the streaming scheduler's top-up path."""
    events = []
    bus = EventBus()
    bus.subscribe(events.append)
    result = run_campaign(
        n_programs=PROGRAMS, seed_base=SEED_BASE, keep_analyses=True,
        jobs=2, window=1, events=bus,
    )
    return result, events


def test_parallel_equals_sequential_result(sequential, parallel):
    seq = sequential[0]
    par = parallel[0]
    assert par.seeds == seq.seeds
    assert par.skipped == seq.skipped
    assert par.total_markers == seq.total_markers
    assert par.total_dead == seq.total_dead
    assert par.total_alive == seq.total_alive
    assert par.by_level == seq.by_level
    assert par.cross_compiler == seq.cross_compiler
    assert par.cross_level == seq.cross_level
    assert par.findings == seq.findings
    assert par.soundness_violations == seq.soundness_violations


def test_parallel_keep_analyses_in_seed_order(sequential, parallel):
    seq = sequential[0]
    par = parallel[0]
    assert [o.seed for o in par.analyses] == [o.seed for o in seq.analyses] == seq.seeds
    # findings stay homogeneous triage dicts; analyses live on their own field
    assert all("seed" in f and "kind" in f for f in par.findings)
    for ours, theirs in zip(par.analyses, seq.analyses):
        assert ours.marker_count == theirs.marker_count
        assert ours.dead_count == theirs.dead_count
        for spec, outcome in theirs.analysis.outcomes.items():
            assert par_alive(ours, spec) == outcome.alive


def par_alive(outcome, spec):
    return outcome.analysis.outcomes[spec].alive


def test_parallel_merges_metric_tallies(sequential, parallel):
    seq_metrics = sequential[1]
    par_metrics = parallel[1]
    seq_snap, par_snap = seq_metrics.to_dict(), par_metrics.to_dict()
    assert seq_snap.keys() == par_snap.keys()
    for name, seq_value in seq_snap.items():
        par_value = par_snap[name]
        if seq_value["type"] == "histogram":
            # observation counts merge exactly; latencies differ by run
            assert par_value["count"] == seq_value["count"], name
        elif seq_value["type"] == "counter":
            assert par_value["value"] == seq_value["value"], name
        else:  # campaign gauges mirror the result, which is identical
            assert par_value["value"] == pytest.approx(
                seq_value["value"]
            ) or name == "campaign.programs_per_sec", name


def test_parallel_progress_ticks_in_seed_order(parallel):
    ticks = parallel[3]
    assert [t.seed for t in ticks] == list(range(SEED_BASE, SEED_BASE + PROGRAMS))
    assert [t.completed + t.skipped for t in ticks] == list(range(1, PROGRAMS + 1))
    assert all(t.total == PROGRAMS for t in ticks)


def test_parallel_spans_reparent_under_campaign(parallel):
    tracer = parallel[2]
    campaigns = tracer.find("campaign")
    assert len(campaigns) == 1
    assert campaigns[0].attrs["jobs"] == 4
    programs = tracer.find("campaign.program")
    assert len(programs) == PROGRAMS
    assert {s.parent_id for s in programs} == {campaigns[0].span_id}
    assert sorted(s.attrs["seed"] for s in programs) == list(
        range(SEED_BASE, SEED_BASE + PROGRAMS)
    )
    # worker subtrees came over intact: every program span has compile
    # children, and ids never collide
    ids = [s.span_id for s in tracer.spans]
    assert len(ids) == len(set(ids))
    for program in programs:
        child_names = {s.name for s in tracer.children(program)}
        assert "compile" in child_names
        assert "ground_truth" in child_names
    assert tracer.roots() == campaigns


def test_parallel_event_stream_identical_modulo_timestamps(sequential, parallel):
    """The telemetry determinism contract: jobs=4 narrates the exact
    same story as jobs=1, timestamps aside."""
    seq_events, par_events = sequential[2], parallel[4]
    assert strip_timestamps(par_events) == strip_timestamps(seq_events)
    types = [e.type for e in seq_events]
    assert types[0] == "campaign_start"
    assert types[-1] == "campaign_end"
    assert types.count("seed_start") == PROGRAMS
    # scheduling must not leak into the stream
    assert "jobs" not in par_events[0].attrs
    assert [e.seq for e in par_events] == list(range(len(par_events)))


def test_parallel_event_jsonl_bytes_identical_modulo_ts(sequential, parallel):
    """Golden-file form of the contract: serialized JSONL streams are
    byte-identical once the ``ts`` field is dropped per line."""

    def golden(events):
        return "\n".join(
            json.dumps(record, sort_keys=True)
            for record in strip_timestamps(events)
        ).encode()

    assert golden(parallel[4]) == golden(sequential[2])


def test_streaming_small_window_equals_sequential(sequential, streamed):
    """The bounded-window scheduler preserves the determinism contract
    even when the window throttles submission to one shard at a time."""
    seq, par = sequential[0], streamed[0]
    assert par.seeds == seq.seeds
    assert par.by_level == seq.by_level
    assert par.findings == seq.findings
    assert [o.seed for o in par.analyses] == [o.seed for o in seq.analyses]


def test_streaming_small_window_event_stream_identical(sequential, streamed):
    """Golden contract at window=1: the serialized event stream is
    byte-identical to sequential modulo timestamps — window size, like
    jobs, must not leak into the story."""

    def golden(events):
        return "\n".join(
            json.dumps(record, sort_keys=True)
            for record in strip_timestamps(events)
        ).encode()

    assert golden(streamed[1]) == golden(sequential[2])
    assert "window" not in streamed[1][0].attrs


def test_parallel_by_shape_matches_sequential(sequential, parallel):
    seq, par = sequential[0], parallel[0]
    assert par.by_shape == seq.by_shape
    assert sum(s.programs for s in seq.by_shape.values()) == len(seq.seeds)
    assert sum(s.markers for s in seq.by_shape.values()) == seq.total_markers


@given(
    shards=st.lists(
        st.lists(
            st.floats(min_value=0.0, max_value=1e9,
                      allow_nan=False, allow_infinity=False),
            max_size=30,
        ),
        max_size=6,
    ),
    p=st.sampled_from([0, 10, 25, 50, 75, 90, 99, 100]),
)
def test_merged_worker_histograms_match_sequential_percentiles(shards, p):
    """Histogram merging keeps every observation, so any percentile of
    the merged distribution equals the sequential one exactly."""
    sequential = MetricsRegistry()
    worker_dumps = []
    for shard in shards:
        worker = MetricsRegistry()
        for value in shard:
            sequential.histogram("h").observe(value)
            worker.histogram("h").observe(value)
        worker_dumps.append(worker.dump())
    merged = MetricsRegistry()
    for dump in worker_dumps:
        merged.merge(dump)
    assert merged.histogram("h").percentile(p) == sequential.histogram(
        "h"
    ).percentile(p)
    assert merged.histogram("h").summary() == sequential.histogram(
        "h"
    ).summary()


def test_jobs_must_be_positive():
    with pytest.raises(ValueError):
        run_campaign(n_programs=1, jobs=0)


def test_default_window_scales_with_jobs():
    # the scheduler's backpressure bound: in-flight shards per pool
    assert WINDOW_FACTOR >= 2  # workers must never starve on merge lag


def test_shard_seeds_contiguous_and_complete():
    seeds = list(range(17))
    shards = shard_seeds(seeds, jobs=4)
    assert [s for shard in shards for s in shard] == seeds
    assert all(len(shard) <= MAX_SHARD_SIZE for shard in shards)
    # ~4 waves per worker keeps stragglers from serializing the tail
    assert len(shards) >= 4

    assert shard_seeds([], jobs=4) == []
    assert shard_seeds([1, 2, 3], jobs=8) == [[1], [2], [3]]
    assert shard_seeds(list(range(100)), jobs=2, shard_size=40) == [
        list(range(40)), list(range(40, 80)), list(range(80, 100)),
    ]
