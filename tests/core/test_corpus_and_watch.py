from repro.compilers import CompilerSpec
from repro.core.corpus import analyze_one, default_specs, run_campaign
from repro.core.regression_watch import watch


def test_analyze_one_produces_outcome():
    outcome = analyze_one(0, default_specs())
    assert outcome is not None
    assert outcome.marker_count > 0
    assert 0 <= outcome.dead_count <= outcome.marker_count


def test_small_campaign_accumulates_consistently():
    result = run_campaign(n_programs=3, seed_base=100)
    assert len(result.seeds) + len(result.skipped) == 3
    assert result.total_dead + result.total_alive == result.total_markers
    assert not result.soundness_violations
    for family in ("gcclike", "llvmlike"):
        for level in ("O0", "O1", "Os", "O2", "O3"):
            stats = result.level_stats(family, level)
            assert stats.dead_total == result.total_dead
            assert 0 <= stats.primary_missed <= stats.missed <= stats.dead_total


def test_campaign_missed_pct_monotone_from_o0():
    result = run_campaign(n_programs=4, seed_base=200)
    for family in ("gcclike", "llvmlike"):
        o0 = result.level_stats(family, "O0").missed_pct
        o1 = result.level_stats(family, "O1").missed_pct
        assert o0 > o1


def test_watch_detects_planted_regressions():
    # Version 10 of llvmlike predates the aggressive-unswitch /
    # MemDep commits; the tip should regress on some fresh programs.
    report = watch(
        "llvmlike", old_version=10, n_programs=8, seed_base=500,
        levels=("O3",), bisect=True,
    )
    assert report.programs > 0
    # Regressions may or may not appear in a tiny sample, but when
    # they do, every bisection must land on a behavioural commit.
    for regression in report.regressions:
        if regression.bisection is not None:
            assert regression.bisection.commit.is_behavioural
