"""Fault-isolation units: crash envelopes, fault plans, the
checkpoint journal, the verify-ir gate, and the guarded reduction
oracle."""

import json
import os

import pytest

from repro.compilers import PipelineConfig, run_pipeline
from repro.compilers.pipeline import PassPipelineError
from repro.core.corpus import ProgramOutcome, default_specs, run_campaign
from repro.core.reduction import count_statements, reduce_program
from repro.core.resilience import (
    CheckpointJournal,
    CrashEnvelope,
    SeedReport,
    analyze_one_resilient,
    bucket_crashes,
    crash_envelope,
    read_journal_crashes,
    worker_death_envelope,
)
from repro.lang import parse_program
from repro.observability.metrics import MetricsRegistry
from repro.passes.registry import PASS_REGISTRY
from repro.testing import chaos


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    yield
    chaos.clear_plan()
    chaos.set_current_seed(None)


# -- crash envelopes -------------------------------------------------------


def _boom(seed):
    raise ValueError(f"boom for {seed}")


def _caught(seed):
    try:
        _boom(seed)
    except ValueError as err:
        return crash_envelope(seed, "analyze", err)


def test_crash_envelope_buckets_by_type_and_frame():
    a, b = _caught(1), _caught(2)
    assert a.exc_type == "ValueError"
    assert a.bucket == b.bucket  # same site, different seeds/messages
    # raised outside src/repro: no in-repo frame, type-only bucket
    assert a.bucket == "ValueError"
    assert a.message == "boom for 1"
    assert a.repro.startswith("dce-hunt generate --seed 1")
    assert any("boom for 1" in line for line in a.traceback)


def test_crash_envelope_follows_cause_chain_and_pass_name():
    try:
        run_pipeline(
            _module(), PipelineConfig(passes=("chaos",)),
        )
    except PassPipelineError:
        pytest.fail("no fault installed: chaos pass must be a no-op")
    chaos.install_plan(chaos.FaultPlan((chaos.Fault(site="chaos"),)))
    with pytest.raises(PassPipelineError) as exc_info:
        run_pipeline(_module(), PipelineConfig(passes=("chaos",)))
    envelope = crash_envelope(7, "compile", exc_info.value)
    # bucket uses the ROOT cause type plus the failing pass
    assert envelope.exc_type == "InjectedFault"
    assert envelope.bucket.endswith("#chaos")
    assert envelope.seed == 7


def _module():
    from repro.frontend.lower import lower_program
    from repro.frontend.typecheck import check_program

    program = parse_program("int main() { return 0; }")
    return lower_program(program, check_program(program))


def test_bucket_crashes_sorted_and_seed_ordered():
    envs = [
        CrashEnvelope(5, "analyze", "E", "m", "B@y"),
        CrashEnvelope(3, "analyze", "E", "m", "B@y"),
        CrashEnvelope(4, "generate", "F", "m", "A@x"),
    ]
    buckets = bucket_crashes(envs)
    assert list(buckets) == ["A@x", "B@y"]
    assert [e.seed for e in buckets["B@y"]] == [3, 5]


def test_worker_death_envelope_shape():
    envelope = worker_death_envelope(42)
    assert envelope.phase == "worker"
    assert envelope.bucket == "WorkerDeath@worker"
    assert envelope.seed == 42


# -- fault plans -----------------------------------------------------------


def test_parse_fault_roundtrips():
    fault = chaos.parse_fault("pass:gvn:raise:3,11")
    assert fault == chaos.Fault(
        site="pass:gvn", kind="raise", seeds=frozenset({3, 11})
    )
    assert chaos.parse_fault("ground_truth:spin:17").kind == "spin"
    assert chaos.parse_fault("generate:raise").seeds == frozenset()
    assert chaos.parse_fault("ground_truth:skip:4").kind == "skip"


@pytest.mark.parametrize(
    "bad", ["generate", "generate:explode", "pass:gvn:raise:x", "a:raise:1:2"]
)
def test_parse_fault_rejects_malformed(bad):
    with pytest.raises(ValueError):
        chaos.parse_fault(bad)


def test_fault_targets_only_named_seeds():
    plan = chaos.FaultPlan(
        (chaos.Fault(site="generate", seeds=frozenset({3})),)
    )
    assert plan.fault_at("generate", 3) is not None
    assert plan.fault_at("generate", 4) is None
    assert plan.fault_at("instrument", 3) is None
    # empty seed set = every seed, including "no campaign running"
    assert chaos.FaultPlan((chaos.Fault(site="x"),)).fault_at("x", None)


def test_chaos_pass_is_registered_and_inert_by_default():
    assert "chaos" in PASS_REGISTRY
    assert PASS_REGISTRY["chaos"](None, None) is False


# -- per-seed resilient analysis ------------------------------------------


def test_resilient_seed_matches_plain_outcome():
    specs = default_specs()
    report = analyze_one_resilient(0, specs)
    assert report.completed and report.crash is None
    assert isinstance(report.outcome, ProgramOutcome)
    assert report.outcome.seed == 0


def test_resilient_seed_contains_crash_with_phase():
    chaos.install_plan(
        chaos.FaultPlan((chaos.Fault(site="instrument"),))
    )
    report = analyze_one_resilient(0, default_specs())
    assert not report.completed
    assert report.crash is not None
    assert report.crash.phase == "instrument"
    assert report.crash.exc_type == "InjectedFault"


def test_resilient_seed_skip_kind_hits_skipped_path():
    chaos.install_plan(
        chaos.FaultPlan((chaos.Fault(site="ground_truth", kind="skip"),))
    )
    report = analyze_one_resilient(0, default_specs())
    assert report.skipped and report.crash is None


# -- negative n_programs ---------------------------------------------------


def test_run_campaign_rejects_negative_count():
    with pytest.raises(ValueError, match="n_programs must be >= 0"):
        run_campaign(n_programs=-5)


def test_cli_rejects_negative_programs(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["campaign", "--programs", "-5"])
    assert "--programs must be >= 0" in capsys.readouterr().err


# -- checkpoint journal ----------------------------------------------------


def _reports():
    ok = analyze_one_resilient(0, default_specs())
    crash = SeedReport(
        seed=1, crash=CrashEnvelope(1, "generate", "E", "m", "E@f")
    )
    budget = SeedReport(seed=2, budget_exceeded=True)
    skipped = SeedReport(seed=3, skipped=True)
    degraded = analyze_one_resilient(4, default_specs())
    degraded.degraded = True
    return [ok, crash, budget, skipped, degraded]


def test_journal_roundtrip(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = CheckpointJournal(path)
    reports = _reports()
    for report in reports:
        journal.record(report)
    journal.close()

    reloaded = CheckpointJournal(path)
    assert reloaded.seeds() == {0, 1, 2, 3, 4}
    for original in reports:
        back = reloaded.get(original.seed)
        assert back.skipped == original.skipped
        assert back.budget_exceeded == original.budget_exceeded
        assert back.degraded == original.degraded
        assert (back.crash is None) == (original.crash is None)
        if original.crash is not None:
            assert back.crash == original.crash
        if original.outcome is not None:
            assert back.outcome.seed == original.outcome.seed
            assert (
                back.outcome.analysis.outcomes.keys()
                == original.outcome.analysis.outcomes.keys()
            )
    reloaded.close()

    assert [e.seed for e in read_journal_crashes(path)] == [1]


def test_journal_tolerates_torn_tail_line(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = CheckpointJournal(path)
    journal.record(SeedReport(seed=0, skipped=True))
    journal.record(SeedReport(seed=1, skipped=True))
    journal.close()
    with open(path) as handle:
        content = handle.read()
    with open(path, "w") as handle:
        handle.write(content[: len(content) // 2 + len(content) // 4])

    reloaded = CheckpointJournal(path)
    assert reloaded.get(0) is not None  # intact record survives
    assert reloaded.get(1) is None  # torn record re-analyzed
    reloaded.close()


def test_journal_records_are_json_lines(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = CheckpointJournal(path)
    journal.record(
        SeedReport(seed=9, crash=CrashEnvelope(9, "analyze", "E", "m", "E@f"))
    )
    journal.close()
    with open(path) as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    assert lines == [
        {
            "seed": 9,
            "status": "crash",
            "crash": {
                "seed": 9,
                "phase": "analyze",
                "exc_type": "E",
                "message": "m",
                "bucket": "E@f",
                "traceback": [],
                "repro": "",
            },
        }
    ]


# -- verify-ir gate --------------------------------------------------------


def test_verify_ir_names_offending_pass():
    def corrupting_pass(module, config):
        # drop a terminator: structurally invalid IR
        func = next(iter(module.functions.values()))
        func.blocks[0].instrs.pop()
        return True

    PASS_REGISTRY["corrupt"] = corrupting_pass
    try:
        module = _module()
        with pytest.raises(PassPipelineError) as exc_info:
            run_pipeline(
                module,
                PipelineConfig(passes=("corrupt",)),
                verify_each=True,
            )
        assert exc_info.value.pass_name == "corrupt"
        assert "unverifiable IR" in str(exc_info.value)
    finally:
        del PASS_REGISTRY["corrupt"]


def test_verify_ir_passes_clean_compilations():
    from repro import api

    report = api.analyze_source(
        "int main() { int x = 0; if (x) { x = 1; } return x; }",
        verify_ir=True,
    )
    assert report.missed  # analysis actually ran


# -- guarded reduction oracle ----------------------------------------------

REDUCIBLE = """
void DCEMarker0(void);
static int keep = 1;
int main() {
  int a = 1;
  int b = 2;
  int c = a + b;
  if (c == 100) { DCEMarker0(); }
  return keep;
}
"""


def test_reduction_survives_oracle_exceptions():
    from repro.lang import print_program

    def fragile(program):  # noqa: ANN001 - pytest-local predicate
        text = print_program(program)
        if "DCEMarker0()" not in text:
            return False
        if "keep" not in text:
            # simulate a predicate that crashes on this shape instead
            # of answering
            raise RuntimeError("oracle blew up")
        return True

    metrics = MetricsRegistry()
    result = reduce_program(
        parse_program(REDUCIBLE), fragile, max_rounds=3, metrics=metrics
    )
    text = print_program(result.program)
    # crashing candidates were declined, so the load-bearing parts stay
    assert "DCEMarker0()" in text
    assert "keep" in text
    assert result.oracle_errors >= 1
    assert (
        metrics.counter("reduction.oracle_errors").value
        == result.oracle_errors
    )
    # it still shrank: best-so-far was kept through the errors
    assert result.stmts_after < result.stmts_before
    assert count_statements(result.program) == result.stmts_after
