import json

import pytest

from repro.core.artifact import (
    build_corpus,
    load_corpus,
    load_program,
    validate_corpus,
)


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    directory = tmp_path_factory.mktemp("corpus")
    records = build_corpus(directory, seeds=[1, 2])
    return directory, records


def test_build_writes_layout(corpus):
    directory, records = corpus
    assert (directory / "manifest.json").exists()
    assert (directory / "results.json").exists()
    assert (directory / "programs" / "seed_000001.c").exists()
    assert len(records) == 2


def test_round_trip_load(corpus):
    directory, records = corpus
    manifest, loaded = load_corpus(directory)
    assert manifest["seeds"] == [r.seed for r in records]
    assert [r.to_json() for r in loaded] == [r.to_json() for r in records]


def test_programs_reload_with_markers(corpus):
    directory, records = corpus
    inst = load_program(directory, 1)
    assert set(records[0].markers) == set(inst.marker_names)


def test_validate_passes_on_fresh_corpus(corpus):
    directory, _ = corpus
    report = validate_corpus(directory)
    assert report.ok
    assert report.checked == 2


def test_validate_detects_tampering(corpus, tmp_path):
    directory, _ = corpus
    import shutil

    copy = tmp_path / "tampered"
    shutil.copytree(directory, copy)
    results = json.loads((copy / "results.json").read_text())
    # Claim a compiler eliminated nothing anywhere.
    key = next(iter(results[0]["eliminated_by"]))
    results[0]["eliminated_by"][key] = []
    (copy / "results.json").write_text(json.dumps(results))
    report = validate_corpus(copy)
    assert not report.ok
    assert any("drifted" in m for m in report.mismatches)


def test_unsupported_format_rejected(tmp_path):
    (tmp_path / "manifest.json").write_text('{"format": 99}')
    (tmp_path / "results.json").write_text("[]")
    with pytest.raises(ValueError, match="format"):
        load_corpus(tmp_path)
