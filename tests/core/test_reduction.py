import pytest

from repro.compilers import CompilerSpec
from repro.core.reduction import (
    count_statements,
    missed_marker_predicate,
    reduce_program,
)
from repro.lang import parse_program, print_program

# A listing-1-flavoured program padded with removable noise.
BLOATED = """
void DCEMarker0(void);
char a;
char b[2];
static int noise1 = 4;
static long noise2[3] = {1, 2, 3};
static int helper(int x) { return x * 3; }
int main() {
  int pad1 = helper(2);
  noise1 += pad1;
  long pad2 = noise2[1] + noise1;
  char *d = &a;
  char *e = &b[1];
  if (d == e) {
    DCEMarker0();
  }
  noise2[2] = pad2;
  for (int i = 0; i < 3; i++) { noise1 += i; }
  return 0;
}
"""


def test_reduction_shrinks_while_preserving_interestingness():
    program = parse_program(BLOATED)
    predicate = missed_marker_predicate(
        "DCEMarker0",
        keeper=CompilerSpec("llvmlike", "O3"),
        witness=CompilerSpec("gcclike", "O3"),
    )
    assert predicate(program)
    result = reduce_program(program, predicate)
    assert result.stmts_after < result.stmts_before
    assert predicate(result.program)
    text = print_program(result.program)
    assert "DCEMarker0" in text
    # The noise should be gone.
    assert "helper" not in text
    assert "noise2" not in text


def test_reduction_requires_interesting_input():
    program = parse_program("void DCEMarker0(void); int main() { return 0; }")
    predicate = missed_marker_predicate(
        "DCEMarker0", keeper=CompilerSpec("llvmlike", "O3")
    )
    with pytest.raises(ValueError):
        reduce_program(program, predicate)


def test_predicate_rejects_alive_marker():
    program = parse_program(
        "void DCEMarker0(void); int main() { DCEMarker0(); return 0; }"
    )
    predicate = missed_marker_predicate(
        "DCEMarker0", keeper=CompilerSpec("llvmlike", "O3")
    )
    assert not predicate(program)


def test_count_statements():
    program = parse_program("int main() { int a = 1; a += 2; return a; }")
    assert count_statements(program) >= 4  # block + three statements
