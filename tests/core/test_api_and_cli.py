from repro import api
from repro.cli import main as cli_main
from repro.compilers import CompilerSpec

LISTING_1 = """
char a;
char b[2];
static int c = 0;
int main() {
  char *d = &a;
  char *e = &b[1];
  if (d == e) {
    b[0] = 2;
  }
  if (c) {
    b[0] = 1;
  }
  c = 0;
  return 0;
}
"""


def test_analyze_source_finds_the_paper_asymmetry():
    specs = [CompilerSpec("gcclike", "O3"), CompilerSpec("llvmlike", "O3")]
    report = api.analyze_source(LISTING_1, specs)
    gcc_missed = report.missed[str(specs[0])]
    llvm_missed = report.missed[str(specs[1])]
    assert len(gcc_missed) == 1
    assert len(llvm_missed) == 1
    assert gcc_missed != llvm_missed
    summary = report.summary()
    assert "missed" in summary


def test_primary_subset_of_missed():
    report = api.analyze_source(LISTING_1)
    for spec, missed in report.missed.items():
        assert report.primary[spec] <= missed


def test_instrumented_source_contains_markers():
    text = api.instrumented_source(LISTING_1)
    assert "DCEMarker0();" in text
    assert "void DCEMarker0(void);" in text


def test_compile_to_asm():
    asm = api.compile_to_asm("int main() { return 7; }")
    assert "main:" in asm and "ret" in asm


def test_cli_generate_and_analyze(tmp_path, capsys):
    assert cli_main(["generate", "--seed", "3"]) == 0
    generated = capsys.readouterr().out
    assert "int main" in generated

    case = tmp_path / "case.c"
    case.write_text(LISTING_1)
    assert cli_main(["analyze", str(case)]) == 0
    out = capsys.readouterr().out
    assert "markers:" in out


def test_cli_asm(tmp_path, capsys):
    case = tmp_path / "case.c"
    case.write_text("int main() { return 0; }")
    assert cli_main(["asm", str(case), "--level", "O1"]) == 0
    assert "main:" in capsys.readouterr().out


def test_cli_bisect(tmp_path, capsys):
    case = tmp_path / "case.c"
    case.write_text(
        """
        void DCEMarker0(void);
        static int a = 0;
        int main() {
          if (a) { DCEMarker0(); }
          a = 1;
          return 0;
        }
        """
    )
    assert cli_main(["bisect", str(case), "DCEMarker0", "--family", "llvmlike"]) == 0
    out = capsys.readouterr().out
    assert "3cc38703" in out


def test_cli_corpus_build_and_validate(tmp_path, capsys):
    directory = tmp_path / "corpus"
    assert cli_main(["corpus-build", str(directory), "--programs", "2"]) == 0
    assert "wrote 2 programs" in capsys.readouterr().out
    assert cli_main(["corpus-validate", str(directory)]) == 0
    assert "reproduce" in capsys.readouterr().out
