import pytest

from repro.core.case_studies import CASE_STUDIES, case_study, verify_case_study


@pytest.mark.parametrize("case", CASE_STUDIES, ids=lambda c: c.case_id)
def test_case_study_reproduces(case):
    problems = verify_case_study(case)
    assert not problems, "\n".join(problems)


def test_lookup_by_id():
    case = case_study("listing4-global-store-init")
    assert "flow-sensitive" in case.title


def test_lookup_unknown_raises():
    with pytest.raises(KeyError):
        case_study("nope")


def test_adaptations_are_documented():
    # Every case that deviates from the paper's exact C must say why.
    for case in CASE_STUDIES:
        if "analogue" in case.paper_ref or "adapt" in case.title.lower():
            assert case.adaptation, case.case_id


def test_case_ids_unique():
    ids = [c.case_id for c in CASE_STUDIES]
    assert len(ids) == len(set(ids))
