from repro.core.regression_watch import Regression, WatchReport
from repro.core.stats import format_table, pct


def test_format_table_alignment():
    table = format_table(
        ["name", "value"],
        [["short", "1"], ["a-much-longer-name", "22"]],
        title="T",
    )
    lines = table.splitlines()
    assert lines[0] == "T"
    # header and rows aligned to the widest cell
    assert lines[1].startswith("name")
    assert len(lines[2].split("  ")[0]) == len("a-much-longer-name")


def test_pct_formatting():
    assert pct(12.3456) == "12.35%"
    assert pct(0) == "0.00%"


def test_watch_report_component_grouping():
    from repro.compilers.versions import commit_at
    from repro.core.bisect import BisectionResult

    commit = commit_at("llvmlike", 3)
    report = WatchReport("llvmlike", 0, 21)
    report.regressions.append(
        Regression(1, "llvmlike", "O3", "DCEMarker0", 0, 21,
                   BisectionResult("llvmlike", 3, commit, 5))
    )
    report.regressions.append(
        Regression(2, "llvmlike", "O3", "DCEMarker1", 0, 21,
                   BisectionResult("llvmlike", 3, commit, 5))
    )
    report.regressions.append(Regression(3, "llvmlike", "O3", "DCEMarker2", 0, 21))
    assert report.components() == {commit.component: 2}


def test_cli_campaign_smoke(capsys):
    from repro.cli import main as cli_main

    assert cli_main(["campaign", "--programs", "2", "--seed-base", "900"]) == 0
    out = capsys.readouterr().out
    assert "Tables 1 & 2 shape" in out
    assert "cross-compiler" in out
