from repro.compilers import CompilerSpec, compile_minic
from repro.core.value_checks import instrument_value_checks
from repro.frontend.typecheck import check_program
from repro.interp import run_program
from repro.lang import parse_program

SOURCE = """
static int g = 3;
static long h;
int main() {
  g = 7;
  h = g * 2;
  g = 6;
  return (int)h;
}
"""


def test_value_checks_are_dead_by_construction():
    program = parse_program(SOURCE)
    checked = instrument_value_checks(program)
    assert checked.markers
    info = check_program(checked.program)
    result = run_program(checked.program, info=info)
    # No check may ever fire: the recorded constants are exact.
    assert not (set(result.marker_hits) & set(checked.markers))


def test_value_checks_preserve_behaviour():
    program = parse_program(SOURCE)
    original = run_program(program)
    checked = instrument_value_checks(program)
    result = run_program(checked.program)
    assert result.exit_code == original.exit_code


def test_compilers_can_eliminate_value_checks():
    program = parse_program(SOURCE)
    checked = instrument_value_checks(program)
    info = check_program(checked.program)
    result = compile_minic(
        checked.program, CompilerSpec("llvmlike", "O3"), info=info
    )
    alive = result.alive_markers("DCEValueCheck")
    # The strong pipeline proves at least some recorded values.
    assert len(alive) < len(checked.markers)


def test_no_globals_means_no_checks():
    program = parse_program("int main() { return 0; }")
    checked = instrument_value_checks(program)
    assert checked.markers == []
