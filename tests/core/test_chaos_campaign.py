"""Campaign-level fault isolation, proven with injected faults.

The contract under test: a campaign with crashing, skipping, spinning,
or worker-killing seeds still completes; clean seeds produce exactly
what a fault-free campaign produces; and the report (crash envelopes,
buckets, counters) is identical at ``jobs=1`` and ``jobs=4``.
"""

import pytest

from repro.core import parallel as parallel_mod
from repro.core.corpus import run_campaign
from repro.observability import MetricsRegistry
from repro.testing import chaos

PROGRAMS = 6
SEED_BASE = 200
CRASH_PASS_SEED = SEED_BASE + 1  # dies inside the gvn pass
CRASH_GEN_SEED = SEED_BASE + 3  # dies in program generation
SKIP_SEED = SEED_BASE + 4  # blows the interpreter step budget
FAULTED = {CRASH_PASS_SEED, CRASH_GEN_SEED, SKIP_SEED}

PLAN = chaos.FaultPlan((
    chaos.Fault(site="pass:gvn", seeds=frozenset({CRASH_PASS_SEED})),
    chaos.Fault(site="generate", seeds=frozenset({CRASH_GEN_SEED})),
    chaos.Fault(
        site="ground_truth", kind="skip", seeds=frozenset({SKIP_SEED})
    ),
))


@pytest.fixture(autouse=True)
def _clean_plan():
    yield
    chaos.clear_plan()
    chaos.set_current_seed(None)


def _campaign(jobs, plan=None, **kwargs):
    if plan is not None:
        chaos.install_plan(plan)
    metrics = MetricsRegistry()
    try:
        result = run_campaign(
            n_programs=PROGRAMS, seed_base=SEED_BASE, keep_analyses=True,
            metrics=metrics, jobs=jobs, **kwargs,
        )
    finally:
        chaos.clear_plan()
    return result, metrics


@pytest.fixture(scope="module")
def nofault():
    return _campaign(jobs=1)


@pytest.fixture(scope="module")
def chaos_seq():
    return _campaign(jobs=1, plan=PLAN)


@pytest.fixture(scope="module")
def chaos_par():
    return _campaign(jobs=4, plan=PLAN)


def test_faulted_campaign_completes_and_attributes(chaos_seq):
    result, metrics = chaos_seq
    assert result.seeds == sorted(
        set(range(SEED_BASE, SEED_BASE + PROGRAMS)) - FAULTED
    )
    assert result.skipped == [SKIP_SEED]
    assert [c.seed for c in result.crashes] == [CRASH_PASS_SEED, CRASH_GEN_SEED]
    by_seed = {c.seed: c for c in result.crashes}
    assert by_seed[CRASH_PASS_SEED].phase == "compile"
    assert by_seed[CRASH_PASS_SEED].bucket.endswith("#gvn")
    assert by_seed[CRASH_GEN_SEED].phase == "generate"
    assert all(c.repro for c in result.crashes)
    assert len(result.crash_buckets) == 2
    assert metrics.counter("campaign.crashes").value == 2
    assert metrics.gauge("campaign.crash_buckets").value == 2


def test_clean_seeds_identical_to_nofault_run(nofault, chaos_seq):
    clean, _ = nofault
    faulted, _ = chaos_seq
    clean_by_seed = {o.seed: o for o in clean.analyses}
    for outcome in faulted.analyses:
        twin = clean_by_seed[outcome.seed]
        assert outcome.marker_count == twin.marker_count
        assert outcome.dead_count == twin.dead_count
        for spec, marker_outcome in twin.analysis.outcomes.items():
            assert (
                outcome.analysis.outcomes[spec].alive == marker_outcome.alive
            ), (outcome.seed, spec)


def test_parallel_reports_identical_faults(chaos_seq, chaos_par):
    seq, seq_metrics = chaos_seq
    par, par_metrics = chaos_par
    assert par.seeds == seq.seeds
    assert par.skipped == seq.skipped
    assert par.crashes == seq.crashes
    assert par.budget_exceeded == seq.budget_exceeded
    assert par.degraded == seq.degraded
    assert list(par.crash_buckets) == list(seq.crash_buckets)
    assert par.crash_buckets == seq.crash_buckets
    assert par.by_level == seq.by_level
    assert par.findings == seq.findings
    for name in ("campaign.crashes", "campaign.checkpoint_replayed"):
        assert (
            par_metrics.counter(name).value
            == seq_metrics.counter(name).value
        ), name


def test_degraded_retry_matches_plain_nonincremental_run():
    seed = SEED_BASE
    plan = chaos.FaultPlan(
        (chaos.Fault(site="incremental", seeds=frozenset({seed})),)
    )
    chaos.install_plan(plan)
    metrics = MetricsRegistry()
    try:
        degraded = run_campaign(
            n_programs=1, seed_base=seed, keep_analyses=True,
            metrics=metrics,
        )
    finally:
        chaos.clear_plan()
    clean = run_campaign(
        n_programs=1, seed_base=seed, keep_analyses=True, incremental=False,
    )
    assert degraded.seeds == clean.seeds == [seed]
    assert degraded.degraded == [seed]
    assert not degraded.crashes
    assert metrics.counter("campaign.degraded").value == 1
    ours, theirs = degraded.analyses[0], clean.analyses[0]
    for spec, outcome in theirs.analysis.outcomes.items():
        assert ours.analysis.outcomes[spec].alive == outcome.alive


def test_budget_exceeded_spin_seed_is_contained():
    seed = SEED_BASE
    plan = chaos.FaultPlan(
        (chaos.Fault(site="analyze", kind="spin", seeds=frozenset({seed})),)
    )
    chaos.install_plan(plan)
    metrics = MetricsRegistry()
    try:
        result = run_campaign(
            n_programs=1, seed_base=seed, metrics=metrics, seed_budget=1.5,
        )
    finally:
        chaos.clear_plan()
    assert result.budget_exceeded == [seed]
    assert not result.seeds and not result.crashes
    assert metrics.counter("campaign.budget_exceeded").value == 1


def test_interpreter_polls_seed_deadline():
    from repro import budget
    from repro.budget import SeedBudgetExceeded
    from repro.core.ground_truth import compute_ground_truth
    from repro.core.markers import instrument_program
    from repro.lang import parse_program

    # enough iterations to cross the interpreter's 2048-step poll site
    instrumented = instrument_program(parse_program("""
int main() {
  long s = 0;
  for (int i = 0; i < 5000; i++) { s += i; }
  return (int) s;
}
"""))
    with budget.deadline(1e-9):
        with pytest.raises(SeedBudgetExceeded):
            compute_ground_truth(instrumented)


def test_worker_death_is_bisected_to_killer_seed(monkeypatch):
    seeds = list(range(SEED_BASE, SEED_BASE + 4))
    killer = seeds[1]
    # force multi-seed shards so the bisection actually has to isolate
    monkeypatch.setattr(
        parallel_mod, "shard_seeds",
        lambda s, jobs, shard_size=None: [list(s[:2]), list(s[2:])],
    )
    chaos.install_plan(chaos.FaultPlan(
        (chaos.Fault(site="generate", kind="kill",
                     seeds=frozenset({killer})),)
    ))
    metrics = MetricsRegistry()
    try:
        result = run_campaign(
            n_programs=4, seed_base=SEED_BASE, metrics=metrics, jobs=2,
        )
    finally:
        chaos.clear_plan()
    assert result.seeds == [s for s in seeds if s != killer]
    assert [c.seed for c in result.crashes] == [killer]
    assert result.crashes[0].bucket == "WorkerDeath@worker"
    assert metrics.counter("campaign.worker_restarts").value >= 1


def test_checkpoint_resume_reproduces_uninterrupted_run(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    plan = chaos.FaultPlan(
        (chaos.Fault(site="analyze", seeds=frozenset({SEED_BASE + 1})),)
    )

    class StopAfter:
        def __init__(self, n):
            self.remaining = n

        def __call__(self, snapshot):
            self.remaining -= 1
            if self.remaining == 0:
                raise KeyboardInterrupt

    chaos.install_plan(plan)
    try:
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                n_programs=4, seed_base=SEED_BASE, checkpoint=path,
                progress=StopAfter(2),
            )
        metrics = MetricsRegistry()
        resumed = run_campaign(
            n_programs=4, seed_base=SEED_BASE, checkpoint=path,
            keep_analyses=True, metrics=metrics,
        )
        uninterrupted = run_campaign(
            n_programs=4, seed_base=SEED_BASE, keep_analyses=True,
        )
    finally:
        chaos.clear_plan()
    # the two journaled seeds replayed from disk; only the rest re-ran
    assert metrics.counter("campaign.checkpoint_replayed").value == 2
    assert resumed.seeds == uninterrupted.seeds
    assert resumed.skipped == uninterrupted.skipped
    assert resumed.crashes == uninterrupted.crashes
    assert resumed.by_level == uninterrupted.by_level
    assert resumed.findings == uninterrupted.findings
    assert resumed.total_markers == uninterrupted.total_markers
    # a parallel rerun over the same journal agrees too
    chaos.install_plan(plan)
    par_metrics = MetricsRegistry()
    try:
        par = run_campaign(
            n_programs=4, seed_base=SEED_BASE, checkpoint=path,
            keep_analyses=True, metrics=par_metrics, jobs=2,
        )
    finally:
        chaos.clear_plan()
    assert par.seeds == uninterrupted.seeds
    assert par.crashes == uninterrupted.crashes
    assert par.by_level == uninterrupted.by_level
    assert par_metrics.counter("campaign.checkpoint_replayed").value == 4
