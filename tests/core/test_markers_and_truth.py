from repro.core.ground_truth import compute_ground_truth
from repro.core.markers import instrument_program
from repro.frontend.typecheck import check_program
from repro.lang import ast_nodes as ast
from repro.lang import parse_program, print_program

SOURCE = """
int opaque_source(void);
int main() {
  int v = opaque_source();
  if (v) {
    v += 1;
  } else {
    v -= 1;
  }
  for (int i = 0; i < 2; i++) { v += i; }
  switch (v) {
    case 0: v = 10; break;
    default: v = 20; break;
  }
  if (v == 12345) { return 1; }
  int tail = v;
  return tail;
}
"""


def test_each_construct_gets_a_marker():
    inst = instrument_program(parse_program(SOURCE))
    kinds = [m.kind for m in inst.markers]
    assert kinds.count("if-then") == 2
    assert kinds.count("if-else") == 1
    assert kinds.count("loop-body") == 1
    assert kinds.count("case") == 1
    assert kinds.count("default") == 1
    assert kinds.count("after-return") == 1


def test_markers_are_declared_and_checkable():
    inst = instrument_program(parse_program(SOURCE))
    info = check_program(inst.program)
    assert inst.marker_names <= set(info.opaque_functions())


def test_original_program_is_untouched():
    program = parse_program(SOURCE)
    before = print_program(program)
    instrument_program(program)
    assert print_program(program) == before


def test_instrumented_program_prints_as_valid_source():
    inst = instrument_program(parse_program(SOURCE))
    text = print_program(inst.program)
    reparsed = parse_program(text)
    check_program(reparsed)
    assert "DCEMarker0();" in text


def test_ground_truth_separates_dead_and_alive():
    inst = instrument_program(parse_program(SOURCE))
    truth = compute_ground_truth(inst)
    # opaque_source() returns 0: else-branch runs, then-branch dead.
    by_kind = {m.kind: m.name for m in inst.markers}
    assert by_kind["if-else"] in truth.alive
    assert by_kind["loop-body"] in truth.alive
    assert truth.dead | truth.alive == inst.marker_names
    assert truth.dead & truth.alive == frozenset()
    # if (v == 12345) never fires: its then marker and nothing else
    dead_kinds = {m.kind for m in inst.markers if m.name in truth.dead}
    assert "if-then" in dead_kinds


def test_after_return_marker_position():
    source = """
    int opaque_source(void);
    int main() {
      if (opaque_source()) { return 1; }
      return 0;
    }
    """
    inst = instrument_program(parse_program(source))
    kinds = [m.kind for m in inst.markers]
    # 'return 0;' follows the conditional return: the continuation
    # position gets a marker (the paper's 'function body after a
    # conditional return').
    assert "after-return" in kinds

    source2 = """
    int opaque_source(void);
    int main() {
      int acc = 0;
      if (opaque_source()) { return 1; }
      acc += 1;
      return acc;
    }
    """
    inst2 = instrument_program(parse_program(source2))
    assert "after-return" in [m.kind for m in inst2.markers]


def test_executed_functions_recorded():
    inst = instrument_program(
        parse_program(
            """
            static int helper(void) { return 4; }
            static int unused(void) { return 5; }
            int main() { return helper(); }
            """
        )
    )
    truth = compute_ground_truth(inst)
    executed = truth.executed_functions()
    assert "helper" in executed and "main" in executed
    assert "unused" not in executed


def test_dead_fraction_property():
    inst = instrument_program(
        parse_program("int main() { int x = 0; if (0) { x = 1; } return x; }")
    )
    truth = compute_ground_truth(inst)
    assert truth.dead_fraction == 1.0
