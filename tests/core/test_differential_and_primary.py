from repro.compilers import CompilerSpec
from repro.core.differential import analyze_markers, missed_between_levels
from repro.core.ground_truth import compute_ground_truth
from repro.core.markers import instrument_program
from repro.core.primary import build_marker_graph, primary_missed_markers
from repro.frontend.typecheck import check_program
from repro.lang import parse_program

LISTING_1 = """
char a;
char b[2];
static int c = 0;
int main() {
  char *d = &a;
  char *e = &b[1];
  if (d == e) {
    int f = 0;
    int g = 0;
    for (; f < 10; f++) {
      g += f;
    }
  }
  if (c) {
    b[0] = 1;
  }
  c = 0;
  return 0;
}
"""


def analyzed(source, specs):
    inst = instrument_program(parse_program(source))
    info = check_program(inst.program)
    truth = compute_ground_truth(inst, info=info)
    return inst, truth, analyze_markers(inst, specs, info=info, ground_truth=truth)


def test_cross_compiler_differential_on_listing_1():
    gcc = CompilerSpec("gcclike", "O3")
    llvm = CompilerSpec("llvmlike", "O3")
    inst, truth, analysis = analyzed(LISTING_1, [gcc, llvm])
    gcc_misses = analysis.missed_vs(gcc, llvm)
    llvm_misses = analysis.missed_vs(llvm, gcc)
    assert len(gcc_misses) == 1  # the if (c) marker
    assert len(llvm_misses) == 2  # the pointer-compare if + its loop
    assert not analysis.soundness_violations(gcc)
    assert not analysis.soundness_violations(llvm)


def test_missed_vs_ideal_counts_all_misses():
    gcc = CompilerSpec("gcclike", "O3")
    inst, truth, analysis = analyzed(LISTING_1, [gcc])
    assert analysis.missed_vs_ideal(gcc) == truth.dead & analysis.outcome(gcc).alive


def test_cross_level_differential():
    specs = [CompilerSpec("llvmlike", lvl) for lvl in ("O1", "O2", "O3")]
    source = """
        void opaque_sink(void);
        int opaque_source(void);
        int main() {
          long t[2];
          t[0] = opaque_source();
          t[1] = 0;
          long x = t[0];
          opaque_sink();
          if (t[0] != x) {
            t[1] = 1;
          }
          return (int)t[1];
        }
    """
    inst, truth, analysis = analyzed(source, specs)
    seized = missed_between_levels(analysis, "llvmlike", high="O3", lows=("O1", "O2"))
    assert len(seized) == 1  # the O3 regression (gvn across calls)


def test_primary_classification_nested_ifs():
    # Fig. 2 / Listing 5: inner dead block is secondary when the outer
    # one is missed.
    source = """
    int opaque_source(void);
    static int flag = 9;
    int main() {
      int v = opaque_source();
      if (flag == 13) {
        if (v) {
          v = 0;
        }
      }
      flag = 13;
      return v;
    }
    """
    inst = instrument_program(parse_program(source))
    info = check_program(inst.program)
    truth = compute_ground_truth(inst, info=info)
    # The instrumenter visits nested constructs first: markers[0] is
    # the inner if's, markers[1] the outer's.
    inner = inst.markers[0].name
    outer = inst.markers[1].name
    assert {outer, inner} <= truth.dead

    # Case 1: compiler eliminates nothing -> only the outer is primary.
    primary = primary_missed_markers(inst, truth, frozenset(), info=info)
    assert outer in primary
    assert inner not in primary

    # Case 2: outer eliminated, inner missed -> inner becomes primary.
    primary2 = primary_missed_markers(inst, truth, frozenset({outer}), info=info)
    assert inner in primary2

    # Case 3: everything eliminated -> nothing is missed at all.
    primary3 = primary_missed_markers(inst, truth, truth.dead, info=info)
    assert primary3 == frozenset()


def test_marker_graph_interprocedural_edges():
    source = """
    int opaque_source(void);
    static int flag = 9;
    static void callee(void) {
      if (flag == 77) {
        flag = 1;
      }
    }
    int main() {
      if (opaque_source()) {
        callee();
      }
      flag = 0;
      return 0;
    }
    """
    inst = instrument_program(parse_program(source))
    info = check_program(inst.program)
    truth = compute_ground_truth(inst, info=info)
    graph = build_marker_graph(inst, truth.executed_functions(), info)
    callee_marker = next(m.name for m in inst.markers if m.function == "callee")
    main_marker = next(m.name for m in inst.markers if m.function == "main")
    # The callee's dead if is predecessed by the call-site marker.
    assert main_marker in graph.preds[callee_marker]


def test_self_loop_markers_do_not_block_primary():
    source = """
    int main() {
      for (int i = 0; i < 0; i++) {
        i += 0;
      }
      return 0;
    }
    """
    inst = instrument_program(parse_program(source))
    info = check_program(inst.program)
    truth = compute_ground_truth(inst, info=info)
    loop_marker = inst.markers[0].name
    assert loop_marker in truth.dead
    primary = primary_missed_markers(inst, truth, frozenset(), info=info)
    # Its only pred path is the live entry; the back edge to itself is
    # ignored, so a missed loop marker is primary.
    assert loop_marker in primary
