"""Module.clone(): structural equality and full detachment."""

from repro.compilers import CompilerSpec, run_pipeline
from repro.frontend.lower import lower_program
from repro.frontend.typecheck import check_program
from repro.ir import instructions as ins
from repro.ir.printer import fingerprint_module, print_module
from repro.lang import parse_program

SOURCE = """
void DCEMarker0(void);
static int g = 4;
static long arr[3] = {1, 2, 3};
static int helper(int x) { return x * 3; }
int main() {
  int a = helper(2);
  for (int i = 0; i < 3; i++) { a += arr[i]; }
  while (a > 100) { a /= 2; }
  switch (a & 3) {
    case 0: a += 1; break;
    default: a -= 1; break;
  }
  if (a == 1000) { DCEMarker0(); }
  return a;
}
"""


def _lowered():
    program = parse_program(SOURCE)
    info = check_program(program)
    return lower_program(program, info)


def _object_ids(module):
    seen = set()
    for info in module.globals.values():
        seen.add(id(info))
    for ext in module.externs.values():
        seen.add(id(ext))
    for func in module.functions.values():
        seen.add(id(func))
        for param in func.params:
            seen.add(id(param))
        for block in func.blocks:
            seen.add(id(block))
            for instr in block.instrs:
                seen.add(id(instr))
    return seen


def test_clone_is_structurally_identical():
    module = _lowered()
    clone = module.clone()
    assert print_module(clone) == print_module(module)
    assert fingerprint_module(clone) == fingerprint_module(module)


def test_clone_shares_no_mutable_objects():
    module = _lowered()
    clone = module.clone()
    assert _object_ids(module).isdisjoint(_object_ids(clone))


def test_clone_operands_point_at_cloned_values():
    module = _lowered()
    clone = module.clone()
    for func in clone.functions.values():
        own_values = set(map(id, func.params))
        own_blocks = set(map(id, func.blocks))
        for block in func.blocks:
            for instr in block.instrs:
                own_values.add(id(instr))
        for block in func.blocks:
            for instr in block.instrs:
                assert id(instr.block) in own_blocks
                for op in instr.operands():
                    if isinstance(op, ins.Instr) or op in func.params:
                        assert id(op) in own_values
                for succ in ins.successors(instr) or []:
                    assert id(succ) in own_blocks
                if isinstance(instr, ins.Phi):
                    for pred, _ in instr.incomings:
                        assert id(pred) in own_blocks


def test_mutating_clone_never_reaches_original():
    module = _lowered()
    before = print_module(module)
    clone = module.clone()
    config = CompilerSpec("llvmlike", "O3").config()
    run_pipeline(clone, config)  # O3 rewrites the clone heavily
    assert print_module(module) == before


def test_global_init_lists_are_detached():
    module = _lowered()
    clone = module.clone()
    clone.globals["arr"].init[0] = 999
    assert module.globals["arr"].init[0] == 1


def test_clone_after_optimization_round_trips():
    module = _lowered()
    config = CompilerSpec("gcclike", "O2").config()
    run_pipeline(module, config)
    clone = module.clone()
    assert fingerprint_module(clone) == fingerprint_module(module)
    assert _object_ids(module).isdisjoint(_object_ids(clone))
