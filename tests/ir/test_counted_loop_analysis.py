from repro.analysis.loops import find_loops
from repro.frontend.lower import lower_program
from repro.frontend.typecheck import check_program
from repro.ir.dominators import DominatorTree
from repro.lang import parse_program
from repro.passes.loop_unroll import analyze_counted_loop
from repro.passes.mem2reg import promote_memory_to_registers
from repro.passes.simplify_cfg import simplify_cfg


def analyzed_main(source, max_trip=64):
    program = parse_program(source)
    info = check_program(program)
    module = lower_program(program, info)
    main = module.functions["main"]
    simplify_cfg(main)
    promote_memory_to_registers(main)
    loops = find_loops(main, DominatorTree(main))
    assert len(loops) == 1
    return analyze_counted_loop(main, loops[0], max_trip)


def test_for_loop_is_header_exit_with_exact_trip():
    info = analyzed_main(
        "int acc; int main() { for (int i = 0; i < 7; i++) { acc += i; } return acc; }"
    )
    assert info is not None
    assert info.exit_kind == "header"
    assert info.trip == 7


def test_do_while_is_latch_exit_with_exact_trip():
    info = analyzed_main(
        """
        int acc;
        int main() {
          int i = 0;
          do { acc += i; i += 1; } while (i < 5);
          return acc;
        }
        """
    )
    assert info is not None
    assert info.exit_kind == "latch"
    assert info.trip == 5


def test_do_while_always_runs_once():
    info = analyzed_main(
        """
        int acc;
        int main() {
          int i = 100;
          do { acc += 1; i += 1; } while (i < 5);
          return acc;
        }
        """
    )
    assert info is not None
    assert info.trip == 1


def test_step_larger_than_one():
    info = analyzed_main(
        "int acc; int main() { for (int i = 0; i < 10; i += 3) { acc += 1; } return acc; }"
    )
    assert info is not None
    assert info.trip == 4  # i = 0, 3, 6, 9


def test_trip_over_budget_rejected():
    info = analyzed_main(
        "int acc; int main() { for (int i = 0; i < 50; i++) { acc += 1; } return acc; }",
        max_trip=16,
    )
    assert info is None


def test_runtime_bound_rejected():
    info = analyzed_main(
        """
        int opaque_source(void);
        int acc;
        int main() {
          int n = opaque_source();
          for (int i = 0; i < n; i++) { acc += 1; }
          return acc;
        }
        """
    )
    assert info is None


def test_loop_with_break_is_rejected():
    # A break adds a second exit edge; the canonical analysis refuses.
    info = analyzed_main(
        """
        int opaque_source(void);
        int acc;
        int main() {
          for (int i = 0; i < 9; i++) {
            acc += 1;
            if (opaque_source()) { break; }
          }
          return acc;
        }
        """
    )
    assert info is None
