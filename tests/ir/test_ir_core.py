import pytest

from repro.frontend.lower import lower_program
from repro.frontend.typecheck import check_program
from repro.ir import instructions as ins
from repro.ir import print_function, print_module, run_module, verify_module
from repro.ir.dominators import DominatorTree
from repro.ir.function import Block, IRFunction, Module
from repro.ir.values import Constant, const_int
from repro.ir.verify import VerificationError
from repro.lang import parse_program
from repro.lang.types import INT


def lower(source: str) -> Module:
    program = parse_program(source)
    info = check_program(program)
    return lower_program(program, info)


def test_lowering_produces_verified_module():
    module = lower(
        """
        static int g;
        int main() {
          int x = 1;
          if (x) { g = 2; } else { g = 3; }
          return g;
        }
        """
    )
    verify_module(module)
    assert run_module(module).exit_code == 2


def test_block_successors_and_predecessors():
    module = lower("int main() { int a = 0; if (a) { a = 1; } return a; }")
    main = module.functions["main"]
    preds = main.predecessors()
    entry = main.entry
    assert preds[entry] == []
    # The entry branch has two successors.
    assert len(entry.successors()) == 2


def test_reverse_postorder_starts_at_entry():
    module = lower(
        "int main() { int a = 0; while (a) { a -= 1; } return a; }"
    )
    main = module.functions["main"]
    rpo = main.reverse_postorder()
    assert rpo[0] is main.entry
    assert len(rpo) == len(main.reachable_blocks())


def test_drop_unreachable_blocks_fixes_phis():
    func = IRFunction("f", INT, [])
    a = func.new_block("a")
    b = func.new_block("b")  # will be unreachable
    c = func.new_block("c")
    phi = ins.Phi(INT, [(a, const_int(1, INT)), (b, const_int(2, INT))])
    c.insert_phi(phi)
    c.append(ins.Ret(phi))
    a.append(ins.Jmp(c))
    b.append(ins.Jmp(c))
    assert func.drop_unreachable_blocks()
    assert len(phi.incomings) == 1


def test_dominator_tree_basics():
    module = lower(
        """
        int main() {
          int a = 0;
          if (a) { a = 1; } else { a = 2; }
          return a;
        }
        """
    )
    main = module.functions["main"]
    dom = DominatorTree(main)
    entry = main.entry
    for block in main.reachable_blocks():
        assert dom.dominates(entry, block)
    # then/else don't dominate the join.
    then_block = entry.successors()[0]
    join = then_block.successors()[0]
    assert not dom.dominates(then_block, join)
    assert dom.idom(join) is entry


def test_dominance_frontier_of_branch_arms_is_join():
    module = lower(
        "int main() { int a = 0; if (a) { a = 1; } else { a = 2; } return a; }"
    )
    main = module.functions["main"]
    dom = DominatorTree(main)
    entry = main.entry
    then_block, else_block = entry.successors()
    frontiers = dom.frontiers()
    assert frontiers[id(then_block)] == frontiers[id(else_block)]
    assert len(frontiers[id(then_block)]) == 1


def test_verifier_rejects_missing_terminator():
    func = IRFunction("f", INT, [])
    func.new_block("entry")
    with pytest.raises(VerificationError, match="terminator"):
        from repro.ir.verify import verify_function

        verify_function(func)


def test_verifier_rejects_use_before_def():
    from repro.ir.verify import verify_function

    func = IRFunction("f", INT, [])
    entry = func.new_block("entry")
    add = ins.BinOp("+", const_int(1, INT), const_int(2, INT), INT)
    use = ins.BinOp("*", add, const_int(3, INT), INT)
    use.block = entry
    entry.instrs.append(use)  # use placed before def
    add.block = entry
    entry.instrs.append(add)
    entry.instrs.append(ins.Ret(use))
    entry.instrs[-1].block = entry
    with pytest.raises(VerificationError, match="use before def"):
        verify_function(func)


def test_printers_produce_text():
    module = lower("int main() { return 3; }")
    text = print_module(module)
    assert "define int @main" in text
    assert "ret" in print_function(module.functions["main"])


def test_constant_requires_in_range_value():
    with pytest.raises(ValueError):
        Constant(1 << 40, INT)
    assert const_int(1 << 40, INT).value == 0


def test_ir_interpreter_matches_reference_on_memory_program():
    source = """
        static short grid[4] = {1, 2, 3, 4};
        int total;
        int main() {
          short *p = &grid[2];
          *p = 9;
          for (int i = 0; i < 4; i++) { total += grid[i]; }
          return total;
        }
    """
    from repro.interp import run_program

    program = parse_program(source)
    info = check_program(program)
    ref = run_program(program, info=info)
    module = lower_program(program, info)
    got = run_module(module)
    assert got.exit_code == ref.exit_code == 16
    assert got.checksum == ref.checksum
