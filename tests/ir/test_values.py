import pytest

from repro.ir.values import (
    Constant,
    GlobalRef,
    NullPtr,
    Param,
    const_int,
    is_const_equal,
    is_zero,
)
from repro.lang.types import CHAR, INT, PointerType


def test_const_int_wraps():
    assert const_int(256, CHAR).value == 0
    assert const_int(-1, INT).value == -1


def test_is_zero_covers_null_and_zero():
    assert is_zero(const_int(0, INT))
    assert is_zero(NullPtr(PointerType(CHAR)))
    assert not is_zero(const_int(1, INT))


def test_is_const_equal():
    assert is_const_equal(const_int(7, INT), 7)
    assert not is_const_equal(const_int(7, INT), 8)
    assert not is_const_equal(Param("x", INT), 7)


def test_constants_are_value_equal_and_hashable():
    assert const_int(5, INT) == const_int(5, INT)
    assert const_int(5, INT) != const_int(5, CHAR)
    assert len({const_int(5, INT), const_int(5, INT)}) == 1


def test_global_ref_identity_is_by_name():
    a = GlobalRef("g", PointerType(INT))
    b = GlobalRef("g", PointerType(INT))
    assert a == b


def test_param_str():
    assert str(Param("x", INT)) == "%x"
