import pytest

from repro.compilers import (
    CompilerSpec,
    PipelineConfig,
    compile_minic,
    config_at,
    history,
    latest,
)
from repro.compilers.vendors import FAMILIES, LEVELS, base_config
from repro.compilers.versions import commit_at


def test_spec_validation():
    with pytest.raises(ValueError):
        CompilerSpec("tcc", "O2")
    with pytest.raises(ValueError):
        CompilerSpec("gcclike", "O9")
    spec = CompilerSpec("gcclike", "O2")
    assert str(spec).startswith("gcclike-O2@")


def test_every_family_level_config_resolves():
    for family in FAMILIES:
        for level in LEVELS:
            cfg = config_at(family, level)
            assert cfg.passes, (family, level)
            for name in cfg.passes:
                from repro.passes.registry import PASS_REGISTRY

                assert name in PASS_REGISTRY, name


def test_versions_range_checked():
    with pytest.raises(ValueError):
        config_at("gcclike", "O2", latest("gcclike") + 1)
    with pytest.raises(ValueError):
        config_at("gcclike", "O2", -1)


def test_histories_are_diverse():
    for family in FAMILIES:
        commits = history(family)
        assert len(commits) >= 20
        components = {c.component for c in commits}
        assert len(components) >= 9, family
        behavioural = [c for c in commits if c.is_behavioural]
        assert len(behavioural) >= 10, family
        # shas unique
        assert len({c.sha for c in commits}) == len(commits)


def test_commit_at_matches_history():
    commits = history("llvmlike")
    assert commit_at("llvmlike", 1) is commits[0]
    assert commit_at("llvmlike", len(commits)) is commits[-1]


def test_commits_change_configs_monotonically_applied():
    # Version k and k+1 differ exactly when commit k+1 is behavioural
    # at some level.
    family = "gcclike"
    for version in range(latest(family)):
        commit = commit_at(family, version + 1)
        changed = False
        for level in LEVELS:
            before = config_at(family, level, version)
            after = config_at(family, level, version + 1)
            if before != after:
                changed = True
        assert changed == commit.is_behavioural or not commit.is_behavioural


def test_family_asymmetries_match_design():
    gcc = config_at("gcclike", "O3")
    llvm = config_at("llvmlike", "O3")
    assert gcc.addr_cmp == "all" and llvm.addr_cmp == "zero-index"
    assert gcc.global_fold_mode == "readonly"
    assert llvm.global_fold_mode == "stored-init"
    assert not gcc.fold_uniform_const_arrays
    assert llvm.fold_uniform_const_arrays
    assert gcc.vectorize and not llvm.vectorize
    assert llvm.unswitch and not gcc.unswitch
    assert not gcc.dse_dead_at_exit and llvm.dse_dead_at_exit


def test_o0_is_family_independent():
    assert config_at("gcclike", "O0") == config_at("llvmlike", "O0")


def test_describe_diff_lists_changes():
    a = PipelineConfig()
    b = a.with_(vrp=not a.vrp, inline_budget=3)
    diff = a.describe_diff(b)
    assert any("vrp" in line for line in diff)
    assert any("inline_budget" in line for line in diff)


def test_compile_returns_asm_and_markers():
    result = compile_minic(
        """
        void DCEMarkerX(void);
        int main() {
          if (0) { DCEMarkerX(); }
          return 0;
        }
        """,
        CompilerSpec("gcclike", "O1"),
    )
    assert "main:" in result.asm
    assert result.alive_markers("DCEMarker") == frozenset()


def test_base_config_rejects_unknown_family():
    with pytest.raises(ValueError):
        base_config("sdcc", "O2")


def test_full_pipeline_constant_names_registered_passes():
    from repro.compilers import FULL_PIPELINE
    from repro.passes.registry import PASS_REGISTRY

    assert set(FULL_PIPELINE) <= set(PASS_REGISTRY)


def test_registry_lists_every_pass():
    from repro.passes.registry import available_passes

    names = available_passes()
    for expected in ("mem2reg", "sccp", "gvn", "memcp", "licm", "cprop",
                     "unroll", "unswitch", "vectorize", "vrp", "dse",
                     "adce", "inline", "globalopt", "jump-threading",
                     "instcombine", "simplify-cfg"):
        assert expected in names
