"""Incremental engine units + the knobs_for projection pin.

The engine's sharing is only sound if ``PipelineConfig.knobs_for``
lists *every* knob a pass reads; the pinning test greps each pass's
source for ``config.<field>`` accesses so a knob added to a pass
without updating :data:`PASS_KNOB_FIELDS` fails loudly here.
"""

import inspect
import re

from repro.compilers import (
    CompilerSpec,
    IncrementalEngine,
    PipelineConfig,
    run_pipeline,
)
from repro.compilers.config import PASS_GATES, PASS_KNOB_FIELDS
from repro.compilers.incremental import (
    GATE_SKIPS,
    MEMO_HITS,
    PASS_EXECS,
    PASS_EXECS_SAVED,
    PREFIX_HITS,
)
from repro.core.corpus import default_specs
from repro.frontend.lower import lower_program
from repro.frontend.typecheck import check_program
from repro.ir.printer import fingerprint_module
from repro.lang import parse_program
from repro.observability.metrics import MetricsRegistry
from repro.passes import (
    cprop,
    dce,
    dse,
    globalopt,
    gvn,
    inline,
    instcombine,
    jump_threading,
    licm,
    loop_unroll,
    loop_unswitch,
    mem2reg,
    memcp,
    sccp,
    simplify_cfg,
    utils,
    vectorize,
    vrp,
)
from repro.passes.registry import PASS_REGISTRY
from repro.testing import chaos

SOURCE = """
void DCEMarker0(void);
void DCEMarker1(void);
static int g = 4;
static long arr[3] = {1, 2, 3};
static int helper(int x) { return x * 3; }
int main() {
  int a = helper(2);
  for (int i = 0; i < 3; i++) { a += arr[i]; }
  if (a == 1000) { DCEMarker0(); }
  while (a > 100) { a /= 2; }
  if (g != 4) { DCEMarker1(); }
  return a;
}
"""

#: pass name -> module implementing it (the registry wraps these)
PASS_MODULES = {
    "simplify-cfg": simplify_cfg,
    "mem2reg": mem2reg,
    "sccp": sccp,
    "instcombine": instcombine,
    "gvn": gvn,
    "memcp": memcp,
    "dse": dse,
    "adce": dce,
    "inline": inline,
    "globalopt": globalopt,
    "unroll": loop_unroll,
    "unswitch": loop_unswitch,
    "vectorize": vectorize,
    "vrp": vrp,
    "jump-threading": jump_threading,
    "cprop": cprop,
    "licm": licm,
    "chaos": chaos,
}

_CONFIG_READ = re.compile(r"\bconfig\.([a-z_]+)\b")


def _config_reads(module) -> set[str]:
    return set(_CONFIG_READ.findall(inspect.getsource(module)))


def test_knob_projection_covers_every_registered_pass():
    assert set(PASS_KNOB_FIELDS) == set(PASS_REGISTRY)
    assert set(PASS_MODULES) == set(PASS_REGISTRY)


def test_knob_projection_pins_actual_config_reads():
    for name, module in PASS_MODULES.items():
        assert _config_reads(module) == set(PASS_KNOB_FIELDS[name]), (
            f"pass {name!r}: PASS_KNOB_FIELDS disagrees with the "
            f"config.<field> reads in {module.__name__}"
        )


def test_pass_helpers_read_no_config():
    # shared helpers run inside passes; a config read there would be
    # invisible to the per-pass projection
    from repro.analysis import alias, loops

    for module in (utils, alias, loops):
        assert _config_reads(module) == set()


def test_every_gate_field_is_in_its_pass_knobs():
    for name, gate in PASS_GATES.items():
        assert gate in PASS_KNOB_FIELDS[name]


def test_knobs_for_projects_only_relevant_fields():
    base = CompilerSpec("gcclike", "O2").config()
    # a knob only instcombine reads must not split any other pass's key
    other = base.with_(peephole_algebraic=not base.peephole_algebraic)
    assert base.knobs_for("instcombine") != other.knobs_for("instcombine")
    for name in PASS_REGISTRY:
        if name != "instcombine":
            assert base.knobs_for(name) == other.knobs_for(name)


def test_gated_off_pass_projects_to_one_key():
    a = PipelineConfig(vectorize=False, vectorize_min_trip=4)
    b = PipelineConfig(vectorize=False, vectorize_min_trip=99)
    assert a.knobs_for("vectorize") == b.knobs_for("vectorize") == (False,)
    on = PipelineConfig(vectorize=True, vectorize_min_trip=99)
    assert on.knobs_for("vectorize") != a.knobs_for("vectorize")


def _lowered():
    program = parse_program(SOURCE)
    info = check_program(program)
    return lower_program(program, info)


def _independent(config):
    module = _lowered()
    changed = run_pipeline(module, config)
    return module, changed


def test_engine_matches_run_pipeline_for_every_default_spec():
    engine = IncrementalEngine(_lowered())
    for spec in default_specs():
        config = spec.config()
        expected_module, expected_changed = _independent(config)
        got = engine.compile(config)
        assert got.changed_passes == expected_changed, str(spec)
        assert fingerprint_module(got.module) == fingerprint_module(
            expected_module
        ), str(spec)


def test_recompiling_same_config_is_all_prefix_hits():
    metrics = MetricsRegistry()
    config = CompilerSpec("gcclike", "O2").config()
    gated_off = sum(
        1
        for name in config.passes
        if PASS_GATES.get(name) and not getattr(config, PASS_GATES[name])
    )
    engine = IncrementalEngine(_lowered(), metrics=metrics)
    first = engine.compile(config)
    execs = metrics.counter(PASS_EXECS).value
    assert execs == len(config.passes) - gated_off
    assert metrics.counter(GATE_SKIPS).value == gated_off
    second = engine.compile(config)
    assert metrics.counter(PASS_EXECS).value == execs  # nothing re-ran
    assert metrics.counter(PREFIX_HITS).value == len(config.passes)
    assert second.changed_passes == first.changed_passes
    assert second.module is first.module  # same leaf state, shared


def test_late_knob_difference_shares_whole_prefix():
    metrics = MetricsRegistry()
    config = CompilerSpec("gcclike", "O2").config()
    # vrp_widen_after is read by vrp only (index 23 of the O2 pipeline)
    variant = config.with_(vrp_widen_after=config.vrp_widen_after + 7)
    engine = IncrementalEngine(_lowered(), metrics=metrics)
    engine.compile(config)
    engine.compile(variant)
    vrp_index = config.passes.index("vrp")
    assert metrics.counter(PREFIX_HITS).value >= vrp_index


def test_engine_saves_work_on_default_matrix():
    metrics = MetricsRegistry()
    engine = IncrementalEngine(_lowered(), metrics=metrics)
    seen = set()
    for spec in default_specs():
        config = spec.config()
        from dataclasses import astuple

        key = astuple(config)
        if key in seen:
            continue
        seen.add(key)
        engine.compile(config)
    saved = metrics.counter(PASS_EXECS_SAVED).value
    execs = metrics.counter(PASS_EXECS).value
    assert saved > 0
    assert saved == (
        metrics.counter(PREFIX_HITS).value
        + metrics.counter(MEMO_HITS).value
        + metrics.counter(GATE_SKIPS).value
    )
    assert engine.pass_execs == execs
    assert engine.pass_execs_saved == saved


def test_memoize_off_still_produces_identical_results():
    engine = IncrementalEngine(_lowered(), memoize=False)
    for spec in ("O1", "O2", "O3"):
        config = CompilerSpec("llvmlike", spec).config()
        expected_module, expected_changed = _independent(config)
        got = engine.compile(config)
        assert got.changed_passes == expected_changed
        assert fingerprint_module(got.module) == fingerprint_module(
            expected_module
        )
