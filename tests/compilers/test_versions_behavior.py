from repro.compilers import config_at, history, latest
from repro.compilers.vendors import LEVELS


def test_o0_is_immune_to_middle_end_commits():
    for family in ("gcclike", "llvmlike"):
        assert config_at(family, "O0", 0) == config_at(family, "O0", latest(family))


def test_known_regression_commits_change_o3():
    # llvm 3cc38712: MemDep cap at -O3 only.
    before = config_at("llvmlike", "O3", 11)
    after = config_at("llvmlike", "O3", 12)
    assert before.gvn_across_calls and not after.gvn_across_calls
    # ... and -O2 is untouched by it.
    assert config_at("llvmlike", "O2", 11).gvn_across_calls == config_at(
        "llvmlike", "O2", 12
    ).gvn_across_calls


def test_fixed_regression_sequence():
    # llvm 3cc38709 drops the extra O3 cleanup round; 3cc38713 restores.
    assert config_at("llvmlike", "O3", 8).sccp_iterations == 2
    assert config_at("llvmlike", "O3", 9).sccp_iterations == 1
    assert config_at("llvmlike", "O3", 13).sccp_iterations == 2


def test_gcc_vectorizer_arrives_with_its_commit():
    assert not config_at("gcclike", "O3", 6).vectorize
    assert config_at("gcclike", "O3", 7).vectorize
    assert not config_at("gcclike", "O2", 7).vectorize


def test_pipelines_contain_the_new_passes():
    for family in ("gcclike", "llvmlike"):
        for level in ("O1", "O2", "O3"):
            passes = config_at(family, level).passes
            assert "licm" in passes, (family, level)
            assert "cprop" in passes, (family, level)
            assert passes.count("memcp") >= 2


def test_cleanup_rounds_follow_sccp_iterations():
    one = config_at("gcclike", "O2")  # sccp_iterations 1
    assert one.passes.count("adce") == 1
    two = config_at("llvmlike", "O3")  # restored to 2 at the tip
    assert two.passes.count("adce") == 2


def test_every_behavioural_commit_names_a_real_knob():
    from dataclasses import fields

    from repro.compilers.config import PipelineConfig

    knob_names = {f.name for f in fields(PipelineConfig)}
    for family in ("gcclike", "llvmlike"):
        for commit in history(family):
            for _levels, field_name, _value in commit.changes:
                assert field_name in knob_names, (commit.sha, field_name)


def test_commit_levels_are_valid():
    for family in ("gcclike", "llvmlike"):
        for commit in history(family):
            for levels, _f, _v in commit.changes:
                for level in levels or ():
                    assert level in LEVELS
