import pytest

from repro.interp import StepLimitExceeded, run_program
from repro.lang import parse_program


def run(source: str, **kwargs):
    return run_program(parse_program(source), **kwargs)


def test_exit_code():
    assert run("int main() { return 42; }").exit_code == 42


def test_arithmetic_with_conversions():
    result = run(
        """
        int main() {
          char c = 200;          /* wraps to -56 */
          unsigned char u = 200;
          return (c + u) & 255;  /* -56 + 200 = 144 */
        }
        """
    )
    assert result.exit_code == 144


def test_globals_and_arrays():
    result = run(
        """
        static int xs[3] = {5, 6, 7};
        int total;
        int main() {
          for (int i = 0; i < 3; i++) { total += xs[i]; }
          return total;
        }
        """
    )
    assert result.exit_code == 18


def test_pointers_read_and_write():
    result = run(
        """
        char buf[2];
        int main() {
          char *p = &buf[1];
          *p = 9;
          return buf[1];
        }
        """
    )
    assert result.exit_code == 9


def test_pointer_equality():
    result = run(
        """
        char a;
        char b[2];
        int main() {
          char *p = &a;
          char *q = &b[1];
          char *r = &b[1];
          return (p == q) * 10 + (q == r);
        }
        """
    )
    assert result.exit_code == 1


def test_opaque_calls_recorded_with_counts():
    result = run(
        """
        void probe(void);
        int main() {
          for (int i = 0; i < 3; i++) { probe(); }
          return 0;
        }
        """
    )
    assert result.marker_hits == {"probe": 3}
    assert result.call_trace != 0


def test_function_calls_and_recursion_free_call_tree():
    result = run(
        """
        static int twice(int x) { return x * 2; }
        static int add(int a, int b) { return twice(a) + b; }
        int main() { return add(3, 4); }
        """
    )
    assert result.exit_code == 10
    assert result.function_calls == {"main": 1, "add": 1, "twice": 1}


def test_early_return_and_loop_control():
    result = run(
        """
        int main() {
          int acc = 0;
          for (int i = 0; i < 10; i++) {
            if (i == 3) { continue; }
            if (i == 6) { break; }
            acc += i;
          }
          return acc;  /* 0+1+2+4+5 */
        }
        """
    )
    assert result.exit_code == 12


def test_switch_selects_matching_case():
    source = """
        int main() {{
          int r = 0;
          switch ({scrutinee}) {{
            case 1: r = 10; break;
            case 2: r = 20; break;
            default: r = 99;
          }}
          return r;
        }}
    """
    assert run(source.format(scrutinee=1)).exit_code == 10
    assert run(source.format(scrutinee=2)).exit_code == 20
    assert run(source.format(scrutinee=7)).exit_code == 99


def test_division_by_zero_follows_minic_semantics():
    assert run("int main() { int a = 9; int b = 0; return a / b; }").exit_code == 9


def test_out_of_range_index_wraps():
    result = run(
        """
        static int xs[3] = {1, 2, 3};
        int main() { int i = 4; return xs[i]; }
        """
    )
    assert result.exit_code == 2  # 4 % 3 == 1


def test_step_limit_enforced():
    with pytest.raises(StepLimitExceeded):
        run(
            "int c; int main() { while (1) { c += 1; } return c; }",
            step_limit=1000,
        )


def test_checksum_covers_only_external_globals():
    with_static = run("static int g; int main() { g = 5; return 0; }")
    without = run("static int g; int main() { g = 7; return 0; }")
    assert with_static.checksum == without.checksum
    ext1 = run("int g; int main() { g = 5; return 0; }")
    ext2 = run("int g; int main() { g = 7; return 0; }")
    assert ext1.checksum != ext2.checksum


def test_local_shadowing_restores_outer_binding():
    result = run(
        """
        int main() {
          int a = 1;
          { int a = 50; a += 1; }
          return a;
        }
        """
    )
    assert result.exit_code == 1


def test_loop_local_declarations_reinitialize():
    result = run(
        """
        int main() {
          int total = 0;
          for (int i = 0; i < 3; i++) {
            int fresh = 0;
            fresh += 1;
            total += fresh;
          }
          return total;
        }
        """
    )
    assert result.exit_code == 3


def test_deterministic_across_runs():
    source = """
        static unsigned int g = 77;
        int main() {
          unsigned int h = g;
          for (int i = 0; i < 9; i++) { h = h * 31 + i; }
          g = h;
          return (int)(h & 127);
        }
    """
    first = run(source)
    second = run(source)
    assert first.exit_code == second.exit_code
    assert first.checksum == second.checksum
    assert first.steps == second.steps
