"""End-to-end translation validation and soundness.

These are the strongest tests in the suite: for a corpus of generated
programs, every (family, level, version) compilation must preserve the
reference semantics exactly, and no compiler may ever eliminate a
marker the ground truth says is alive (that would be a miscompilation,
not a missed optimization).
"""

import pytest

from repro.compilers import CompilerSpec, compile_minic
from repro.compilers.versions import latest
from repro.core.ground_truth import compute_ground_truth
from repro.core.markers import instrument_program
from repro.frontend.typecheck import check_program
from repro.generator import generate_program
from repro.interp import run_program
from repro.ir import run_module, verify_module

SEEDS = list(range(6))
SPECS = [
    CompilerSpec(family, level)
    for family in ("gcclike", "llvmlike")
    for level in ("O0", "O1", "Os", "O2", "O3")
]


@pytest.mark.parametrize("seed", SEEDS)
def test_all_specs_preserve_semantics(seed):
    inst = instrument_program(generate_program(seed))
    info = check_program(inst.program)
    ref = run_program(inst.program, info=info)
    for spec in SPECS:
        result = compile_minic(inst.program, spec, info=info)
        verify_module(result.module)
        got = run_module(result.module)
        assert got.exit_code == ref.exit_code, spec
        assert got.marker_hits == ref.marker_hits, spec
        assert got.checksum == ref.checksum, spec
        assert got.call_trace == ref.call_trace, spec


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_no_soundness_violations(seed):
    inst = instrument_program(generate_program(seed))
    info = check_program(inst.program)
    truth = compute_ground_truth(inst, info=info)
    for spec in SPECS:
        alive = compile_minic(inst.program, spec, info=info).alive_markers("DCEMarker")
        wrongly_eliminated = truth.alive - alive
        assert not wrongly_eliminated, f"{spec} removed alive markers"


@pytest.mark.parametrize("family", ["gcclike", "llvmlike"])
def test_old_versions_also_preserve_semantics(family):
    inst = instrument_program(generate_program(17))
    info = check_program(inst.program)
    ref = run_program(inst.program, info=info)
    for version in (0, latest(family) // 2, latest(family)):
        spec = CompilerSpec(family, "O3", version)
        result = compile_minic(inst.program, spec, info=info)
        verify_module(result.module)
        got = run_module(result.module)
        assert got.marker_hits == ref.marker_hits, spec
        assert got.checksum == ref.checksum, spec


def test_higher_levels_eliminate_more_overall():
    total_alive = {level: 0 for level in ("O0", "O1", "O2")}
    for seed in SEEDS[:4]:
        inst = instrument_program(generate_program(seed))
        info = check_program(inst.program)
        for level in total_alive:
            spec = CompilerSpec("gcclike", level)
            alive = compile_minic(inst.program, spec, info=info).alive_markers("DCEMarker")
            total_alive[level] += len(alive)
    assert total_alive["O0"] > total_alive["O1"] >= total_alive["O2"]
