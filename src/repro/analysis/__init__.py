"""Compiler analyses shared by the passes."""

from .alias import AliasResult, MemorySSAish, Root, trace_root
from .loops import Loop, find_loops, is_invariant, loop_preheader

__all__ = [
    "AliasResult",
    "Loop",
    "MemorySSAish",
    "Root",
    "find_loops",
    "is_invariant",
    "loop_preheader",
    "trace_root",
]
