"""Alias analysis.

A lightweight, conservative points-to analysis over the IR's simple
memory model (named objects + constant-ish offsets).  Precise where it
matters for the paper's case studies:

* addresses rooted at distinct objects never alias;
* same object + known indices resolve exactly (modulo object length,
  MiniC's wrapping-access rule);
* objects whose address never *escapes* (is never stored, passed to a
  call, or returned) cannot be touched by opaque calls or unknown
  pointers.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..ir import instructions as ins
from ..ir.function import IRFunction, Module
from ..ir.values import GlobalRef, Value


class AliasResult(Enum):
    NO = "no"
    MAY = "may"
    MUST = "must"


@dataclass(frozen=True)
class Root:
    """The object an address is rooted at.

    ``offset`` is the accumulated constant element offset, or ``None``
    when any gep on the path had a non-constant index.
    """

    kind: str  # 'global' | 'alloca' | 'unknown'
    key: object  # global name, id(alloca), or None
    length: int  # object length in cells (0 when unknown)
    offset: int | None


UNKNOWN_ROOT = Root("unknown", None, 0, None)


def trace_root(value: Value) -> Root:
    """Resolve a pointer value to its root object, if statically known."""
    offset: int | None = 0
    from ..ir.values import Constant

    while True:
        if isinstance(value, GlobalRef):
            return Root("global", value.name, 0, offset)
        if isinstance(value, ins.Alloca):
            return Root("alloca", id(value), value.length, offset)
        if isinstance(value, ins.Gep):
            index = value.index
            if offset is not None and isinstance(index, Constant):
                offset += index.value
            else:
                offset = None
            value = value.base
            continue
        return UNKNOWN_ROOT


class MemorySSAish:
    """Per-module escape and read/write summaries.

    "Escaped" means the address may be held by code we cannot see:
    it was stored to memory, passed to a call, returned, or (for
    non-static globals) is externally visible.  Address *comparisons*
    (pcmp) do not escape a pointer.
    """

    def __init__(self, module: Module, max_objects: int | None = None) -> None:
        self.module = module
        self._escaped_globals: set[str] = set()
        self._escaped_allocas: set[int] = set()
        self.imprecise = False
        if max_objects is not None:
            object_count = len(module.globals) + sum(
                1
                for f in module.functions.values()
                for b in f.blocks
                for i in b.instrs
                if isinstance(i, ins.Alloca)
            )
            if object_count > max_objects:
                # Precision budget exceeded: behave as if everything
                # escaped (the compile-time fallback real analyses take).
                self.imprecise = True
        for name, info in module.globals.items():
            if not info.static:
                self._escaped_globals.add(name)
            # A global pointing at another global publishes that address.
            init = info.init
            if isinstance(init, tuple) and init and init[0] == "addr":
                target = module.globals.get(init[1])
                if target is not None and not info.static:
                    self._escaped_globals.add(init[1])
        for func in module.functions.values():
            self._scan_function(func)

    def _scan_function(self, func: IRFunction) -> None:
        for block in func.blocks:
            for instr in block.instrs:
                for op_index, op in enumerate(instr.operands()):
                    self._scan_use(instr, op_index, op)

    def _scan_use(self, instr: ins.Instr, op_index: int, op: Value) -> None:
        root = trace_root(op)
        if root.kind == "unknown":
            return
        benign = False
        if isinstance(instr, (ins.Load, ins.LoadPtr)) and op is instr.address:
            benign = True
        elif isinstance(instr, ins.Store) and op_index == 0:
            benign = True  # used *as* the address, not stored as a value
        elif isinstance(instr, ins.Gep) and op is instr.base:
            benign = True  # escape decided at the gep's own uses
        elif isinstance(instr, ins.PCmp):
            benign = True  # comparing an address doesn't publish it
        if benign:
            return
        if root.kind == "global":
            self._escaped_globals.add(root.key)  # type: ignore[arg-type]
        else:
            self._escaped_allocas.add(root.key)  # type: ignore[arg-type]

    # -- queries --------------------------------------------------------

    def escaped(self, root: Root) -> bool:
        if self.imprecise:
            return True
        if root.kind == "global":
            return root.key in self._escaped_globals
        if root.kind == "alloca":
            return root.key in self._escaped_allocas
        return True

    def global_escaped(self, name: str) -> bool:
        return self.imprecise or name in self._escaped_globals

    def object_length(self, root: Root) -> int:
        if root.kind == "global":
            return self.module.globals[root.key].length  # type: ignore[index]
        if root.kind == "alloca":
            return root.length
        return 0

    def alias(self, a: Value, b: Value) -> AliasResult:
        """May the addresses ``a`` and ``b`` refer to the same cell?"""
        ra, rb = trace_root(a), trace_root(b)
        if ra.kind == "unknown" and rb.kind == "unknown":
            return AliasResult.MAY
        if ra.kind == "unknown" or rb.kind == "unknown":
            known = rb if ra.kind == "unknown" else ra
            # An unknown pointer cannot point at a non-escaped object.
            return AliasResult.MAY if self.escaped(known) else AliasResult.NO
        if (ra.kind, ra.key) != (rb.kind, rb.key):
            return AliasResult.NO
        length = self.object_length(ra)
        if ra.offset is None or rb.offset is None:
            return AliasResult.MAY if length != 1 else AliasResult.MUST
        if length <= 0:
            return AliasResult.MAY
        if ra.offset % length == rb.offset % length:
            return AliasResult.MUST
        return AliasResult.NO

    def call_may_access(self, call: ins.Call, addr: Value) -> bool:
        """Could executing ``call`` read or write the cell at ``addr``?"""
        root = trace_root(addr)
        if root.kind == "unknown":
            return True
        if self.module.is_opaque(call.callee):
            # Opaque callees see escaped objects plus any pointer args.
            if self.escaped(root):
                return True
            return any(_points_into(arg, root) for arg in call.args)
        # A defined callee may touch any global and anything escaped.
        if root.kind == "global":
            return True
        return self.escaped(root) or any(_points_into(arg, root) for arg in call.args)


def _points_into(arg: Value, root: Root) -> bool:
    arg_root = trace_root(arg)
    if arg_root.kind == "unknown":
        from ..lang.types import PointerType

        return isinstance(arg.ty, PointerType)
    return (arg_root.kind, arg_root.key) == (root.kind, root.key)
