"""Natural-loop detection over the IR CFG."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import instructions as ins
from ..ir.dominators import DominatorTree
from ..ir.function import Block, IRFunction


@dataclass
class Loop:
    header: Block
    latches: list[Block]
    blocks: list[Block]  # includes the header; deterministic order

    def block_ids(self) -> set[int]:
        return {id(b) for b in self.blocks}

    @property
    def single_latch(self) -> Block | None:
        return self.latches[0] if len(self.latches) == 1 else None

    def exits(self) -> list[tuple[Block, Block]]:
        """(inside block, outside successor) pairs."""
        inside = self.block_ids()
        out = []
        for block in self.blocks:
            for succ in block.successors():
                if id(succ) not in inside:
                    out.append((block, succ))
        return out

    def contains(self, block: Block) -> bool:
        return id(block) in self.block_ids()

    def size(self) -> int:
        return sum(len(b.instrs) for b in self.blocks)


def find_loops(func: IRFunction, dom: DominatorTree | None = None) -> list[Loop]:
    """All natural loops, innermost-first (by block count ascending).

    Back edges whose heads coincide are merged into one loop, as usual.
    """
    dom = dom or DominatorTree(func)
    preds = func.predecessors()
    reachable = {id(b) for b in func.reachable_blocks()}
    back_edges: dict[int, tuple[Block, list[Block]]] = {}
    for block in func.blocks:
        if id(block) not in reachable:
            continue
        for succ in block.successors():
            if id(succ) in reachable and dom.dominates(succ, block):
                header, latches = back_edges.setdefault(id(succ), (succ, []))
                latches.append(block)

    loops = []
    for header, latches in back_edges.values():
        body_ids: set[int] = {id(header)}
        order: list[Block] = [header]
        work = list(latches)
        while work:
            block = work.pop()
            if id(block) in body_ids:
                continue
            body_ids.add(id(block))
            order.append(block)
            work.extend(p for p in preds[block] if id(p) in reachable)
        loops.append(Loop(header, latches, order))
    loops.sort(key=lambda l: len(l.blocks))
    return loops


def loop_preheader(loop: Loop, func: IRFunction) -> Block | None:
    """The unique out-of-loop predecessor of the header, if any."""
    preds = func.predecessors()
    inside = loop.block_ids()
    outside = [p for p in preds[loop.header] if id(p) not in inside]
    if len(outside) == 1:
        return outside[0]
    return None


def is_invariant(value, loop: Loop) -> bool:
    """True when ``value`` is defined outside the loop (or is a
    constant/global/parameter)."""
    if isinstance(value, ins.Instr):
        return value.block is None or id(value.block) not in loop.block_ids()
    return True
