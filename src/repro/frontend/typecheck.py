"""MiniC semantic checker and type annotator.

``check_program`` validates a parsed program and fills in the ``ty``
attribute of every expression node.  All later stages (the reference
interpreter, the IR lowering, the instrumenter) assume a checked
program.

Conversion model (C-style, made explicit here once):

* binary arithmetic/bitwise: operands are converted to
  ``usual_arithmetic_conversion(l, r)``; the result has that type;
* comparisons produce ``int``; pointer comparisons require two
  pointers (or a pointer and literal 0);
* assignments, call arguments, returns and initializers convert the
  value to the destination type;
* array subscripts convert the index to ``long``;
* conditions may be any integer or pointer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang import ast_nodes as ast
from ..lang.types import (
    INT,
    LONG,
    ArrayType,
    IntType,
    PointerType,
    Type,
    VoidType,
    usual_arithmetic_conversion,
)


class CheckError(ValueError):
    """A MiniC semantic error (undeclared name, bad types, ...)."""


@dataclass
class FunctionSig:
    name: str
    return_ty: Type
    param_tys: list[Type]
    is_defined: bool  # False for opaque externs (markers, dead(), ...)


@dataclass
class SymbolInfo:
    """Summary of a checked program used by downstream stages."""

    globals: dict[str, ast.GlobalVar] = field(default_factory=dict)
    functions: dict[str, FunctionSig] = field(default_factory=dict)

    def opaque_functions(self) -> set[str]:
        return {n for n, sig in self.functions.items() if not sig.is_defined}


def check_program(program: ast.Program) -> SymbolInfo:
    """Validate ``program`` and annotate expression types in place.

    Returns the symbol summary.  Raises :class:`CheckError` on any
    violation.
    """
    info = SymbolInfo()
    for decl in program.decls:
        if isinstance(decl, ast.GlobalVar):
            if decl.name in info.globals or decl.name in info.functions:
                raise CheckError(f"duplicate global name: {decl.name}")
            _check_global(decl)
            info.globals[decl.name] = decl
        elif isinstance(decl, ast.FuncDecl):
            sig = FunctionSig(decl.name, decl.return_ty, [p.ty for p in decl.params], False)
            existing = info.functions.get(decl.name)
            if existing is not None and existing.is_defined:
                continue  # a forward declaration of a later definition
            info.functions[decl.name] = sig
        elif isinstance(decl, ast.FuncDef):
            if decl.name in info.globals:
                raise CheckError(f"function name clashes with global: {decl.name}")
            sig = FunctionSig(decl.name, decl.return_ty, [p.ty for p in decl.params], True)
            info.functions[decl.name] = sig
        else:
            raise CheckError(f"unknown declaration kind: {decl!r}")
    for func in program.functions():
        _FunctionChecker(info, func).run()
    return info


def _check_global(decl: ast.GlobalVar) -> None:
    ty = decl.ty
    if isinstance(ty, VoidType):
        raise CheckError(f"global {decl.name} has void type")
    if isinstance(ty, ArrayType):
        if decl.init is not None and (
            not isinstance(decl.init, list)
            or len(decl.init) != ty.length
            or not all(isinstance(v, int) for v in decl.init)
        ):
            raise CheckError(f"bad array initializer for {decl.name}")
    elif isinstance(ty, IntType):
        if decl.init is not None and not isinstance(decl.init, int):
            raise CheckError(f"bad scalar initializer for {decl.name}")
    elif isinstance(ty, PointerType):
        if decl.init is not None and not isinstance(decl.init, (ast.AddrOf, ast.VarRef)):
            raise CheckError(f"bad pointer initializer for {decl.name}")


class _FunctionChecker:
    def __init__(self, info: SymbolInfo, func: ast.FuncDef) -> None:
        self.info = info
        self.func = func
        self.scopes: list[dict[str, Type]] = []
        self._loop_depth = 0

    def run(self) -> None:
        params: dict[str, Type] = {}
        for p in self.func.params:
            if p.name in params:
                raise CheckError(f"duplicate parameter {p.name} in {self.func.name}")
            if not isinstance(p.ty, (IntType, PointerType)):
                raise CheckError(f"parameter {p.name} must be scalar")
            params[p.name] = p.ty
        self.scopes = [params]
        self._block(self.func.body, new_scope=True)

    # -- scope handling --------------------------------------------------

    def _lookup(self, name: str) -> Type:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        g = self.info.globals.get(name)
        if g is not None:
            return g.ty
        raise CheckError(f"undeclared identifier {name!r} in {self.func.name}")

    # -- statements -------------------------------------------------------

    def _block(self, block: ast.Block, new_scope: bool = True) -> None:
        if new_scope:
            self.scopes.append({})
        for stmt in block.stmts:
            self._stmt(stmt)
        if new_scope:
            self.scopes.pop()

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._var_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr, allow_void_call=True)
        elif isinstance(stmt, ast.If):
            self._condition(stmt.cond)
            self._block(stmt.then)
            if stmt.els is not None:
                self._block(stmt.els)
        elif isinstance(stmt, ast.While):
            self._condition(stmt.cond)
            self._in_loop(stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            self._in_loop(stmt.body)
            self._condition(stmt.cond)
        elif isinstance(stmt, ast.For):
            self.scopes.append({})
            if stmt.init is not None:
                self._stmt(stmt.init)
            if stmt.cond is not None:
                self._condition(stmt.cond)
            if stmt.step is not None:
                self._stmt(stmt.step)
            self._in_loop(stmt.body)
            self.scopes.pop()
        elif isinstance(stmt, ast.Switch):
            ty = self._expr(stmt.scrutinee)
            if not isinstance(ty, IntType):
                raise CheckError("switch scrutinee must be an integer")
            seen: set[int | None] = set()
            for case in stmt.cases:
                if case.value in seen:
                    raise CheckError(f"duplicate switch case {case.value}")
                seen.add(case.value)
                self._loop_depth += 1  # 'break' inside a case is legal C
                self._block(case.body)
                self._loop_depth -= 1
        elif isinstance(stmt, ast.Return):
            want = self.func.return_ty
            if stmt.value is None:
                if not isinstance(want, VoidType):
                    raise CheckError(f"{self.func.name}: return without value")
            else:
                if isinstance(want, VoidType):
                    raise CheckError(f"{self.func.name}: void function returns value")
                got = self._expr(stmt.value)
                _require_convertible(got, want, "return value")
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                raise CheckError("break/continue outside loop")
        else:
            raise CheckError(f"unknown statement: {stmt!r}")

    def _in_loop(self, body: ast.Block) -> None:
        self._loop_depth += 1
        self._block(body)
        self._loop_depth -= 1

    def _var_decl(self, stmt: ast.VarDecl) -> None:
        if stmt.name in self.scopes[-1]:
            raise CheckError(f"redeclaration of {stmt.name}")
        if isinstance(stmt.ty, VoidType):
            raise CheckError(f"variable {stmt.name} has void type")
        if isinstance(stmt.ty, ArrayType):
            if isinstance(stmt.init, list):
                if len(stmt.init) > stmt.ty.length:
                    raise CheckError(f"too many initializers for {stmt.name}")
                for e in stmt.init:
                    got = self._expr(e)
                    _require_convertible(got, stmt.ty.element, "array initializer")
            elif stmt.init is not None:
                raise CheckError(f"scalar initializer for array {stmt.name}")
        else:
            if isinstance(stmt.init, list):
                raise CheckError(f"brace initializer for scalar {stmt.name}")
            if stmt.init is not None:
                got = self._expr(stmt.init)
                _require_convertible(got, stmt.ty, f"initializer of {stmt.name}")
        self.scopes[-1][stmt.name] = stmt.ty

    def _assign(self, stmt: ast.Assign) -> None:
        target_ty = self._lvalue(stmt.target)
        value_ty = self._expr(stmt.value)
        if stmt.op:
            if not isinstance(target_ty, IntType):
                raise CheckError("compound assignment requires integer target")
            if not isinstance(value_ty, IntType):
                raise CheckError("compound assignment requires integer value")
        else:
            _require_convertible(value_ty, target_ty, "assignment")

    def _condition(self, expr: ast.Expr) -> None:
        ty = self._expr(expr)
        if not isinstance(ty, (IntType, PointerType)):
            raise CheckError("condition must be integer or pointer")

    # -- expressions -------------------------------------------------------

    def _lvalue(self, expr: ast.Expr) -> Type:
        """Type-check an expression used as an assignment target."""
        ty = self._expr(expr)
        if not ast.is_lvalue(expr):
            raise CheckError("not an lvalue")
        if isinstance(ty, ArrayType):
            raise CheckError("cannot assign to an array")
        return ty

    def _expr(self, expr: ast.Expr, allow_void_call: bool = False) -> Type:
        ty = self._expr_inner(expr, allow_void_call)
        expr.ty = ty
        return ty

    def _expr_inner(self, expr: ast.Expr, allow_void_call: bool) -> Type:
        if isinstance(expr, ast.IntLit):
            return _literal_type(expr.value)
        if isinstance(expr, ast.VarRef):
            return self._lookup(expr.name)
        if isinstance(expr, ast.Index):
            base_ty = self._expr(expr.base)
            index_ty = self._expr(expr.index)
            if not isinstance(index_ty, IntType):
                raise CheckError("array index must be an integer")
            if isinstance(base_ty, ArrayType):
                return base_ty.element
            if isinstance(base_ty, PointerType):
                return base_ty.pointee
            raise CheckError("subscripted value is not array or pointer")
        if isinstance(expr, ast.Deref):
            ptr_ty = self._expr(expr.pointer)
            if not isinstance(ptr_ty, PointerType):
                raise CheckError("cannot dereference a non-pointer")
            return ptr_ty.pointee
        if isinstance(expr, ast.AddrOf):
            inner = self._expr(expr.lvalue)
            if isinstance(inner, ArrayType):
                raise CheckError("'&array' is not supported; use &array[i]")
            if not isinstance(inner, IntType):
                raise CheckError("'&' requires an integer lvalue")
            if not ast.is_lvalue(expr.lvalue):
                raise CheckError("'&' requires an lvalue")
            return PointerType(inner)
        if isinstance(expr, ast.Unary):
            operand_ty = self._expr(expr.operand)
            if expr.op == "!":
                if not isinstance(operand_ty, (IntType, PointerType)):
                    raise CheckError("'!' requires scalar operand")
                return INT
            if not isinstance(operand_ty, IntType):
                raise CheckError(f"unary {expr.op!r} requires integer operand")
            from ..lang.types import promote

            return promote(operand_ty)
        if isinstance(expr, ast.Cast):
            operand_ty = self._expr(expr.operand)
            if not isinstance(operand_ty, (IntType, PointerType)):
                raise CheckError("cast of non-scalar")
            return expr.target
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        if isinstance(expr, ast.Call):
            return self._call(expr, allow_void_call)
        raise CheckError(f"unknown expression: {expr!r}")

    def _binary(self, expr: ast.Binary) -> Type:
        lhs_ty = self._expr(expr.lhs)
        rhs_ty = self._expr(expr.rhs)
        op = expr.op
        if op in ("&&", "||"):
            for ty in (lhs_ty, rhs_ty):
                if not isinstance(ty, (IntType, PointerType)):
                    raise CheckError(f"{op!r} requires scalar operands")
            return INT
        if isinstance(lhs_ty, PointerType) or isinstance(rhs_ty, PointerType):
            if op not in ("==", "!="):
                raise CheckError(f"pointer operands not allowed for {op!r}")
            if not _pointer_comparable(lhs_ty, rhs_ty, expr):
                raise CheckError("invalid pointer comparison")
            return INT
        if not isinstance(lhs_ty, IntType) or not isinstance(rhs_ty, IntType):
            raise CheckError(f"{op!r} requires integer operands")
        common = usual_arithmetic_conversion(lhs_ty, rhs_ty)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return INT
        return common

    def _call(self, expr: ast.Call, allow_void: bool) -> Type:
        sig = self.info.functions.get(expr.callee)
        if sig is None:
            raise CheckError(f"call to undeclared function {expr.callee!r}")
        if len(expr.args) != len(sig.param_tys):
            raise CheckError(
                f"{expr.callee} expects {len(sig.param_tys)} args, got {len(expr.args)}"
            )
        for arg, want in zip(expr.args, sig.param_tys):
            got = self._expr(arg)
            _require_convertible(got, want, f"argument of {expr.callee}")
        if isinstance(sig.return_ty, VoidType) and not allow_void:
            raise CheckError(f"void value of {expr.callee}() used")
        return sig.return_ty


def _literal_type(value: int) -> IntType:
    if INT.min_value <= value <= INT.max_value:
        return INT
    if LONG.min_value <= value <= LONG.max_value:
        return LONG
    from ..lang.types import ULONG

    if 0 <= value <= ULONG.max_value:
        return ULONG
    raise CheckError(f"integer literal out of range: {value}")


def _pointer_comparable(lhs: Type, rhs: Type, expr: ast.Binary) -> bool:
    def is_null(e: ast.Expr, ty: Type) -> bool:
        return isinstance(ty, IntType) and isinstance(e, ast.IntLit) and e.value == 0

    if isinstance(lhs, PointerType) and isinstance(rhs, PointerType):
        return True
    if isinstance(lhs, PointerType):
        return is_null(expr.rhs, rhs)
    return is_null(expr.lhs, lhs)


def _require_convertible(got: Type, want: Type, what: str) -> None:
    if isinstance(want, IntType) and isinstance(got, IntType):
        return
    if isinstance(want, PointerType):
        if isinstance(got, PointerType):
            return
        raise CheckError(f"{what}: cannot convert {got} to {want}")
    if isinstance(want, IntType) and isinstance(got, PointerType):
        raise CheckError(f"{what}: cannot convert pointer to {want}")
    raise CheckError(f"{what}: cannot convert {got} to {want}")
