"""Frontend: semantic checking and AST-to-IR lowering."""

from .typecheck import CheckError, FunctionSig, SymbolInfo, check_program

__all__ = ["CheckError", "FunctionSig", "SymbolInfo", "check_program"]
