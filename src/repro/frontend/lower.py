"""AST → IR lowering.

Produces straightforward, unoptimized IR: every variable lives in an
``alloca`` (or global) and is accessed through loads and stores, with
explicit ``cast`` instructions at every C conversion point, mirroring
the reference interpreter exactly.  ``mem2reg`` later promotes scalars
to SSA registers.

Short-circuit ``&&``/``||`` lower to control flow writing a temporary
slot; ``switch`` lowers to a compare chain.  Array subscripts lower to
plain ``gep`` — MiniC's wrapping-access semantics live in the memory
operation itself (both interpreters wrap the cell index by the object
length), so no index masking code is emitted.
"""

from __future__ import annotations

from ..lang import ast_nodes as ast
from ..lang.semantics import wrap
from ..lang.types import (
    INT,
    LONG,
    ArrayType,
    IntType,
    PointerType,
    Type,
    VoidType,
    promote,
    usual_arithmetic_conversion,
)
from ..ir import instructions as ins
from ..ir.function import Block, ExternFunction, GlobalInfo, IRFunction, Module
from ..ir.values import Constant, GlobalRef, NullPtr, Param, Value, const_int
from .typecheck import SymbolInfo, check_program


def lower_program(program: ast.Program, info: SymbolInfo | None = None) -> Module:
    """Lower a checked program to an IR module.

    Runs the checker first when ``info`` is not supplied.
    """
    if info is None:
        info = check_program(program)
    module = Module()
    for g in program.globals():
        module.add_global(GlobalInfo(g.name, g.ty, _global_init(g), g.static))
    for decl in program.extern_decls():
        if decl.name not in info.functions or not info.functions[decl.name].is_defined:
            module.add_extern(
                ExternFunction(decl.name, decl.return_ty, [p.ty for p in decl.params])
            )
    for func in program.functions():
        module.add_function(_FunctionLowering(module, info, func).run())
    return module


def _global_init(g: ast.GlobalVar) -> object:
    if isinstance(g.ty, ArrayType):
        values = g.init if isinstance(g.init, list) else [0] * g.ty.length
        return [wrap(v, g.ty.element) for v in values]
    if isinstance(g.ty, PointerType):
        if g.init is None:
            return None
        lv = g.init.lvalue if isinstance(g.init, ast.AddrOf) else g.init
        if isinstance(lv, ast.VarRef):
            return ("addr", lv.name, 0)
        if isinstance(lv, ast.Index) and isinstance(lv.base, ast.VarRef):
            assert isinstance(lv.index, ast.IntLit)
            return ("addr", lv.base.name, lv.index.value)
        raise ValueError(f"unsupported pointer initializer for {g.name}")
    assert isinstance(g.ty, IntType)
    return wrap(g.init, g.ty) if isinstance(g.init, int) else 0


class _LoopContext:
    def __init__(self, break_to: Block, continue_to: Block) -> None:
        self.break_to = break_to
        self.continue_to = continue_to


class _FunctionLowering:
    def __init__(self, module: Module, info: SymbolInfo, func: ast.FuncDef) -> None:
        self.module = module
        self.info = info
        self.ast_func = func
        params = [Param(p.name, p.ty) for p in func.params]
        self.func = IRFunction(func.name, func.return_ty, params, func.static)
        self.block: Block = self.func.new_block("entry")
        self.scopes: list[dict[str, Value]] = []
        self.loops: list[_LoopContext] = []
        self._tmp = 0

    # -- plumbing ----------------------------------------------------------

    def _emit(self, instr: ins.Instr) -> ins.Instr:
        return self.block.append(instr)

    def _new_block(self, hint: str) -> Block:
        self._tmp += 1
        return self.func.new_block(f"{self.ast_func.name}.{hint}{self._tmp}")

    def _seal_and_switch(self, target: Block) -> None:
        """Jump from the current block (if open) and continue in target."""
        if self.block.terminator is None:
            self._emit(ins.Jmp(target))
        self.block = target

    def _lookup(self, name: str) -> Value:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return self.module.global_ref(name)

    def _slot_info(self, name: str) -> tuple[bool, IntType]:
        """(is_pointer_slot, element type) of the storage behind name."""
        for scope in reversed(self.scopes):
            if name in scope:
                value = scope[name]
                assert isinstance(value, ins.Alloca)
                return value.is_pointer_slot, value.element
        info = self.module.globals[name]
        return info.is_pointer_slot, info.element

    # -- driver ---------------------------------------------------------------

    def run(self) -> IRFunction:
        self.scopes.append({})
        for param in self.func.params:
            slot = self._declare_slot(param.name, param.ty)
            self._emit(ins.Store(slot, param))
        self._block_stmt(self.ast_func.body, own_scope=True)
        if self.block.terminator is None:
            if isinstance(self.func.return_ty, IntType):
                self._emit(ins.Ret(const_int(0, self.func.return_ty)))
            else:
                self._emit(ins.Ret(None))
        self.scopes.pop()
        self.func.drop_unreachable_blocks()
        return self.func

    def _declare_slot(self, name: str, ty: Type) -> ins.Alloca:
        if isinstance(ty, ArrayType):
            slot = ins.Alloca(name, ty.element, ty.length)
        elif isinstance(ty, PointerType):
            slot = ins.Alloca(name, ty.pointee, 1, is_pointer_slot=True)
        else:
            assert isinstance(ty, IntType)
            slot = ins.Alloca(name, ty, 1)
        # Allocas go to the entry block head so mem2reg sees them all.
        entry = self.func.entry
        slot.block = entry
        entry.instrs.insert(self._alloca_insert_point(entry), slot)
        self.scopes[-1][name] = slot
        return slot

    @staticmethod
    def _alloca_insert_point(entry: Block) -> int:
        for i, instr in enumerate(entry.instrs):
            if not isinstance(instr, ins.Alloca):
                return i
        return len(entry.instrs)

    # -- statements ---------------------------------------------------------

    def _block_stmt(self, block: ast.Block, own_scope: bool = True) -> None:
        if own_scope:
            self.scopes.append({})
        for stmt in block.stmts:
            self._stmt(stmt)
        if own_scope:
            self.scopes.pop()

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._block_stmt(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._var_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._rvalue(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._for(stmt)
        elif isinstance(stmt, ast.Switch):
            self._switch(stmt)
        elif isinstance(stmt, ast.Return):
            self._return(stmt)
        elif isinstance(stmt, ast.Break):
            self._emit(ins.Jmp(self.loops[-1].break_to))
            self.block = self._new_block("afterbrk")
        elif isinstance(stmt, ast.Continue):
            self._emit(ins.Jmp(self.loops[-1].continue_to))
            self.block = self._new_block("aftercont")
        else:
            raise TypeError(f"cannot lower {stmt!r}")

    def _var_decl(self, stmt: ast.VarDecl) -> None:
        slot = self._declare_slot(stmt.name, stmt.ty)
        if isinstance(stmt.ty, ArrayType):
            for i in range(stmt.ty.length):
                value: Value = const_int(0, stmt.ty.element)
                if isinstance(stmt.init, list) and i < len(stmt.init):
                    value = self._converted(stmt.init[i], stmt.ty.element)
                addr = self._emit(ins.Gep(slot, const_int(i, LONG)))
                self._emit(ins.Store(addr, value))
            return
        if isinstance(stmt.ty, PointerType):
            value = (
                self._rvalue(stmt.init)
                if isinstance(stmt.init, ast.Expr)
                else NullPtr(stmt.ty)
            )
            self._emit(ins.Store(slot, value))
            return
        assert isinstance(stmt.ty, IntType)
        value = (
            self._converted(stmt.init, stmt.ty)
            if isinstance(stmt.init, ast.Expr)
            else const_int(0, stmt.ty)
        )
        self._emit(ins.Store(slot, value))

    def _assign(self, stmt: ast.Assign) -> None:
        addr, is_ptr_slot, element = self._lvalue(stmt.target)
        if stmt.op:
            assert not is_ptr_slot
            old = self._emit(ins.Load(addr))
            rhs = self._rvalue(stmt.value)
            rhs_ty = stmt.value.ty
            assert isinstance(rhs_ty, IntType)
            common = usual_arithmetic_conversion(element, rhs_ty)
            lhs_c = self._convert(old, element, common)
            rhs_c = self._convert(rhs, rhs_ty, common)
            result = self._emit(ins.BinOp(stmt.op, lhs_c, rhs_c, common))
            self._emit(ins.Store(addr, self._convert(result, common, element)))
            return
        if is_ptr_slot:
            self._emit(ins.Store(addr, self._rvalue(stmt.value)))
            return
        value = self._converted(stmt.value, element)
        self._emit(ins.Store(addr, value))

    def _if(self, stmt: ast.If) -> None:
        cond = self._condition(stmt.cond)
        then_bb = self._new_block("then")
        exit_bb = self._new_block("endif")
        else_bb = self._new_block("else") if stmt.els is not None else exit_bb
        self._emit(ins.Br(cond, then_bb, else_bb))
        self.block = then_bb
        self._block_stmt(stmt.then)
        self._seal_and_switch(exit_bb)
        if stmt.els is not None:
            self.block = else_bb
            self._block_stmt(stmt.els)
            if self.block.terminator is None:
                self._emit(ins.Jmp(exit_bb))
            self.block = exit_bb

    def _while(self, stmt: ast.While) -> None:
        header = self._new_block("whilecond")
        body = self._new_block("whilebody")
        exit_bb = self._new_block("endwhile")
        self._seal_and_switch(header)
        cond = self._condition(stmt.cond)
        self._emit(ins.Br(cond, body, exit_bb))
        self.block = body
        self.loops.append(_LoopContext(exit_bb, header))
        self._block_stmt(stmt.body)
        self.loops.pop()
        self._seal_and_switch(header)
        self.block = exit_bb

    def _do_while(self, stmt: ast.DoWhile) -> None:
        body = self._new_block("dobody")
        latch = self._new_block("docond")
        exit_bb = self._new_block("enddo")
        self._seal_and_switch(body)
        self.loops.append(_LoopContext(exit_bb, latch))
        self._block_stmt(stmt.body)
        self.loops.pop()
        self._seal_and_switch(latch)
        cond = self._condition(stmt.cond)
        self._emit(ins.Br(cond, body, exit_bb))
        self.block = exit_bb

    def _for(self, stmt: ast.For) -> None:
        self.scopes.append({})
        if stmt.init is not None:
            self._stmt(stmt.init)
        header = self._new_block("forcond")
        body = self._new_block("forbody")
        step_bb = self._new_block("forstep")
        exit_bb = self._new_block("endfor")
        self._seal_and_switch(header)
        if stmt.cond is not None:
            cond = self._condition(stmt.cond)
            self._emit(ins.Br(cond, body, exit_bb))
        else:
            self._emit(ins.Jmp(body))
        self.block = body
        self.loops.append(_LoopContext(exit_bb, step_bb))
        self._block_stmt(stmt.body)
        self.loops.pop()
        self._seal_and_switch(step_bb)
        if stmt.step is not None:
            self._stmt(stmt.step)
        self._seal_and_switch(header)
        self.block = exit_bb
        self.scopes.pop()

    def _switch(self, stmt: ast.Switch) -> None:
        scrutinee_ty = stmt.scrutinee.ty
        assert isinstance(scrutinee_ty, IntType)
        common = promote(scrutinee_ty)
        value = self._convert(self._rvalue(stmt.scrutinee), scrutinee_ty, common)
        exit_bb = self._new_block("endswitch")
        # 'break' inside a case exits the switch; 'continue' still
        # targets the enclosing loop (or is unreachable in valid C).
        continue_to = self.loops[-1].continue_to if self.loops else exit_bb
        default_case = next((c for c in stmt.cases if c.value is None), None)
        arms = [c for c in stmt.cases if c.value is not None]
        case_blocks = [self._new_block("case") for _ in arms]
        default_bb = self._new_block("default") if default_case is not None else exit_bb
        for case, case_bb in zip(arms, case_blocks):
            next_test = self._new_block("casetest")
            cmp = self._emit(
                ins.ICmp("==", value, const_int(case.value, common), common)
            )
            self._emit(ins.Br(cmp, case_bb, next_test))
            self.block = next_test
        self._emit(ins.Jmp(default_bb))
        for case, case_bb in zip(arms, case_blocks):
            self.block = case_bb
            self.loops.append(_LoopContext(exit_bb, continue_to))
            self._block_stmt(case.body)
            self.loops.pop()
            self._seal_and_switch(exit_bb)
        if default_case is not None:
            self.block = default_bb
            self.loops.append(_LoopContext(exit_bb, continue_to))
            self._block_stmt(default_case.body)
            self.loops.pop()
            if self.block.terminator is None:
                self._emit(ins.Jmp(exit_bb))
        self.block = exit_bb

    def _return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            self._emit(ins.Ret(None))
        elif isinstance(self.func.return_ty, PointerType):
            self._emit(ins.Ret(self._rvalue(stmt.value)))
        else:
            assert isinstance(self.func.return_ty, IntType)
            self._emit(ins.Ret(self._converted(stmt.value, self.func.return_ty)))
        self.block = self._new_block("afterret")

    # -- expressions ------------------------------------------------------------

    def _condition(self, expr: ast.Expr) -> Value:
        """Lower a condition to an i32 0/1-ish value (non-zero = true)."""
        value = self._rvalue(expr)
        if isinstance(value.ty, PointerType):
            null = NullPtr(value.ty)
            return self._emit(ins.PCmp("!=", value, null))
        return value

    def _converted(self, expr: ast.Expr, want: IntType) -> Value:
        value = self._rvalue(expr)
        got = expr.ty
        assert isinstance(got, IntType), expr
        return self._convert(value, got, want)

    def _convert(self, value: Value, got: IntType, want: IntType) -> Value:
        if got == want:
            return value
        if isinstance(value, Constant):
            return const_int(value.value, want)
        return self._emit(ins.Cast(value, want))

    def _lvalue(self, expr: ast.Expr) -> tuple[Value, bool, IntType]:
        """Lower an lvalue to (address value, is_pointer_slot, element)."""
        if isinstance(expr, ast.VarRef):
            is_ptr_slot, element = self._slot_info(expr.name)
            return self._lookup(expr.name), is_ptr_slot, element
        if isinstance(expr, ast.Index):
            base_addr = self._array_or_pointer_base(expr.base)
            index_ty = expr.index.ty
            assert isinstance(index_ty, IntType)
            index = self._convert(self._rvalue(expr.index), index_ty, LONG)
            addr = self._emit(ins.Gep(base_addr, index))
            assert isinstance(addr.ty, PointerType)
            return addr, False, addr.ty.pointee
        if isinstance(expr, ast.Deref):
            ptr = self._rvalue(expr.pointer)
            assert isinstance(ptr.ty, PointerType)
            return ptr, False, ptr.ty.pointee
        raise TypeError(f"not an lvalue: {expr!r}")

    def _array_or_pointer_base(self, expr: ast.Expr) -> Value:
        """The pointer value that an Index node's base denotes."""
        if isinstance(expr, ast.VarRef) and isinstance(expr.ty, ArrayType):
            return self._lookup(expr.name)  # the object address itself
        return self._rvalue(expr)  # a pointer-typed expression

    def _rvalue(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.IntLit):
            assert isinstance(expr.ty, IntType)
            return const_int(expr.value, expr.ty)
        if isinstance(expr, ast.VarRef):
            if isinstance(expr.ty, ArrayType):
                return self._lookup(expr.name)  # decay to pointer
            addr = self._lookup(expr.name)
            is_ptr_slot, element = self._slot_info(expr.name)
            if is_ptr_slot:
                return self._emit(ins.LoadPtr(addr, element))
            return self._emit(ins.Load(addr))
        if isinstance(expr, (ast.Index, ast.Deref)):
            addr, _, _ = self._lvalue(expr)
            return self._emit(ins.Load(addr))
        if isinstance(expr, ast.AddrOf):
            addr, _, _ = self._lvalue(expr.lvalue)
            return addr
        if isinstance(expr, ast.Unary):
            return self._unary(expr)
        if isinstance(expr, ast.Cast):
            operand_ty = expr.operand.ty
            assert isinstance(operand_ty, IntType)
            return self._convert(self._rvalue(expr.operand), operand_ty, expr.target)
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        if isinstance(expr, ast.Call):
            return self._call(expr)
        raise TypeError(f"cannot lower expression {expr!r}")

    def _unary(self, expr: ast.Unary) -> Value:
        operand_ty = expr.operand.ty
        if expr.op == "!":
            value = self._rvalue(expr.operand)
            if isinstance(value.ty, PointerType):
                return self._emit(ins.PCmp("==", value, NullPtr(value.ty)))
            assert isinstance(operand_ty, IntType)
            prom = promote(operand_ty)
            zero = const_int(0, prom)
            return self._emit(
                ins.ICmp("==", self._convert(value, operand_ty, prom), zero, prom)
            )
        assert isinstance(operand_ty, IntType)
        prom = promote(operand_ty)
        value = self._convert(self._rvalue(expr.operand), operand_ty, prom)
        if expr.op == "-":
            return self._emit(ins.BinOp("-", const_int(0, prom), value, prom))
        assert expr.op == "~"
        return self._emit(ins.BinOp("^", value, const_int(-1, prom), prom))

    def _binary(self, expr: ast.Binary) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            return self._short_circuit(expr)
        lhs_ty = expr.lhs.ty
        rhs_ty = expr.rhs.ty
        if isinstance(lhs_ty, (PointerType, ArrayType)) or isinstance(
            rhs_ty, (PointerType, ArrayType)
        ):
            lhs = self._pointer_operand(expr.lhs)
            rhs = self._pointer_operand(expr.rhs)
            return self._emit(ins.PCmp(op, lhs, rhs))
        assert isinstance(lhs_ty, IntType) and isinstance(rhs_ty, IntType)
        common = usual_arithmetic_conversion(lhs_ty, rhs_ty)
        lhs = self._convert(self._rvalue(expr.lhs), lhs_ty, common)
        rhs = self._convert(self._rvalue(expr.rhs), rhs_ty, common)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return self._emit(ins.ICmp(op, lhs, rhs, common))
        return self._emit(ins.BinOp(op, lhs, rhs, common))

    def _pointer_operand(self, expr: ast.Expr) -> Value:
        value = self._rvalue(expr)
        if isinstance(value.ty, PointerType):
            return value
        # Integer 0 compared against a pointer: the null pointer.
        from ..lang.types import CHAR

        return NullPtr(PointerType(CHAR))

    def _short_circuit(self, expr: ast.Binary) -> Value:
        """Lower && / || via control flow into a temporary slot."""
        self._tmp += 1
        slot = ins.Alloca(f"sc{self._tmp}", INT, 1)
        entry = self.func.entry
        slot.block = entry
        entry.instrs.insert(self._alloca_insert_point(entry), slot)

        rhs_bb = self._new_block("scrhs")
        exit_bb = self._new_block("scend")
        lhs_cond = self._condition(expr.lhs)
        if expr.op == "&&":
            self._emit(ins.Store(slot, const_int(0, INT)))
            self._emit(ins.Br(lhs_cond, rhs_bb, exit_bb))
        else:
            self._emit(ins.Store(slot, const_int(1, INT)))
            self._emit(ins.Br(lhs_cond, exit_bb, rhs_bb))
        self.block = rhs_bb
        rhs_cond = self._condition(expr.rhs)
        rhs_bool = self._emit(ins.ICmp("!=", rhs_cond, const_int(0, rhs_cond.ty), rhs_cond.ty))
        self._emit(ins.Store(slot, rhs_bool))
        self._emit(ins.Jmp(exit_bb))
        self.block = exit_bb
        return self._emit(ins.Load(slot))

    def _call(self, expr: ast.Call) -> Value:
        sig = self.info.functions[expr.callee]
        args: list[Value] = []
        for arg, want in zip(expr.args, sig.param_tys):
            if isinstance(want, PointerType):
                args.append(self._rvalue(arg))
            else:
                assert isinstance(want, IntType)
                args.append(self._converted(arg, want))
        return self._emit(ins.Call(expr.callee, args, sig.return_ty))
