"""Dead code elimination (the instruction-level half).

Liveness seeds from instructions with observable effects (stores,
calls, terminators) and propagates through operands; everything
unmarked is deleted.  Block-level dead code is handled by SCCP +
simplify-cfg, which is precisely the interaction the paper's
optimization markers probe: *this* pass can only delete a marker call
if earlier passes proved its block unreachable.
"""

from __future__ import annotations

from ..ir import instructions as ins
from ..ir.function import IRFunction, Module
from .utils import erase_instructions


def eliminate_dead_code(func: IRFunction, module: Module | None = None) -> bool:
    """Aggressive DCE over ``func``; returns True when anything died."""
    live: set[int] = set()
    work: list[ins.Instr] = []

    for block in func.blocks:
        for instr in block.instrs:
            if instr.has_side_effects():
                live.add(id(instr))
                work.append(instr)

    while work:
        instr = work.pop()
        for op in instr.operands():
            if isinstance(op, ins.Instr) and id(op) not in live:
                live.add(id(op))
                work.append(op)

    dead = {
        id(i)
        for block in func.blocks
        for i in block.instrs
        if id(i) not in live
    }
    if not dead:
        return False
    erase_instructions(func, dead)
    return True
