"""mem2reg: promote scalar stack slots to SSA values.

Classic SSA construction: phi insertion at iterated dominance
frontiers of the stores, then a renaming walk over the dominator tree.
Only single-cell allocas whose address never escapes (no gep, no use
as a stored value / call argument / pointer comparison) are promoted;
arrays and address-taken locals stay in memory.
"""

from __future__ import annotations

from ..ir import instructions as ins
from ..ir.dominators import DominatorTree
from ..ir.function import Block, IRFunction, Module
from ..ir.values import NullPtr, Value, const_int
from ..lang.types import PointerType


def promote_memory_to_registers(func: IRFunction, module: Module | None = None) -> bool:
    """Run mem2reg on ``func``; returns True when anything changed."""
    promotable = _find_promotable(func)
    if not promotable:
        return False
    func.drop_unreachable_blocks()
    promotable = _find_promotable(func)
    if not promotable:
        return False

    dom = DominatorTree(func)
    frontiers = dom.frontiers()
    preds = func.predecessors()

    # 1. Phi placement at iterated dominance frontiers of the stores.
    phi_owner: dict[int, ins.Alloca] = {}
    blocks_with_phi: dict[int, dict[int, ins.Phi]] = {}  # block id -> alloca id -> phi
    reachable_ids = {id(b) for b in dom.reverse_postorder}
    for alloca in promotable:
        def_blocks = {
            id(i.block): i.block
            for i in _users(func, alloca)
            if isinstance(i, ins.Store) and i.block is not None
        }
        work = [b for bid, b in def_blocks.items() if bid in reachable_ids]
        placed: set[int] = set()
        while work:
            block = work.pop()
            for front in frontiers.get(id(block), []):
                if id(front) in placed:
                    continue
                placed.add(id(front))
                phi = ins.Phi(_slot_value_ty(alloca))
                front.insert_phi(phi)
                phi_owner[id(phi)] = alloca
                blocks_with_phi.setdefault(id(front), {})[id(alloca)] = phi
                if id(front) not in def_blocks:
                    work.append(front)

    # 2. Renaming walk.
    replacements: dict[Value, Value] = {}
    dead: set[int] = set()
    initial = {id(a): _initial_value(a) for a in promotable}
    promotable_ids = {id(a) for a in promotable}

    # Iterative dominator-tree walk (deep CFGs would blow the Python
    # recursion limit after unrolling).
    stack: list[tuple[Block, dict[int, Value]]] = [(func.entry, initial)]
    while stack:
        block, incoming = stack.pop()
        current = dict(incoming)
        for phi in block.phis():
            owner = phi_owner.get(id(phi))
            if owner is not None:
                current[id(owner)] = phi
        for instr in block.instrs:
            if isinstance(instr, (ins.Load, ins.LoadPtr)) and id(instr.address) in promotable_ids:
                replacements[instr] = current[id(instr.address)]
                dead.add(id(instr))
            elif isinstance(instr, ins.Store) and id(instr.address) in promotable_ids:
                current[id(instr.address)] = instr.value
                dead.add(id(instr))
            elif isinstance(instr, ins.Alloca) and id(instr) in promotable_ids:
                dead.add(id(instr))
        for succ in block.successors():
            phis = blocks_with_phi.get(id(succ))
            if phis:
                for alloca_id, phi in phis.items():
                    phi.incomings.append((block, current[alloca_id]))
        for child in dom.children(block):
            stack.append((child, current))

    # Phi incomings must match predecessor sets exactly; the walk added
    # one incoming per executed pred edge, in dom order.  Fix ordering
    # duplicates (a pred with two edges to the same block can't occur
    # in our CFG since Br targets are distinct blocks or folded).
    from .utils import erase_instructions, replace_all_uses

    replace_all_uses(func, replacements)
    # Phis may reference replaced loads via the map too.
    erase_instructions(func, dead)
    return True


def _slot_value_ty(alloca: ins.Alloca):
    if alloca.is_pointer_slot:
        return PointerType(alloca.element)
    return alloca.element


def _initial_value(alloca: ins.Alloca) -> Value:
    """The value a slot holds before any store (locals are
    zero-initialized in MiniC, and lowering stores immediately, so
    this is only visible on read-before-write paths)."""
    if alloca.is_pointer_slot:
        return NullPtr(PointerType(alloca.element))
    return const_int(0, alloca.element)


def _users(func: IRFunction, value: Value):
    for block in func.blocks:
        for instr in block.instrs:
            if isinstance(instr, ins.Phi):
                if any(v is value for _, v in instr.incomings):
                    yield instr
            elif any(op is value for op in instr.operands()):
                yield instr


def _find_promotable(func: IRFunction) -> list[ins.Alloca]:
    allocas = [i for i in func.entry.instrs if isinstance(i, ins.Alloca)]
    out = []
    for alloca in allocas:
        if alloca.length != 1:
            continue
        ok = True
        for user in _users(func, alloca):
            if isinstance(user, (ins.Load, ins.LoadPtr)) and user.address is alloca:
                continue
            if isinstance(user, ins.Store) and user.address is alloca and user.value is not alloca:
                continue
            ok = False
            break
        if ok:
            out.append(alloca)
    return out
