"""Sparse conditional constant propagation (Wegman–Zadeck).

Tracks a lattice per SSA value plus CFG edge executability, so
constants propagate *through* conditionally-dead regions.  The
pointer half of the lattice tracks which object an address is rooted
in, which is what lets SCCP fold address comparisons — subject to the
family's ``addr_cmp`` precision knob (GCC-like folds any
distinct-object comparison; LLVM-like EarlyCSE only folds when both
subscripts are zero, reproducing paper Listing 3).

After solving, constant results are substituted, decided branches are
folded, and newly unreachable blocks are removed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compilers.config import PipelineConfig
from ..ir import instructions as ins
from ..ir.function import Block, IRFunction, Module
from ..ir.values import Constant, GlobalRef, NullPtr, Param, Value, const_int
from ..lang.semantics import eval_binop
from ..lang.types import IntType
from .utils import erase_instructions, replace_all_uses

# Lattice:
#   TOP     — no evidence yet (optimistic)
#   int     — a known integer constant (plain Python int)
#   _Addr   — a known object address (possibly unknown offset)
#   _NULL   — the null pointer
#   BOTTOM  — overdefined
TOP = object()
BOTTOM = object()
_NULL = object()


@dataclass(frozen=True)
class _Addr:
    kind: str  # 'global' | 'alloca'
    key: object
    offset: int | None  # None = unknown offset within the object


def _meet(a, b):
    if a is TOP:
        return b
    if b is TOP:
        return a
    if a is BOTTOM or b is BOTTOM:
        return BOTTOM
    if a == b:
        return a
    if isinstance(a, _Addr) and isinstance(b, _Addr):
        if (a.kind, a.key) == (b.kind, b.key):
            return _Addr(a.kind, a.key, None)
    return BOTTOM


class _SCCPSolver:
    def __init__(self, func: IRFunction, module: Module, config: PipelineConfig) -> None:
        self.func = func
        self.module = module
        self.config = config
        self.lattice: dict[int, object] = {}
        self.executable_edges: set[tuple[int, int]] = set()
        self.executable_blocks: set[int] = set()
        self.ssa_work: list[ins.Instr] = []
        self.flow_work: list[tuple[Block | None, Block]] = [(None, func.entry)]
        self.users: dict[int, list[ins.Instr]] = {}
        self.preds = func.predecessors()
        for block in func.blocks:
            for instr in block.instrs:
                for op in instr.operands():
                    if isinstance(op, ins.Instr):
                        self.users.setdefault(id(op), []).append(instr)
                if isinstance(instr, ins.Phi):
                    for _, v in instr.incomings:
                        if isinstance(v, ins.Instr):
                            self.users.setdefault(id(v), []).append(instr)

    # -- lattice helpers ---------------------------------------------------

    def value_of(self, value: Value):
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, NullPtr):
            return _NULL
        if isinstance(value, GlobalRef):
            return _Addr("global", value.name, 0)
        if isinstance(value, Param):
            return BOTTOM
        return self.lattice.get(id(value), TOP)

    def _raise_to(self, instr: ins.Instr, new) -> None:
        old = self.lattice.get(id(instr), TOP)
        merged = _meet(old, new)
        if merged == old:  # sentinels compare by identity, ints/_Addr by value
            return
        self.lattice[id(instr)] = merged
        for user in self.users.get(id(instr), []):
            if user.block is not None and id(user.block) in self.executable_blocks:
                self.ssa_work.append(user)

    # -- solver --------------------------------------------------------------

    def solve(self) -> None:
        while self.flow_work or self.ssa_work:
            while self.flow_work:
                pred, block = self.flow_work.pop()
                edge = (id(pred) if pred else 0, id(block))
                if edge in self.executable_edges:
                    # Re-evaluate phis for this edge anyway.
                    for phi in block.phis():
                        self._visit(phi)
                    continue
                self.executable_edges.add(edge)
                first_time = id(block) not in self.executable_blocks
                self.executable_blocks.add(id(block))
                for phi in block.phis():
                    self._visit(phi)
                if first_time:
                    for instr in block.instrs:
                        if not isinstance(instr, ins.Phi):
                            self._visit(instr)
            while self.ssa_work:
                instr = self.ssa_work.pop()
                if instr.block is not None and id(instr.block) in self.executable_blocks:
                    self._visit(instr)

    def _edge_executable(self, pred: Block, block: Block) -> bool:
        return (id(pred), id(block)) in self.executable_edges or (
            pred is None and block is self.func.entry
        )

    def _visit(self, instr: ins.Instr) -> None:
        if isinstance(instr, ins.Phi):
            acc = TOP
            for pred, value in instr.incomings:
                if (id(pred), id(instr.block)) in self.executable_edges:
                    acc = _meet(acc, self.value_of(value))
            self._raise_to(instr, acc)
            return
        if isinstance(instr, ins.Br):
            cond = self.value_of(instr.cond)
            if cond is TOP:
                return
            if isinstance(cond, int):
                target = instr.if_true if cond != 0 else instr.if_false
                self.flow_work.append((instr.block, target))
            elif cond is _NULL:
                self.flow_work.append((instr.block, instr.if_false))
            elif isinstance(cond, _Addr):
                self.flow_work.append((instr.block, instr.if_true))
            else:
                self.flow_work.append((instr.block, instr.if_true))
                self.flow_work.append((instr.block, instr.if_false))
            return
        if isinstance(instr, ins.Jmp):
            self.flow_work.append((instr.block, instr.target))
            return
        if isinstance(instr, (ins.Ret, ins.Unreachable, ins.Store)):
            return
        self._raise_to(instr, self._evaluate(instr))

    def _evaluate(self, instr: ins.Instr):
        if isinstance(instr, ins.BinOp):
            lhs = self.value_of(instr.lhs)
            rhs = self.value_of(instr.rhs)
            if isinstance(lhs, int) and isinstance(rhs, int):
                return eval_binop(instr.op, lhs, rhs, instr.ty)
            if lhs is TOP or rhs is TOP:
                return TOP
            return BOTTOM
        if isinstance(instr, ins.ICmp):
            lhs = self.value_of(instr.lhs)
            rhs = self.value_of(instr.rhs)
            if isinstance(lhs, int) and isinstance(rhs, int):
                return eval_binop(instr.op, lhs, rhs, instr.operand_ty)
            if lhs is TOP or rhs is TOP:
                return TOP
            return BOTTOM
        if isinstance(instr, ins.PCmp):
            lhs = self.value_of(instr.lhs)
            rhs = self.value_of(instr.rhs)
            if lhs is TOP or rhs is TOP:
                return TOP
            return fold_pointer_compare(instr.op, lhs, rhs, self.module, self.config)
        if isinstance(instr, ins.Cast):
            value = self.value_of(instr.value)
            if isinstance(value, int):
                from ..lang.semantics import wrap

                assert isinstance(instr.ty, IntType)
                return wrap(value, instr.ty)
            return value if value is TOP else BOTTOM
        if isinstance(instr, ins.Select):
            cond = self.value_of(instr.cond)
            if cond is TOP:
                return TOP
            if isinstance(cond, int) or cond is _NULL or isinstance(cond, _Addr):
                truthy = (isinstance(cond, int) and cond != 0) or isinstance(cond, _Addr)
                chosen = instr.if_true if truthy else instr.if_false
                return self.value_of(chosen)
            return _meet(self.value_of(instr.if_true), self.value_of(instr.if_false))
        if isinstance(instr, ins.Gep):
            base = self.value_of(instr.base)
            index = self.value_of(instr.index)
            if base is TOP or index is TOP:
                return TOP
            if isinstance(base, _Addr):
                if isinstance(index, int) and base.offset is not None:
                    return _Addr(base.kind, base.key, base.offset + index)
                return _Addr(base.kind, base.key, None)
            return BOTTOM
        if isinstance(instr, ins.Alloca):
            return _Addr("alloca", id(instr), 0)
        # Loads, calls: unknown to SCCP (globalopt refines loads).
        return BOTTOM


def fold_pointer_compare(op, lhs, rhs, module: Module, config: PipelineConfig):
    """Fold a pointer comparison given two lattice values.

    Returns an int (0/1), TOP, or BOTTOM.  Precision depends on
    ``config.addr_cmp`` — see module docstring.
    """
    if lhs is BOTTOM or rhs is BOTTOM:
        return BOTTOM

    def result(equal: bool) -> int:
        if op == "==":
            return 1 if equal else 0
        return 0 if equal else 1

    if lhs is _NULL and rhs is _NULL:
        return result(True)
    if isinstance(lhs, _Addr) and rhs is _NULL or isinstance(rhs, _Addr) and lhs is _NULL:
        return result(False)  # objects are never at address null
    if isinstance(lhs, _Addr) and isinstance(rhs, _Addr):
        if (lhs.kind, lhs.key) == (rhs.kind, rhs.key):
            if lhs.offset is None or rhs.offset is None:
                return BOTTOM
            length = 1
            if lhs.kind == "global":
                info = module.globals.get(lhs.key)  # type: ignore[arg-type]
                if info is None:
                    return BOTTOM
                length = info.length
            else:
                return BOTTOM  # alloca lengths not tracked here; rare
            return result(lhs.offset % length == rhs.offset % length)
        # Distinct objects: precision is the family knob.
        if config.addr_cmp == "all":
            return result(False)
        if config.addr_cmp == "zero-index":
            if lhs.offset == 0 and rhs.offset == 0:
                return result(False)
            return BOTTOM
        return BOTTOM
    return BOTTOM


def sparse_conditional_constant_propagation(
    func: IRFunction, module: Module, config: PipelineConfig | None = None
) -> bool:
    """Run SCCP over ``func``; folds values and branches in place."""
    config = config or PipelineConfig()
    solver = _SCCPSolver(func, module, config)
    solver.solve()

    changed = False
    replacements: dict[Value, Value] = {}
    dead: set[int] = set()
    for block in func.blocks:
        if id(block) not in solver.executable_blocks:
            continue
        for instr in block.instrs:
            if not instr.produces_value() or instr.has_side_effects():
                continue
            value = solver.lattice.get(id(instr), TOP)
            if isinstance(value, int) and isinstance(instr.ty, IntType):
                replacements[instr] = const_int(value, instr.ty)
                dead.add(id(instr))

    if replacements:
        replace_all_uses(func, replacements)
        erase_instructions(func, dead)
        changed = True

    # Fold branches whose condition settled.
    for block in list(func.blocks):
        if id(block) not in solver.executable_blocks:
            continue
        term = block.terminator
        if not isinstance(term, ins.Br):
            continue
        cond = solver.value_of(term.cond)
        target: Block | None = None
        if isinstance(cond, int):
            target = term.if_true if cond != 0 else term.if_false
        elif cond is _NULL:
            target = term.if_false
        elif isinstance(cond, _Addr):
            target = term.if_true
        if target is None:
            continue
        dropped = term.if_false if target is term.if_true else term.if_true
        if dropped is not target:
            for phi in dropped.phis():
                phi.remove_incoming(block)
        block.replace_terminator(ins.Jmp(target))
        changed = True

    changed |= func.drop_unreachable_blocks()
    return changed
