"""Full loop unrolling.

Unrolls counted loops whose trip count can be determined by abstract
simulation of the exit-condition chain (initial phi values must be
constants, and every value feeding the exit condition must be
computable by pure integer arithmetic).  Full unrolling is what lets
constants propagate *through* loops — e.g. paper Listing 9e's

    for (b = 0; b < 2; b++) c[b] = &a[1];
    if (!c[0]) dead();

only folds once the loop body has been materialized per iteration.

Two canonical shapes are handled, matching exactly what the MiniC
frontend emits:

* **header-exit** (``for``/``while``): the header's conditional branch
  is the only exit; the latch jumps back unconditionally;
* **latch-exit** (``do``-``while``): the latch's conditional branch is
  the only exit; the body always runs at least once.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.loops import Loop, find_loops, loop_preheader
from ..compilers.config import PipelineConfig
from ..ir import instructions as ins
from ..ir.dominators import DominatorTree
from ..ir.function import Block, IRFunction, Module
from ..ir.values import Constant, Value
from ..lang.semantics import eval_binop, wrap
from .utils import clone_region, replace_all_uses


def unroll_loops(
    func: IRFunction, module: Module, config: PipelineConfig | None = None
) -> bool:
    config = config or PipelineConfig()
    changed = False
    # Innermost-first; after each successful unroll the CFG changed
    # enough that loops are recomputed.  Rounds are bounded to keep
    # pathological nests from spinning.
    for _ in range(6):
        dom = DominatorTree(func)
        loops = find_loops(func, dom)
        for loop in loops:
            if _try_full_unroll(func, module, loop, config):
                changed = True
                break
        else:
            break
    return changed


@dataclass
class CountedLoop:
    """Result of the shape + trip-count analysis.

    ``trip`` is the number of body executions.  ``exit_kind`` is
    'header' or 'latch'; ``inside_target`` is only meaningful for
    header exits (where the final header evaluation jumps out).
    """

    trip: int
    region: list[Block]
    exit_block: Block
    inside_target: Block | None
    preheader: Block
    latch: Block
    exit_kind: str


def analyze_counted_loop(
    func: IRFunction, loop: Loop, max_trip: int
) -> CountedLoop | None:
    """Shape + trip-count analysis shared by the unroller and the
    vectorizer's cost model."""
    latch = loop.single_latch
    if latch is None:
        return None
    preheader = loop_preheader(loop, func)
    if preheader is None:
        return None
    preds = func.predecessors()
    header_preds = {id(p) for p in preds[loop.header]}
    if header_preds != {id(preheader), id(latch)}:
        return None
    inside = loop.block_ids()
    exits = loop.exits()
    if len(exits) != 1:
        return None
    exit_source, exit_block = exits[0]

    latch_term = latch.terminator
    if exit_source is loop.header and isinstance(latch_term, ins.Jmp):
        term = loop.header.terminator
        if not isinstance(term, ins.Br):
            return None
        t_in = id(term.if_true) in inside
        inside_target = term.if_true if t_in else term.if_false
        exit_kind = "header"
        cond_term = term
        exit_on_false = t_in  # staying inside when the condition holds
    elif exit_source is latch and isinstance(latch_term, ins.Br):
        t_in = id(latch_term.if_true) in inside
        inside_target = None
        exit_kind = "latch"
        cond_term = latch_term
        exit_on_false = t_in
    else:
        return None

    region = _topo_region(loop, latch)
    if region is None:
        return None  # inner cycle (un-unrolled nested loop)
    trip = _simulate_trip_count(
        loop, region, preheader, latch, cond_term, exit_on_false, exit_kind, max_trip
    )
    if trip is None:
        return None
    return CountedLoop(trip, region, exit_block, inside_target, preheader, latch, exit_kind)


def _try_full_unroll(
    func: IRFunction, module: Module, loop: Loop, config: PipelineConfig
) -> bool:
    if getattr(loop.header, "no_unroll", False):
        return False  # the vectorizer claimed this loop (see vectorize.py)
    if loop.size() > config.unroll_max_body:
        return False
    info = analyze_counted_loop(func, loop, config.unroll_max_trip)
    if info is None:
        return False
    if info.exit_kind == "header":
        _unroll_header_exit(func, loop, info)
    else:
        _unroll_latch_exit(func, loop, info)
    func.drop_unreachable_blocks()
    return True


def _unroll_header_exit(func: IRFunction, loop: Loop, info: CountedLoop) -> None:
    """for/while shape: trip body copies plus a final header
    evaluation that jumps to the exit."""
    header_phis = loop.header.phis()
    current: dict[ins.Phi, Value] = {
        phi: phi.incoming_for(info.preheader) for phi in header_phis
    }
    prev_latch_clone: Block | None = None
    final_map: dict[Value, Value] = {}
    final_header: Block | None = None

    for iteration in range(info.trip + 1):
        last = iteration == info.trip
        value_map: dict[Value, Value] = dict(current)
        block_map = clone_region(func, info.region, value_map, f"unroll{iteration}")
        header_clone = block_map[id(loop.header)]
        _drop_phis(header_clone)
        if last:
            final_header = header_clone
            final_map = value_map
            header_clone.replace_terminator(ins.Jmp(info.exit_block))
        else:
            assert info.inside_target is not None
            header_clone.replace_terminator(
                ins.Jmp(block_map[id(info.inside_target)])
            )
        _enter_iteration(func, loop, info, header_clone, prev_latch_clone)
        if last:
            prev_latch_clone = None
        else:
            prev_latch_clone = block_map[id(info.latch)]
            current = _next_values(header_phis, info.latch, value_map)

    assert final_header is not None
    _retarget_exit_phis(info.exit_block, loop.header, final_header, final_map)
    _replace_external_uses(func, loop.header.instrs, final_map)


def _unroll_latch_exit(func: IRFunction, loop: Loop, info: CountedLoop) -> None:
    """do-while shape: exactly trip body copies; the final latch jumps
    to the exit."""
    header_phis = loop.header.phis()
    current: dict[ins.Phi, Value] = {
        phi: phi.incoming_for(info.preheader) for phi in header_phis
    }
    prev_latch_clone: Block | None = None
    final_map: dict[Value, Value] = {}
    final_latch: Block | None = None

    for iteration in range(info.trip):
        last = iteration == info.trip - 1
        value_map: dict[Value, Value] = dict(current)
        block_map = clone_region(func, info.region, value_map, f"unroll{iteration}")
        header_clone = block_map[id(loop.header)]
        _drop_phis(header_clone)
        latch_clone = block_map[id(info.latch)]
        # The cloned latch branch currently targets this iteration's
        # own header clone (a self-loop): point it at the exit (the
        # next iteration patches it forward when one exists).
        latch_clone.replace_terminator(ins.Jmp(info.exit_block))
        _enter_iteration(func, loop, info, header_clone, prev_latch_clone)
        if last:
            final_latch = latch_clone
            final_map = value_map
        else:
            prev_latch_clone = latch_clone
            current = _next_values(header_phis, info.latch, value_map)

    assert final_latch is not None
    _retarget_exit_phis(info.exit_block, info.latch, final_latch, final_map)
    # Every region block dominates the (single) exit edge in this
    # shape, so any region value may be used after the loop.
    all_instrs = [i for block in info.region for i in block.instrs]
    _replace_external_uses(func, all_instrs, final_map)


def _drop_phis(header_clone: Block) -> None:
    """Cloned header phis are pre-seeded through the value map."""
    header_clone.instrs = [
        i for i in header_clone.instrs if not isinstance(i, ins.Phi)
    ]


def _enter_iteration(
    func: IRFunction,
    loop: Loop,
    info: CountedLoop,
    header_clone: Block,
    prev_latch_clone: Block | None,
) -> None:
    """Wire control into this iteration's header clone."""
    if prev_latch_clone is not None:
        prev_latch_clone.replace_terminator(ins.Jmp(header_clone))
    else:
        pre_term = info.preheader.terminator
        assert pre_term is not None
        ins.retarget(pre_term, loop.header, header_clone)


def _next_values(
    header_phis: list[ins.Phi], latch: Block, value_map: dict[Value, Value]
) -> dict[ins.Phi, Value]:
    return {
        phi: value_map.get(phi.incoming_for(latch), phi.incoming_for(latch))
        for phi in header_phis
    }


def _retarget_exit_phis(
    exit_block: Block, old_pred: Block, new_pred: Block, final_map: dict[Value, Value]
) -> None:
    for phi in exit_block.phis():
        phi.incomings = [
            (new_pred, final_map.get(v, v)) if b is old_pred else (b, v)
            for b, v in phi.incomings
        ]


def _replace_external_uses(func: IRFunction, instrs, final_map: dict[Value, Value]) -> None:
    """Uses of original loop values after the loop must refer to the
    final iteration's clones."""
    external = {}
    for instr in instrs:
        mapped = final_map.get(instr)
        if mapped is not None and mapped is not instr:
            external[instr] = mapped
    replace_all_uses(func, external)


def _topo_region(loop: Loop, latch: Block) -> list[Block] | None:
    """Loop blocks in a topological order ignoring the back edge, or
    None when the body contains another cycle."""
    inside = loop.block_ids()
    indeg: dict[int, int] = {id(b): 0 for b in loop.blocks}
    for block in loop.blocks:
        for succ in block.successors():
            if id(succ) in inside and not (block is latch and succ is loop.header):
                indeg[id(succ)] += 1
    by_id = {id(b): b for b in loop.blocks}
    ready = [b for b in loop.blocks if indeg[id(b)] == 0]
    order: list[Block] = []
    while ready:
        block = ready.pop()
        order.append(block)
        for succ in block.successors():
            if id(succ) in inside and not (block is latch and succ is loop.header):
                indeg[id(succ)] -= 1
                if indeg[id(succ)] == 0:
                    ready.append(by_id[id(succ)])
    if len(order) != len(loop.blocks):
        return None
    # The header must come first for cloning sanity.
    if order[0] is not loop.header:
        return None
    return order


def _simulate_trip_count(
    loop: Loop,
    region: list[Block],
    preheader: Block,
    latch: Block,
    cond_term: ins.Br,
    exit_on_false: bool,
    exit_kind: str,
    max_trip: int,
) -> int | None:
    """How many times the body executes, or None if undecidable.

    For header exits the condition is checked *before* each body
    execution (trip may be 0); for latch exits it is checked after
    (trip is at least 1)."""
    header_phis = loop.header.phis()
    values: dict[int, int] = {}
    for phi in header_phis:
        init = phi.incoming_for(preheader)
        if isinstance(init, Constant):
            values[id(phi)] = init.value
        # unknown initial values stay absent (only fatal if the
        # condition chain needs them)

    def known(v: Value) -> int | None:
        if isinstance(v, Constant):
            return v.value
        return values.get(id(v))

    for _trip in range(max_trip + 1):
        # Evaluate the region's pure instructions in topo order.
        for block in region:
            for instr in block.instrs:
                if isinstance(instr, ins.Phi):
                    continue  # body phis are unknown
                result = _eval_pure(instr, known)
                if result is not None:
                    values[id(instr)] = result
                else:
                    values.pop(id(instr), None)
        cond = known(cond_term.cond)
        if cond is None:
            return None
        taken_inside = (cond != 0) == exit_on_false
        if not taken_inside:
            return _trip if exit_kind == "header" else _trip + 1
        next_values: dict[int, int] = {}
        for phi in header_phis:
            nxt = known(phi.incoming_for(latch))
            if nxt is not None:
                next_values[id(phi)] = nxt
        values = next_values
    return None


def _eval_pure(instr: ins.Instr, known) -> int | None:
    if isinstance(instr, ins.BinOp):
        lhs, rhs = known(instr.lhs), known(instr.rhs)
        if lhs is None or rhs is None:
            return None
        return eval_binop(instr.op, lhs, rhs, instr.ty)
    if isinstance(instr, ins.ICmp):
        lhs, rhs = known(instr.lhs), known(instr.rhs)
        if lhs is None or rhs is None:
            return None
        return eval_binop(instr.op, lhs, rhs, instr.operand_ty)
    if isinstance(instr, ins.Cast):
        value = known(instr.value)
        if value is None:
            return None
        return wrap(value, instr.ty)
    if isinstance(instr, ins.Select):
        cond = known(instr.cond)
        if cond is None:
            return None
        return known(instr.if_true if cond != 0 else instr.if_false)
    return None
