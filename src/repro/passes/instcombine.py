"""Peephole simplification ("instcombine").

Local rewrites over single instructions: algebraic identities,
constant folding, cast-chain collapsing, comparison canonicalization,
and syntactic pointer-comparison folding (the family-dependent
EarlyCSE behaviour from paper Listing 3 lives here as well as in
SCCP's lattice).
"""

from __future__ import annotations

from ..analysis.alias import trace_root
from ..compilers.config import PipelineConfig
from ..ir import instructions as ins
from ..ir.function import IRFunction, Module
from ..ir.values import Constant, NullPtr, Value, const_int
from ..lang.semantics import eval_binop, is_commutative, wrap
from ..lang.types import INT, IntType
from .utils import erase_instructions, replace_all_uses

_NEGATE = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


def combine_instructions(
    func: IRFunction, module: Module, config: PipelineConfig | None = None
) -> bool:
    config = config or PipelineConfig()
    changed = False
    while _one_round(func, module, config):
        changed = True
    return changed


def _one_round(func: IRFunction, module: Module, config: PipelineConfig) -> bool:
    replacements: dict[Value, Value] = {}
    for block in func.blocks:
        # Iterate a snapshot: simplification may insert helper
        # instructions (flipped comparisons, collapsed casts) in place.
        for instr in list(block.instrs):
            if instr in replacements:
                continue
            simplified = _simplify(instr, module, config)
            if simplified is not None and simplified is not instr:
                replacements[instr] = simplified
    if not replacements:
        return False
    replace_all_uses(func, replacements)
    erase_instructions(func, {id(i) for i in replacements if isinstance(i, ins.Instr)})
    return True


def _simplify(instr: ins.Instr, module: Module, config: PipelineConfig) -> Value | None:
    if isinstance(instr, ins.BinOp):
        return _simplify_binop(instr, config.peephole_algebraic)
    if isinstance(instr, ins.ICmp):
        return _simplify_icmp(instr, config)
    if isinstance(instr, ins.PCmp):
        return _simplify_pcmp(instr, module, config)
    if isinstance(instr, ins.Cast):
        return _simplify_cast(instr, config)
    if isinstance(instr, ins.Select):
        return _simplify_select(instr)
    if isinstance(instr, ins.Gep):
        if isinstance(instr.index, Constant) and instr.index.value == 0:
            return instr.base
    return None


def _simplify_binop(instr: ins.BinOp, algebraic: bool = True) -> Value | None:
    op, lhs, rhs, ty = instr.op, instr.lhs, instr.rhs, instr.ty
    lc = lhs.value if isinstance(lhs, Constant) else None
    rc = rhs.value if isinstance(rhs, Constant) else None
    if lc is not None and rc is not None:
        return const_int(eval_binop(op, lc, rc, ty), ty)
    if not algebraic:
        return None
    # Canonicalize constants to the right for commutative ops.
    if lc is not None and rc is None and is_commutative(op):
        lhs, rhs, lc, rc = rhs, lhs, rc, lc
    if op == "+" and rc == 0:
        return lhs
    if op == "-" and rc == 0:
        return lhs
    if op == "-" and lhs is rhs:
        return const_int(0, ty)
    if op == "*":
        if rc == 0:
            return const_int(0, ty)
        if rc == 1:
            return lhs
    if op == "/":
        if rc == 1:
            return lhs
        if rc == 0:
            return lhs  # MiniC: x / 0 == x
        if lc == 0:
            return const_int(0, ty)  # 0 / y == 0 for all y (incl. 0)
    if op == "%":
        if rc == 1:
            return const_int(0, ty)
        if rc == 0:
            return lhs  # MiniC: x % 0 == x
        if lc == 0:
            return const_int(0, ty)
    if op == "&":
        if rc == 0:
            return const_int(0, ty)
        if rc is not None and wrap(rc, ty) == wrap(-1, ty):
            return lhs
        if lhs is rhs:
            return lhs
    if op == "|":
        if rc == 0:
            return lhs
        if rc is not None and wrap(rc, ty) == wrap(-1, ty):
            return const_int(-1, ty)
        if lhs is rhs:
            return lhs
    if op == "^":
        if rc == 0:
            return lhs
        if lhs is rhs:
            return const_int(0, ty)
    if op in ("<<", ">>"):
        if rc is not None and (rc & (ty.width - 1)) == 0:
            return lhs
        if lc == 0:
            return const_int(0, ty)
    # --x == x
    if (
        op == "-"
        and lc == 0
        and isinstance(rhs, ins.BinOp)
        and rhs.op == "-"
        and isinstance(rhs.lhs, Constant)
        and rhs.lhs.value == 0
    ):
        return rhs.rhs
    return None


def _simplify_icmp(instr: ins.ICmp, config: PipelineConfig) -> Value | None:
    op, lhs, rhs, ty = instr.op, instr.lhs, instr.rhs, instr.operand_ty
    if isinstance(lhs, Constant) and isinstance(rhs, Constant):
        return const_int(eval_binop(op, lhs.value, rhs.value, ty), INT)
    if not config.peephole_algebraic:
        return None
    if lhs is rhs:
        return const_int(1 if op in ("==", "<=", ">=") else 0, INT)
    if not ty.signed and isinstance(rhs, Constant) and rhs.value == 0:
        if op == "<":
            return const_int(0, INT)  # unsigned x < 0
        if op == ">=":
            return const_int(1, INT)
    # (x cmp c) == 0  ->  x !cmp c ; (x cmp c) != 0 -> x cmp c
    if (
        config.fold_cmp_chains
        and op in ("==", "!=")
        and isinstance(rhs, Constant)
        and rhs.value == 0
        and isinstance(lhs, (ins.ICmp, ins.PCmp))
    ):
        if op == "!=":
            return lhs
        if isinstance(lhs, ins.ICmp):
            return ins_replacement_icmp(lhs)
        return ins_replacement_pcmp(lhs)
    return None


def ins_replacement_icmp(inner: ins.ICmp) -> ins.Instr:
    flipped = ins.ICmp(_NEGATE[inner.op], inner.lhs, inner.rhs, inner.operand_ty)
    return _insert_sibling(inner, flipped)


def ins_replacement_pcmp(inner: ins.PCmp) -> ins.Instr:
    flipped = ins.PCmp(_NEGATE[inner.op], inner.lhs, inner.rhs)
    return _insert_sibling(inner, flipped)


def _insert_sibling(anchor: ins.Instr, new_instr: ins.Instr) -> ins.Instr:
    """Insert ``new_instr`` right after ``anchor`` in its block."""
    block = anchor.block
    assert block is not None
    new_instr.block = block
    block.instrs.insert(block.instrs.index(anchor) + 1, new_instr)
    return new_instr


def _simplify_pcmp(instr: ins.PCmp, module: Module, config: PipelineConfig) -> Value | None:
    def result(equal: bool) -> Constant:
        value = equal if instr.op == "==" else not equal
        return const_int(1 if value else 0, INT)

    lhs, rhs = instr.lhs, instr.rhs
    if lhs is rhs:
        return result(True)
    lnull = isinstance(lhs, NullPtr)
    rnull = isinstance(rhs, NullPtr)
    if lnull and rnull:
        return result(True)
    lroot = trace_root(lhs)
    rroot = trace_root(rhs)
    if lnull != rnull:
        known = rroot if lnull else lroot
        if known.kind != "unknown":
            return result(False)  # a real object is never at null
        return None
    if lroot.kind == "unknown" or rroot.kind == "unknown":
        return None
    if (lroot.kind, lroot.key) == (rroot.kind, rroot.key):
        if lroot.offset is None or rroot.offset is None:
            return None
        length = _root_length(lroot, module)
        if length is None:
            return None
        return result(lroot.offset % length == rroot.offset % length)
    # Distinct objects: family-dependent folding (paper Listing 3).
    if config.addr_cmp == "all":
        return result(False)
    if config.addr_cmp == "zero-index":
        if lroot.offset == 0 and rroot.offset == 0:
            return result(False)
        return None
    return None


def _root_length(root, module: Module) -> int | None:
    if root.kind == "global":
        info = module.globals.get(root.key)
        return None if info is None else info.length
    if root.kind == "alloca":
        return root.length
    return None


def _simplify_cast(instr: ins.Cast, config: PipelineConfig) -> Value | None:
    value = instr.value
    assert isinstance(instr.ty, IntType)
    if isinstance(value, Constant):
        return const_int(value.value, instr.ty)
    if value.ty == instr.ty:
        return value
    if config.collapse_cast_chains and isinstance(value, ins.Cast):
        src_ty = value.value.ty
        mid_ty = value.ty
        if isinstance(src_ty, IntType) and isinstance(mid_ty, IntType):
            dst_ty = instr.ty
            # Collapsible when the middle keeps all bits the result
            # needs (dst no wider than mid), or when src -> mid was
            # value-preserving (wider, compatible signedness).
            lossless_mid = mid_ty.width > src_ty.width and (
                mid_ty.signed or not src_ty.signed
            )
            if dst_ty.width <= mid_ty.width or lossless_mid:
                if src_ty == dst_ty:
                    return value.value
                collapsed = ins.Cast(value.value, dst_ty)
                return _insert_sibling(instr, collapsed)
    return None


def _simplify_select(instr: ins.Select) -> Value | None:
    if isinstance(instr.cond, Constant):
        return instr.if_true if instr.cond.value != 0 else instr.if_false
    if isinstance(instr.cond, NullPtr):
        return instr.if_false
    if instr.if_true is instr.if_false:
        return instr.if_true
    return None
