"""Value range propagation.

A straightforward interval analysis: ranges flow forward through pure
integer instructions (with overflow-checked interval arithmetic) and
merge at phis with widening.  Comparisons that ranges decide fold to
constants — e.g. ``(x & 7) > 10`` or an unsigned value compared below
zero — which is one of the analyses the paper's markers probe (GCC's
VRP appears in both component tables).
"""

from __future__ import annotations

from ..compilers.config import PipelineConfig
from ..ir import instructions as ins
from ..ir.function import IRFunction, Module
from ..ir.values import Constant, Value, const_int
from ..lang.types import INT, IntType
from .utils import erase_instructions, replace_all_uses

_WIDEN_AFTER = 4


class _Range:
    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi

    def __eq__(self, other) -> bool:
        return isinstance(other, _Range) and (self.lo, self.hi) == (other.lo, other.hi)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.lo}, {self.hi}]"


def _full(ty: IntType) -> _Range:
    return _Range(ty.min_value, ty.max_value)


def propagate_value_ranges(
    func: IRFunction, module: Module, config: PipelineConfig | None = None
) -> bool:
    config = config or PipelineConfig()
    if not config.vrp:
        return False
    ranges = _compute_ranges(func, config.vrp_widen_after, config.vrp_extended_ops)
    replacements: dict[Value, Value] = {}
    dead: set[int] = set()
    for block in func.blocks:
        for instr in block.instrs:
            if not isinstance(instr, ins.ICmp):
                continue
            lhs = _range_of(instr.lhs, ranges, instr.operand_ty)
            rhs = _range_of(instr.rhs, ranges, instr.operand_ty)
            decided = _decide(instr.op, lhs, rhs)
            if decided is not None:
                replacements[instr] = const_int(decided, INT)
                dead.add(id(instr))
    if not replacements:
        return False
    replace_all_uses(func, replacements)
    erase_instructions(func, dead)
    return True


def _range_of(value: Value, ranges: dict[int, _Range], ty: IntType) -> _Range:
    if isinstance(value, Constant):
        return _Range(value.value, value.value)
    got = ranges.get(id(value))
    if got is None:
        return _full(ty)
    return got


def _compute_ranges(
    func: IRFunction,
    widen_after: int = _WIDEN_AFTER,
    extended_ops: bool = True,
) -> dict[int, _Range]:
    ranges: dict[int, _Range] = {}
    visits: dict[int, int] = {}
    order = func.reverse_postorder()
    for _ in range(3):  # a few passes reach a fixpoint on typical code
        changed = False
        for block in order:
            for instr in block.instrs:
                new = _transfer(instr, ranges, extended_ops)
                if new is None:
                    continue
                old = ranges.get(id(instr))
                if old is not None and isinstance(instr, ins.Phi):
                    visits[id(instr)] = visits.get(id(instr), 0) + 1
                    if visits[id(instr)] > widen_after:
                        assert isinstance(instr.ty, IntType)
                        new = _full(instr.ty)
                    else:
                        new = _Range(min(old.lo, new.lo), max(old.hi, new.hi))
                if new != old:
                    ranges[id(instr)] = new
                    changed = True
        if not changed:
            break
    return ranges


def _transfer(
    instr: ins.Instr, ranges: dict[int, _Range], extended_ops: bool = True
) -> _Range | None:
    if not isinstance(instr.ty, IntType):
        return None

    def rng(v: Value) -> _Range:
        ty = v.ty if isinstance(v.ty, IntType) else instr.ty
        assert isinstance(ty, IntType)
        return _range_of(v, ranges, ty)

    ty = instr.ty
    if isinstance(instr, ins.Phi):
        parts = [rng(v) for _, v in instr.incomings]
        if not parts:
            return None
        return _Range(min(p.lo for p in parts), max(p.hi for p in parts))
    if isinstance(instr, ins.Cast):
        src = rng(instr.value)
        if ty.min_value <= src.lo and src.hi <= ty.max_value:
            return src
        return _full(ty)
    if isinstance(instr, ins.Select):
        a, b = rng(instr.if_true), rng(instr.if_false)
        return _Range(min(a.lo, b.lo), max(a.hi, b.hi))
    if isinstance(instr, ins.ICmp):
        return _Range(0, 1)
    if isinstance(instr, ins.PCmp):
        return _Range(0, 1)
    if isinstance(instr, ins.BinOp):
        return _binop_range(instr, rng(instr.lhs), rng(instr.rhs), ty, extended_ops)
    if isinstance(instr, (ins.Load, ins.LoadPtr, ins.Call)):
        return _full(ty)
    return None


def _binop_range(
    instr: ins.BinOp, a: _Range, b: _Range, ty: IntType, extended_ops: bool = True
) -> _Range:
    op = instr.op
    if op == "+":
        return _clamped(a.lo + b.lo, a.hi + b.hi, ty)
    if op == "-":
        return _clamped(a.lo - b.hi, a.hi - b.lo, ty)
    if op == "*":
        corners = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
        return _clamped(min(corners), max(corners), ty)
    if op == "&":
        if b.lo == b.hi and b.lo >= 0:
            return _Range(0, b.lo)
        if a.lo == a.hi and a.lo >= 0:
            return _Range(0, a.lo)
        if a.lo >= 0 and b.lo >= 0:
            return _Range(0, min(a.hi, b.hi))
        return _full(ty)
    if op == "%":
        if extended_ops and b.lo == b.hi and b.lo > 0:
            m = b.lo - 1
            if a.lo >= 0:
                return _Range(0, min(m, a.hi))
            return _Range(-m, m)
        return _full(ty)
    if op == "<<":
        if (
            extended_ops
            and b.lo == b.hi
            and 0 <= b.lo < ty.width
            and a.lo >= 0
            and (a.hi << b.lo) <= ty.max_value
        ):
            return _Range(a.lo << b.lo, a.hi << b.lo)
        return _full(ty)
    if op == ">>":
        if b.lo == b.hi and 0 <= b.lo < ty.width and a.lo >= 0:
            return _Range(a.lo >> b.lo, a.hi >> b.lo)
        return _full(ty)
    if op == "|":
        if a.lo >= 0 and b.lo >= 0:
            upper = (1 << max(a.hi.bit_length(), b.hi.bit_length())) - 1
            if upper <= ty.max_value:
                return _Range(0, upper)
        return _full(ty)
    return _full(ty)


def _clamped(lo: int, hi: int, ty: IntType) -> _Range:
    if ty.min_value <= lo and hi <= ty.max_value:
        return _Range(lo, hi)
    return _full(ty)


def _decide(op: str, a: _Range, b: _Range) -> int | None:
    if op == "<":
        if a.hi < b.lo:
            return 1
        if a.lo >= b.hi:
            return 0
    elif op == "<=":
        if a.hi <= b.lo:
            return 1
        if a.lo > b.hi:
            return 0
    elif op == ">":
        if a.lo > b.hi:
            return 1
        if a.hi <= b.lo:
            return 0
    elif op == ">=":
        if a.lo >= b.hi:
            return 1
        if a.hi < b.lo:
            return 0
    elif op == "==":
        if a.lo == a.hi == b.lo == b.hi:
            return 1
        if a.hi < b.lo or b.hi < a.lo:
            return 0
    elif op == "!=":
        if a.lo == a.hi == b.lo == b.hi:
            return 0
        if a.hi < b.lo or b.hi < a.lo:
            return 1
    return None
