"""Loop-invariant code motion (LICM).

Hoists pure instructions whose operands are defined outside the loop
into the preheader.  MiniC semantics are total (no division traps), so
every pure instruction is speculatable and the classic "executes at
least once" requirement can be dropped.

Loads are hoisted only when the loop provably cannot write the cell
(no may-alias store, no call that may access it) — the precision comes
from the same alias analysis the other memory passes use.
"""

from __future__ import annotations

from ..analysis.alias import AliasResult, MemorySSAish
from ..analysis.loops import Loop, find_loops, loop_preheader
from ..compilers.config import PipelineConfig
from ..ir import instructions as ins
from ..ir.dominators import DominatorTree
from ..ir.function import IRFunction, Module

_PURE = (ins.BinOp, ins.ICmp, ins.PCmp, ins.Cast, ins.Select, ins.Gep)


def hoist_loop_invariants(
    func: IRFunction, module: Module, config: PipelineConfig | None = None
) -> bool:
    config = config or PipelineConfig()
    memory = MemorySSAish(module, config.alias_max_objects)
    changed = False
    # Outermost-last ordering lets hoisted code bubble outward across
    # rounds.
    for _ in range(3):
        round_changed = False
        for loop in find_loops(func, DominatorTree(func)):
            round_changed |= _hoist_from_loop(func, loop, module, memory)
        changed |= round_changed
        if not round_changed:
            break
    return changed


def _hoist_from_loop(
    func: IRFunction, loop: Loop, module: Module, memory: MemorySSAish
) -> bool:
    preheader = loop_preheader(loop, func)
    if preheader is None:
        return False
    inside = loop.block_ids()

    def defined_outside(value) -> bool:
        if isinstance(value, ins.Instr):
            return value.block is None or id(value.block) not in inside
        return True

    may_write_in_loop = _loop_memory_effects(loop, module, memory)

    changed = False
    progress = True
    while progress:
        progress = False
        for block in loop.blocks:
            for instr in list(block.instrs):
                if instr.is_terminator or isinstance(instr, ins.Phi):
                    continue
                if not all(defined_outside(op) for op in instr.operands()):
                    continue
                if isinstance(instr, _PURE):
                    pass  # always speculatable under total semantics
                elif isinstance(instr, (ins.Load, ins.LoadPtr)):
                    if may_write_in_loop(instr.address):
                        continue
                    # Speculating a load requires a provably valid
                    # address (a zero-trip loop must not dereference a
                    # possibly-null pointer it never would have).
                    from ..analysis.alias import trace_root

                    if trace_root(instr.address).kind == "unknown":
                        continue
                else:
                    continue
                block.remove(instr)
                preheader.insert_before_terminator(instr)
                changed = True
                progress = True
    return changed


def _loop_memory_effects(loop: Loop, module: Module, memory: MemorySSAish):
    """A may-write predicate for addresses, w.r.t. this loop's body."""
    stores = []
    calls = []
    for block in loop.blocks:
        for instr in block.instrs:
            if isinstance(instr, ins.Store):
                stores.append(instr)
            elif isinstance(instr, ins.Call):
                calls.append(instr)

    def may_write(addr) -> bool:
        for store in stores:
            if memory.alias(addr, store.address) is not AliasResult.NO:
                return True
        for call in calls:
            if memory.call_may_access(call, addr):
                return True
        return False

    return may_write
