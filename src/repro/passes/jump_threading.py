"""Jump threading.

When a block's conditional branch is decided by a phi whose incoming
value on some edge is a constant, that predecessor can jump straight
to the decided target, bypassing the block.  Threading duplicates
control flow and — exactly as the paper's Listing 9d recounts for
GCC — can also *create* IR shapes that later passes fail to clean up,
so it doubles as a realistic regression lever.
"""

from __future__ import annotations

from ..compilers.config import PipelineConfig
from ..ir import instructions as ins
from ..ir.function import Block, IRFunction, Module
from ..ir.values import Constant, NullPtr, Value
from ..lang.semantics import eval_binop


def thread_jumps(
    func: IRFunction, module: Module, config: PipelineConfig | None = None
) -> bool:
    config = config or PipelineConfig()
    if not config.jump_threading:
        return False
    changed = False
    for _ in range(4):
        if not _one_round(func):
            break
        changed = True
        func.drop_unreachable_blocks()
    return changed


def _one_round(func: IRFunction) -> bool:
    preds = func.predecessors()
    external_users = _external_use_map(func)
    for block in list(func.blocks):
        term = block.terminator
        if not isinstance(term, ins.Br):
            continue
        decider = _decider(block, term)
        if decider is None:
            continue
        phi, translate = decider
        # Threading bypasses the block, so it must have no effects
        # beyond phis and the condition computation...
        if not _threadable_body(block, term):
            continue
        # ...and nothing it defines may be used elsewhere: bypassing
        # would break dominance for those uses.  (Real jump threaders
        # duplicate the block instead; we keep the conservative form.)
        if any(external_users.get(id(i)) for i in block.instrs):
            continue
        for pred in list(preds[block]):
            if len(phi.incomings) < 2:
                break
            try:
                incoming = phi.incoming_for(pred)
            except KeyError:
                continue
            if not isinstance(incoming, (Constant, NullPtr)):
                continue
            outcome = translate(incoming)
            if outcome is None:
                continue
            target = term.if_true if outcome else term.if_false
            if target is block or _already_pred(func, pred, target):
                continue
            # Compute what the target's phis would receive along the
            # new edge; bail if any value lives in the bypassed block.
            blocked = False
            new_incomings = []
            for tphi in target.phis():
                value = tphi.incoming_for(block)
                if isinstance(value, ins.Phi) and value.block is block:
                    value = value.incoming_for(pred)
                # After translation the value must dominate the new
                # edge; accept only the trivially-safe cases (constants
                # and values defined in the predecessor itself).
                if isinstance(value, ins.Instr) and value.block is not pred:
                    blocked = True
                    break
                new_incomings.append((tphi, value))
            if blocked:
                continue
            pterm = pred.terminator
            assert pterm is not None
            ins.retarget(pterm, block, target)
            if isinstance(pterm, ins.Br) and pterm.if_true is pterm.if_false:
                pred.replace_terminator(ins.Jmp(pterm.if_true))
            for tphi, value in new_incomings:
                tphi.incomings.append((pred, value))
            for bphi in block.phis():
                bphi.remove_incoming(pred)
            return True
    return False


def _external_use_map(func: IRFunction) -> dict[int, bool]:
    """instr id -> True when some use lives outside its own block
    (phi incomings count as uses at the *edge*, i.e. external when the
    incoming block differs from the def block)."""
    external: dict[int, bool] = {}
    for block in func.blocks:
        for instr in block.instrs:
            if isinstance(instr, ins.Phi):
                for from_block, value in instr.incomings:
                    if isinstance(value, ins.Instr) and value.block is not from_block:
                        if value.block is not None and from_block is not value.block:
                            external[id(value)] = True
                continue
            for op in instr.operands():
                if isinstance(op, ins.Instr) and op.block is not block:
                    external[id(op)] = True
    return external


def _decider(block: Block, term: ins.Br):
    """Find (phi, translate) where translate maps a constant incoming
    value to the branch outcome (True/False), or None."""
    cond = term.cond
    if isinstance(cond, ins.Phi) and cond.block is block:
        return cond, lambda v: (v.value != 0) if isinstance(v, Constant) else False
    if (
        isinstance(cond, ins.ICmp)
        and cond.block is block
        and isinstance(cond.rhs, Constant)
        and isinstance(cond.lhs, ins.Phi)
        and cond.lhs.block is block
    ):
        icmp = cond

        def translate(v: Value):
            if not isinstance(v, Constant):
                return None
            return bool(
                eval_binop(icmp.op, v.value, icmp.rhs.value, icmp.operand_ty)
            )

        return cond.lhs, translate
    return None


def _threadable_body(block: Block, term: ins.Br) -> bool:
    for instr in block.instrs:
        if isinstance(instr, ins.Phi) or instr is term:
            continue
        if instr is term.cond:
            continue
        return False
    return True


def _already_pred(func: IRFunction, pred: Block, target: Block) -> bool:
    return any(s is target for s in pred.successors())
