"""Memory constant propagation ("memcp").

A forward must-constant dataflow over memory cells: after
``g = 5;`` every path-reachable load of ``g`` with no intervening
may-write yields 5 — across basic blocks, with intersection at joins.
This is the workhorse that lets a compiler evaluate Csmith-style
closed-form programs; both families run it (real GCC and LLVM are both
strong here — their *differences* live in the global-value analysis,
see ``globalopt``).

Tracked locations are cells ``(object, constant index)`` of
non-escaping objects (internal globals whose address never escapes,
and local arrays).  Calls kill according to what the callee could
write: a defined callee may store to any global; an opaque callee can
touch nothing that doesn't escape.

When ``config.global_fold_mode == 'flow'`` the entry state of ``main``
is seeded with the initializers of internal globals — sound in MiniC
(static initialization happens before ``main``, and nothing else runs
first) and exactly the "flow-sensitive global analysis" the paper
points out GCC lacks; the pre-3.8 llvmlike versions enable it.
"""

from __future__ import annotations

from ..analysis.alias import MemorySSAish, trace_root
from ..compilers.config import PipelineConfig
from ..ir import instructions as ins
from ..ir.function import Block, IRFunction, Module
from ..ir.values import Constant, Value, const_int
from ..lang.types import IntType
from .utils import erase_instructions, replace_all_uses

_KILL_OBJECT = object()


def propagate_memory_constants(
    func: IRFunction, module: Module, config: PipelineConfig | None = None
) -> bool:
    config = config or PipelineConfig()
    memory = MemorySSAish(module, config.alias_max_objects)
    func.drop_unreachable_blocks()

    tracked_globals = {
        name
        for name, info in module.globals.items()
        if info.static
        and not memory.global_escaped(name)
        and not info.is_pointer_slot
    }

    def loc_of(addr: Value):
        """A tracked cell key, ('obj', key) for a whole-object kill,
        or None when the address cannot touch tracked state."""
        root = trace_root(addr)
        if root.kind == "global":
            if root.key not in tracked_globals:
                return None
            length = module.globals[root.key].length
            obj = ("g", root.key)
        elif root.kind == "alloca":
            if memory.escaped(root):
                return None
            length = max(root.length, 1)
            obj = ("a", root.key)
        else:
            return None  # unknown pointers cannot reach non-escaped objects
        if root.offset is None:
            return (obj, _KILL_OBJECT)
        return (obj, root.offset % length)

    entry_seed: dict = {}
    if config.global_fold_mode == "flow" and func.name == "main":
        for name in tracked_globals:
            info = module.globals[name]
            for idx, cell in enumerate(info.initial_cells()):
                entry_seed[(("g", name), idx)] = int(cell)

    def transfer(state: dict, block: Block, rewrite: bool, out_repl: dict) -> dict:
        state = dict(state)
        for instr in block.instrs:
            if isinstance(instr, ins.Store):
                loc = loc_of(instr.address)
                if loc is None:
                    continue
                obj, idx = loc
                if idx is _KILL_OBJECT:
                    _kill_object(state, obj)
                elif isinstance(instr.value, Constant):
                    state[(obj, idx)] = instr.value.value
                else:
                    state.pop((obj, idx), None)
            elif isinstance(instr, ins.Load):
                loc = loc_of(instr.address)
                if loc is None or loc[1] is _KILL_OBJECT:
                    continue
                known = state.get(loc)
                if rewrite and known is not None and isinstance(instr.ty, IntType):
                    out_repl[instr] = const_int(known, instr.ty)
            elif isinstance(instr, ins.Call):
                if module.is_opaque(instr.callee):
                    continue  # cannot reach non-escaped objects
                # A defined callee may write any global directly.
                for key in list(state):
                    if key[0][0] == "g":
                        del state[key]
        return state

    # Forward worklist dataflow; meet = intersection on (loc, value).
    blocks = func.reverse_postorder()
    preds = func.predecessors()
    in_state: dict[int, dict] = {id(func.entry): dict(entry_seed)}
    out_state: dict[int, dict] = {}
    work = list(blocks)
    rounds = 0
    while work and rounds < 10_000:
        rounds += 1
        block = work.pop(0)
        if block is func.entry:
            current_in = dict(entry_seed)
        else:
            pred_outs = [out_state[id(p)] for p in preds[block] if id(p) in out_state]
            if not pred_outs:
                continue
            current_in = _intersect(pred_outs)
        in_state[id(block)] = current_in
        new_out = transfer(current_in, block, rewrite=False, out_repl={})
        if out_state.get(id(block)) != new_out:
            out_state[id(block)] = new_out
            for succ in block.successors():
                if succ not in work:
                    work.append(succ)

    replacements: dict[Value, Value] = {}
    for block in blocks:
        state = in_state.get(id(block))
        if state is None:
            continue
        transfer(state, block, rewrite=True, out_repl=replacements)
    if not replacements:
        return False
    replace_all_uses(func, replacements)
    erase_instructions(func, {id(i) for i in replacements})
    return True


def _kill_object(state: dict, obj) -> None:
    for key in list(state):
        if key[0] == obj:
            del state[key]


def _intersect(states: list[dict]) -> dict:
    first, *rest = states
    if not rest:
        return dict(first)
    out = {}
    for key, value in first.items():
        if all(other.get(key) == value for other in rest):
            out[key] = value
    return out
