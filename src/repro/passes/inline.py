"""Function inlining.

Bottom-up inlining with a size budget.  Static functions with a single
call site get a budget bonus (they disappear entirely afterwards —
GCC's ``-finline-functions-called-once``).  Functions on call-graph
cycles are never inlined.  Inlining is the gateway to interprocedural
constant propagation in this compiler, so its budget is a favourite
lever for paper-style regressions ("tighten inlining to control code
growth" costing DCE opportunities downstream).
"""

from __future__ import annotations

from ..compilers.config import PipelineConfig
from ..ir import instructions as ins
from ..ir.function import Block, IRFunction, Module
from ..ir.values import Value
from .utils import clone_region, function_size, replace_all_uses, split_block


def inline_functions(module: Module, config: PipelineConfig | None = None) -> bool:
    config = config or PipelineConfig()
    changed = False
    recursive = _functions_on_cycles(module)
    for _round in range(4):
        call_counts = _call_site_counts(module)
        round_changed = False
        for func in list(module.functions.values()):
            for call in _inlinable_calls(func, module, recursive, call_counts, config):
                if _inline_call(func, call, module):
                    round_changed = True
                    changed = True
                    break  # block structure changed; rescan the function
        if not round_changed:
            break
    _drop_dead_private_functions(module)
    return changed


def _functions_on_cycles(module: Module) -> set[str]:
    edges: dict[str, set[str]] = {name: set() for name in module.functions}
    for func in module.functions.values():
        for block in func.blocks:
            for instr in block.instrs:
                if isinstance(instr, ins.Call) and instr.callee in module.functions:
                    edges[func.name].add(instr.callee)

    on_cycle: set[str] = set()

    def reaches(start: str, goal: str, seen: set[str]) -> bool:
        if start == goal:
            return True
        for nxt in edges.get(start, ()):
            if nxt not in seen:
                seen.add(nxt)
                if reaches(nxt, goal, seen):
                    return True
        return False

    for name in module.functions:
        if any(reaches(callee, name, {callee}) for callee in edges[name]):
            on_cycle.add(name)
        if name in edges[name]:
            on_cycle.add(name)
    return on_cycle


def _call_site_counts(module: Module) -> dict[str, int]:
    counts: dict[str, int] = {}
    for func in module.functions.values():
        for block in func.blocks:
            for instr in block.instrs:
                if isinstance(instr, ins.Call):
                    counts[instr.callee] = counts.get(instr.callee, 0) + 1
    return counts


def _inlinable_calls(
    func: IRFunction,
    module: Module,
    recursive: set[str],
    call_counts: dict[str, int],
    config: PipelineConfig,
) -> list[ins.Call]:
    out = []
    for block in func.blocks:
        for instr in block.instrs:
            if not isinstance(instr, ins.Call):
                continue
            callee = module.functions.get(instr.callee)
            if callee is None or instr.callee == func.name or instr.callee in recursive:
                continue
            if callee.name == "main":
                continue
            budget = config.inline_budget
            if callee.static and call_counts.get(callee.name, 0) == 1:
                budget += config.inline_single_call_bonus
            if function_size(callee) <= budget:
                out.append(instr)
    return out


def _inline_call(func: IRFunction, call: ins.Call, module: Module) -> bool:
    callee = module.functions[call.callee]
    block = call.block
    if block is None or block not in func.blocks:
        return False
    index = block.instrs.index(call)
    tail = split_block(func, block, index + 1, "ret")
    block.instrs.pop()  # remove the call itself (block is now open)
    call.block = None

    value_map: dict[Value, Value] = {
        param: arg for param, arg in zip(callee.params, call.args)
    }
    block_map = clone_region(func, callee.blocks, value_map, f"in.{callee.name}")
    entry_clone = block_map[id(callee.entry)]
    block.append(ins.Jmp(entry_clone))

    # Move cloned allocas into the caller's entry block.
    _hoist_allocas(func, block_map.values())

    # Rewire cloned returns to the continuation.
    returns: list[tuple[Block, Value | None]] = []
    for clone in block_map.values():
        term = clone.terminator
        if isinstance(term, ins.Ret):
            returns.append((clone, term.value))
            clone.replace_terminator(ins.Jmp(tail))

    if call.produces_value():
        from ..lang.types import IntType

        result: Value | None
        if len(returns) == 1:
            result = returns[0][1]
        elif returns:
            phi = ins.Phi(call.ty)
            for ret_block, value in returns:
                if value is None and isinstance(call.ty, IntType):
                    from ..ir.values import const_int

                    value = const_int(0, call.ty)
                phi.incomings.append((ret_block, value))
            tail.insert_phi(phi)
            result = phi
        else:
            result = None  # the callee never returns
        if result is not None:
            replace_all_uses(func, {call: result})

    func.drop_unreachable_blocks()
    return True


def _hoist_allocas(func: IRFunction, cloned_blocks) -> None:
    entry = func.entry
    for clone in cloned_blocks:
        if clone is entry:
            continue
        moved = [i for i in clone.instrs if isinstance(i, ins.Alloca)]
        if not moved:
            continue
        clone.instrs = [i for i in clone.instrs if not isinstance(i, ins.Alloca)]
        insert_at = 0
        for i, instr in enumerate(entry.instrs):
            if not isinstance(instr, ins.Alloca):
                insert_at = i
                break
        else:
            insert_at = len(entry.instrs)
        for alloca in moved:
            alloca.block = entry
            entry.instrs.insert(insert_at, alloca)
            insert_at += 1


def _drop_dead_private_functions(module: Module) -> None:
    """Remove static functions that no remaining call references."""
    while True:
        called: set[str] = set()
        for func in module.functions.values():
            for block in func.blocks:
                for instr in block.instrs:
                    if isinstance(instr, ins.Call):
                        called.add(instr.callee)
        dead = [
            name
            for name, func in module.functions.items()
            if func.static and name not in called and name != "main"
        ]
        if not dead:
            return
        for name in dead:
            del module.functions[name]
