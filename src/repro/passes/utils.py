"""Shared pass machinery: use replacement, instruction erasure, and
block cloning (used by the inliner, unroller, and unswitcher)."""

from __future__ import annotations

from ..ir import instructions as ins
from ..ir.function import Block, IRFunction
from ..ir.values import Value


def resolve_mapping(mapping: dict[Value, Value]) -> dict[Value, Value]:
    """Collapse chains a->b->c into a->c (cycles are broken arbitrarily)."""
    resolved: dict[Value, Value] = {}
    for key in mapping:
        target = mapping[key]
        seen = {id(key)}
        while target in mapping and id(target) not in seen:
            seen.add(id(target))
            target = mapping[target]
        resolved[key] = target
    return resolved


def replace_all_uses(func: IRFunction, mapping: dict[Value, Value]) -> bool:
    """Apply a value substitution across the whole function."""
    if not mapping:
        return False
    mapping = resolve_mapping(mapping)
    changed = False
    for block in func.blocks:
        for instr in block.instrs:
            if instr.replace_uses(mapping):
                changed = True
    return changed


def erase_instructions(func: IRFunction, dead: set[int]) -> int:
    """Remove instructions whose ids are in ``dead``; returns count."""
    removed = 0
    for block in func.blocks:
        kept = []
        for instr in block.instrs:
            if id(instr) in dead:
                instr.block = None
                removed += 1
            else:
                kept.append(instr)
        block.instrs = kept
    return removed


def clone_region(
    func: IRFunction,
    blocks: list[Block],
    value_map: dict[Value, Value],
    suffix: str,
) -> dict[int, Block]:
    """Clone ``blocks`` (with instructions) into ``func``.

    ``value_map`` seeds external substitutions (e.g. parameter ->
    argument for inlining) and is extended with old->new instruction
    mappings.  Branch targets and phi incoming blocks pointing inside
    the region are remapped; those pointing outside are preserved.

    Returns the old-block-id -> new-block map.
    """
    block_map: dict[int, Block] = {}
    for block in blocks:
        new_block = func.new_block(f"{block.label}.{suffix}")
        block_map[id(block)] = new_block

    cloned_phis: list[tuple[ins.Phi, ins.Phi]] = []
    for block in blocks:
        new_block = block_map[id(block)]
        for instr in block.instrs:
            clone = _clone_instr(instr, block_map)
            clone.block = new_block
            new_block.instrs.append(clone)
            # Seeded entries win: the unroller pre-maps header phis to
            # per-iteration values and the clone must honor that.
            value_map.setdefault(instr, clone)
            if isinstance(instr, ins.Phi):
                cloned_phis.append((instr, clone))

    # Second pass: remap operands through value_map.
    mapping = value_map
    for block in blocks:
        new_block = block_map[id(block)]
        for instr in new_block.instrs:
            instr.replace_uses(mapping)
    # Phi incoming blocks inside the region move to their clones.
    for _, clone in cloned_phis:
        clone.incomings = [
            (block_map.get(id(b), b), v) for b, v in clone.incomings
        ]
    return block_map


def _clone_instr(instr: ins.Instr, block_map: dict[int, Block]) -> ins.Instr:
    def bmap(block: Block) -> Block:
        return block_map.get(id(block), block)

    if isinstance(instr, ins.Alloca):
        return ins.Alloca(instr.var_name, instr.element, instr.length, instr.is_pointer_slot)
    if isinstance(instr, ins.Gep):
        return ins.Gep(instr.base, instr.index)
    if isinstance(instr, ins.LoadPtr):
        return ins.LoadPtr(instr.address, instr.pointee)
    if isinstance(instr, ins.Load):
        return ins.Load(instr.address)
    if isinstance(instr, ins.Store):
        return ins.Store(instr.address, instr.value)
    if isinstance(instr, ins.BinOp):
        return ins.BinOp(instr.op, instr.lhs, instr.rhs, instr.ty)
    if isinstance(instr, ins.ICmp):
        return ins.ICmp(instr.op, instr.lhs, instr.rhs, instr.operand_ty)
    if isinstance(instr, ins.PCmp):
        return ins.PCmp(instr.op, instr.lhs, instr.rhs)
    if isinstance(instr, ins.Cast):
        return ins.Cast(instr.value, instr.ty)
    if isinstance(instr, ins.Select):
        return ins.Select(instr.cond, instr.if_true, instr.if_false, instr.ty)
    if isinstance(instr, ins.Call):
        return ins.Call(instr.callee, list(instr.args), instr.ty)
    if isinstance(instr, ins.Phi):
        return ins.Phi(instr.ty, list(instr.incomings))
    if isinstance(instr, ins.Br):
        return ins.Br(instr.cond, bmap(instr.if_true), bmap(instr.if_false))
    if isinstance(instr, ins.Jmp):
        return ins.Jmp(bmap(instr.target))
    if isinstance(instr, ins.Ret):
        return ins.Ret(instr.value)
    if isinstance(instr, ins.Unreachable):
        return ins.Unreachable()
    raise TypeError(f"cannot clone {type(instr).__name__}")


def fix_external_phis(
    func: IRFunction,
    region_ids: set[int],
    block_map: dict[int, Block],
    value_map: dict[Value, Value],
) -> None:
    """After cloning a region that stays reachable alongside the
    original (unswitch/threading), blocks *outside* the region with a
    phi incoming from a region block need a second incoming from the
    clone, carrying the cloned value."""
    for block in func.blocks:
        if id(block) in region_ids or id(block) in {id(b) for b in block_map.values()}:
            continue
        for phi in block.phis():
            extra = []
            for pred, value in phi.incomings:
                clone_block = block_map.get(id(pred))
                if clone_block is not None:
                    extra.append((clone_block, value_map.get(value, value)))
            phi.incomings.extend(extra)


def function_size(func: IRFunction) -> int:
    """Instruction count (the cost-model currency of this compiler)."""
    return sum(len(b.instrs) for b in func.blocks)


def split_block(func: IRFunction, block: Block, index: int, suffix: str) -> Block:
    """Split ``block`` before instruction ``index``; the tail moves to a
    new block which inherits the terminator.  Phis in successors are
    retargeted to the tail block.  Returns the tail block."""
    tail = func.new_block(f"{block.label}.{suffix}")
    tail.instrs = block.instrs[index:]
    for instr in tail.instrs:
        instr.block = tail
    block.instrs = block.instrs[:index]
    for succ in tail.successors():
        for phi in succ.phis():
            phi.incomings = [
                (tail if b is block else b, v) for b, v in phi.incomings
            ]
    return tail
