"""Loop unswitching.

Hoists a loop-invariant conditional out of a loop by *versioning* it:
a guard block branches on the invariant condition into two loop
copies, each with that branch folded.  Modelled after LLVM's
SimpleLoopUnswitch; the ``unswitch`` config knob is how the paper-style
O3 regression (Listings 7/8a) enters our llvmlike pipeline — the code
growth interacts with the unroller's and inliner's size limits.
"""

from __future__ import annotations

from ..analysis.loops import Loop, find_loops, is_invariant, loop_preheader
from ..compilers.config import PipelineConfig
from ..ir import instructions as ins
from ..ir.dominators import DominatorTree
from ..ir.function import Block, IRFunction, Module
from ..ir.values import Value
from .utils import clone_region, fix_external_phis


def unswitch_loops(
    func: IRFunction, module: Module, config: PipelineConfig | None = None
) -> bool:
    config = config or PipelineConfig()
    if not config.unswitch:
        return False
    changed = False
    for _ in range(4):  # bounded versioning rounds
        loops = find_loops(func, DominatorTree(func))
        for loop in loops:
            if _try_unswitch(func, loop, config):
                changed = True
                break
        else:
            break
    return changed


def _try_unswitch(func: IRFunction, loop: Loop, config: PipelineConfig) -> bool:
    if loop.size() > config.unswitch_max_body:
        return False
    if getattr(loop.header, "unswitched", False):
        return False
    preheader = loop_preheader(loop, func)
    if preheader is None:
        return False
    inside = loop.block_ids()
    candidate: ins.Br | None = None
    for block in loop.blocks:
        term = block.terminator
        if (
            isinstance(term, ins.Br)
            and id(term.if_true) in inside
            and id(term.if_false) in inside
            and term.if_true is not term.if_false
            and is_invariant(term.cond, loop)
            and not term.cond.is_constant()
        ):
            candidate = term
            break
    if candidate is None:
        return False

    # Clone the loop; original becomes the 'true' version.
    value_map: dict[Value, Value] = {}
    block_map = clone_region(func, loop.blocks, value_map, "unsw")
    fix_external_phis(func, inside, block_map, value_map)

    cloned_candidate = value_map[candidate]
    assert isinstance(cloned_candidate, ins.Br)
    true_target = candidate.if_true
    false_target_clone = cloned_candidate.if_false
    _fold_branch(candidate.block, candidate, true_target)
    _fold_branch(cloned_candidate.block, cloned_candidate, false_target_clone)

    guard = func.new_block(f"{loop.header.label}.guard")
    header_clone = block_map[id(loop.header)]
    guard.append(ins.Br(candidate.cond, loop.header, header_clone))
    pre_term = preheader.terminator
    assert pre_term is not None
    ins.retarget(pre_term, loop.header, guard)
    for header in (loop.header, header_clone):
        for phi in header.phis():
            phi.incomings = [
                (guard if b is preheader else b, v) for b, v in phi.incomings
            ]
    loop.header.unswitched = True  # type: ignore[attr-defined]
    header_clone.unswitched = True  # type: ignore[attr-defined]
    func.drop_unreachable_blocks()
    return True


def _fold_branch(block: Block | None, term: ins.Br, target: Block) -> None:
    assert block is not None
    dropped = term.if_false if target is term.if_true else term.if_true
    if dropped is not target:
        for phi in dropped.phis():
            phi.remove_incoming(block)
    block.replace_terminator(ins.Jmp(target))
