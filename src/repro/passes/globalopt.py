"""Global value analysis ("globalopt").

Folds loads of internal (static) globals whose value is provably
known.  The precision is the main family differentiator from the
paper (§2, Listings 4a/6a and the rediscovered array bug 9f):

* ``readonly`` (GCC-like): fold only globals that are **never
  stored to** anywhere in the module.  A global with any store —
  even one that rewrites the initial value — is opaque; this is the
  flow-insensitivity the paper blames for GCC missing
  ``static int a = 0; if (a) ...; a = 0;``.
* ``stored-init`` (LLVM-like): additionally fold when **every store
  writes the initializer value back** (so the value is invariant).
  The ``a = 1`` variant (Listing 6a) still defeats it.
* ``flow`` (the paper's hypothetical fix, used in ablations): like
  ``stored-init``, and additionally forwards a dominating constant
  store to loads it reaches with no intervening may-write (a cheap
  flow-sensitive refinement).

Arrays: a never-written internal array folds (a) loads with constant
indices always, and (b) loads with *any* index when every cell holds
the same constant — the latter only under
``config.fold_uniform_const_arrays`` (GCC misses it: bug #99419).

Also deletes stores to internal globals that are never read anywhere
(dead global elimination).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.alias import MemorySSAish, trace_root
from ..compilers.config import PipelineConfig
from ..ir import instructions as ins
from ..ir.function import IRFunction, Module
from ..ir.values import Constant, GlobalRef, NullPtr, Value, const_int
from ..lang.types import PointerType
from .utils import erase_instructions, replace_all_uses


@dataclass
class _GlobalSummary:
    loads: list[tuple[IRFunction, ins.Instr]] = field(default_factory=list)
    stores: list[tuple[IRFunction, ins.Store]] = field(default_factory=list)


def optimize_globals(module: Module, config: PipelineConfig | None = None) -> bool:
    config = config or PipelineConfig()
    memory = MemorySSAish(module, config.alias_max_objects)
    summaries: dict[str, _GlobalSummary] = {}

    for func in module.functions.values():
        for block in func.blocks:
            for instr in block.instrs:
                if isinstance(instr, (ins.Load, ins.LoadPtr)):
                    root = trace_root(instr.address)
                    if root.kind == "global":
                        summaries.setdefault(root.key, _GlobalSummary()).loads.append(
                            (func, instr)
                        )
                elif isinstance(instr, ins.Store):
                    root = trace_root(instr.address)
                    if root.kind == "global":
                        summaries.setdefault(root.key, _GlobalSummary()).stores.append(
                            (func, instr)
                        )

    changed = False
    per_func_replacements: dict[str, dict[Value, Value]] = {}
    per_func_dead: dict[str, set[int]] = {}

    for name, info in module.globals.items():
        if not info.static or memory.global_escaped(name):
            continue
        summary = summaries.get(name, _GlobalSummary())
        known = _known_value(info, summary, module, config)
        if known is not None:
            for func, load in summary.loads:
                replacement = _materialize(load, known, module, info)
                if replacement is not None:
                    per_func_replacements.setdefault(func.name, {})[load] = replacement
                    per_func_dead.setdefault(func.name, set()).add(id(load))
        elif info.length > 1 and not summary.stores:
            # Read-only array without a uniform value: fold loads whose
            # index is a compile-time constant.
            cells = info.initial_cells()
            for func, load in summary.loads:
                root = trace_root(load.address)
                if root.offset is None:
                    continue
                value = cells[root.offset % info.length]
                const = const_int(int(value), info.element)
                per_func_replacements.setdefault(func.name, {})[load] = const
                per_func_dead.setdefault(func.name, set()).add(id(load))
        if not summary.loads and summary.stores:
            # No load anywhere: the global's content is unobservable.
            for func, store in summary.stores:
                per_func_dead.setdefault(func.name, set()).add(id(store))

    for fname, replacements in per_func_replacements.items():
        func = module.functions[fname]
        if replace_all_uses(func, replacements):
            changed = True
    for fname, dead in per_func_dead.items():
        func = module.functions[fname]
        if erase_instructions(func, dead):
            changed = True

    # Flow-sensitive refinement ('flow' mode) lives in the memcp pass,
    # which seeds main's entry state with static initializers.
    return changed


def _known_value(info, summary: _GlobalSummary, module: Module, config: PipelineConfig):
    """The invariant content of the global, or None.

    Returns an int (scalar), ('ptr', sym, idx) / ('null',) for pointer
    slots, or ('uniform', int) for arrays with one repeated value.
    """
    cells = info.initial_cells()
    if info.is_pointer_slot:
        if summary.stores:
            return None  # stored pointer values are not tracked
        init = cells[0]
        if init is None:
            return ("null",)
        return ("ptr", init[1], init[2])
    if info.length == 1:
        init = int(cells[0])
        if not summary.stores:
            return init
        if config.global_fold_mode in ("stored-init", "flow"):
            if all(
                isinstance(s.value, Constant) and s.value.value == init
                for _, s in summary.stores
            ):
                return init
        return None
    # Array: only foldable-for-any-index when uniform and never stored.
    if summary.stores:
        return None
    first = int(cells[0])
    if all(int(c) == first for c in cells):
        if config.fold_uniform_const_arrays:
            return ("uniform", first)
    return None


def _materialize(load: ins.Instr, known, module: Module, info) -> Value | None:
    """Build the replacement value for a folded load."""
    if isinstance(known, int):
        return const_int(known, info.element)
    if known[0] == "uniform":
        return const_int(known[1], info.element)
    if known[0] == "null":
        assert isinstance(load.ty, PointerType)
        return NullPtr(load.ty)
    if known[0] == "ptr":
        target = module.globals.get(known[1])
        if target is None:
            return None
        ref = module.global_ref(known[1])
        if known[2] == 0:
            return ref
        gep = ins.Gep(ref, const_int(known[2], _index_ty()))
        block = load.block
        assert block is not None
        gep.block = block
        block.instrs.insert(block.instrs.index(load), gep)
        return gep
    return None


def _index_ty():
    from ..lang.types import LONG

    return LONG
