"""Pass registry: names → module-level pass callables.

Every pass is normalized to the signature ``(module, config) -> bool``
so pipelines are plain name lists (see
:data:`repro.compilers.config.FULL_PIPELINE`).
"""

from __future__ import annotations

from typing import Callable

from ..compilers.config import PipelineConfig
from ..ir.function import Module
from .dce import eliminate_dead_code
from .dse import eliminate_dead_stores
from .globalopt import optimize_globals
from .gvn import global_value_numbering
from .inline import inline_functions
from .instcombine import combine_instructions
from .cprop import propagate_conditions
from .jump_threading import thread_jumps
from .licm import hoist_loop_invariants
from .loop_unroll import unroll_loops
from .loop_unswitch import unswitch_loops
from .mem2reg import promote_memory_to_registers
from .memcp import propagate_memory_constants
from .sccp import sparse_conditional_constant_propagation
from .simplify_cfg import simplify_cfg
from .vectorize import vectorize_loops
from .vrp import propagate_value_ranges
from ..testing.chaos import chaos_pass

ModulePassFn = Callable[[Module, PipelineConfig], bool]


def _per_function(fn) -> ModulePassFn:
    def run(module: Module, config: PipelineConfig) -> bool:
        changed = False
        for func in list(module.functions.values()):
            changed |= fn(func, module, config)
        return changed

    return run


def _no_config(fn) -> ModulePassFn:
    def run(module: Module, config: PipelineConfig) -> bool:
        changed = False
        for func in list(module.functions.values()):
            changed |= fn(func, module)
        return changed

    return run


PASS_REGISTRY: dict[str, ModulePassFn] = {
    "simplify-cfg": _no_config(simplify_cfg),
    "mem2reg": _no_config(promote_memory_to_registers),
    "sccp": _per_function(sparse_conditional_constant_propagation),
    "instcombine": _per_function(combine_instructions),
    "gvn": _per_function(global_value_numbering),
    "memcp": _per_function(propagate_memory_constants),
    "dse": _per_function(eliminate_dead_stores),
    "adce": _no_config(eliminate_dead_code),
    "inline": lambda module, config: inline_functions(module, config),
    "globalopt": lambda module, config: optimize_globals(module, config),
    "unroll": _per_function(unroll_loops),
    "unswitch": _per_function(unswitch_loops),
    "vectorize": _per_function(vectorize_loops),
    "vrp": _per_function(propagate_value_ranges),
    "jump-threading": _per_function(thread_jumps),
    "cprop": _per_function(propagate_conditions),
    "licm": _per_function(hoist_loop_invariants),
    # a no-op unless a chaos FaultPlan targets it; never part of any
    # family pipeline (resilience testing only)
    "chaos": chaos_pass,
}


def available_passes() -> list[str]:
    return sorted(PASS_REGISTRY)
