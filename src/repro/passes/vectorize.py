"""Loop "vectorization" (cost-model model).

A faithful SIMD code generator is out of scope for marker-liveness
experiments, but the *interaction* the paper documents matters: GCC at
-O3 vectorizes small counted memory loops, rewriting their index
arithmetic into ``unsigned long`` vector-pointer form, which blocks the
constant folding that -O1 performed (paper Listing 9e, bug #99776).

We model exactly that interference: a loop the vectorizer claims is
tagged ``no_unroll`` (the analogue of LLVM's ``isvectorized`` loop
metadata / GCC's internal flag) and the unroller then refuses it, so
per-iteration constants never materialize.  The selection heuristic
mirrors the real one: counted loops that store to memory.
"""

from __future__ import annotations

from ..analysis.loops import find_loops, loop_preheader
from ..compilers.config import PipelineConfig
from ..ir import instructions as ins
from ..ir.dominators import DominatorTree
from ..ir.function import IRFunction, Module
from ..ir.values import Constant


def vectorize_loops(
    func: IRFunction, module: Module, config: PipelineConfig | None = None
) -> bool:
    config = config or PipelineConfig()
    if not config.vectorize:
        return False
    changed = False
    for loop in find_loops(func, DominatorTree(func)):
        if getattr(loop.header, "no_unroll", False):
            continue
        # Cost model: a counted loop with at least ``vectorize_min_trip``
        # iterations that stores through a gep — the vectorizer's bread
        # and butter.  (Shorter loops aren't worth a vector prologue.)
        from .loop_unroll import analyze_counted_loop

        analysis = analyze_counted_loop(func, loop, 1024)
        if analysis is None:
            continue
        if analysis.trip < config.vectorize_min_trip:
            continue
        stores = any(
            isinstance(i, ins.Store) and isinstance(i.address, ins.Gep)
            for b in loop.blocks
            for i in b.instrs
        )
        if stores:
            loop.header.no_unroll = True  # type: ignore[attr-defined]
            changed = True
    return changed
