"""Conditional constant propagation over branch implications
("cprop", modelled on GCC's DOM pass / LLVM's CorrelatedValuePropagation).

When a block is reached only through the true edge of ``x == C``, every
use of ``x`` dominated by that edge may be replaced with ``C``;
likewise the false edge of ``x != C``.  This catches the redundant
recheck shapes that pure SCCP cannot (its lattice has no per-edge
refinement):

    if (x == 5) {
        if (x != 5) { dead(); }   /* folds here */
    }
"""

from __future__ import annotations

from ..compilers.config import PipelineConfig
from ..ir import instructions as ins
from ..ir.dominators import DominatorTree
from ..ir.function import Block, IRFunction, Module
from ..ir.values import Constant, Value, const_int


def propagate_conditions(
    func: IRFunction, module: Module, config: PipelineConfig | None = None
) -> bool:
    func.drop_unreachable_blocks()
    dom = DominatorTree(func)
    preds = func.predecessors()

    #: (refined value, constant, root block) facts per implication edge
    facts: list[tuple[Value, Constant, Block]] = []
    for block in func.blocks:
        term = block.terminator
        if not isinstance(term, ins.Br):
            continue
        cond = term.cond
        if not isinstance(cond, ins.ICmp):
            continue
        implied: tuple[Value, Constant, Block] | None = None
        if isinstance(cond.rhs, Constant) and not isinstance(cond.lhs, Constant):
            if cond.op == "==":
                implied = (cond.lhs, cond.rhs, term.if_true)
            elif cond.op == "!=":
                implied = (cond.lhs, cond.rhs, term.if_false)
        elif isinstance(cond.lhs, Constant) and not isinstance(cond.rhs, Constant):
            if cond.op == "==":
                implied = (cond.rhs, cond.lhs, term.if_true)
            elif cond.op == "!=":
                implied = (cond.rhs, cond.lhs, term.if_false)
        if implied is None:
            continue
        value, constant, target = implied
        # The refinement holds in `target` only if the edge is its sole
        # entry; then it holds in everything `target` dominates.
        if len(preds[target]) != 1 or target is block:
            continue
        facts.append((value, constant, target))

    if not facts:
        return False

    changed = False
    for value, constant, root in facts:
        wrapped = _as_type(constant, value)
        if wrapped is None:
            continue
        for block in _dominated_by(dom, root):
            for instr in block.instrs:
                if isinstance(instr, ins.Phi):
                    # Only incomings flowing from dominated blocks may
                    # be refined.
                    new_incomings = []
                    for from_block, v in instr.incomings:
                        if v is value and dom.dominates(root, from_block):
                            new_incomings.append((from_block, wrapped))
                            changed = True
                        else:
                            new_incomings.append((from_block, v))
                    instr.incomings = new_incomings
                    continue
                ops = instr.operands()
                if any(op is value for op in ops):
                    instr.set_operands([wrapped if op is value else op for op in ops])
                    changed = True
    return changed


def _as_type(constant: Constant, value: Value) -> Constant | None:
    """The constant re-typed to the refined value's type (the compare
    happened in a common type; the value's own type can be narrower,
    in which case equality pins the value only if it round-trips)."""
    from ..lang.types import IntType
    from ..lang.semantics import wrap

    ty = value.ty
    if not isinstance(ty, IntType):
        return None
    if constant.ty == ty:
        return constant
    narrowed = wrap(constant.value, ty)
    # x (of ty) == C in the wide type requires convert(x) == C; that
    # pins x itself only when C is representable in ty.
    widened_back = wrap(narrowed, constant.ty)
    if widened_back != constant.value:
        return None
    # Also the conversion ty -> compare type must be value-preserving
    # (lossless extension), otherwise several x values map to C.
    if constant.ty.width < ty.width:
        return None
    if constant.ty.width > ty.width and constant.ty.signed != ty.signed and not ty.signed:
        pass  # zero-extension: injective, fine
    return const_int(narrowed, ty)


def _dominated_by(dom: DominatorTree, root: Block):
    stack = [root]
    while stack:
        block = stack.pop()
        yield block
        stack.extend(dom.children(block))
