"""Global value numbering + load CSE + store-to-load forwarding.

Pure expressions are numbered over a dominator-tree walk with scoped
hash tables (classic dominator-based GVN).  Memory is handled
block-locally: within a block, a load can reuse an earlier load of a
must-alias address, or the value of an earlier store to it, as long as
no intervening instruction may write that cell.  Calls kill forwarded
values unless the config says the callee cannot touch the address
(``gvn_across_calls`` — the knob a paper-style regression commit
flips off to trade precision for compile time).
"""

from __future__ import annotations

from ..analysis.alias import AliasResult, MemorySSAish
from ..compilers.config import PipelineConfig
from ..ir import instructions as ins
from ..ir.dominators import DominatorTree
from ..ir.function import Block, IRFunction, Module
from ..ir.values import Constant, GlobalRef, NullPtr, Value
from .utils import erase_instructions, replace_all_uses


def global_value_numbering(
    func: IRFunction, module: Module, config: PipelineConfig | None = None
) -> bool:
    config = config or PipelineConfig()
    func.drop_unreachable_blocks()
    changed = _number_pure_values(func)
    memory = MemorySSAish(module, config.alias_max_objects)
    for block in func.blocks:
        changed |= _forward_memory(block, func, module, memory, config)
    return changed


# --------------------------------------------------------------------------
# Pure-expression GVN
# --------------------------------------------------------------------------


def _number_pure_values(func: IRFunction) -> bool:
    dom = DominatorTree(func)
    replacements: dict[Value, Value] = {}
    dead: set[int] = set()

    def key_for(instr: ins.Instr, canon: dict[int, Value]) -> tuple | None:
        def vid(value: Value):
            value = replacements.get(value, value)
            if isinstance(value, Constant):
                return ("c", value.value, value.ty)
            if isinstance(value, NullPtr):
                return ("null",)
            if isinstance(value, GlobalRef):
                return ("g", value.name)
            return ("v", id(value))

        if isinstance(instr, ins.BinOp):
            a, b = vid(instr.lhs), vid(instr.rhs)
            from ..lang.semantics import is_commutative

            if is_commutative(instr.op) and b < a:
                a, b = b, a
            return ("binop", instr.op, instr.ty, a, b)
        if isinstance(instr, ins.ICmp):
            return ("icmp", instr.op, instr.operand_ty, vid(instr.lhs), vid(instr.rhs))
        if isinstance(instr, ins.PCmp):
            return ("pcmp", instr.op, vid(instr.lhs), vid(instr.rhs))
        if isinstance(instr, ins.Cast):
            return ("cast", instr.ty, vid(instr.value))
        if isinstance(instr, ins.Gep):
            return ("gep", vid(instr.base), vid(instr.index))
        if isinstance(instr, ins.Select):
            return ("select", vid(instr.cond), vid(instr.if_true), vid(instr.if_false))
        return None

    # Scoped table via dominator-tree DFS with undo log.
    table: dict[tuple, Value] = {}
    stack: list[tuple[Block, list[tuple] | None]] = [(func.entry, None)]
    undo_stack: list[list[tuple]] = []
    while stack:
        block, undo = stack.pop()
        if undo is not None:  # post-visit marker
            for key in undo:
                table.pop(key, None)
            continue
        added: list[tuple] = []
        stack.append((block, added))
        for instr in block.instrs:
            key = key_for(instr, {})
            if key is None:
                continue
            existing = table.get(key)
            if existing is not None:
                replacements[instr] = existing
                dead.add(id(instr))
            else:
                table[key] = instr
                added.append(key)
    if not replacements:
        return False
    replace_all_uses(func, replacements)
    erase_instructions(func, dead)
    return True


# --------------------------------------------------------------------------
# Block-local memory forwarding
# --------------------------------------------------------------------------


def _forward_memory(
    block: Block,
    func: IRFunction,
    module: Module,
    memory: MemorySSAish,
    config: PipelineConfig,
) -> bool:
    #: list of (address value, stored/loaded value, came_from_store)
    available: list[tuple[Value, Value, bool]] = []
    replacements: dict[Value, Value] = {}
    dead: set[int] = set()

    for instr in block.instrs:
        if isinstance(instr, (ins.Load, ins.LoadPtr)):
            addr = instr.address
            forwarded = None
            for known_addr, value, _ in reversed(available):
                res = memory.alias(addr, known_addr)
                if res is AliasResult.MUST and value.ty == instr.ty:
                    forwarded = value
                    break
                if res is not AliasResult.NO:
                    break  # a may-alias entry in between blocks forwarding
            if forwarded is not None:
                replacements[instr] = forwarded
                dead.add(id(instr))
            else:
                available.append((addr, instr, False))
        elif isinstance(instr, ins.Store):
            if config.store_forwarding:
                available = [
                    (a, v, s)
                    for a, v, s in available
                    if memory.alias(a, instr.address) is AliasResult.NO
                ]
                available.append((instr.address, instr.value, True))
            else:
                available = []
        elif isinstance(instr, ins.Call):
            if config.gvn_across_calls:
                available = [
                    (a, v, s)
                    for a, v, s in available
                    if not memory.call_may_access(instr, a)
                ]
            else:
                available = []

    if not replacements:
        return False
    replace_all_uses(func, replacements)
    erase_instructions(func, dead)
    return True
