"""Dead store elimination.

Two rules, both of which the paper's case studies exercise:

* **overwrite**: a store followed (in the same block) by another store
  to the same cell with no intervening may-read is dead;
* **dead at exit**: in ``main``, a store to a non-escaping internal
  (static) global or to a local object that is never read before the
  function returns is dead — this is exactly the ``movl $0, c(%rip)``
  GCC missed in paper Listing 1c / bug #99357.

Both are conservative with respect to calls: any call that may access
the cell counts as a read.
"""

from __future__ import annotations

from ..analysis.alias import AliasResult, MemorySSAish, trace_root
from ..compilers.config import PipelineConfig
from ..ir import instructions as ins
from ..ir.function import Block, IRFunction, Module
from .utils import erase_instructions


def eliminate_dead_stores(
    func: IRFunction, module: Module, config: PipelineConfig | None = None
) -> bool:
    config = config or PipelineConfig()
    if not config.dse:
        return False
    memory = MemorySSAish(module, config.alias_max_objects)
    dead: set[int] = set()
    for block in func.blocks:
        _scan_block(block, func, module, memory, config, dead)
    if not dead:
        return False
    erase_instructions(func, dead)
    return True


def _scan_block(
    block: Block,
    func: IRFunction,
    module: Module,
    memory: MemorySSAish,
    config: PipelineConfig,
    dead: set[int],
) -> None:
    #: addresses whose current content is known to be overwritten (or
    #: unobservable) before it can be read again.
    pending: list = []
    exit_dead = (
        config.dse_dead_at_exit
        and func.name == "main"
        and isinstance(block.terminator, ins.Ret)
    )
    for instr in reversed(block.instrs):
        if isinstance(instr, ins.Store):
            for addr in pending:
                if memory.alias(instr.address, addr) is AliasResult.MUST:
                    dead.add(id(instr))
                    break
            else:
                if exit_dead and _unobservable_after_exit(instr.address, module, memory):
                    dead.add(id(instr))
                    continue
                pending.append(instr.address)
            continue
        if isinstance(instr, (ins.Load, ins.LoadPtr)):
            pending = [
                a for a in pending if memory.alias(a, instr.address) is AliasResult.NO
            ]
            exit_dead = exit_dead and not _reads_exit_candidates(
                instr.address, module, memory
            )
        elif isinstance(instr, ins.Call):
            pending = [a for a in pending if not memory.call_may_access(instr, a)]
            if not module.is_opaque(instr.callee):
                exit_dead = False  # the callee may read statics directly
            else:
                exit_dead = exit_dead and not instr.args
        elif instr.is_terminator:
            continue


def _unobservable_after_exit(addr, module: Module, memory: MemorySSAish) -> bool:
    root = trace_root(addr)
    if root.kind == "alloca":
        return True  # locals die with the frame
    if root.kind == "global":
        info = module.globals.get(root.key)  # type: ignore[arg-type]
        return info is not None and info.static and not memory.global_escaped(root.key)
    return False


def _reads_exit_candidates(addr, module: Module, memory: MemorySSAish) -> bool:
    """Conservatively: could this load observe a store we would kill
    under the dead-at-exit rule?"""
    root = trace_root(addr)
    if root.kind == "unknown":
        return True
    return _unobservable_after_exit(addr, module, memory)
