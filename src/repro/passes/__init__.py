"""Optimization passes for the repro compiler framework."""

from .dce import eliminate_dead_code
from .dse import eliminate_dead_stores
from .globalopt import optimize_globals
from .gvn import global_value_numbering
from .inline import inline_functions
from .instcombine import combine_instructions
from .jump_threading import thread_jumps
from .loop_unroll import unroll_loops
from .loop_unswitch import unswitch_loops
from .mem2reg import promote_memory_to_registers
from .registry import PASS_REGISTRY, available_passes
from .sccp import sparse_conditional_constant_propagation
from .simplify_cfg import simplify_cfg
from .vectorize import vectorize_loops
from .vrp import propagate_value_ranges

__all__ = [
    "PASS_REGISTRY",
    "available_passes",
    "combine_instructions",
    "eliminate_dead_code",
    "eliminate_dead_stores",
    "global_value_numbering",
    "inline_functions",
    "optimize_globals",
    "promote_memory_to_registers",
    "propagate_value_ranges",
    "simplify_cfg",
    "sparse_conditional_constant_propagation",
    "thread_jumps",
    "unroll_loops",
    "unswitch_loops",
    "vectorize_loops",
]
