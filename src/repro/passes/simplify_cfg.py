"""CFG cleanup: fold constant/degenerate branches, merge straight-line
blocks, thread trivial forwarders, and simplify single-entry phis."""

from __future__ import annotations

from ..ir import instructions as ins
from ..ir.function import Block, IRFunction, Module
from ..ir.values import Constant, NullPtr, Value
from .utils import replace_all_uses


def simplify_cfg(func: IRFunction, module: Module | None = None) -> bool:
    changed = False
    while _one_round(func):
        changed = True
    return changed


def _one_round(func: IRFunction) -> bool:
    changed = False
    changed |= _fold_branches(func)
    changed |= func.drop_unreachable_blocks()
    changed |= _simplify_phis(func)
    changed |= _merge_straight_line(func)
    changed |= _thread_forwarders(func)
    return changed


def _fold_branches(func: IRFunction) -> bool:
    changed = False
    for block in list(func.blocks):
        term = block.terminator
        if not isinstance(term, ins.Br):
            continue
        target: Block | None = None
        dropped: Block | None = None
        if isinstance(term.cond, Constant):
            taken = term.cond.value != 0
            target = term.if_true if taken else term.if_false
            dropped = term.if_false if taken else term.if_true
        elif isinstance(term.cond, NullPtr):
            target, dropped = term.if_false, term.if_true
        elif term.if_true is term.if_false:
            target, dropped = term.if_true, None
        if target is None:
            continue
        if dropped is not None and dropped is not target:
            _remove_phi_edge(dropped, block)
        block.replace_terminator(ins.Jmp(target))
        changed = True
    return changed


def _remove_phi_edge(block: Block, pred: Block) -> None:
    for phi in block.phis():
        phi.remove_incoming(pred)


def _simplify_phis(func: IRFunction) -> bool:
    """Replace phis whose incomings are all identical (or self + one
    other value) with that value."""
    replacements: dict[Value, Value] = {}
    for block in func.blocks:
        for phi in block.phis():
            distinct = []
            for _, value in phi.incomings:
                if value is phi:
                    continue
                if not any(value is d for d in distinct):
                    distinct.append(value)
            if len(distinct) == 1:
                replacements[phi] = distinct[0]
    if not replacements:
        return False
    replace_all_uses(func, replacements)
    for block in func.blocks:
        block.instrs = [
            i for i in block.instrs if not (isinstance(i, ins.Phi) and i in replacements)
        ]
    return True


def _merge_straight_line(func: IRFunction) -> bool:
    """Merge B -> S when B's only successor is S and S's only pred is B."""
    changed = False
    preds = func.predecessors()
    removed: set[int] = set()
    for block in list(func.blocks):
        if id(block) in removed:
            continue
        term = block.terminator
        if not isinstance(term, ins.Jmp):
            continue
        succ = term.target
        if succ is block or succ is func.entry or id(succ) in removed:
            continue
        if len(preds[succ]) != 1:
            continue
        # Fold succ's phis (single incoming) then splice instructions.
        replacements: dict[Value, Value] = {}
        for phi in succ.phis():
            replacements[phi] = phi.incoming_for(block)
        if replacements:
            replace_all_uses(func, replacements)
        block.instrs.pop()  # the Jmp
        for instr in succ.instrs:
            if isinstance(instr, ins.Phi):
                continue
            instr.block = block
            block.instrs.append(instr)
        succ.instrs = []
        # Successor phis referencing succ now come from block.
        for nxt in block.successors():
            for phi in nxt.phis():
                phi.incomings = [
                    (block if b is succ else b, v) for b, v in phi.incomings
                ]
        func.remove_block(succ)
        removed.add(id(succ))
        changed = True
        preds = func.predecessors()
    return changed


def _thread_forwarders(func: IRFunction) -> bool:
    """Bypass empty blocks containing only ``jmp T`` (when safe)."""
    changed = False
    preds = func.predecessors()
    for block in list(func.blocks):
        if block is func.entry:
            continue
        if len(block.instrs) != 1:
            continue
        term = block.terminator
        if not isinstance(term, ins.Jmp):
            continue
        target = term.target
        if target is block:
            continue
        # Retargeting is only safe w.r.t. phis when the target has no
        # phis, or every pred of the forwarder is not already a pred of
        # the target (otherwise the phi would need two incomings).
        target_preds = {id(p) for p in preds[target]}
        blocked = False
        if target.phis():
            for pred in preds[block]:
                if id(pred) in target_preds:
                    blocked = True
                    break
        if blocked or not preds[block]:
            continue
        for pred in preds[block]:
            pterm = pred.terminator
            assert pterm is not None
            ins.retarget(pterm, block, target)
            for phi in target.phis():
                phi.incomings.append((pred, phi.incoming_for(block)))
        for phi in target.phis():
            phi.remove_incoming(block)
        func.remove_block(block)
        changed = True
        preds = func.predecessors()
    return changed
