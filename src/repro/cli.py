"""``dce-hunt`` command-line interface.

Subcommands mirror the paper's workflow:

* ``analyze FILE``      — instrument + differential-test one program
  (``--trace`` prints the span tree of the whole analysis)
* ``generate --seed N`` — print a random program (optionally instrumented)
* ``campaign``          — run a corpus campaign and print Table 1/2 shapes
  (``--metrics-out FILE.json`` snapshots latency histograms + tallies,
  ``--progress`` reports per-program throughput on stderr,
  ``--events-out FILE.jsonl`` streams typed campaign events,
  ``--ledger FILE.sqlite`` persists the run + deduplicated findings,
  ``--dashboard`` renders a live single-line status on stderr,
  ``--seed-budget``/``--checkpoint``/``--chaos`` exercise the fault
  isolation layer)
* ``runs LEDGER``       — list recorded campaign runs
* ``show-run LEDGER N`` — dump one run row as JSON
* ``report LEDGER N``   — terminal or ``--html`` report for one run
* ``compare LEDGER A B``— flag regressions between two runs
* ``crashes JOURNAL``   — bucketed crash report from a checkpoint journal
* ``profile FILE``      — per-pass wall time / IR size / marker
  attribution table for one compilation
* ``asm FILE``          — show the generated assembly for one spec
* ``bisect FILE``       — bisect a marker regression to a commit
* ``reduce FILE MARKER``— delta-reduce a case under the missed-marker
  oracle (``--jobs N`` fans candidate evaluations across a process
  pool; output is byte-identical at any jobs count)
* ``store stats|gc|export`` — inspect or compact a persistent
  artifact store (``campaign --store FILE`` / ``reduce --store FILE``
  memoize compiles, ground truth, oracle verdicts and whole seed
  analyses there, making warm reruns near-free)
* ``serve DIR``         — run the supervised campaign daemon: accept
  seed/campaign jobs over a JSON HTTP API, survive crashes and
  SIGTERM, fold findings into a durable case-lifecycle table
* ``cases DIR``         — inspect that lifecycle table (``--state``
  filters; ``cases DIR FP --report`` marks a case reported)
"""

from __future__ import annotations

import argparse
import os
import sys

from . import api
from .compilers import CompilerSpec, compile_minic
from .core.bisect import bisect_marker_regression
from .core.corpus import CampaignProgress, run_campaign
from .core.markers import MARKER_PREFIX, instrument_program
from .core.stats import format_table, pct
from .frontend.typecheck import check_program
from .generator import generate_program
from .lang import ast_nodes as ast
from .lang import parse_program, print_program
from .observability import (
    PIPELINE_SPAN,
    CompareThresholds,
    EventBus,
    JsonlEventWriter,
    LiveDashboard,
    MetricsRegistry,
    RunLedger,
    Tracer,
    compare_runs,
    comparison_text,
    format_trace,
    pass_profiles,
    run_report_html,
    run_report_text,
    use_tracer,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="dce-hunt", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="analyze one program")
    p_analyze.add_argument("file")
    p_analyze.add_argument(
        "--trace", action="store_true",
        help="print the span tree (compiles, pipelines, interpreter runs)",
    )
    p_analyze.add_argument(
        "--no-incremental", action="store_true",
        help="compile every spec independently instead of sharing pass "
             "work through the incremental engine (identical results)",
    )
    p_analyze.add_argument(
        "--verify-ir", action="store_true",
        help="run the IR verifier after every optimization pass and "
             "fail loudly (naming the pass) on malformed IR",
    )

    p_gen = sub.add_parser("generate", help="generate a random program")
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--instrument", action="store_true")

    p_campaign = sub.add_parser("campaign", help="run a corpus campaign")
    p_campaign.add_argument("--programs", type=int, default=20)
    p_campaign.add_argument("--seed-base", type=int, default=0)
    p_campaign.add_argument(
        "--metrics-out", metavar="FILE",
        help="write a JSON metrics snapshot (per-spec compile-latency "
             "histograms, throughput, missed/primary tallies)",
    )
    p_campaign.add_argument(
        "--progress", action="store_true",
        help="report per-program progress on stderr",
    )
    p_campaign.add_argument(
        "--events-out", metavar="FILE",
        help="append one JSON line per campaign event (campaign_start, "
             "seed_done, finding, crash, campaign_end, ...); the stream "
             "is identical at any --jobs count modulo timestamps",
    )
    p_campaign.add_argument(
        "--ledger", metavar="FILE",
        help="record this run (config fingerprint, yield, pass "
             "attribution, crash buckets) and its deduplicated findings "
             "in a SQLite ledger; inspect with runs/show-run/report/compare",
    )
    p_campaign.add_argument(
        "--reduce-findings", action="store_true",
        help="reduce each finding as it is recorded (async, overlapping "
             "the remaining seed analysis) and fingerprint ledger "
             "findings by the reduced case (paper-faithful dedup)",
    )
    p_campaign.add_argument(
        "--reduce-jobs", type=int, default=1, metavar="N",
        help="worker processes for the async finding-reduction queue "
             "(0 = one per CPU); requires --reduce-findings; "
             "fingerprints and events are identical at any N",
    )
    p_campaign.add_argument(
        "--reduce-budget", type=int, default=None, metavar="N",
        help="cap oracle calls per finding reduction (deterministic: "
             "the same budget always yields the same partially-reduced "
             "case); full reductions of large findings can cost "
             "thousands of calls, so budget when wall time matters",
    )
    p_campaign.add_argument(
        "--dashboard", action="store_true",
        help="live single-line status on stderr (seeds/sec, findings, "
             "crashes, ETA); falls back to plain progress lines when "
             "stderr is not a TTY",
    )
    p_campaign.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard seeds across N worker processes (0 = one per CPU); "
             "results are identical to --jobs 1 regardless of N",
    )
    p_campaign.add_argument(
        "--no-incremental", action="store_true",
        help="compile every spec independently instead of sharing pass "
             "work through the incremental engine (identical results)",
    )
    p_campaign.add_argument(
        "--no-bytecode", action="store_true",
        help="compute ground truth on the AST-walking interpreter "
             "instead of the bytecode VM (bit-identical results, "
             "several times slower; mainly a cross-check)",
    )
    p_campaign.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="cap the parallel scheduler's in-flight shard window "
             "(default jobs*3); results are identical at any window",
    )
    p_campaign.add_argument(
        "--seed-budget", type=float, default=None, metavar="SECONDS",
        help="per-seed wall-clock budget; seeds that exceed it are "
             "recorded as budget_exceeded skips instead of hanging",
    )
    p_campaign.add_argument(
        "--checkpoint", metavar="FILE",
        help="append one JSONL record per finished seed; rerunning with "
             "the same file replays finished seeds and analyzes the rest",
    )
    p_campaign.add_argument(
        "--store", metavar="FILE",
        help="persistent content-addressed artifact store (SQLite): "
             "memoizes compile results, ground-truth executions, "
             "reduction-oracle verdicts and whole per-seed analyses, "
             "so rerunning the same campaign is near-free and "
             "byte-identical; a corrupt store degrades to a cold run",
    )
    p_campaign.add_argument(
        "--chaos", action="append", metavar="SPEC", default=None,
        help="inject a fault for resilience drills, e.g. "
             "'pass:gvn:raise:3,11' or 'ground_truth:spin:17' "
             "(site:kind[:seeds]; repeatable)",
    )

    p_crashes = sub.add_parser(
        "crashes", help="summarize crash buckets from a checkpoint journal"
    )
    p_crashes.add_argument("journal")

    p_runs = sub.add_parser("runs", help="list campaign runs in a ledger")
    p_runs.add_argument("ledger")
    p_runs.add_argument(
        "--config", metavar="PREFIX", default=None,
        help="only runs whose config fingerprint starts with PREFIX",
    )
    p_runs.add_argument("--limit", type=int, default=None, metavar="N")

    p_show = sub.add_parser("show-run", help="dump one ledger run as JSON")
    p_show.add_argument("ledger")
    p_show.add_argument("run_id", type=int)

    p_report = sub.add_parser(
        "report", help="render a report for one ledger run"
    )
    p_report.add_argument("ledger")
    p_report.add_argument("run_id", type=int)
    p_report.add_argument(
        "--html", metavar="FILE", default=None,
        help="write a self-contained HTML report instead of terminal text",
    )

    p_compare = sub.add_parser(
        "compare", help="compare two ledger runs and flag regressions"
    )
    p_compare.add_argument("ledger")
    p_compare.add_argument("baseline", type=int)
    p_compare.add_argument("candidate", type=int)
    p_compare.add_argument(
        "--threshold", type=float, default=10.0, metavar="PCT",
        help="relative-change limit in percent for every regression "
             "check (default 10)",
    )
    p_compare.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 1 when any regression is flagged (CI gate)",
    )

    p_profile = sub.add_parser(
        "profile", help="per-pass time/size/marker-attribution table"
    )
    p_profile.add_argument("file")
    p_profile.add_argument("--family", default="gcclike")
    p_profile.add_argument("--level", default="O2")
    p_profile.add_argument(
        "--instrument", action="store_true",
        help="insert optimization markers before profiling (for programs "
             "not already instrumented)",
    )

    p_asm = sub.add_parser("asm", help="compile one program to assembly")
    p_asm.add_argument("file")
    p_asm.add_argument("--family", default="gcclike")
    p_asm.add_argument("--level", default="O2")

    p_bisect = sub.add_parser("bisect", help="bisect a marker regression")
    p_bisect.add_argument("file")
    p_bisect.add_argument("marker")
    p_bisect.add_argument("--family", default="llvmlike")
    p_bisect.add_argument("--level", default="O3")

    p_reduce = sub.add_parser(
        "reduce",
        help="delta-reduce a program while a marker stays missed",
    )
    p_reduce.add_argument("file")
    p_reduce.add_argument("marker")
    p_reduce.add_argument(
        "--keeper", default="llvmlike:O3", metavar="FAMILY:LEVEL",
        help="spec that must keep the marker alive (default llvmlike:O3)",
    )
    p_reduce.add_argument(
        "--witness", default="gcclike:O3", metavar="FAMILY:LEVEL",
        help="spec that must eliminate the marker (default gcclike:O3; "
             "'none' drops the witness requirement)",
    )
    p_reduce.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="evaluate speculative candidates across N worker processes "
             "(0 = one per CPU); the reduced program is byte-identical "
             "to --jobs 1",
    )
    p_reduce.add_argument(
        "--speculation", type=int, default=None, metavar="N",
        help="candidates per speculative batch (default 4; part of the "
             "determinism contract — changing it changes which "
             "candidates get evaluated)",
    )
    p_reduce.add_argument("--max-rounds", type=int, default=12, metavar="N")
    p_reduce.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help="stop after N oracle calls and print the best program so "
             "far (checked at batch boundaries, so still jobs-invariant)",
    )
    p_reduce.add_argument(
        "--store", metavar="FILE",
        help="warm-start the oracle memo from a persistent artifact "
             "store and persist new verdicts back, so rerunning the "
             "same reduction costs (almost) no oracle calls",
    )

    p_store = sub.add_parser(
        "store", help="inspect or compact a persistent artifact store"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_sstats = store_sub.add_parser(
        "stats", help="table/byte counts and compression ratio"
    )
    p_sstats.add_argument("store")
    p_sgc = store_sub.add_parser(
        "gc", help="drop unreferenced program bodies and VACUUM"
    )
    p_sgc.add_argument("store")
    p_sexport = store_sub.add_parser(
        "export", help="print a stored program (or list stored hashes)"
    )
    p_sexport.add_argument("store")
    p_sexport.add_argument(
        "hash", nargs="?", default=None,
        help="sha256 of the program text (a unique prefix works); "
             "omitted = list every stored hash",
    )

    p_cbuild = sub.add_parser(
        "corpus-build", help="generate and persist an artifact corpus"
    )
    p_cbuild.add_argument("directory")
    p_cbuild.add_argument("--programs", type=int, default=10)
    p_cbuild.add_argument("--seed-base", type=int, default=0)

    p_cval = sub.add_parser(
        "corpus-validate", help="re-run a persisted corpus and diff results"
    )
    p_cval.add_argument("directory")

    p_serve = sub.add_parser(
        "serve", help="run the supervised campaign daemon"
    )
    p_serve.add_argument(
        "data_dir", help="service state directory (SQLite DBs + journals)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8321,
        help="listen port (0 picks a free one and prints it)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1,
        help="concurrent campaign worker threads",
    )
    p_serve.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock timeout (cancelled jobs retry "
             "with backoff and resume from their journal)",
    )
    p_serve.add_argument(
        "--retry-cap", type=int, default=3,
        help="attempts before a crashing/timing-out job fails for good",
    )
    p_serve.add_argument(
        "--backoff-base", type=float, default=0.5, metavar="SECONDS",
        help="retry delay is backoff-base * 2^attempt",
    )
    p_serve.add_argument(
        "--chaos-api", action="store_true",
        help="expose POST /api/v1/chaos for fault-injection drills",
    )
    p_serve.add_argument(
        "--events-out", default=None, metavar="FILE.jsonl",
        help="stream job/case lifecycle events to a JSONL file",
    )

    p_cases = sub.add_parser(
        "cases", help="inspect a service's case-lifecycle table"
    )
    p_cases.add_argument(
        "data_dir", help="service state directory (or a service.sqlite)"
    )
    p_cases.add_argument(
        "fingerprint", nargs="?", default=None,
        help="show one case (a unique prefix works); omitted = list",
    )
    p_cases.add_argument(
        "--state", default=None,
        help="filter the listing by lifecycle state",
    )
    p_cases.add_argument(
        "--report", action="store_true",
        help="advance the named case to 'reported'",
    )

    args = parser.parse_args(argv)
    if args.command == "analyze":
        incremental = not args.no_incremental
        if args.trace:
            tracer = Tracer()
            with use_tracer(tracer):
                report = api.analyze_source(
                    _read(args.file), incremental=incremental,
                    verify_ir=args.verify_ir,
                )
            print(report.summary())
            print("\ntrace:")
            print(format_trace(tracer))
        else:
            report = api.analyze_source(
                _read(args.file), incremental=incremental,
                verify_ir=args.verify_ir,
            )
            print(report.summary())
    elif args.command == "generate":
        program = generate_program(args.seed)
        if args.instrument:
            program = instrument_program(program).program
            check_program(program)
        print(print_program(program))
    elif args.command == "campaign":
        if args.programs < 0:
            p_campaign.error(
                f"--programs must be >= 0, got {args.programs}"
            )
        if args.window is not None and args.window < 1:
            p_campaign.error(f"--window must be >= 1, got {args.window}")
        if args.reduce_jobs != 1 and not args.reduce_findings:
            p_campaign.error("--reduce-jobs requires --reduce-findings")
        if args.reduce_jobs < 0:
            p_campaign.error(
                f"--reduce-jobs must be >= 0, got {args.reduce_jobs}"
            )
        if args.reduce_budget is not None and not args.reduce_findings:
            p_campaign.error("--reduce-budget requires --reduce-findings")
        if args.reduce_budget is not None and args.reduce_budget < 1:
            p_campaign.error(
                f"--reduce-budget must be >= 1, got {args.reduce_budget}"
            )
        _campaign(args.programs, args.seed_base,
                  metrics_out=args.metrics_out, show_progress=args.progress,
                  jobs=args.jobs, incremental=not args.no_incremental,
                  seed_budget=args.seed_budget, checkpoint=args.checkpoint,
                  chaos_specs=args.chaos, events_out=args.events_out,
                  ledger_path=args.ledger, dashboard=args.dashboard,
                  reduce_findings=args.reduce_findings,
                  reduce_jobs=args.reduce_jobs,
                  reduce_budget=args.reduce_budget,
                  interp="ast" if args.no_bytecode else None,
                  window=args.window, store_path=args.store)
    elif args.command == "crashes":
        return _crashes(args.journal)
    elif args.command == "runs":
        return _runs(args.ledger, args.config, args.limit)
    elif args.command == "show-run":
        return _show_run(args.ledger, args.run_id)
    elif args.command == "report":
        return _report(args.ledger, args.run_id, args.html)
    elif args.command == "compare":
        return _compare(args.ledger, args.baseline, args.candidate,
                        args.threshold, args.fail_on_regression)
    elif args.command == "profile":
        _profile(_read(args.file), args.family, args.level, args.instrument)
    elif args.command == "asm":
        print(api.compile_to_asm(_read(args.file), args.family, args.level))
    elif args.command == "bisect":
        program = parse_program(_read(args.file))
        result = bisect_marker_regression(program, args.marker, args.family, args.level)
        if result is None:
            print("not a regression (missed at every version, or not missed at tip)")
            return 1
        print(f"first bad version: {result.first_bad}")
        print(f"commit {result.commit.sha}: {result.commit.subject}")
        print(f"component: {result.commit.component}")
        print(f"files: {', '.join(result.commit.files)}")
    elif args.command == "reduce":
        return _reduce(
            _read(args.file), args.marker, args.keeper, args.witness,
            args.jobs, args.speculation, args.max_rounds, args.budget,
            store_path=args.store,
        )
    elif args.command == "store":
        return _store(args.store_command, args.store,
                      getattr(args, "hash", None))
    elif args.command == "corpus-build":
        from .core.artifact import build_corpus

        records = build_corpus(
            args.directory,
            seeds=list(range(args.seed_base, args.seed_base + args.programs)),
        )
        print(f"wrote {len(records)} programs to {args.directory}")
    elif args.command == "corpus-validate":
        from .core.artifact import validate_corpus

        report = validate_corpus(args.directory)
        print(f"checked {report.checked} programs")
        for mismatch in report.mismatches:
            print(f"  MISMATCH: {mismatch}")
        if not report.ok:
            return 1
        print("all recorded results reproduce")
    elif args.command == "serve":
        if args.workers < 1:
            p_serve.error(f"--workers must be >= 1, got {args.workers}")
        if args.retry_cap < 1:
            p_serve.error(f"--retry-cap must be >= 1, got {args.retry_cap}")
        return _serve(args)
    elif args.command == "cases":
        if args.report and args.fingerprint is None:
            p_cases.error("--report needs a case fingerprint")
        return _cases(args.data_dir, args.fingerprint,
                      state=args.state, report=args.report)
    return 0


def _print_progress(snapshot: CampaignProgress) -> None:
    done = snapshot.completed + snapshot.skipped
    status = "skipped" if snapshot.skipped_seed else "ok"
    print(
        f"[{done}/{snapshot.total}] seed {snapshot.seed}: {status} "
        f"({snapshot.programs_per_sec:.2f} programs/sec, "
        f"{snapshot.elapsed:.1f}s elapsed)",
        file=sys.stderr,
    )


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def _profile(source: str, family: str, level: str, instrument: bool) -> None:
    """Compile once under a tracer and print the per-pass table."""
    program = parse_program(source)
    if instrument:
        program = instrument_program(program).program
    check_program(program)
    declared_markers = sum(
        1
        for decl in program.decls
        if isinstance(decl, ast.FuncDecl) and decl.name.startswith(MARKER_PREFIX)
    )
    spec = CompilerSpec(family, level)
    tracer = Tracer()
    with use_tracer(tracer):
        compile_minic(program, spec)

    profiles = pass_profiles(tracer)
    pipeline_span = tracer.find(PIPELINE_SPAN)[0]
    markers_before = pipeline_span.attrs.get("markers_before", 0)
    rows = []
    # Markers already gone from the IR never met a pass: the frontend
    # dropped their (statically unreachable) blocks during lowering.
    frontend_killed = declared_markers - markers_before
    if frontend_killed:
        rows.append(["", "(frontend)", "", "", "", "", str(frontend_killed), ""])
    for p in profiles:
        killed = len(p.markers_eliminated)
        names = list(p.markers_eliminated[:6])
        if killed > len(names):
            names.append(f"(+{killed - len(names)} more)")
        rows.append([
            str(p.index),
            p.name,
            f"{p.wall_time * 1e3:.2f}",
            f"{p.instr_delta:+d}" if p.instr_delta else "0",
            f"{p.block_delta:+d}" if p.block_delta else "0",
            "yes" if p.changed else "",
            str(killed) if killed else "",
            ", ".join(names),
        ])
    print(format_table(
        ["#", "pass", "ms", "Δinstrs", "Δblocks", "changed",
         "markers", "killed markers"],
        rows,
        title=f"per-pass profile — {spec}",
    ))
    total_ms = pipeline_span.duration * 1e3
    first, last = profiles[0], profiles[-1]
    print(
        f"\ntotal pipeline: {total_ms:.2f} ms over {len(profiles)} passes; "
        f"instrs {first.instrs_before} -> {last.instrs_after}, "
        f"blocks {first.blocks_before} -> {last.blocks_after}, "
        f"markers {declared_markers} -> "
        f"{pipeline_span.attrs.get('markers_after', 0)}"
    )


def _spec_arg(value: str) -> CompilerSpec:
    """``family:level`` → :class:`CompilerSpec` (tip version)."""
    family, _, level = value.partition(":")
    return CompilerSpec(family, level or "O3")


def _reduce(
    source: str,
    marker: str,
    keeper: str,
    witness: str,
    jobs: int,
    speculation: int | None,
    max_rounds: int,
    budget: int | None = None,
    store_path: str | None = None,
) -> int:
    """``dce-hunt reduce <file> <marker>`` — reduced program to stdout
    (byte-identical at any ``--jobs``), stats line to stderr.

    With ``--store``, the oracle memo warm-starts from the store's
    persisted verdicts (same keys the campaign reducer uses), and the
    verdicts this run adds are persisted back — so rerunning the same
    reduction resolves almost entirely from memo.
    """
    from .core.reduction import (
        _RecordingMemo,
        missed_marker_predicate,
        reduce_program,
    )

    if jobs == 0:
        jobs = os.cpu_count() or 1
    store = None
    memo: dict[str, bool] | None = None
    if store_path:
        from .store import open_store

        store = open_store(store_path)
        if store is None:
            print(
                f"store: cannot open {store_path}; running cold",
                file=sys.stderr,
            )
        else:
            seeded = store.oracle_entries()
            memo = _RecordingMemo(seeded, frozenset(seeded))
    program = parse_program(source)
    predicate = missed_marker_predicate(
        marker,
        _spec_arg(keeper),
        None if witness == "none" else _spec_arg(witness),
    )
    try:
        result = reduce_program(
            program, predicate, max_rounds=max_rounds, jobs=jobs,
            speculation=speculation, max_oracle_calls=budget,
            memo=memo,
        )
    except ValueError:
        if store is not None:
            store.close()
        print(
            f"input is not interesting: {marker} must be dead, kept by "
            f"{keeper}, and eliminated by {witness}",
            file=sys.stderr,
        )
        return 1
    text = print_program(result.program)
    sys.stdout.write(text if text.endswith("\n") else text + "\n")
    stats = (
        f"reduced {result.stmts_before} -> {result.stmts_after} statements "
        f"in {result.rounds} rounds: {result.attempts} attempts, "
        f"{result.oracle_calls} oracle calls, "
        f"{result.oracle_cache_hits} memo hits, "
        f"{result.speculative_wasted} speculative wasted, "
        f"{result.wall_time:.1f}s"
    )
    if store is not None and isinstance(memo, _RecordingMemo):
        store.record_oracle_entries(memo.added)
        store.close()
        stats += (
            f"; store: {memo.store_hits} warm hits, "
            f"{len(memo.added)} new verdicts persisted"
        )
    print(stats, file=sys.stderr)
    return 0


def _store(command: str, path: str, program_hash: str | None) -> int:
    """``dce-hunt store stats|gc|export <store>``."""
    from .store import ArtifactStore

    if not os.path.exists(path):
        print(f"no such store: {path}", file=sys.stderr)
        return 1
    try:
        store = ArtifactStore(path, read_only=(command != "gc"))
    except Exception:
        store = None
    if store is None or store.disabled:
        print(f"cannot open store: {path}", file=sys.stderr)
        return 1
    with store:
        if command == "stats":
            stats = store.stats()
            ratio = (
                stats["program_bytes"] / stats["compressed_bytes"]
                if stats["compressed_bytes"] else 0.0
            )
            rows = [
                ["programs", str(stats["programs"])],
                ["compile memo entries", str(stats["compile_memo"])],
                ["ground-truth records", str(stats["truth_memo"])],
                ["oracle verdicts", str(stats["oracle_memo"])],
                ["seed analyses", str(stats["seed_analyses"])],
                ["seed scopes", str(stats["seed_scopes"])],
                ["program text bytes", str(stats["program_bytes"])],
                ["compressed bytes",
                 f"{stats['compressed_bytes']} ({ratio:.1f}x)"],
                ["file bytes", str(stats["file_bytes"])],
            ]
            print(format_table(["", ""], rows, title=f"store {path}"))
        elif command == "gc":
            outcome = store.gc()
            print(
                f"gc: removed {outcome['removed']} unreferenced "
                f"program(s), reclaimed {outcome['reclaimed_bytes']} bytes"
            )
        elif command == "export":
            if program_hash is None:
                for h, size in store.program_hashes():
                    print(f"{h}  {size}")
                return 0
            matches = [
                h for h, _ in store.program_hashes()
                if h.startswith(program_hash)
            ]
            if not matches:
                print(f"no program {program_hash} in {path}",
                      file=sys.stderr)
                return 1
            if len(matches) > 1:
                print(
                    f"ambiguous prefix {program_hash} "
                    f"({len(matches)} matches)",
                    file=sys.stderr,
                )
                return 1
            text = store.get_program(matches[0])
            if text is None:
                print(f"cannot read program {matches[0]}", file=sys.stderr)
                return 1
            sys.stdout.write(text if text.endswith("\n") else text + "\n")
    return 0


def _campaign(
    n_programs: int,
    seed_base: int,
    metrics_out: str | None = None,
    show_progress: bool = False,
    jobs: int = 1,
    incremental: bool = True,
    seed_budget: float | None = None,
    checkpoint: str | None = None,
    chaos_specs: list[str] | None = None,
    events_out: str | None = None,
    ledger_path: str | None = None,
    dashboard: bool = False,
    reduce_findings: bool = False,
    reduce_jobs: int = 1,
    reduce_budget: int | None = None,
    interp: str | None = None,
    window: int | None = None,
    store_path: str | None = None,
) -> None:
    import time

    from .testing import chaos

    # the ledger wants the metrics snapshot (pass attribution, latency
    # histograms) even when no --metrics-out file was asked for; the
    # store wants one too (hit counters feed the summary + ledger)
    metrics = (
        MetricsRegistry()
        if (metrics_out or ledger_path or store_path) else None
    )
    progress = _print_progress if show_progress else None
    if jobs == 0:
        jobs = os.cpu_count() or 1
    events = writer = None
    if events_out or dashboard:
        events = EventBus()
    if events_out:
        writer = JsonlEventWriter(events_out)
        events.subscribe(writer)
    if dashboard:
        # stderr so `campaign ... > result` stays machine-clean
        LiveDashboard(sys.stderr, metrics=metrics).attach(events)
    store = None
    if store_path:
        from .store import open_store

        store = open_store(store_path, metrics=metrics)
        if store is None:
            print(
                f"store: cannot open {store_path}; running cold",
                file=sys.stderr,
            )
    plan = None
    if chaos_specs:
        plan = chaos.FaultPlan(
            tuple(chaos.parse_fault(spec) for spec in chaos_specs)
        )
        chaos.install_plan(plan)
    reduction = None
    if reduce_findings:
        from .core.reduction import ReductionQueue

        if reduce_jobs == 0:
            reduce_jobs = os.cpu_count() or 1
        reduction = ReductionQueue(
            reduce_jobs, max_oracle_calls=reduce_budget, store=store
        )
    started_at = time.time()
    wall_start = time.monotonic()
    try:
        result = run_campaign(
            n_programs=n_programs, seed_base=seed_base,
            metrics=metrics, progress=progress, jobs=jobs,
            incremental=incremental, seed_budget=seed_budget,
            checkpoint=checkpoint, events=events, interp=interp,
            window=window, reduction=reduction, store=store,
        )
    finally:
        if reduction is not None:
            reduction.close()
        if store is not None:
            store.close()
        if plan is not None:
            chaos.clear_plan()
        if writer is not None:
            writer.close()
    wall_time = time.monotonic() - wall_start
    if store is not None and metrics is not None:
        snapshot = metrics.to_dict()
        counters = {
            name: snapshot.get(name, {}).get("value", 0)
            for name in ("store.seeds_skipped", "store.compile_hits",
                         "store.truth_hits", "store.oracle_hits",
                         "store.errors")
        }
        line = (
            f"store: {counters['store.seeds_skipped']} seeds replayed, "
            f"{counters['store.compile_hits']} compile hits, "
            f"{counters['store.truth_hits']} truth hits, "
            f"{counters['store.oracle_hits']} oracle hits"
        )
        if counters["store.errors"] or store.disabled:
            line += (
                f" ({counters['store.errors']} store errors; "
                "degraded to cold)"
            )
        print(line, file=sys.stderr)
    if metrics is not None and metrics_out:
        metrics.write_json(metrics_out)
        print(f"metrics written to {metrics_out}", file=sys.stderr)
    if ledger_path:
        with RunLedger(ledger_path) as ledger:
            run_id = ledger.record_run(
                result, n_programs=n_programs, seed_base=seed_base,
                jobs=jobs, incremental=incremental, metrics=metrics,
                wall_time=wall_time, started_at=started_at,
                reduce_findings=reduce_findings, interp=interp,
                window=window,
                reduce_jobs=reduce_jobs if reduce_findings else None,
                store_used=store is not None,
            )
        print(f"ledger: recorded run {run_id} in {ledger_path}",
              file=sys.stderr)
    print(
        f"programs: {len(result.seeds)} (skipped {len(result.skipped)}), "
        f"markers: {result.total_markers}, dead: {pct(result.dead_pct)}"
    )
    if result.reduction_stats is not None:
        stats = result.reduction_stats
        print(
            f"reduction: {stats.reduced}/{stats.submitted} findings reduced "
            f"({stats.fallbacks} structural fallbacks, "
            f"{stats.crashed} crashed) with {stats.oracle_calls} oracle "
            f"calls, {stats.cache_hits} memo hits across "
            f"{stats.jobs} worker(s)"
        )
    if result.crashes or result.budget_exceeded or result.degraded:
        print(
            f"fault isolation: {len(result.crashes)} crashes in "
            f"{len(result.crash_buckets)} buckets, "
            f"{len(result.budget_exceeded)} over budget, "
            f"{len(result.degraded)} degraded (non-incremental retry)"
        )
        if result.crashes:
            print(_crash_bucket_table(result.crash_buckets))
    rows = []
    for level in ("O0", "O1", "Os", "O2", "O3"):
        g = result.level_stats("gcclike", level)
        l = result.level_stats("llvmlike", level)
        rows.append([level, pct(g.missed_pct), pct(l.missed_pct),
                     pct(g.primary_missed_pct), pct(l.primary_missed_pct)])
    print(format_table(
        ["level", "gcc missed", "llvm missed", "gcc primary", "llvm primary"],
        rows, title="\n% of dead markers missed (Tables 1 & 2 shape)",
    ))
    cc = result.cross_compiler
    print(
        f"\ncross-compiler @O3: gcclike misses {cc.gcc_misses_llvm_catches} "
        f"that llvmlike catches (primary {cc.gcc_primary}); llvmlike misses "
        f"{cc.llvm_misses_gcc_catches} (primary {cc.llvm_primary})"
    )
    for family, stats in result.cross_level.items():
        print(
            f"cross-level {family}: O3 misses {stats.missed_at_high} markers "
            f"seized at O1/O2 (primary {stats.primary})"
        )


def _crash_bucket_table(buckets) -> str:
    """Render deduplicated crash buckets as a table."""
    rows = []
    for bucket, envelopes in buckets.items():
        seeds = [str(e.seed) for e in envelopes[:5]]
        if len(envelopes) > len(seeds):
            seeds.append(f"(+{len(envelopes) - len(seeds)} more)")
        first = envelopes[0]
        rows.append([
            bucket,
            str(len(envelopes)),
            first.phase,
            ", ".join(seeds),
            first.repro,
        ])
    return format_table(
        ["bucket", "count", "phase", "seeds", "repro"],
        rows, title="crash buckets",
    )


def _open_ledger(path: str) -> RunLedger | None:
    if not os.path.exists(path):
        print(f"no such ledger: {path}", file=sys.stderr)
        return None
    return RunLedger(path)


def _runs(path: str, config: str | None, limit: int | None) -> int:
    """``dce-hunt runs <ledger>`` — one line per recorded campaign."""
    import time as _time

    ledger = _open_ledger(path)
    if ledger is None:
        return 1
    with ledger:
        rows = ledger.runs(config=config, limit=limit)
    if not rows:
        print("no runs recorded")
        return 0
    table = [[
        str(r.run_id),
        _time.strftime("%Y-%m-%d %H:%M", _time.localtime(r.started_at)),
        r.config_fingerprint,
        str(r.programs),
        str(r.completed),
        str(r.findings),
        str(r.crashed),
        f"{r.dead_pct:.1f}%",
        f"{r.wall_time:.1f}s",
        f"j{r.jobs}" + ("" if r.incremental else " noinc")
        + ("" if (r.interp or "bytecode") == "bytecode" else f" {r.interp}"),
    ] for r in rows]
    print(format_table(
        ["run", "started", "config", "progs", "done", "findings",
         "crashes", "dead", "wall", "flags"],
        table,
    ))
    return 0


def _show_run(path: str, run_id: int) -> int:
    """``dce-hunt show-run <ledger> <id>`` — the full row as JSON."""
    import dataclasses
    import json

    ledger = _open_ledger(path)
    if ledger is None:
        return 1
    with ledger:
        run = ledger.run(run_id)
        findings = ledger.findings(run_id) if run is not None else []
    if run is None:
        print(f"no run {run_id} in {path}", file=sys.stderr)
        return 1
    payload = dataclasses.asdict(run)
    payload["findings_detail"] = [dataclasses.asdict(f) for f in findings]
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _report(path: str, run_id: int, html_out: str | None) -> int:
    """``dce-hunt report <ledger> <id> [--html FILE]``."""
    ledger = _open_ledger(path)
    if ledger is None:
        return 1
    with ledger:
        run = ledger.run(run_id)
        findings = ledger.findings(run_id) if run is not None else []
        counts = ledger.lifecycle_counts() if run is not None else {}
    if run is None:
        print(f"no run {run_id} in {path}", file=sys.stderr)
        return 1
    # lifecycle section only when the ledger actually carries cases
    # (one-shot campaign ledgers have none; service ledgers do)
    lifecycle = counts if any(counts.values()) else None
    if html_out:
        with open(html_out, "w") as handle:
            handle.write(run_report_html(run, findings, lifecycle))
        print(f"report written to {html_out}", file=sys.stderr)
    else:
        print(run_report_text(run, findings, lifecycle))
    return 0


def _compare(
    path: str,
    baseline_id: int,
    candidate_id: int,
    threshold_pct: float,
    fail_on_regression: bool,
) -> int:
    """``dce-hunt compare <ledger> <baseline> <candidate>``."""
    ledger = _open_ledger(path)
    if ledger is None:
        return 1
    with ledger:
        baseline = ledger.run(baseline_id)
        candidate = ledger.run(candidate_id)
    for run_id, row in ((baseline_id, baseline), (candidate_id, candidate)):
        if row is None:
            print(f"no run {run_id} in {path}", file=sys.stderr)
            return 1
    fraction = threshold_pct / 100.0
    comparison = compare_runs(baseline, candidate, CompareThresholds(
        pass_execs_saved_drop=fraction,
        compilations_increase=fraction,
        yield_drop=fraction,
    ))
    print(comparison_text(comparison))
    if fail_on_regression and not comparison.ok:
        return 1
    return 0


def _crashes(journal: str) -> int:
    """``dce-hunt crashes <journal>`` — bucketed crash report."""
    from .core.resilience import bucket_crashes, read_journal_crashes

    if not os.path.exists(journal):
        print(f"no such journal: {journal}", file=sys.stderr)
        return 1
    crashes = read_journal_crashes(journal)
    if not crashes:
        print("no crashes recorded")
        return 0
    print(_crash_bucket_table(bucket_crashes(crashes)))
    return 0


def _serve(args) -> int:
    """``dce-hunt serve <dir>`` — run the campaign daemon."""
    from .service import serve

    events = None
    writer = None
    if args.events_out is not None:
        events = EventBus()
        writer = events.subscribe(JsonlEventWriter(args.events_out))
    try:
        return serve(
            args.data_dir,
            host=args.host,
            port=args.port,
            workers=args.workers,
            job_timeout=args.job_timeout,
            retry_cap=args.retry_cap,
            backoff_base=args.backoff_base,
            chaos_api=args.chaos_api,
            events=events,
            on_ready=lambda host, port: print(
                f"listening on http://{host}:{port}", flush=True
            ),
        )
    finally:
        if writer is not None:
            writer.close()


def _service_db(data_dir: str) -> str | None:
    """Resolve a ``cases`` argument to the service SQLite file."""
    from .service.core import SERVICE_DB

    path = (
        os.path.join(data_dir, SERVICE_DB)
        if os.path.isdir(data_dir)
        else data_dir
    )
    if not os.path.exists(path):
        print(f"no service database at {path}", file=sys.stderr)
        return None
    return path


def _cases(
    data_dir: str,
    fingerprint: str | None,
    *,
    state: str | None,
    report: bool,
) -> int:
    """``dce-hunt cases <dir> [fp]`` — lifecycle table inspection."""
    import json

    from .observability.ledger import CASE_STATES

    path = _service_db(data_dir)
    if path is None:
        return 1
    if state is not None and state not in CASE_STATES:
        print(
            f"unknown state {state!r}; one of {CASE_STATES}",
            file=sys.stderr,
        )
        return 1
    with RunLedger(path) as ledger:
        if fingerprint is None:
            rows = ledger.cases(state)
            counts = ledger.lifecycle_counts()
            header = "  ".join(
                f"{name}={counts[name]}" for name in CASE_STATES
            )
            print(header)
            table = []
            for case in rows:
                table.append([
                    case.fingerprint[:16],
                    case.state,
                    case.kind,
                    ",".join(str(s) for s in case.seeds[:4])
                    + ("…" if len(case.seeds) > 4 else ""),
                    str(case.occurrences),
                ])
            print(format_table(
                ["fingerprint", "state", "kind", "seeds", "occ"], table
            ))
            return 0
        matches = [
            case for case in ledger.cases()
            if case.fingerprint.startswith(fingerprint)
        ]
        if not matches:
            resolved = ledger.case(fingerprint)
            matches = [resolved] if resolved is not None else []
        if not matches:
            print(f"no case matches {fingerprint!r}", file=sys.stderr)
            return 1
        if len(matches) > 1:
            print(
                f"ambiguous prefix {fingerprint!r}"
                f" ({len(matches)} matches)",
                file=sys.stderr,
            )
            return 1
        case = matches[0]
        if report:
            canonical, advanced = ledger.advance_case(
                case.fingerprint, "reported"
            )
            case = ledger.case(canonical)
            if not advanced:
                print("already reported", file=sys.stderr)
        print(json.dumps(case.to_dict(), indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
