"""Driving a *real* compiler (the system ``gcc``) with the same
technique.

Generated MiniC programs print as UB-free C (the safe-math mode
handles division, shifts, and signed overflow), so the paper's actual
experiment can be run against the host toolchain: compile the
instrumented program at two optimization levels, grep the assembly for
``call DCEMarkerN`` (and the rip-relative variant), and compare.

This module shells out and is therefore optional: everything degrades
gracefully when no compiler is installed (``gcc_available()``).
"""

from __future__ import annotations

import re
import shutil
import subprocess
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from ..core.markers import InstrumentedProgram
from ..lang import ast_nodes as ast
from ..lang.printer import print_program

_CALL_RE = re.compile(r"\bcall[a-z]?\s+(\w+)")


def gcc_available(binary: str = "gcc") -> bool:
    return shutil.which(binary) is not None


@dataclass
class RealCompileResult:
    level: str
    asm: str
    alive: frozenset[str]


@dataclass
class RealDifferentialResult:
    source: str
    outcomes: dict[str, RealCompileResult] = field(default_factory=dict)

    def missed_at(self, high: str, low: str) -> frozenset[str]:
        """Markers the higher level keeps but the lower eliminates."""
        return self.outcomes[high].alive - self.outcomes[low].alive


def compile_with_gcc(
    source: str,
    level: str = "O2",
    binary: str = "gcc",
    marker_prefix: str = "DCEMarker",
    timeout: int = 30,
) -> RealCompileResult:
    """Compile C source to assembly with the host compiler and scan
    for surviving marker calls."""
    with tempfile.TemporaryDirectory(prefix="repro-gcc-") as tmp:
        c_file = Path(tmp) / "case.c"
        s_file = Path(tmp) / "case.s"
        c_file.write_text(source)
        cmd = [binary, f"-{level}", "-S", "-o", str(s_file), str(c_file), "-w"]
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=timeout)
        if proc.returncode != 0:
            raise RuntimeError(f"{binary} failed: {proc.stderr[:2000]}")
        asm = s_file.read_text()
    alive = frozenset(
        name for name in _CALL_RE.findall(asm) if name.startswith(marker_prefix)
    )
    return RealCompileResult(level, asm, alive)


def differential_real_gcc(
    instrumented: InstrumentedProgram,
    levels: tuple[str, ...] = ("O0", "O1", "O2", "O3"),
    binary: str = "gcc",
) -> RealDifferentialResult:
    """Run the paper's cross-level differential against real gcc."""
    source = print_program(instrumented.program, safe=True)
    result = RealDifferentialResult(source)
    for level in levels:
        result.outcomes[level] = compile_with_gcc(source, level, binary)
    return result


def executable_check(
    instrumented: InstrumentedProgram,
    binary: str = "gcc",
    timeout: int = 30,
) -> frozenset[str]:
    """Ground truth through the *real* toolchain: link the instrumented
    program with recording marker bodies, execute it, and return the
    set of markers that ran.  Cross-checks our interpreter."""
    program = instrumented.program
    source = print_program(program, safe=True)
    recorder = ["#include <stdio.h>"]
    for info in instrumented.markers:
        recorder.append(
            f'void {info.name}(void) {{ printf("HIT {info.name}\\n"); }}'
        )
    # Opaque non-marker externs need stub bodies to link.
    marker_names = instrumented.marker_names
    for decl in program.extern_decls():
        if decl.name in marker_names:
            continue
        params = ", ".join(
            f"{_c_type(p.ty)} a{i}" for i, p in enumerate(decl.params)
        ) or "void"
        ret = _c_type(decl.return_ty)
        body = "return 0;" if ret != "void" else ""
        recorder.append(f"{ret} {decl.name}({params}) {{ {body} }}")
    full = "\n".join(recorder) + "\n" + _strip_extern_decls(source, marker_names)

    with tempfile.TemporaryDirectory(prefix="repro-exec-") as tmp:
        c_file = Path(tmp) / "case.c"
        exe = Path(tmp) / "case"
        c_file.write_text(full)
        proc = subprocess.run(
            [binary, "-O0", "-o", str(exe), str(c_file), "-w"],
            capture_output=True, text=True, timeout=timeout,
        )
        if proc.returncode != 0:
            raise RuntimeError(f"link failed: {proc.stderr[:2000]}")
        run = subprocess.run([str(exe)], capture_output=True, text=True, timeout=timeout)
    hits = set()
    for line in run.stdout.splitlines():
        if line.startswith("HIT "):
            hits.add(line[4:].strip())
    return frozenset(hits)


def _c_type(ty) -> str:
    from ..lang.printer import type_prefix

    return type_prefix(ty)


_PROTO_RE = re.compile(
    r"^\s*(?:extern\s+)?(?:void|int|long|short|char|unsigned[\w ]*)\s*\*?\s*"
    r"(\w+)\s*\([^)]*\)\s*;\s*$"
)


def _strip_extern_decls(source: str, marker_names: frozenset[str]) -> str:
    """Drop the function *prototypes* the recorder prelude now defines
    (matching full-line prototypes only, never statements)."""
    out = []
    for line in source.splitlines():
        if "=" not in line and _PROTO_RE.match(line):
            continue
        out.append(line)
    return "\n".join(out)
