"""Optional integration with the host system's real compilers."""

from .gcc_driver import (
    RealCompileResult,
    RealDifferentialResult,
    compile_with_gcc,
    differential_real_gcc,
    executable_check,
    gcc_available,
)

__all__ = [
    "RealCompileResult",
    "RealDifferentialResult",
    "compile_with_gcc",
    "differential_real_gcc",
    "executable_check",
    "gcc_available",
]
