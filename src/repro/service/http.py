"""JSON HTTP API + daemon entry point (stdlib only).

Endpoints (all JSON)::

    GET  /healthz                    liveness: queue depth, worker
                                     heartbeats, last-commit age
    GET  /readyz                     200 accepting work / 503 draining
    POST /api/v1/seeds               {"seeds": [..], "config": {..}, ...}
    POST /api/v1/campaigns           {"programs": N, "seed_base": B, ...}
    GET  /api/v1/jobs[?status=s]     the job queue
    GET  /api/v1/jobs/<id>           one job
    GET  /api/v1/cases[?state=s]     the case lifecycle table
    GET  /api/v1/cases/<fp>          one case (follows merge aliases)
    POST /api/v1/cases/<fp>/advance  {"state": "reported"}
    POST /api/v1/chaos               {"faults": ["site:kind", ..]}
                                     (only with --chaos-api; [] clears)

Submissions are idempotent: the job id is the content hash of the
payload, re-POSTing returns the existing job with 200 instead of 201.
While draining every POST is refused with 503 — clients resubmit
after restart and idempotency makes that safe.

The server is a stdlib :class:`ThreadingHTTPServer`; request handlers
only touch SQLite-backed state, so a handler crash (or an injected
``serve:handler`` fault) is contained to a 500 response and the
``service.handler_errors`` counter.  The health endpoints bypass the
chaos hook: liveness must stay truthful while everything else burns.

:func:`serve` wires the daemon: SIGTERM and SIGINT both trigger a
graceful drain — finish in-flight jobs, flush journals and ledger,
stop accepting — mirroring satellite requirement "handle SIGTERM
everywhere SIGINT is handled".
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from ..observability.ledger import CASE_STATES
from ..testing import chaos
from .core import CampaignService, ServiceDraining


class _ApiError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        service: CampaignService,
        *,
        chaos_api: bool = False,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.chaos_api = chaos_api
        self.quiet = quiet


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    server_version = "dce-hunt-serve/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, fmt: str, *args: Any) -> None:
        if not self.server.quiet:  # pragma: no cover - debug aid
            super().log_message(fmt, *args)

    def _send(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        try:
            payload = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as error:
            raise _ApiError(400, f"bad JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise _ApiError(400, "body must be a JSON object")
        return payload

    def _dispatch(self, method: str) -> None:
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = {
            key: values[-1] for key, values in parse_qs(url.query).items()
        }
        try:
            if parts and parts[0] in ("healthz", "readyz"):
                # health stays truthful: no chaos, no drain refusal
                self._route_health(parts[0])
                return
            # the serve:handler chaos site — a fault here must be
            # contained to one 500 response, never the daemon; the
            # chaos control endpoint is exempt so drills can always
            # clear the plan they installed
            if parts[2:3] != ["chaos"]:
                chaos.trigger("serve:handler")
            self._route_api(method, parts, query)
        except _ApiError as error:
            self._send(error.status, {"error": str(error)})
        except ServiceDraining as error:
            self._send(503, {"error": str(error)})
        except (KeyError, ValueError) as error:
            self._send(400, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 - containment boundary
            service = self.server.service
            service.metrics.counter("service.handler_errors").inc()
            self._send(500, {"error": f"{type(error).__name__}: {error}"})

    # -- routes --------------------------------------------------------
    def _route_health(self, which: str) -> None:
        service = self.server.service
        if which == "healthz":
            self._send(200, service.health())
            return
        ready = service.ready()
        self._send(
            200 if ready else 503,
            {"ready": ready, "draining": service.draining},
        )

    def _route_api(
        self, method: str, parts: list[str], query: dict[str, str]
    ) -> None:
        if len(parts) < 3 or parts[0] != "api" or parts[1] != "v1":
            raise _ApiError(404, f"no such endpoint: {self.path}")
        service = self.server.service
        head, rest = parts[2], parts[3:]
        if method == "POST" and head in ("seeds", "campaigns") and not rest:
            job_type = "seeds" if head == "seeds" else "campaign"
            job, created = service.submit(job_type, self._body())
            self._send(
                201 if created else 200,
                {"job": job.to_dict(), "created": created},
            )
        elif method == "GET" and head == "jobs" and not rest:
            status = query.get("status")
            self._send(
                200,
                {"jobs": [j.to_dict() for j in service.jobs.jobs(status)]},
            )
        elif method == "GET" and head == "jobs" and len(rest) == 1:
            job = service.jobs.job(rest[0])
            if job is None:
                raise _ApiError(404, f"no job {rest[0]!r}")
            self._send(200, {"job": job.to_dict()})
        elif method == "GET" and head == "cases" and not rest:
            self._send(200, {"cases": service.cases(query.get("state"))})
        elif method == "GET" and head == "cases" and len(rest) == 1:
            case = service.case(rest[0])
            if case is None:
                raise _ApiError(404, f"no case {rest[0]!r}")
            self._send(200, {"case": case})
        elif (
            method == "POST" and head == "cases"
            and len(rest) == 2 and rest[1] == "advance"
        ):
            state = self._body().get("state")
            if state not in CASE_STATES[1:]:
                raise _ApiError(
                    400, f"'state' must be one of {CASE_STATES[1:]}"
                )
            try:
                case = service.advance_case(rest[0], state)
            except KeyError as error:
                raise _ApiError(404, str(error)) from None
            self._send(200, {"case": case})
        elif method == "POST" and head == "chaos" and not rest:
            self._route_chaos()
        else:
            raise _ApiError(404, f"no such endpoint: {self.path}")

    def _route_chaos(self) -> None:
        """Fault-injection control for tests/CI drills (opt-in)."""
        if not self.server.chaos_api:
            raise _ApiError(404, "chaos API not enabled (--chaos-api)")
        specs = self._body().get("faults", [])
        if not isinstance(specs, list):
            raise _ApiError(400, "'faults' must be a list of site:kind")
        try:
            faults = tuple(chaos.parse_fault(spec) for spec in specs)
        except ValueError as error:
            raise _ApiError(400, str(error)) from None
        if faults:
            chaos.install_plan(chaos.FaultPlan(faults))
        else:
            chaos.clear_plan()
        self._send(200, {"installed": [f.site for f in faults]})

    # -- verbs ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")


def serve(
    data_dir: str,
    *,
    host: str = "127.0.0.1",
    port: int = 8321,
    workers: int = 1,
    job_timeout: float | None = None,
    retry_cap: int = 3,
    backoff_base: float = 0.5,
    chaos_api: bool = False,
    events=None,
    on_ready=None,
) -> int:
    """Run the campaign daemon until SIGTERM/SIGINT, then drain.

    Must be called from the main thread (signal handlers).  Prints a
    ``listening on http://host:port`` line through ``on_ready`` so
    wrappers (CLI, tests) can discover an ephemeral port.
    """
    service = CampaignService(
        data_dir,
        workers=workers,
        job_timeout=job_timeout,
        retry_cap=retry_cap,
        backoff_base=backoff_base,
        events=events,
    )
    httpd = ServiceHTTPServer(
        (host, port), service, chaos_api=chaos_api,
    )
    stop = threading.Event()

    def _request_stop(signum, frame):
        stop.set()

    previous = {
        sig: signal.signal(sig, _request_stop)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    server_thread = threading.Thread(
        target=httpd.serve_forever, name="http-server", daemon=True
    )
    try:
        service.start()
        server_thread.start()
        if on_ready is not None:
            actual_host, actual_port = httpd.server_address[:2]
            on_ready(actual_host, actual_port)
        stop.wait()
        # graceful drain: stop claiming, finish in-flight, flush; the
        # HTTP server keeps answering (503 on submissions) meanwhile
        service.drain()
    finally:
        httpd.shutdown()
        server_thread.join(5.0)
        httpd.server_close()
        service.close()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    return 0
