"""Durable job queue for the campaign service.

One SQLite table of jobs, each a JSON payload describing work for the
existing campaign engine: a ``seeds`` job analyzes an explicit seed
list, a ``campaign`` job runs a full ``run_campaign`` sweep (and
records a ledger run row).  The table *is* the queue: the daemon owns
no in-memory state that matters, so killing it at any instant loses
nothing — queued jobs are claimed again after restart, running jobs
are reset to queued (their checkpoint journals make the re-run a
resume, not a restart).

Idempotent submission by content hash: a job's id is the sha256 of its
canonical payload, so re-POSTing the same request returns the existing
job instead of enqueueing a duplicate.  Re-submitting a *failed* job
re-queues it with a fresh retry budget (that is the operator's "try
again" knob).

The connection is shared across the daemon's threads behind one lock
(SQLite serializes writers anyway); cross-*process* contention — a CLI
``cases``/``report`` against a live service — is absorbed by the
bounded busy-retry helper shared with the artifact store.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Any

from ..store.retry import retry_locked

JOB_TYPES = ("seeds", "campaign")
JOB_STATUSES = ("queued", "running", "done", "failed")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id TEXT PRIMARY KEY,
    ordinal INTEGER NOT NULL,
    type TEXT NOT NULL,
    payload_json TEXT NOT NULL,
    status TEXT NOT NULL,
    attempts INTEGER NOT NULL,
    submitted_at REAL NOT NULL,
    updated_at REAL NOT NULL,
    not_before REAL NOT NULL,
    error_json TEXT,
    result_json TEXT
);
CREATE INDEX IF NOT EXISTS idx_jobs_status ON jobs(status, ordinal);
"""


def job_id_for(job_type: str, payload: dict[str, Any]) -> str:
    """Content hash of one job request (the idempotency key)."""
    canonical = json.dumps(
        {"type": job_type, "payload": payload}, sort_keys=True
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass
class Job:
    """One queued/running/finished unit of service work."""

    job_id: str
    ordinal: int
    type: str
    payload: dict[str, Any]
    status: str
    attempts: int
    submitted_at: float
    updated_at: float
    #: earliest wall-clock time a retry may be claimed (backoff)
    not_before: float
    error: dict[str, Any] | None = None
    result: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "type": self.type,
            "payload": self.payload,
            "status": self.status,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "updated_at": self.updated_at,
            "not_before": self.not_before,
            "error": self.error,
            "result": self.result,
        }


class JobStore:
    """SQLite-backed job queue (one file shared with the run ledger)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.lock_retries = 0
        self._lock = threading.RLock()
        # one connection for all daemon threads, serialized by _lock
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA busy_timeout = 5000")
        self._write(lambda: self._conn.executescript(_SCHEMA))

    # -- plumbing ------------------------------------------------------
    def _write(self, operation):
        """One serialized, busy-retried write transaction."""

        def _txn():
            with self._conn:
                return operation()

        with self._lock:
            return retry_locked(_txn, on_retry=self._note_lock_retry)

    def _note_lock_retry(self, attempt: int) -> None:
        self.lock_retries += 1

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- submission ----------------------------------------------------
    def submit(
        self,
        job_type: str,
        payload: dict[str, Any],
        now: float | None = None,
    ) -> tuple[Job, bool]:
        """Enqueue one job; idempotent on content hash.

        Returns ``(job, created)``.  An existing queued/running/done
        job is returned untouched; an existing *failed* job is
        re-queued with a fresh retry budget.
        """
        if job_type not in JOB_TYPES:
            raise ValueError(f"unknown job type {job_type!r}; {JOB_TYPES}")
        stamp = time.time() if now is None else now
        job_id = job_id_for(job_type, payload)

        def _txn() -> tuple[Job, bool]:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
            if row is not None:
                if row["status"] == "failed":
                    self._conn.execute(
                        """UPDATE jobs SET status = 'queued', attempts = 0,
                            not_before = 0, error_json = NULL,
                            updated_at = ? WHERE job_id = ?""",
                        (stamp, job_id),
                    )
                    return self._get(job_id), False
                return self._row_to_job(row), False
            ordinal = self._conn.execute(
                "SELECT COALESCE(MAX(ordinal), 0) + 1 FROM jobs"
            ).fetchone()[0]
            self._conn.execute(
                """INSERT INTO jobs (
                    job_id, ordinal, type, payload_json, status, attempts,
                    submitted_at, updated_at, not_before
                ) VALUES (?, ?, ?, ?, 'queued', 0, ?, ?, 0)""",
                (
                    job_id,
                    ordinal,
                    job_type,
                    json.dumps(payload, sort_keys=True),
                    stamp,
                    stamp,
                ),
            )
            return self._get(job_id), True

        return self._write(_txn)

    # -- worker protocol -----------------------------------------------
    def claim_next(self, now: float | None = None) -> Job | None:
        """Atomically claim the oldest eligible queued job (FIFO by
        submission order; backoff delays respected)."""
        stamp = time.time() if now is None else now

        def _txn() -> Job | None:
            row = self._conn.execute(
                """SELECT * FROM jobs WHERE status = 'queued'
                    AND not_before <= ? ORDER BY ordinal LIMIT 1""",
                (stamp,),
            ).fetchone()
            if row is None:
                return None
            self._conn.execute(
                "UPDATE jobs SET status = 'running', updated_at = ?"
                " WHERE job_id = ?",
                (stamp, row["job_id"]),
            )
            return self._get(row["job_id"])

        return self._write(_txn)

    def finish(
        self, job_id: str, result: dict[str, Any], now: float | None = None
    ) -> None:
        stamp = time.time() if now is None else now
        self._write(
            lambda: self._conn.execute(
                """UPDATE jobs SET status = 'done', result_json = ?,
                    updated_at = ? WHERE job_id = ?""",
                (json.dumps(result, sort_keys=True), stamp, job_id),
            )
        )

    def requeue(
        self,
        job_id: str,
        *,
        delay: float,
        error: dict[str, Any] | None = None,
        now: float | None = None,
    ) -> int:
        """Put a crashed/timed-out job back in the queue after
        ``delay`` seconds; returns the new attempt count."""
        stamp = time.time() if now is None else now

        def _txn() -> int:
            self._conn.execute(
                """UPDATE jobs SET status = 'queued',
                    attempts = attempts + 1, not_before = ?,
                    error_json = ?, updated_at = ? WHERE job_id = ?""",
                (
                    stamp + delay,
                    json.dumps(error, sort_keys=True) if error else None,
                    stamp,
                    job_id,
                ),
            )
            return int(
                self._conn.execute(
                    "SELECT attempts FROM jobs WHERE job_id = ?", (job_id,)
                ).fetchone()[0]
            )

        return self._write(_txn)

    def fail(
        self,
        job_id: str,
        error: dict[str, Any] | None = None,
        now: float | None = None,
    ) -> None:
        """Retire a job that exhausted its retry cap."""
        stamp = time.time() if now is None else now
        self._write(
            lambda: self._conn.execute(
                """UPDATE jobs SET status = 'failed', error_json = ?,
                    updated_at = ? WHERE job_id = ?""",
                (
                    json.dumps(error, sort_keys=True) if error else None,
                    stamp,
                    job_id,
                ),
            )
        )

    def reset_running(self, now: float | None = None) -> int:
        """Crash recovery at daemon start: anything still marked
        running belongs to a dead process — back to the queue (attempt
        counts preserved; the jobs' checkpoint journals turn the re-run
        into a resume)."""
        stamp = time.time() if now is None else now

        def _txn() -> int:
            cursor = self._conn.execute(
                """UPDATE jobs SET status = 'queued', not_before = 0,
                    updated_at = ? WHERE status = 'running'""",
                (stamp,),
            )
            return cursor.rowcount

        return self._write(_txn)

    # -- queries -------------------------------------------------------
    def _get(self, job_id: str) -> Job:
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise KeyError(f"no job {job_id!r}")
        return self._row_to_job(row)

    def job(self, job_id: str) -> Job | None:
        with self._lock:
            try:
                return self._get(job_id)
            except KeyError:
                return None

    def jobs(self, status: str | None = None) -> list[Job]:
        if status is not None and status not in JOB_STATUSES:
            raise ValueError(
                f"unknown status {status!r}; one of {JOB_STATUSES}"
            )
        with self._lock:
            if status is None:
                rows = self._conn.execute(
                    "SELECT * FROM jobs ORDER BY ordinal"
                ).fetchall()
            else:
                rows = self._conn.execute(
                    "SELECT * FROM jobs WHERE status = ? ORDER BY ordinal",
                    (status,),
                ).fetchall()
        return [self._row_to_job(r) for r in rows]

    def counts(self) -> dict[str, int]:
        tally = dict.fromkeys(JOB_STATUSES, 0)
        with self._lock:
            for status, count in self._conn.execute(
                "SELECT status, COUNT(*) FROM jobs GROUP BY status"
            ):
                tally[str(status)] = int(count)
        return tally

    def queue_depth(self) -> int:
        with self._lock:
            return int(
                self._conn.execute(
                    "SELECT COUNT(*) FROM jobs WHERE status IN"
                    " ('queued', 'running')"
                ).fetchone()[0]
            )

    @staticmethod
    def _row_to_job(row: sqlite3.Row) -> Job:
        return Job(
            job_id=row["job_id"],
            ordinal=row["ordinal"],
            type=row["type"],
            payload=json.loads(row["payload_json"]),
            status=row["status"],
            attempts=row["attempts"],
            submitted_at=row["submitted_at"],
            updated_at=row["updated_at"],
            not_before=row["not_before"],
            error=(
                json.loads(row["error_json"])
                if row["error_json"] is not None
                else None
            ),
            result=(
                json.loads(row["result_json"])
                if row["result_json"] is not None
                else None
            ),
        )
