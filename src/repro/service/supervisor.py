"""The service's supervisor loop: worker threads, timeouts, retries.

Each worker thread claims jobs from the :class:`~.jobs.JobStore` and
hands them to a runner callable.  The robustness contract lives here:

* **Per-job wall-clock timeout** — a watchdog timer sets the job's
  cancel event; the campaign engine polls it at seed boundaries and
  raises :class:`~repro.core.corpus.CampaignCancelled` with all
  finished seeds already journaled, so the retried job *resumes*.
  The ``worker_hang`` chaos site sits under an armed
  :func:`repro.budget.deadline` of the same length, so an injected
  busy-spin (a hung worker that never reaches a seed boundary)
  converts into a timeout too instead of wedging the thread.
* **Crash containment** — any other exception folds into the existing
  :class:`~repro.core.resilience.CrashEnvelope` machinery
  (``phase="serve"``) and is stored on the job row.
* **Bounded retries** — timeouts and crashes re-queue the job with
  exponential backoff (``backoff_base * 2**(attempts-1)``) until
  ``retry_cap`` attempts, then the job fails permanently.
* **Graceful drain** — :meth:`Supervisor.drain` stops claiming,
  finishes in-flight jobs, and joins the workers; queued jobs stay in
  SQLite for the next daemon to claim.

Worker liveness is a heartbeat timestamp per thread, surfaced through
``/healthz``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from .. import budget
from ..budget import SeedBudgetExceeded
from ..core.corpus import CampaignCancelled
from ..core.resilience import service_crash_envelope
from ..observability import events as ev
from ..observability.events import EventBus
from ..observability.metrics import MetricsRegistry
from ..testing import chaos
from .jobs import Job, JobStore

#: how often an idle worker re-polls the queue
_POLL_INTERVAL = 0.05

#: runner signature: (job, cancel event) -> JSON-serializable result
Runner = Callable[[Job, threading.Event], dict[str, Any]]


class Supervisor:
    """Run queued jobs on worker threads until stopped or drained."""

    def __init__(
        self,
        runner: Runner,
        store: JobStore,
        *,
        workers: int = 1,
        job_timeout: float | None = None,
        retry_cap: int = 3,
        backoff_base: float = 0.5,
        metrics: MetricsRegistry | None = None,
        events: EventBus | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if retry_cap < 1:
            raise ValueError(f"retry_cap must be >= 1, got {retry_cap}")
        self._runner = runner
        self._store = store
        self._workers = workers
        self.job_timeout = job_timeout
        self.retry_cap = retry_cap
        self.backoff_base = backoff_base
        self.metrics = metrics
        self.events = events
        self._threads: list[threading.Thread] = []
        self._draining = threading.Event()
        self._heartbeats: dict[str, float] = {}
        self._beat_lock = threading.Lock()
        self._in_flight = 0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        if self._threads:
            raise RuntimeError("supervisor already started")
        # jobs left running by a crashed/killed daemon resume as queued
        reset = self._store.reset_running()
        if reset and self.metrics is not None:
            self.metrics.counter("service.jobs_recovered").inc(reset)
        for index in range(self._workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"campaign-worker-{index}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def drain(self, timeout: float | None = None) -> bool:
        """Stop claiming new jobs, finish in-flight ones, join the
        workers.  Returns ``True`` once every worker exited."""
        self._draining.set()
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        for thread in self._threads:
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            thread.join(remaining)
        return not any(t.is_alive() for t in self._threads)

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    # -- introspection -------------------------------------------------
    def heartbeats(self) -> dict[str, float]:
        """Per-worker seconds since the last loop iteration."""
        now = time.monotonic()
        with self._beat_lock:
            return {
                name: now - beat for name, beat in self._heartbeats.items()
            }

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def worker_count(self) -> int:
        return self._workers

    def workers_alive(self) -> int:
        return sum(1 for t in self._threads if t.is_alive())

    # -- the loop ------------------------------------------------------
    def _beat(self) -> None:
        with self._beat_lock:
            self._heartbeats[threading.current_thread().name] = (
                time.monotonic()
            )

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _emit(self, event_type: str, **attrs: Any) -> None:
        if self.events is not None:
            self.events.emit(event_type, **attrs)

    def _worker_loop(self) -> None:
        while not self._draining.is_set():
            self._beat()
            job = self._store.claim_next()
            if job is None:
                time.sleep(_POLL_INTERVAL)
                continue
            self._in_flight += 1
            try:
                self._run_one(job)
            finally:
                self._in_flight -= 1
        self._beat()

    def _run_one(self, job: Job) -> None:
        cancel = threading.Event()
        watchdog: threading.Timer | None = None
        if self.job_timeout is not None:
            watchdog = threading.Timer(self.job_timeout, cancel.set)
            watchdog.daemon = True
            watchdog.start()
        self._emit(
            ev.JOB_STARTED, job=job.job_id, job_type=job.type,
            attempt=job.attempts,
        )
        try:
            # the hang drill: an injected spin here busy-waits like a
            # wedged worker; the armed deadline turns it into a timeout
            with budget.deadline(self.job_timeout):
                chaos.trigger("worker_hang")
            result = self._runner(job, cancel)
        except (CampaignCancelled, SeedBudgetExceeded) as error:
            self._retry(job, kind="timeout", message=str(error))
        except Exception as error:  # noqa: BLE001 - containment boundary
            envelope = service_crash_envelope(job.job_id, error)
            self._count("service.job_crashes")
            self._retry(job, kind="crash", error=envelope.to_dict())
        else:
            self._store.finish(job.job_id, result)
            self._count("service.jobs_done")
            self._emit(
                ev.JOB_DONE, job=job.job_id, job_type=job.type, **{
                    k: v for k, v in result.items()
                    if isinstance(v, (int, str, bool))
                },
            )
        finally:
            if watchdog is not None:
                watchdog.cancel()

    def _retry(
        self,
        job: Job,
        *,
        kind: str,
        message: str | None = None,
        error: dict[str, Any] | None = None,
    ) -> None:
        """Back off and re-queue, or fail permanently at the cap."""
        detail = error if error is not None else {
            "kind": kind, "message": message or kind,
        }
        detail.setdefault("kind", kind)
        next_attempt = job.attempts + 1
        if next_attempt >= self.retry_cap:
            self._store.fail(job.job_id, detail)
            self._count("service.jobs_failed")
            self._emit(
                ev.JOB_FAILED, job=job.job_id, kind=kind,
                attempts=next_attempt,
            )
            return
        delay = self.backoff_base * (2 ** job.attempts)
        self._store.requeue(job.job_id, delay=delay, error=detail)
        self._count("service.job_retries")
        self._emit(
            ev.JOB_RETRIED, job=job.job_id, kind=kind,
            attempt=next_attempt, delay=delay,
        )
