"""Long-running campaign service: daemon, job queue, case lifecycle.

The service turns the one-shot campaign engine into a supervised
daemon: seed submissions and campaign requests arrive over a small
JSON HTTP API, run through the existing parallel engine under a
supervisor with per-job timeouts and bounded backoff retries, and
fold their findings into a durable case-lifecycle table
(``found -> reduced -> bisected -> reported``).  Everything that
matters lives in SQLite and checkpoint journals, so the daemon can be
killed at any instant and resumed without losing or duplicating work.
"""

from .core import CampaignService, ServiceDraining, validate_payload
from .http import ServiceHTTPServer, serve
from .jobs import JOB_STATUSES, JOB_TYPES, Job, JobStore, job_id_for
from .supervisor import Supervisor

__all__ = [
    "CampaignService",
    "ServiceDraining",
    "validate_payload",
    "ServiceHTTPServer",
    "serve",
    "JOB_STATUSES",
    "JOB_TYPES",
    "Job",
    "JobStore",
    "job_id_for",
    "Supervisor",
]
