"""The campaign service: jobs in, lifecycle-tracked cases out.

:class:`CampaignService` owns a data directory::

    DATA/
      service.sqlite     jobs + run ledger + case lifecycle (one file)
      artifacts.sqlite   the PR 9 content-addressed artifact store
      journals/          one checkpoint journal per job

and executes jobs through the existing engine: a job's seeds run
``run_campaign`` with a per-job :class:`CheckpointJournal` and the
shared artifact store, then the findings *fold* into the ledger's case
lifecycle table (``found`` cases keyed by structural fingerprint,
optionally advanced to ``reduced``/``bisected`` when the job asks).

Determinism contract — drain-then-resume equals uninterrupted:

* finished seeds land in the job's journal before anything else
  observes them, so a resumed job replays them bit-identically;
* lifecycle folding is idempotent per ``(job, case)`` — the job id is
  the dedup key, so re-folding after a crash, drain, or mid-fold kill
  changes nothing;
* jobs fold in completion order, and with one worker completion order
  is submission order — the property tests pin the resulting table
  digest against an uninterrupted run.

Every mutation is crash-safe *at rest*: the job table, ledger, and
store are SQLite; the journal is append-only fsynced JSONL.  Killing
the daemon at any instant and restarting resumes with nothing lost
and nothing double-counted.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any

from ..core.corpus import run_campaign
from ..generator import GeneratorConfig
from ..observability import events as ev
from ..observability.events import EventBus
from ..observability.ledger import RunLedger, finding_fingerprint
from ..observability.metrics import MetricsRegistry
from ..store import ArtifactStore
from ..testing import chaos
from .jobs import Job, JobStore
from .supervisor import Supervisor

SERVICE_DB = "service.sqlite"
ARTIFACTS_DB = "artifacts.sqlite"
JOURNAL_DIR = "journals"

#: payload keys every job type accepts
_COMMON_KEYS = {
    "config", "jobs", "seed_budget", "compare_level", "version",
    "incremental", "reduce", "bisect",
}
_SEEDS_KEYS = _COMMON_KEYS | {"seeds"}
_CAMPAIGN_KEYS = _COMMON_KEYS | {"programs", "seed_base"}


def _contiguous_blocks(seeds: list[int]) -> list[tuple[int, int]]:
    """Sorted unique seeds → (base, count) runs the engine can sweep."""
    blocks: list[tuple[int, int]] = []
    for seed in sorted(set(seeds)):
        if blocks and seed == blocks[-1][0] + blocks[-1][1]:
            blocks[-1] = (blocks[-1][0], blocks[-1][1] + 1)
        else:
            blocks.append((seed, 1))
    return blocks


def validate_payload(job_type: str, payload: dict[str, Any]) -> dict[str, Any]:
    """Check one job payload, returning it normalized.  Raises
    ``ValueError`` with a client-presentable message."""
    if not isinstance(payload, dict):
        raise ValueError("payload must be a JSON object")
    allowed = _SEEDS_KEYS if job_type == "seeds" else _CAMPAIGN_KEYS
    unknown = set(payload) - allowed
    if unknown:
        raise ValueError(f"unknown payload keys: {sorted(unknown)}")
    if job_type == "seeds":
        seeds = payload.get("seeds")
        if (
            not isinstance(seeds, list)
            or not seeds
            or not all(isinstance(s, int) and s >= 0 for s in seeds)
        ):
            raise ValueError("'seeds' must be a non-empty list of ints >= 0")
        payload = dict(payload, seeds=sorted(set(seeds)))
    else:
        programs = payload.get("programs")
        if not isinstance(programs, int) or programs < 1:
            raise ValueError("'programs' must be an int >= 1")
        seed_base = payload.get("seed_base", 0)
        if not isinstance(seed_base, int) or seed_base < 0:
            raise ValueError("'seed_base' must be an int >= 0")
        payload = dict(payload, seed_base=seed_base)
    config = payload.get("config")
    if config is not None:
        if not isinstance(config, dict):
            raise ValueError("'config' must be a generator-config object")
        try:
            GeneratorConfig(**config)
        except TypeError as error:
            raise ValueError(f"bad generator config: {error}") from None
    jobs = payload.get("jobs", 1)
    if not isinstance(jobs, int) or jobs < 1:
        raise ValueError("'jobs' must be an int >= 1")
    return payload


class CampaignService:
    """Everything behind the HTTP API: queue, engine, lifecycle."""

    def __init__(
        self,
        data_dir: str,
        *,
        workers: int = 1,
        job_timeout: float | None = None,
        retry_cap: int = 3,
        backoff_base: float = 0.5,
        metrics: MetricsRegistry | None = None,
        events: EventBus | None = None,
    ) -> None:
        self.data_dir = data_dir
        os.makedirs(os.path.join(data_dir, JOURNAL_DIR), exist_ok=True)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events
        self.started_at = time.time()
        self._last_commit = self.started_at
        self._ledger_lock = threading.Lock()
        self.jobs = JobStore(os.path.join(data_dir, SERVICE_DB))
        # ensure the lifecycle schema exists before workers race to it
        with self._ledger() as ledger:
            ledger.lifecycle_counts()
        self.supervisor = Supervisor(
            self._run_job,
            self.jobs,
            workers=workers,
            job_timeout=job_timeout,
            retry_cap=retry_cap,
            backoff_base=backoff_base,
            metrics=self.metrics,
            events=events,
        )

    # -- wiring --------------------------------------------------------
    def _ledger(self) -> RunLedger:
        """A fresh ledger connection (SQLite connections are
        single-thread; contention across them is busy-retried)."""
        return RunLedger(os.path.join(self.data_dir, SERVICE_DB))

    @property
    def artifacts_path(self) -> str:
        return os.path.join(self.data_dir, ARTIFACTS_DB)

    def journal_path(self, job_id: str) -> str:
        return os.path.join(
            self.data_dir, JOURNAL_DIR, f"job-{job_id}.jsonl"
        )

    def start(self) -> None:
        self.supervisor.start()

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful shutdown: refuse new submissions (the API checks
        :attr:`draining`), finish in-flight jobs, flush everything.
        The job store stays open so health endpoints answer truthfully
        until :meth:`close`."""
        drained = self.supervisor.drain(timeout)
        # the mid-drain-kill drill fires between the last in-flight job
        # and the final flush — the restart must lose nothing
        chaos.trigger("serve:drain")
        return drained

    def close(self) -> None:
        self.jobs.close()

    @property
    def draining(self) -> bool:
        return self.supervisor.draining

    # -- submission ----------------------------------------------------
    def submit(
        self, job_type: str, payload: dict[str, Any]
    ) -> tuple[Job, bool]:
        """Validate and enqueue (idempotent by content hash)."""
        if self.draining:
            raise ServiceDraining("service is draining; resubmit after "
                                  "restart")
        payload = validate_payload(job_type, payload)
        job, created = self.jobs.submit(job_type, payload)
        if created:
            self.metrics.counter("service.jobs_submitted").inc()
            if self.events is not None:
                self.events.emit(
                    ev.JOB_SUBMITTED, job=job.job_id, job_type=job_type,
                )
        return job, created

    # -- job execution (worker threads) --------------------------------
    def _run_job(
        self, job: Job, cancel: threading.Event
    ) -> dict[str, Any]:
        payload = job.payload
        if job.type == "seeds":
            blocks = _contiguous_blocks(payload["seeds"])
            total = len(payload["seeds"])
        else:
            blocks = [(payload["seed_base"], payload["programs"])]
            total = payload["programs"]
        config = (
            GeneratorConfig(**payload["config"])
            if payload.get("config") is not None
            else None
        )
        version = payload.get("version")
        compare_level = payload.get("compare_level", "O3")
        incremental = payload.get("incremental", True)
        engine_jobs = payload.get("jobs", 1)
        summary = {
            "seeds": 0, "findings": 0, "crashes": 0, "skipped": 0,
            "cases_new": 0, "cases_advanced": 0, "total": total,
        }
        # one store connection per job execution: the ArtifactStore is
        # not thread-safe across jobs, but per-file write contention is
        # absorbed by busy_timeout + retry_locked
        store = ArtifactStore(self.artifacts_path, metrics=self.metrics)
        started = time.perf_counter()
        try:
            for seed_base, count in blocks:
                reduction = self._reduction_queue(payload)
                result = run_campaign(
                    n_programs=count,
                    seed_base=seed_base,
                    version=version,
                    generator_config=config,
                    compare_level=compare_level,
                    metrics=self.metrics,
                    jobs=engine_jobs,
                    incremental=incremental,
                    seed_budget=payload.get("seed_budget"),
                    checkpoint=self.journal_path(job.job_id),
                    interp=None,
                    reduction=reduction,
                    store=store if not store.disabled else None,
                    cancel=cancel.is_set,
                )
                summary["seeds"] += len(result.seeds)
                summary["findings"] += len(result.findings)
                summary["crashes"] += len(result.crashes)
                summary["skipped"] += len(result.skipped)
                new, advanced = self._fold_lifecycle(
                    job.job_id, result, config, compare_level, version,
                    bisect=bool(payload.get("bisect")),
                )
                summary["cases_new"] += new
                summary["cases_advanced"] += advanced
                if job.type == "campaign":
                    self._record_run(
                        result, payload, config, started, store,
                    )
        finally:
            store.close()
        self._last_commit = time.time()
        return summary

    def _reduction_queue(self, payload: dict[str, Any]):
        if not payload.get("reduce"):
            return None
        from ..core.reduction import ReductionQueue

        return ReductionQueue(
            compare_level=payload.get("compare_level", "O3"),
            version=payload.get("version"),
            generator_config=(
                GeneratorConfig(**payload["config"])
                if payload.get("config") is not None
                else None
            ),
        )

    def _record_run(
        self, result, payload, config, started, store
    ) -> None:
        with self._ledger_lock, self._ledger() as ledger:
            ledger.record_run(
                result,
                n_programs=payload["programs"],
                seed_base=payload["seed_base"],
                jobs=payload.get("jobs", 1),
                incremental=payload.get("incremental", True),
                compare_level=payload.get("compare_level", "O3"),
                version=payload.get("version"),
                generator_config=config,
                metrics=self.metrics,
                wall_time=time.perf_counter() - started,
                reduce_findings=bool(payload.get("reduce")),
                store_used=not store.disabled,
            )

    def _fold_lifecycle(
        self,
        job_id: str,
        result,
        config,
        compare_level: str,
        version,
        *,
        bisect: bool = False,
    ) -> tuple[int, int]:
        """Fold one campaign result's findings into the case table.

        Idempotent per job: the ledger skips occurrence bumps for a
        job id it has already seen, and state transitions are
        forward-only no-ops on re-fold.
        """
        new_cases = 0
        advanced = 0
        reduced = result.reduced_fingerprints or {}
        with self._ledger_lock, self._ledger() as ledger:
            for index, finding in enumerate(result.findings):
                fingerprint = finding_fingerprint(
                    finding, config, compare_level, version,
                )
                canonical, created = ledger.record_case(
                    finding, fingerprint, job=job_id,
                )
                if created:
                    new_cases += 1
                    self.metrics.counter("service.cases_found").inc()
                    if self.events is not None:
                        self.events.emit(
                            ev.CASE_FOUND, case=canonical,
                            kind=finding["kind"], seed=finding["seed"],
                            job=job_id,
                        )
                reduced_fp = reduced.get(index)
                if reduced_fp is not None:
                    canonical, did = ledger.advance_case(
                        canonical, "reduced",
                        reduced_fingerprint=reduced_fp,
                    )
                    advanced += self._note_advance(
                        canonical, "reduced", did, job_id
                    )
                if bisect:
                    canonical, did = self._bisect_case(
                        ledger, canonical, finding, config, compare_level,
                    )
                    advanced += self._note_advance(
                        canonical, "bisected", did, job_id
                    )
        self._last_commit = time.time()
        return new_cases, advanced

    def _note_advance(
        self, case: str, state: str, did: bool, job_id: str
    ) -> int:
        if not did:
            return 0
        self.metrics.counter("service.cases_advanced").inc()
        if self.events is not None:
            self.events.emit(
                ev.CASE_ADVANCED, case=case, state=state, job=job_id,
            )
        return 1

    def _bisect_case(
        self, ledger, canonical, finding, config, compare_level
    ) -> tuple[str, bool]:
        """Best-effort version bisection of a cross-level finding
        (skipped silently when the finding shape doesn't apply)."""
        from ..core.bisect import bisect_marker_regression
        from ..core.markers import instrument_program
        from ..generator import generate_program

        if finding["kind"] != "cross-level" or not finding.get("markers"):
            return canonical, False
        case = ledger.case(canonical)
        if case is not None and case.state != "reduced":
            # bisection only advances already-reduced cases; found→
            # bisected would skip a lifecycle stage
            return canonical, False
        try:
            program = instrument_program(
                generate_program(finding["seed"], config)
            ).program
            outcome = bisect_marker_regression(
                program,
                finding["markers"][0],
                family=finding["family"],
                level=compare_level,
            )
        except Exception:  # noqa: BLE001 - bisection is best-effort
            self.metrics.counter("service.bisect_errors").inc()
            return canonical, False
        if outcome is None:
            return canonical, False
        return ledger.advance_case(
            canonical, "bisected", bisect={
                "family": outcome.family,
                "first_bad": outcome.first_bad,
                "component": outcome.component,
                "files": list(outcome.files),
                "steps": outcome.steps,
            },
        )

    # -- case queries / transitions ------------------------------------
    def lifecycle_counts(self) -> dict[str, int]:
        with self._ledger() as ledger:
            return ledger.lifecycle_counts()

    def cases(self, state: str | None = None) -> list[dict[str, Any]]:
        with self._ledger() as ledger:
            return [case.to_dict() for case in ledger.cases(state)]

    def case(self, fingerprint: str) -> dict[str, Any] | None:
        with self._ledger() as ledger:
            case = ledger.case(fingerprint)
            return case.to_dict() if case is not None else None

    def advance_case(self, fingerprint: str, state: str) -> dict[str, Any]:
        """Operator-driven transition (normally ``reported``)."""
        with self._ledger_lock, self._ledger() as ledger:
            canonical, did = ledger.advance_case(fingerprint, state)
            case = ledger.case(canonical)
        self._last_commit = time.time()
        if did:
            self.metrics.counter("service.cases_advanced").inc()
            if self.events is not None:
                self.events.emit(
                    ev.CASE_ADVANCED, case=canonical, state=state,
                    job="api",
                )
        assert case is not None
        return case.to_dict()

    # -- health --------------------------------------------------------
    def health(self) -> dict[str, Any]:
        counts = self.jobs.counts()
        beats = self.supervisor.heartbeats()
        return {
            "status": "draining" if self.draining else "ok",
            "uptime": time.time() - self.started_at,
            "queue_depth": self.jobs.queue_depth(),
            "jobs": counts,
            "in_flight": self.supervisor.in_flight,
            "workers_alive": self.supervisor.workers_alive(),
            "worker_heartbeat_age": (
                round(max(beats.values()), 3) if beats else None
            ),
            "last_commit_age": round(time.time() - self._last_commit, 3),
            "lifecycle": self.lifecycle_counts(),
            "lock_retries": (
                self.jobs.lock_retries
            ),
        }

    def ready(self) -> bool:
        """Readiness: accepting submissions and workers alive."""
        return (
            not self.draining
            and self.supervisor.workers_alive()
            == self.supervisor.worker_count
        )


class ServiceDraining(RuntimeError):
    """Submissions are refused while the service drains."""
