"""Bounded retry for SQLite write contention.

SQLite serializes writers per database file: when a second connection
holds the write lock past ``busy_timeout``, the losing connection
raises ``sqlite3.OperationalError: database is locked``.  Under the
campaign *service* several threads (and concurrent ``report`` / CLI
invocations) share the ledger and artifact-store files, so a raw
locked error can no longer be allowed to propagate: the PR 9 store
would degrade to cold, and a ledger write would be lost outright.

:func:`retry_locked` wraps one write transaction in a bounded
exponential-backoff loop.  It retries *only* lock/busy contention —
every other ``OperationalError`` (disk full, malformed database, bad
SQL) still raises on the first attempt — and it re-raises the final
lock error once the attempt cap is reached, so a wedged database never
turns into an unbounded stall.  Callers observe retries through the
``on_retry`` callback (wired to the ``store.lock_retries`` /
``ledger.lock_retries`` counters).

The wrapped operation must be *idempotent as a transaction*: it is
re-invoked from scratch on retry, so it should contain exactly one
``BEGIN``-to-``COMMIT`` unit (e.g. a ``with conn:`` block), never half
of one.
"""

from __future__ import annotations

import sqlite3
import time
from typing import Callable, TypeVar

T = TypeVar("T")

#: default attempt cap; total worst-case sleep at the default base
#: delay is 0.05 * (1+2+4+8+16) = 1.55s
DEFAULT_ATTEMPTS = 6
DEFAULT_BASE_DELAY = 0.05


def is_locked_error(error: BaseException) -> bool:
    """Whether ``error`` is SQLite lock/busy contention (retriable),
    as opposed to a structural failure (not retriable)."""
    if not isinstance(error, sqlite3.OperationalError):
        return False
    message = str(error).lower()
    return "locked" in message or "busy" in message


def retry_locked(
    operation: Callable[[], T],
    *,
    attempts: int = DEFAULT_ATTEMPTS,
    base_delay: float = DEFAULT_BASE_DELAY,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int], None] | None = None,
) -> T:
    """Run ``operation()``, retrying ``database is locked`` errors with
    exponential backoff; give up (re-raise) after ``attempts`` tries.

    ``on_retry(attempt)`` is called before each backoff sleep with the
    zero-based attempt number that just failed.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    for attempt in range(attempts):
        try:
            return operation()
        except sqlite3.OperationalError as error:
            if not is_locked_error(error) or attempt == attempts - 1:
                raise
            if on_retry is not None:
                on_retry(attempt)
            sleep(base_delay * (2**attempt))
    raise AssertionError("unreachable")  # pragma: no cover
