"""SQLite-backed content-addressed artifact store.

Modeled on the compressed content-hash database at the heart of
diopter's DCE workflow: program text is zlib-compressed and keyed by
its sha256, and every expensive derivation the campaign engine
performs is memoized in a table keyed by the hashes of its inputs:

``programs``
    content-addressed program text (instrumented sources whose ground
    truth has been computed; ``store export`` recovers them).
``compile_memo``
    ``(module fingerprint, pipeline-config fingerprint) →`` the set of
    markers the pipeline eliminated — the persistent L2 behind the
    incremental engine's in-memory prefix tree.
``truth_memo``
    ``(instrumented-program hash, step limit) →`` a summary of the
    reference execution (including step-limit blowups, which are as
    deterministic as successes).
``oracle_memo``
    reduction-oracle verdicts keyed by the existing
    ``sha256(predicate.cache_key, printed text)`` candidate key.
``seed_analyses``
    fully analyzed seeds per campaign scope; a warm rerun replays the
    pickled :class:`~repro.core.resilience.SeedReport` instead of
    re-analyzing.

Failure policy: the store must never take a campaign down.  Every
public method is guarded — the first SQLite/zlib/pickle/JSON error
disables the store for the rest of the process (reads miss, writes
drop) and is tallied on :attr:`ArtifactStore.errors` plus the
``store.errors`` counter when a metrics registry is attached.

Concurrency: pool workers open the file read-only (SQLite URI
``mode=ro``) and ship new entries back to the parent inside picklable
:class:`StoreDelta` objects riding the existing envelope pattern; only
the parent writes, committing in seed order.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sqlite3
import zlib
from dataclasses import asdict, dataclass, field
from typing import Any, Iterable

from ..testing.chaos import InjectedFault, trigger
from .retry import retry_locked

SCHEMA_VERSION = 1

#: exceptions that flip the store into degraded (cold) mode.
#: ``InjectedFault`` is here so the ``store_write`` chaos site degrades
#: exactly like a real mid-write failure would.
_STORE_ERRORS = (
    sqlite3.Error,
    zlib.error,
    pickle.PickleError,
    json.JSONDecodeError,
    ValueError,
    TypeError,
    EOFError,
    AttributeError,
    ImportError,
    OSError,
    InjectedFault,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS programs (
    hash TEXT PRIMARY KEY,
    size INTEGER NOT NULL,
    body BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS compile_memo (
    module_fp TEXT NOT NULL,
    config_fp TEXT NOT NULL,
    eliminated TEXT NOT NULL,
    PRIMARY KEY (module_fp, config_fp)
);
CREATE TABLE IF NOT EXISTS truth_memo (
    program_hash TEXT NOT NULL,
    step_limit INTEGER NOT NULL,
    record TEXT NOT NULL,
    PRIMARY KEY (program_hash, step_limit)
);
CREATE TABLE IF NOT EXISTS oracle_memo (
    key TEXT PRIMARY KEY,
    verdict INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS seed_analyses (
    scope_fp TEXT NOT NULL,
    seed INTEGER NOT NULL,
    status TEXT NOT NULL,
    report BLOB NOT NULL,
    PRIMARY KEY (scope_fp, seed)
);
"""


def program_text_key(text: str) -> str:
    """Content address of one program: sha256 of its printed text."""
    return hashlib.sha256(text.encode()).hexdigest()


def seed_scope_fingerprint(version, generator_config) -> str:
    """Identity of a seed's analysis inputs.

    A seed's :class:`SeedReport` is a pure function of
    ``(seed, version, generator_config)`` — deliberately *not* of
    ``n_programs``/``seed_base`` (so a larger campaign reuses a smaller
    one's seeds) nor ``compare_level`` (applied at merge time from the
    stored outcome) nor the interpreter backend (bit-identical by
    contract).
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "version": version,
        "generator_config": (
            asdict(generator_config) if generator_config is not None else None
        ),
    }
    digest = hashlib.sha256(json.dumps(payload, sort_keys=True).encode())
    return digest.hexdigest()[:16]


def report_is_cacheable(report) -> bool:
    """Only deterministic, machine-independent outcomes are stored.

    ``ok`` (complete, non-degraded) and ``skipped`` (step-limit) seeds
    replay identically anywhere; crashes and wall-clock budget blowups
    are transient and must be retried cold.
    """
    return (
        report.crash is None
        and not report.budget_exceeded
        and not report.degraded
        and (report.skipped or report.outcome is not None)
    )


@dataclass
class StoreDelta:
    """Picklable carrier of new store entries discovered by one seed.

    Workers never write the database; they accumulate entries here and
    ship the delta back in ``SeedEnvelope`` for the parent to commit in
    seed order (the same pattern worker metrics and events use).
    """

    programs: dict[str, str] = field(default_factory=dict)
    compile_memo: dict[tuple[str, str], tuple[str, ...]] = field(
        default_factory=dict
    )
    truth_memo: dict[tuple[str, int], dict[str, Any]] = field(
        default_factory=dict
    )

    def __bool__(self) -> bool:
        return bool(self.programs or self.compile_memo or self.truth_memo)


class StoreSession:
    """Read-through view over a store plus a recording delta.

    One session per seed analysis: lookups consult the delta first
    (entries discovered earlier in the same seed), then the backing
    store; misses are recorded into the delta after recomputation.
    Hit counters go to the per-seed metrics registry so they merge
    across pool workers like every other counter.
    """

    def __init__(self, store: "ArtifactStore | None", metrics=None) -> None:
        self.store = store
        self.metrics = metrics
        self.delta = StoreDelta()

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    # -- compile memo -------------------------------------------------
    def lookup_compile(
        self, module_fp: str, config_fp: str
    ) -> frozenset[str] | None:
        eliminated = self.delta.compile_memo.get((module_fp, config_fp))
        if eliminated is None and self.store is not None:
            eliminated = self.store.get_compile(module_fp, config_fp)
        if eliminated is None:
            return None
        self._count("store.compile_hits")
        return frozenset(eliminated)

    def record_compile(
        self, module_fp: str, config_fp: str, eliminated: Iterable[str]
    ) -> None:
        self.delta.compile_memo[(module_fp, config_fp)] = tuple(
            sorted(eliminated)
        )

    # -- ground-truth memo --------------------------------------------
    def lookup_truth(
        self, program_hash: str, step_limit: int
    ) -> dict[str, Any] | None:
        record = self.delta.truth_memo.get((program_hash, step_limit))
        if record is None and self.store is not None:
            record = self.store.get_truth(program_hash, step_limit)
        if record is None:
            return None
        self._count("store.truth_hits")
        return record

    def record_truth(
        self,
        program_hash: str,
        step_limit: int,
        record: dict[str, Any],
        text: str,
    ) -> None:
        self.delta.truth_memo[(program_hash, step_limit)] = record
        self.delta.programs.setdefault(program_hash, text)


class ArtifactStore:
    """One SQLite file accumulating artifacts across campaigns."""

    def __init__(
        self, path: str, *, read_only: bool = False, metrics=None
    ) -> None:
        self.path = path
        self.read_only = read_only
        self.metrics = metrics
        self.errors = 0
        self.lock_retries = 0
        self.disabled = False
        self._con: sqlite3.Connection | None = None
        try:
            if read_only:
                self._con = sqlite3.connect(
                    f"file:{path}?mode=ro", uri=True
                )
            else:
                self._con = sqlite3.connect(path)
                self._con.executescript(_SCHEMA)
                self._con.execute(
                    "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)),
                )
                self._con.commit()
            self._con.execute("PRAGMA busy_timeout = 5000")
            # a corrupt file should surface at open, not mid-campaign
            self._con.execute("SELECT COUNT(*) FROM sqlite_master").fetchone()
        except _STORE_ERRORS:
            self._fail()

    # -- write contention ---------------------------------------------
    def _note_lock_retry(self, attempt: int) -> None:
        self.lock_retries += 1
        if self.metrics is not None:
            self.metrics.counter("store.lock_retries").inc()

    def _retrying(self, operation):
        """Run one write transaction, absorbing bounded ``database is
        locked`` contention (concurrent service jobs / CLI invocations
        share the file)."""
        return retry_locked(operation, on_retry=self._note_lock_retry)

    # -- failure policy -----------------------------------------------
    def _fail(self) -> None:
        """Degrade to cold: reads miss, writes drop, never raise."""
        self.errors += 1
        self.disabled = True
        if self.metrics is not None:
            self.metrics.counter("store.errors").inc()
        if self._con is not None:
            try:
                self._con.close()
            except sqlite3.Error:
                pass
            self._con = None

    def close(self) -> None:
        if self._con is not None:
            try:
                self._con.commit()
                self._con.close()
            except sqlite3.Error:
                pass
            self._con = None

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def session(self, metrics=None) -> StoreSession:
        return StoreSession(self, metrics=metrics)

    # -- reads --------------------------------------------------------
    def get_compile(
        self, module_fp: str, config_fp: str
    ) -> tuple[str, ...] | None:
        if self._con is None:
            return None
        try:
            row = self._con.execute(
                "SELECT eliminated FROM compile_memo"
                " WHERE module_fp = ? AND config_fp = ?",
                (module_fp, config_fp),
            ).fetchone()
            if row is None:
                return None
            eliminated = json.loads(row[0])
            return tuple(str(name) for name in eliminated)
        except _STORE_ERRORS:
            self._fail()
            return None

    def get_truth(
        self, program_hash: str, step_limit: int
    ) -> dict[str, Any] | None:
        if self._con is None:
            return None
        try:
            row = self._con.execute(
                "SELECT record FROM truth_memo"
                " WHERE program_hash = ? AND step_limit = ?",
                (program_hash, step_limit),
            ).fetchone()
            if row is None:
                return None
            record = json.loads(row[0])
            if not isinstance(record, dict):
                raise ValueError("truth record is not an object")
            return record
        except _STORE_ERRORS:
            self._fail()
            return None

    def oracle_entries(self) -> dict[str, bool]:
        """Every persisted reduction-oracle verdict (warm-start seed)."""
        if self._con is None:
            return {}
        try:
            rows = self._con.execute(
                "SELECT key, verdict FROM oracle_memo"
            ).fetchall()
            return {str(key): bool(verdict) for key, verdict in rows}
        except _STORE_ERRORS:
            self._fail()
            return {}

    def load_seed_reports(
        self, scope_fp: str, start: int, stop: int
    ) -> dict[int, Any]:
        """Stored :class:`SeedReport` objects for seeds in [start, stop).

        Undecodable rows (e.g. pickled against an older code version)
        are silently treated as misses and re-analyzed.
        """
        if self._con is None:
            return {}
        try:
            rows = self._con.execute(
                "SELECT seed, report FROM seed_analyses"
                " WHERE scope_fp = ? AND seed >= ? AND seed < ?"
                " ORDER BY seed",
                (scope_fp, start, stop),
            ).fetchall()
        except _STORE_ERRORS:
            self._fail()
            return {}
        reports: dict[int, Any] = {}
        for seed, blob in rows:
            try:
                report = pickle.loads(zlib.decompress(blob))
            except _STORE_ERRORS:
                self.errors += 1
                if self.metrics is not None:
                    self.metrics.counter("store.errors").inc()
                continue
            if report.seed != seed:
                continue
            reports[int(seed)] = report
        return reports

    def get_program(self, program_hash: str) -> str | None:
        if self._con is None:
            return None
        try:
            row = self._con.execute(
                "SELECT body FROM programs WHERE hash = ?", (program_hash,)
            ).fetchone()
            if row is None:
                return None
            return zlib.decompress(row[0]).decode()
        except _STORE_ERRORS:
            self._fail()
            return None

    def program_hashes(self) -> list[tuple[str, int]]:
        if self._con is None:
            return []
        try:
            return [
                (str(h), int(s))
                for h, s in self._con.execute(
                    "SELECT hash, size FROM programs ORDER BY hash"
                )
            ]
        except _STORE_ERRORS:
            self._fail()
            return []

    # -- writes (parent process only) ---------------------------------
    def apply_delta(self, delta: StoreDelta) -> None:
        if self._con is None or self.read_only or not delta:
            return
        try:
            trigger("store_write")

            def _write() -> None:
                for program_hash, text in delta.programs.items():
                    body = text.encode()
                    self._con.execute(
                        "INSERT OR IGNORE INTO programs (hash, size, body)"
                        " VALUES (?, ?, ?)",
                        (program_hash, len(body), zlib.compress(body, 9)),
                    )
                for (module_fp, config_fp), names in (
                    delta.compile_memo.items()
                ):
                    self._con.execute(
                        "INSERT OR IGNORE INTO compile_memo"
                        " (module_fp, config_fp, eliminated) VALUES (?, ?, ?)",
                        (module_fp, config_fp, json.dumps(sorted(names))),
                    )
                for (program_hash, limit), record in delta.truth_memo.items():
                    self._con.execute(
                        "INSERT OR IGNORE INTO truth_memo"
                        " (program_hash, step_limit, record)"
                        " VALUES (?, ?, ?)",
                        (
                            program_hash,
                            limit,
                            json.dumps(record, sort_keys=True),
                        ),
                    )

            self._retrying(_write)
        except _STORE_ERRORS:
            self._fail()

    def record_seed_report(self, scope_fp: str, report) -> None:
        if self._con is None or self.read_only:
            return
        if not report_is_cacheable(report):
            return
        try:
            trigger("store_write")
            status = "skipped" if report.outcome is None else "ok"
            blob = zlib.compress(pickle.dumps(report), 9)
            self._retrying(
                lambda: self._con.execute(
                    "INSERT OR REPLACE INTO seed_analyses"
                    " (scope_fp, seed, status, report) VALUES (?, ?, ?, ?)",
                    (scope_fp, report.seed, status, blob),
                )
            )
        except _STORE_ERRORS:
            self._fail()

    def record_oracle_entries(self, entries: dict[str, bool]) -> None:
        if self._con is None or self.read_only or not entries:
            return
        try:
            trigger("store_write")
            rows = [(key, int(bool(v))) for key, v in sorted(entries.items())]

            def _write() -> None:
                self._con.executemany(
                    "INSERT OR IGNORE INTO oracle_memo (key, verdict)"
                    " VALUES (?, ?)",
                    rows,
                )
                self._con.commit()

            self._retrying(_write)
        except _STORE_ERRORS:
            self._fail()

    def commit(self) -> None:
        if self._con is None or self.read_only:
            return
        try:
            self._retrying(self._con.commit)
        except _STORE_ERRORS:
            self._fail()

    def commit_seed(self, scope_fp: str, report, delta: StoreDelta) -> None:
        """Apply one merged seed's new entries and durably commit."""
        self.apply_delta(delta)
        self.record_seed_report(scope_fp, report)
        self.commit()

    # -- maintenance (CLI) --------------------------------------------
    def stats(self) -> dict[str, Any]:
        counts: dict[str, Any] = {}
        if self._con is None:
            return {"disabled": True, "errors": self.errors}
        try:
            for table in (
                "programs",
                "compile_memo",
                "truth_memo",
                "oracle_memo",
                "seed_analyses",
            ):
                counts[table] = self._con.execute(
                    f"SELECT COUNT(*) FROM {table}"
                ).fetchone()[0]
            raw, packed = self._con.execute(
                "SELECT COALESCE(SUM(size), 0), COALESCE(SUM(LENGTH(body)), 0)"
                " FROM programs"
            ).fetchone()
            counts["program_bytes"] = int(raw)
            counts["compressed_bytes"] = int(packed)
            counts["seed_scopes"] = self._con.execute(
                "SELECT COUNT(DISTINCT scope_fp) FROM seed_analyses"
            ).fetchone()[0]
        except _STORE_ERRORS:
            self._fail()
            return {"disabled": True, "errors": self.errors}
        try:
            counts["file_bytes"] = os.path.getsize(self.path)
        except OSError:
            counts["file_bytes"] = 0
        return counts

    def gc(self) -> dict[str, int]:
        """Drop program blobs no memo references, then compact."""
        if self._con is None or self.read_only:
            return {"removed": 0, "reclaimed_bytes": 0}
        try:
            before = os.path.getsize(self.path)
        except OSError:
            before = 0
        try:
            cursor = self._con.execute(
                "DELETE FROM programs WHERE hash NOT IN"
                " (SELECT program_hash FROM truth_memo)"
            )
            removed = cursor.rowcount
            self._con.commit()
            self._con.execute("VACUUM")
        except _STORE_ERRORS:
            self._fail()
            return {"removed": 0, "reclaimed_bytes": 0}
        try:
            after = os.path.getsize(self.path)
        except OSError:
            after = before
        return {"removed": removed, "reclaimed_bytes": max(0, before - after)}


def open_store(
    path: str, *, read_only: bool = False, metrics=None
) -> ArtifactStore | None:
    """Open a store, degrading to ``None`` (cold) on any failure."""
    try:
        store = ArtifactStore(path, read_only=read_only, metrics=metrics)
    except _STORE_ERRORS:
        return None
    if store.disabled:
        store.close()
        return None
    return store
