"""Persistent content-addressed artifact store.

Every in-process cache the campaign engine has grown (incremental
prefix tree, reduction oracle memo, per-config compile memo) dies with
the process; this package makes them durable.  :class:`ArtifactStore`
is a single SQLite file holding zlib-compressed program text keyed by
sha256 plus memo tables for compile results, ground-truth executions,
reduction oracle verdicts, and fully analyzed seeds — so a warm
campaign rerun replays recorded work instead of re-deriving it.

Determinism contract: the store only ever *skips* recomputation of
values that are pure functions of their keys, so a warm rerun produces
a byte-identical ``CampaignResult`` and event stream (modulo
timestamps) vs a cold one.  Corruption at any level degrades to a cold
run — the store disables itself and counts ``store.errors`` rather
than ever crashing a campaign.
"""

from .artifact import (
    ArtifactStore,
    StoreDelta,
    StoreSession,
    open_store,
    program_text_key,
    seed_scope_fingerprint,
)
from .retry import is_locked_error, retry_locked

__all__ = [
    "ArtifactStore",
    "StoreDelta",
    "StoreSession",
    "is_locked_error",
    "open_store",
    "program_text_key",
    "retry_locked",
    "seed_scope_fingerprint",
]
