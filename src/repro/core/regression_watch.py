"""Continuous regression watching (paper §4.4, "Uncovering missed
optimizations in practice").

The paper suggests differentially testing a compiler's development tip
against its previous release to catch new regressions as they land.
``watch`` does exactly that: generate fresh programs, compare marker
elimination between two versions of one family, and report (and
optionally bisect) every regression.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compilers import CompilerSpec
from ..compilers.versions import latest
from ..frontend.typecheck import check_program
from ..generator import GeneratorConfig, generate_program
from ..interp import StepLimitExceeded
from .bisect import BisectionResult, bisect_versions, marker_regression_predicate
from .differential import analyze_markers
from .ground_truth import compute_ground_truth
from .markers import instrument_program


@dataclass
class Regression:
    seed: int
    family: str
    level: str
    marker: str
    old_version: int
    new_version: int
    bisection: BisectionResult | None = None


@dataclass
class WatchReport:
    family: str
    old_version: int
    new_version: int
    programs: int = 0
    regressions: list[Regression] = field(default_factory=list)
    improvements: int = 0

    def components(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for reg in self.regressions:
            if reg.bisection is not None:
                comp = reg.bisection.component
                out[comp] = out.get(comp, 0) + 1
        return out


def watch(
    family: str,
    old_version: int,
    new_version: int | None = None,
    n_programs: int = 20,
    seed_base: int = 10_000,
    levels: tuple[str, ...] = ("O3",),
    bisect: bool = True,
    generator_config: GeneratorConfig | None = None,
    bisect_limit_per_program: int = 3,
) -> WatchReport:
    """Compare two versions of one compiler family on fresh programs.

    Bisections dominate the cost (each is O(log versions) full
    compilations), and regressed markers within one program usually
    share a root cause, so at most ``bisect_limit_per_program`` markers
    are bisected per (program, level); the rest are still recorded.
    """
    if new_version is None:
        new_version = latest(family)
    report = WatchReport(family, old_version, new_version)
    for seed in range(seed_base, seed_base + n_programs):
        program = generate_program(seed, generator_config)
        instrumented = instrument_program(program)
        info = check_program(instrumented.program)
        try:
            truth = compute_ground_truth(instrumented, info=info)
        except StepLimitExceeded:
            continue
        report.programs += 1
        specs = [
            CompilerSpec(family, level, version)
            for level in levels
            for version in (old_version, new_version)
        ]
        analysis = analyze_markers(instrumented, specs, info=info, ground_truth=truth)
        for level in levels:
            old_out = analysis.outcome(CompilerSpec(family, level, old_version))
            new_out = analysis.outcome(CompilerSpec(family, level, new_version))
            regressed = (old_out.eliminated & new_out.alive) & truth.dead
            report.improvements += len(new_out.eliminated & old_out.alive & truth.dead)
            bisected = 0
            for marker in sorted(regressed):
                reg = Regression(seed, family, level, marker, old_version, new_version)
                if bisect and bisected < bisect_limit_per_program:
                    bisected += 1
                    is_bad = marker_regression_predicate(
                        instrumented.program, marker, family, level, info
                    )
                    try:
                        reg.bisection = bisect_versions(
                            family, is_bad, good=old_version, bad=new_version
                        )
                    except ValueError:
                        reg.bisection = None
                report.regressions.append(reg)
    return report
