"""Differential marker testing (paper §3.1, steps ②–③).

Compile one instrumented program under several compiler specs, read
each compiler's alive-marker set off its assembly, and compare:

* against the *ground truth* (the hypothetically ideal compiler),
* across compilers at the same level (``gcclike`` vs ``llvmlike``),
* across levels of one compiler (-O1/-O2 vs -O3).

A compiler that keeps a marker another one (or the ground truth
witness) removes has missed an optimization; a compiler that *removes
an alive marker* has miscompiled, which :func:`soundness_violations`
surfaces (none are expected — the test suite asserts it).
"""

from __future__ import annotations

import time
from dataclasses import astuple, dataclass, field

from ..backend.asm import alive_markers as asm_alive_markers
from ..backend.asm import emit_module
from ..compilers import CompilerSpec, IncrementalEngine, compile_minic
from ..compilers.incremental import config_fingerprint_of
from ..frontend.lower import lower_program
from ..ir.printer import fingerprint_module
from ..frontend.typecheck import SymbolInfo, check_program
from ..observability.metrics import MetricsRegistry
from ..observability.tracer import current_tracer
from .ground_truth import GroundTruth, compute_ground_truth
from .markers import InstrumentedProgram


@dataclass
class MarkerOutcome:
    """One compiler's verdict on every marker of one program."""

    spec: CompilerSpec
    alive: frozenset[str]
    all_markers: frozenset[str]

    @property
    def eliminated(self) -> frozenset[str]:
        return self.all_markers - self.alive


@dataclass
class ProgramAnalysis:
    instrumented: InstrumentedProgram
    ground_truth: GroundTruth
    outcomes: dict[str, MarkerOutcome] = field(default_factory=dict)

    def outcome(self, spec: CompilerSpec) -> MarkerOutcome:
        return self.outcomes[str(spec)]

    def missed_vs_ideal(self, spec: CompilerSpec) -> frozenset[str]:
        """Dead markers this compiler failed to eliminate."""
        return self.ground_truth.dead & self.outcome(spec).alive

    def missed_vs(self, spec: CompilerSpec, witness: CompilerSpec) -> frozenset[str]:
        """Markers ``spec`` keeps that ``witness`` eliminates — the
        paper's missed-optimization set for ``spec``."""
        return self.outcome(spec).alive & self.outcome(witness).eliminated

    def soundness_violations(self, spec: CompilerSpec) -> frozenset[str]:
        """Alive markers the compiler (wrongly) eliminated."""
        return self.ground_truth.alive & self.outcome(spec).eliminated


def analyze_markers(
    instrumented: InstrumentedProgram,
    specs: list[CompilerSpec],
    info: SymbolInfo | None = None,
    ground_truth: GroundTruth | None = None,
    marker_prefix: str = "DCEMarker",
    metrics: MetricsRegistry | None = None,
    incremental: bool = True,
    verify_ir: bool = False,
    store=None,
) -> ProgramAnalysis:
    """Run the full marker pipeline for ``instrumented`` under ``specs``.

    With a ``metrics`` registry, each compilation's latency is observed
    into a per-spec ``compile_latency_ms/<spec>`` histogram.

    Alive-marker sets are a pure function of (program, pipeline
    config), so specs whose resolved :class:`PipelineConfig` coincide
    (e.g. ``gcclike-O0`` and ``llvmlike-O0`` at tip, or unchanged
    levels across versions in a regression watch) compile once and
    share the result.  A cache hit still observes the (near-zero)
    lookup latency into the spec's histogram — the per-spec
    observation count stays one per call — and bumps the
    ``campaign.compile_cache_hits`` counter instead of
    ``campaign.compilations``.

    Distinct configs additionally share pass work through one
    :class:`~repro.compilers.incremental.IncrementalEngine` per call:
    the program lowers once and each config's pipeline runs over the
    engine's prefix-shared snapshot tree, producing alive sets
    identical to independent ``compile_minic`` runs while the
    ``compile.pass_execs_saved`` counter records the eliminated work.
    ``incremental=False`` restores the independent-compile path.

    ``verify_ir`` runs the IR verifier after every pass of every
    compilation (both engines): a pass that produces malformed IR then
    fails the compile with a
    :class:`~repro.compilers.pipeline.PassPipelineError` naming the
    offending pass, instead of silently miscounting markers downstream.
    Off by default — it roughly doubles compile time.

    ``store`` is an optional :class:`~repro.store.StoreSession`
    providing a persistent L2 behind the in-memory caches: eliminated-
    marker sets are memoized on ``(fingerprint of the lowered module,
    config fingerprint)``, so a config whose result is on record skips
    the compiler entirely (``store.compile_hits`` instead of
    ``campaign.compilations``).  Alive sets are a pure function of that
    key, so results are byte-identical either way.
    """
    if info is None:
        info = check_program(instrumented.program)
    if ground_truth is None:
        ground_truth = compute_ground_truth(instrumented, info=info)
    analysis = ProgramAnalysis(instrumented, ground_truth)
    tracer = current_tracer()
    engine: IncrementalEngine | None = None
    lowered = None
    base_fp: str | None = None
    if store is not None:
        lowered = lower_program(instrumented.program, info)
        base_fp = fingerprint_module(lowered)
    by_config: dict[tuple, frozenset[str]] = {}
    config_fps: dict[tuple, str] = {}
    for spec in specs:
        start = time.perf_counter()
        config = spec.config()
        config_key = astuple(config)
        alive = by_config.get(config_key)
        config_fp: str | None = None
        if alive is None and store is not None:
            config_fp = config_fps.get(config_key)
            if config_fp is None:
                config_fp = config_fingerprint_of(config)
                config_fps[config_key] = config_fp
            eliminated = store.lookup_compile(base_fp, config_fp)
            if eliminated is not None:
                alive = instrumented.marker_names - eliminated
                by_config[config_key] = alive
                with tracer.span("compile.stored", spec=str(spec)):
                    pass
                if metrics is not None:
                    elapsed_ms = (time.perf_counter() - start) * 1e3
                    metrics.histogram(
                        f"compile_latency_ms/{spec}"
                    ).observe(elapsed_ms)
                analysis.outcomes[str(spec)] = MarkerOutcome(
                    spec, alive, instrumented.marker_names
                )
                continue
        if alive is None:
            if incremental:
                with tracer.span(
                    "compile", spec=str(spec), incremental=True
                ) as span:
                    if engine is None:
                        engine = IncrementalEngine(
                            lower_program(instrumented.program, info),
                            metrics=metrics,
                            verify_each=verify_ir,
                            marker_prefix=marker_prefix,
                        )
                    compilation = engine.compile(config)
                    asm = emit_module(compilation.module)
                    span.set("changed_passes", len(compilation.changed_passes))
                alive = asm_alive_markers(asm, marker_prefix)
                alive &= instrumented.marker_names
            else:
                result = compile_minic(
                    instrumented.program, spec, info=info,
                    verify_each=verify_ir,
                )
                alive = (
                    result.alive_markers(marker_prefix)
                    & instrumented.marker_names
                )
            by_config[config_key] = alive
            if metrics is not None:
                metrics.counter("campaign.compilations").inc()
            if store is not None and config_fp is not None:
                store.record_compile(
                    base_fp, config_fp, instrumented.marker_names - alive
                )
        else:
            with tracer.span("compile.cached", spec=str(spec)):
                pass
            if metrics is not None:
                metrics.counter("campaign.compile_cache_hits").inc()
        if metrics is not None:
            elapsed_ms = (time.perf_counter() - start) * 1e3
            metrics.histogram(f"compile_latency_ms/{spec}").observe(elapsed_ms)
        analysis.outcomes[str(spec)] = MarkerOutcome(
            spec, alive, instrumented.marker_names
        )
    return analysis


def missed_between_levels(
    analysis: ProgramAnalysis,
    family: str,
    high: str = "O3",
    lows: tuple[str, ...] = ("O1", "O2"),
    version: int | None = None,
) -> frozenset[str]:
    """Markers the higher level keeps although a lower level of the
    *same* compiler eliminates them (paper §4.2, 'between optimization
    levels')."""
    high_spec = CompilerSpec(family, high, version)
    high_alive = analysis.outcome(high_spec).alive
    seized_by_low: set[str] = set()
    for low in lows:
        low_spec = CompilerSpec(family, low, version)
        seized_by_low |= analysis.outcome(low_spec).eliminated
    return frozenset(high_alive & seized_by_low)
