"""Value-check instrumentation (paper §4.4, "Future directions").

Instead of relying on existing dead blocks, insert checks of the form
``if (v != C) DCEMarker();`` where ``C`` is the value ``v`` actually
holds at that point (derived by running the program and recording it).
Every such marker is dead by construction, and eliminating it requires
the compiler to *prove* the recorded value — this directly stress-tests
value analyses such as scalar evolution after loops.

We instrument global scalars at function-body sequence points: after
each top-level statement of ``main`` (and optionally other functions),
for each chosen global ``g``, record ``g``'s value ``C`` there via a
profiling interpretation, then emit the check.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..frontend.typecheck import check_program
from ..interp.interpreter import _Interpreter  # reuse internals deliberately
from ..interp import run_program
from ..lang import ast_nodes as ast
from ..lang.types import VOID, IntType


@dataclass
class ValueCheckProgram:
    program: ast.Program
    markers: list[str] = field(default_factory=list)


def instrument_value_checks(
    program: ast.Program,
    function: str = "main",
    max_checks: int = 16,
    prefix: str = "DCEValueCheck",
) -> ValueCheckProgram:
    """Insert ``if (g != C) marker();`` checks into ``function``.

    The constants ``C`` are obtained by probing: for each insertion
    point we run the *probed* program once with a recording marker, so
    determinism guarantees the check is dead in the final program.
    """
    program = copy.deepcopy(program)
    info = check_program(program)
    func = program.function(function)
    globals_ = [
        g for g in program.globals() if isinstance(g.ty, IntType)
    ]
    if not globals_:
        return ValueCheckProgram(program, [])

    # Probe pass: run once, snapshotting global values after each
    # top-level statement of the target function.  We do this by
    # interpreting a variant with recorder calls; simpler and equally
    # deterministic: interpret the original program once per insertion
    # point prefix.  To keep it O(1) executions, we instead snapshot by
    # replaying: insert *all* probes as zero-arg opaque calls first,
    # interpret once while tracking global state at each probe hit.
    probe_points = min(len(func.body.stmts), max_checks)
    snapshots = _probe_global_values(program, info, function, probe_points, globals_)

    markers: list[str] = []
    decls: list[ast.Decl] = []
    offset = 0
    for index, values in snapshots.items():
        for gname, value in values.items():
            marker = f"{prefix}{len(markers)}"
            markers.append(marker)
            decls.append(ast.FuncDecl(marker, VOID, []))
            check = ast.If(
                ast.Binary("!=", ast.VarRef(gname), ast.IntLit(value)),
                ast.Block([ast.ExprStmt(ast.Call(marker, []))]),
            )
            func.body.stmts.insert(index + 1 + offset, check)
            offset += 1
    program.decls = decls + program.decls
    check_program(program)
    return ValueCheckProgram(program, markers)


def _probe_global_values(
    program: ast.Program,
    info,
    function: str,
    probe_points: int,
    globals_,
) -> dict[int, dict[str, int]]:
    """Global values after each of the first ``probe_points`` top-level
    statements of ``function`` during the (single) real execution.

    Only the *first* time execution passes each point is recorded —
    for ``main`` (never re-entered) that is exact.
    """
    probed = copy.deepcopy(program)
    pinfo = check_program(probed)
    func = probed.function(function)
    names = [f"__probe{i}" for i in range(probe_points)]
    for i, name in enumerate(reversed(names)):
        idx = probe_points - i
        func.body.stmts.insert(idx, ast.ExprStmt(ast.Call(name, [])))
    probed.decls = [ast.FuncDecl(n, VOID, []) for n in names] + probed.decls
    pinfo = check_program(probed)

    snapshots: dict[int, dict[str, int]] = {}
    interp = _Interpreter(probed, pinfo, step_limit=2_000_000)
    original_call = interp._call

    def recording_call(expr, frame):
        if expr.callee.startswith("__probe"):
            index = int(expr.callee[len("__probe"):])
            if index not in snapshots:
                snapshots[index] = {
                    g.name: interp.storage[g.name].cells[0]
                    for g in globals_
                    if g.name in interp.storage
                    and not isinstance(interp.storage[g.name].cells[0], tuple)
                }
        return original_call(expr, frame)

    interp._call = recording_call  # type: ignore[method-assign]
    interp.run()
    return snapshots
