"""Optimization-marker instrumentation (paper §3.1, step ①).

Inserts calls to fresh opaque functions (``DCEMarker0()``, …) into the
source-level constructs that roughly correspond to basic blocks:

* if-then and if-else bodies,
* loop bodies (``for``/``while``/``do``),
* switch case and default arms,
* the statement position *after* an ``if`` that contains a ``return``
  (the implicit continuation block).

The instrumented program is a deep copy; the original is untouched.
Because marker callees have no bodies, no compiler can analyze or
inline them — a marker disappears from the assembly iff the compiler
proved its block dead.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..lang import ast_nodes as ast
from ..lang.types import VOID

MARKER_PREFIX = "DCEMarker"


@dataclass(frozen=True)
class MarkerInfo:
    name: str
    kind: str  # 'if-then' | 'if-else' | 'loop-body' | 'case' | 'default' | 'after-return'
    function: str


@dataclass
class InstrumentedProgram:
    program: ast.Program
    markers: list[MarkerInfo] = field(default_factory=list)

    @property
    def marker_names(self) -> frozenset[str]:
        return frozenset(m.name for m in self.markers)

    def info(self, name: str) -> MarkerInfo:
        for m in self.markers:
            if m.name == name:
                return m
        raise KeyError(name)


def instrument_program(
    program: ast.Program, prefix: str = MARKER_PREFIX
) -> InstrumentedProgram:
    """Insert optimization markers into a copy of ``program``."""
    program = copy.deepcopy(program)
    inserter = _Inserter(prefix)
    for func in program.functions():
        inserter.function = func.name
        inserter.block(func.body)
    # Declare the marker callees up front (opaque: no bodies).
    decls: list[ast.Decl] = [
        ast.FuncDecl(m.name, VOID, []) for m in inserter.markers
    ]
    program.decls = decls + program.decls
    return InstrumentedProgram(program, inserter.markers)


class _Inserter:
    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self.markers: list[MarkerInfo] = []
        self.function = ""

    def _marker(self, kind: str) -> ast.Stmt:
        name = f"{self.prefix}{len(self.markers)}"
        self.markers.append(MarkerInfo(name, kind, self.function))
        return ast.ExprStmt(ast.Call(name, []))

    def block(self, block: ast.Block) -> None:
        """Recurse into nested constructs and add continuation markers
        after ifs that may return."""
        new_stmts: list[ast.Stmt] = []
        for i, stmt in enumerate(block.stmts):
            self.statement(stmt)
            new_stmts.append(stmt)
            if (
                isinstance(stmt, ast.If)
                and _contains_return(stmt)
                and i + 1 < len(block.stmts)
            ):
                new_stmts.append(self._marker("after-return"))
        block.stmts = new_stmts

    def statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.block(stmt)
        elif isinstance(stmt, ast.If):
            self.block(stmt.then)
            stmt.then.stmts.insert(0, self._marker("if-then"))
            if stmt.els is not None:
                self.block(stmt.els)
                stmt.els.stmts.insert(0, self._marker("if-else"))
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            self.block(stmt.body)
            stmt.body.stmts.insert(0, self._marker("loop-body"))
        elif isinstance(stmt, ast.For):
            self.block(stmt.body)
            stmt.body.stmts.insert(0, self._marker("loop-body"))
        elif isinstance(stmt, ast.Switch):
            for case in stmt.cases:
                self.block(case.body)
                kind = "default" if case.value is None else "case"
                case.body.stmts.insert(0, self._marker(kind))


def _contains_return(stmt: ast.Stmt) -> bool:
    return any(isinstance(s, ast.Return) for s in ast.walk_stmts(stmt))
