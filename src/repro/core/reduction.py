"""Test-case reduction (C-Reduce-style, paper §4.3).

A delta-debugging loop over the MiniC AST: repeatedly try to delete or
simplify program fragments, keeping a candidate iff the caller's
*interestingness* predicate still holds — for missed-optimization
triage that predicate is "the ground truth still says the marker is
dead, one compiler still keeps it, and the witness still eliminates
it" (:func:`missed_marker_predicate`).

Transformations, largest first:

* drop whole function definitions and global variables,
* delete statements (chunks, then singletons),
* unwrap ``if``/loop bodies into their parent block,
* replace expression operands by small literals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..compilers import CompilerSpec, compile_minic
from ..frontend.typecheck import CheckError, check_program
from ..interp import StepLimitExceeded
from ..lang import ast_nodes as ast
from ..lang import print_program
from ..observability.metrics import MetricsRegistry
from .ground_truth import compute_ground_truth
from .markers import InstrumentedProgram

Predicate = Callable[[ast.Program], bool]


@dataclass
class ReductionResult:
    program: ast.Program
    attempts: int
    successes: int
    stmts_before: int
    stmts_after: int
    #: oracle invocations answered from the memo (0 when memoization
    #: is off or no candidate ever repeated)
    oracle_cache_hits: int = 0
    #: oracle invocations that raised (treated as "not interesting";
    #: the loop keeps its best-so-far program and moves on)
    oracle_errors: int = 0


def missed_marker_predicate(
    marker: str,
    keeper: CompilerSpec,
    witness: CompilerSpec | None = None,
    marker_prefix: str = "DCEMarker",
) -> Predicate:
    """The paper's interestingness check: ``marker`` is really dead,
    ``keeper`` fails to eliminate it, and (if given) ``witness``
    eliminates it."""

    def interesting(program: ast.Program) -> bool:
        try:
            info = check_program(program)
        except CheckError:
            return False
        try:
            truth = compute_ground_truth(_as_instrumented(program), info=info)
        except (StepLimitExceeded, KeyError):
            return False
        if marker not in truth.dead:
            return False
        kept = compile_minic(program, keeper, info=info).alive_markers(marker_prefix)
        if marker not in kept:
            return False
        if witness is not None:
            w = compile_minic(program, witness, info=info).alive_markers(marker_prefix)
            if marker in w:
                return False
        return True

    return interesting


def _as_instrumented(program: ast.Program) -> InstrumentedProgram:
    """Wrap an already-instrumented program (markers = its opaque
    ``DCEMarker*`` declarations)."""
    from .markers import MarkerInfo

    markers = [
        MarkerInfo(d.name, "unknown", "")
        for d in program.extern_decls()
        if d.name.startswith("DCEMarker")
    ]
    return InstrumentedProgram(program, markers)


def count_statements(program: ast.Program) -> int:
    return sum(1 for _ in ast.walk_program_stmts(program))


class _MemoizedOracle:
    """Memoizes an interestingness predicate on the printed candidate.

    The delta loop regularly rebuilds textually identical candidates
    (restarting enumerations, retrying both literals, later rounds
    revisiting survivors), and the predicate — recompile under every
    involved spec plus an interpreter run — is by far the loop's
    dominant cost.  The printed program is a faithful serialization of
    the AST and the predicate is a deterministic function of it, so a
    repeat is answered from the memo.  Exceptions propagate uncached
    (``_try`` handles them exactly as without memoization).
    """

    def __init__(
        self, inner: Predicate, metrics: MetricsRegistry | None
    ) -> None:
        self._inner = inner
        self._metrics = metrics
        self._cache: dict[str, bool] = {}
        self.hits = 0

    def __call__(self, candidate: ast.Program) -> bool:
        key = print_program(candidate)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            if self._metrics is not None:
                self._metrics.counter("reduction.oracle_cache_hits").inc()
            return cached
        if self._metrics is not None:
            self._metrics.counter("reduction.oracle_calls").inc()
        result = self._cache[key] = self._inner(candidate)
        return result


class _GuardedOracle:
    """Treats oracle exceptions as "not interesting".

    A reduction candidate can crash the predicate in ways the
    transformations cannot anticipate (a compiler bug the mutation
    tickles, an interpreter corner case).  Aborting the whole reduction
    would throw away every successful shrink so far, so the guard
    answers False instead — the loop keeps its best-so-far program and
    simply declines the candidate — and counts the event
    (``reduction.oracle_errors``).  Errors are never cached: a repeat
    of the same candidate re-runs the predicate.
    """

    def __init__(
        self, inner: Predicate, metrics: MetricsRegistry | None
    ) -> None:
        self._inner = inner
        self._metrics = metrics
        self.errors = 0

    def __call__(self, candidate: ast.Program) -> bool:
        try:
            return self._inner(candidate)
        except Exception:
            self.errors += 1
            if self._metrics is not None:
                self._metrics.counter("reduction.oracle_errors").inc()
            return False


def reduce_program(
    program: ast.Program,
    interesting: Predicate,
    max_rounds: int = 12,
    memoize_oracle: bool = True,
    metrics: MetricsRegistry | None = None,
) -> ReductionResult:
    """Shrink ``program`` while ``interesting`` holds.

    The input program itself must satisfy the predicate, which must be
    a deterministic function of the candidate program (true of
    :func:`missed_marker_predicate`); ``memoize_oracle`` then answers
    repeated candidates from a memo keyed on the printed program —
    byte-identical output, far fewer compilations.
    """
    oracle: Predicate = interesting
    memo: _MemoizedOracle | None = None
    if memoize_oracle:
        oracle = memo = _MemoizedOracle(interesting, metrics)
    guard = _GuardedOracle(oracle, metrics)
    oracle = guard
    current = ast.clone_program(program)
    if not oracle(current):
        raise ValueError("the initial program is not interesting")
    attempts = successes = 0
    before = count_statements(current)

    for _ in range(max_rounds):
        changed = False
        for transform in (_drop_decls, _delete_statements, _unwrap_structures, _simplify_exprs):
            while True:
                candidate, did = transform(current, oracle)
                attempts += did[0]
                successes += did[1]
                if did[1] == 0:
                    break
                current = candidate
                changed = True
        if not changed:
            break
    return ReductionResult(
        current, attempts, successes, before, count_statements(current),
        oracle_cache_hits=memo.hits if memo is not None else 0,
        oracle_errors=guard.errors,
    )


# -- transformations -------------------------------------------------------


def _try(candidate: ast.Program, interesting: Predicate) -> bool:
    try:
        return interesting(candidate)
    except Exception:
        return False


def _drop_decls(program: ast.Program, interesting: Predicate):
    attempts = successes = 0
    i = 0
    current = program
    while i < len(current.decls):
        decl = current.decls[i]
        if isinstance(decl, ast.FuncDef) and decl.name == "main":
            i += 1
            continue
        candidate = ast.clone_program(current)
        del candidate.decls[i]
        attempts += 1
        if _try(candidate, interesting):
            current = candidate
            successes += 1
        else:
            i += 1
    return current, (attempts, successes)


def _blocks_of(program: ast.Program):
    for func in program.functions():
        for stmt in ast.walk_stmts(func.body):
            if isinstance(stmt, ast.Block):
                yield stmt
        for stmt in ast.walk_stmts(func.body):
            if isinstance(stmt, ast.Switch):
                for case in stmt.cases:
                    yield case.body


def _delete_statements(program: ast.Program, interesting: Predicate):
    """ddmin-flavoured: try chunk deletions then singletons.

    Every candidate is built from a fresh deep copy, and after a
    successful deletion the block enumeration restarts (deleting a
    statement may remove nested blocks entirely).
    """
    attempts = successes = 0
    current = ast.clone_program(program)
    restart = True
    while restart:
        restart = False
        blocks = list(_blocks_of(current))
        for b_idx, block in enumerate(blocks):
            n = len(block.stmts)
            if n == 0:
                continue
            for size in ([n, max(n // 2, 1), 1] if n > 1 else [1]):
                start = 0
                while start < len(block.stmts):
                    candidate = ast.clone_program(current)
                    cand_blocks = list(_blocks_of(candidate))
                    if b_idx >= len(cand_blocks):
                        break
                    del cand_blocks[b_idx].stmts[start : start + size]
                    attempts += 1
                    if _try(candidate, interesting):
                        current = candidate
                        successes += 1
                        restart = True
                        break
                    start += size
                if restart:
                    break
            if restart:
                break
    return current, (attempts, successes)


def _unwrap_structures(program: ast.Program, interesting: Predicate):
    """Replace ``if (c) { body }`` by ``body``, loops by their bodies."""
    attempts = successes = 0
    current = ast.clone_program(program)
    restart = True
    while restart:
        restart = False
        blocks = list(_blocks_of(current))
        for b_idx, block in enumerate(blocks):
            for i, stmt in enumerate(block.stmts):
                if not isinstance(stmt, (ast.If, ast.While, ast.DoWhile, ast.For)):
                    continue
                candidate = ast.clone_program(current)
                cand_blocks = list(_blocks_of(candidate))
                if b_idx >= len(cand_blocks):
                    continue
                cand_stmt = cand_blocks[b_idx].stmts[i]
                if isinstance(cand_stmt, ast.If):
                    body = list(cand_stmt.then.stmts)
                else:
                    body = list(cand_stmt.body.stmts)  # type: ignore[union-attr]
                cand_blocks[b_idx].stmts[i : i + 1] = body
                attempts += 1
                if _try(candidate, interesting):
                    current = candidate
                    successes += 1
                    restart = True
                    break
            if restart:
                break
    return current, (attempts, successes)


def _simplify_exprs(program: ast.Program, interesting: Predicate):
    """Replace condition subtrees by literals (0 keeps branches dead)."""
    attempts = successes = 0
    current = ast.clone_program(program)

    def candidates(prog: ast.Program):
        for func in prog.functions():
            for stmt in ast.walk_stmts(func.body):
                if isinstance(stmt, ast.If) and isinstance(stmt.cond, ast.Binary):
                    yield stmt

    count = sum(1 for _ in candidates(current))
    for idx in range(count):
        for literal in (0, 1):
            candidate = ast.clone_program(current)
            picked = list(candidates(candidate))
            if idx >= len(picked):
                break
            picked[idx].cond = ast.IntLit(literal)
            attempts += 1
            if _try(candidate, interesting):
                current = candidate
                successes += 1
                break
    return current, (attempts, successes)
