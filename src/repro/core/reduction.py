"""Test-case reduction (C-Reduce-style, paper §4.3), speculative and parallel.

A delta-debugging loop over the MiniC AST: repeatedly try to delete or
simplify program fragments, keeping a candidate iff the caller's
*interestingness* predicate still holds — for missed-optimization
triage that predicate is "the ground truth still says the marker is
dead, one compiler still keeps it, and the witness still eliminates
it" (:class:`MissedMarkerPredicate`).

Transformations, largest first:

* drop whole function definitions and global variables,
* delete statements (chunks, then singletons),
* unwrap ``if``/loop bodies into their parent block,
* replace expression operands by small literals.

Speculative evaluation
----------------------

The engine enumerates each transformation's candidates in a fixed
deterministic order, evaluates them in **batches** of ``speculation``
(C-Reduce's parallel interestingness testing; diopter wraps the same
trick around creduce workers), and commits the *first candidate in
enumeration order* whose oracle succeeds — evaluations at later batch
positions are speculative and discarded after the commit point
(``reduction.speculative_wasted``).  Every batch is evaluated in full
and the batch size never depends on ``jobs``, so the candidate set,
the commit sequence, the reduced program, and every counter are a pure
function of (program, predicate, speculation window): ``jobs`` only
decides whether the fresh evaluations run in-process or fan out across
a ``ProcessPoolExecutor``, making ``reduce_program(jobs=N)``
byte-identical to ``jobs=1``.

Oracle memoization
------------------

Verdicts are memoized on :func:`candidate_key` — a hash of the printed
candidate scoped by the predicate's ``cache_key`` — in a plain dict
that can outlive one ``reduce_program`` call: the campaign
:class:`ReductionQueue` seeds each finding's reduction with the memo
entries earlier findings shipped back in their
:class:`FindingEnvelope`, so textually identical candidates under the
same oracle are never recompiled twice anywhere in the campaign.
Errors are never cached, and memoization never changes verdicts, so
the memo affects only the fresh-call/cache-hit split — results and
attempt counts are memo-independent.

The campaign reduction queue
----------------------------

``campaign --reduce-findings --reduce-jobs N`` moves finding reduction
off the critical path: each finding is submitted to a process pool the
moment the differential layer records it, reductions overlap the
remaining seed analysis, and the campaign drains the queue (in finding
order, for a deterministic event stream) just before ``campaign_end``.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Callable, Iterator

from ..compilers import CompilerSpec, compile_minic
from ..frontend.typecheck import CheckError, check_program
from ..interp import StepLimitExceeded
from ..lang import ast_nodes as ast
from ..lang import parse_program, print_program
from ..observability.metrics import MetricsRegistry
from ..testing import chaos
from .ground_truth import compute_ground_truth
from .markers import InstrumentedProgram

Predicate = Callable[[ast.Program], bool]
#: receives ``(event type, attrs)`` pairs from the engine —
#: deterministic content only (counts and names, never durations)
EventSink = Callable[[str, dict], None]

#: candidates evaluated per speculative batch.  Deliberately a
#: jobs-independent constant: the batch defines which candidates get
#: evaluated, so tying it to ``jobs`` would make attempt/oracle
#: counters depend on parallelism.  Raise via ``speculation=`` to feed
#: more than this many workers.
DEFAULT_SPECULATION = 4

#: event types the engine feeds its sink (re-exported by
#: :mod:`repro.observability.events` for the campaign stream)
REDUCTION_ROUND = "reduction.round"
REDUCTION_COMMIT = "reduction.commit"


@dataclass
class ReductionResult:
    program: ast.Program
    attempts: int
    successes: int
    stmts_before: int
    stmts_after: int
    #: oracle invocations answered from the memo (0 when memoization
    #: is off or no candidate ever repeated)
    oracle_cache_hits: int = 0
    #: oracle invocations that raised (treated as "not interesting";
    #: the loop keeps its best-so-far program and moves on)
    oracle_errors: int = 0
    #: fresh predicate evaluations (memo misses), including the
    #: initial interestingness check
    oracle_calls: int = 0
    #: fresh evaluations issued at batch positions after the committed
    #: candidate — speculative work the commit discarded
    speculative_wasted: int = 0
    #: delta rounds executed (each runs every transformation to fixpoint)
    rounds: int = 0
    #: wall-clock seconds spent in :func:`reduce_program`
    wall_time: float = 0.0


@dataclass(frozen=True)
class MissedMarkerPredicate:
    """The paper's interestingness check: ``marker`` is really dead,
    ``keeper`` fails to eliminate it, and (if given) ``witness``
    eliminates it.

    A frozen dataclass rather than a closure so it pickles into pool
    workers and has a stable :attr:`cache_key` for the cross-worker
    oracle memo.
    """

    marker: str
    keeper: CompilerSpec
    witness: CompilerSpec | None = None
    marker_prefix: str = "DCEMarker"

    @property
    def cache_key(self) -> str:
        """Scopes memo entries to this oracle: the same candidate text
        has different verdicts under different markers or specs."""
        return (
            f"missed:{self.marker}|{self.keeper}|{self.witness}"
            f"|{self.marker_prefix}"
        )

    def __call__(self, program: ast.Program) -> bool:
        try:
            info = check_program(program)
        except CheckError:
            return False
        try:
            truth = compute_ground_truth(_as_instrumented(program), info=info)
        except (StepLimitExceeded, KeyError):
            return False
        if self.marker not in truth.dead:
            return False
        kept = compile_minic(
            program, self.keeper, info=info
        ).alive_markers(self.marker_prefix)
        if self.marker not in kept:
            return False
        if self.witness is not None:
            w = compile_minic(
                program, self.witness, info=info
            ).alive_markers(self.marker_prefix)
            if self.marker in w:
                return False
        return True


def missed_marker_predicate(
    marker: str,
    keeper: CompilerSpec,
    witness: CompilerSpec | None = None,
    marker_prefix: str = "DCEMarker",
) -> MissedMarkerPredicate:
    """Factory kept for callers of the original closure-based API."""
    return MissedMarkerPredicate(marker, keeper, witness, marker_prefix)


def _as_instrumented(program: ast.Program) -> InstrumentedProgram:
    """Wrap an already-instrumented program (markers = its opaque
    ``DCEMarker*`` declarations)."""
    from .markers import MarkerInfo

    markers = [
        MarkerInfo(d.name, "unknown", "")
        for d in program.extern_decls()
        if d.name.startswith("DCEMarker")
    ]
    return InstrumentedProgram(program, markers)


def count_statements(program: ast.Program) -> int:
    return sum(1 for _ in ast.walk_program_stmts(program))


# -- oracle memo -----------------------------------------------------------


def candidate_key(predicate_key: str, text: str) -> str:
    """Memo key for one printed candidate under one oracle.

    The printed program is a faithful serialization of the AST and the
    predicate is a deterministic function of it, so (oracle identity,
    text) fully determines the verdict.  Predicates without a
    ``cache_key`` get an empty scope — safe within one
    :func:`reduce_program` call, but such a memo must not be shared
    across different predicates.
    """
    digest = hashlib.sha256()
    digest.update(predicate_key.encode())
    digest.update(b"\x00")
    digest.update(text.encode())
    return digest.hexdigest()[:32]


def evaluate_printed(predicate: Predicate, text: str) -> tuple[bool, bool]:
    """Parse and judge one printed candidate: ``(verdict, errored)``.

    The single evaluation path shared by the in-process engine and the
    pool workers (:func:`repro.core.parallel.evaluate_candidates`), so
    ``jobs`` cannot change what a verdict means.  Exceptions answer
    ``(False, True)`` — a crashing candidate is declined, never fatal
    (the old ``_GuardedOracle`` contract).
    """
    try:
        return bool(predicate(parse_program(text))), False
    except Exception:
        return False, True


class _BudgetExhausted(Exception):
    """Internal: the per-reduction oracle-call budget ran out."""


class _SpeculativeEngine:
    """Batched candidate evaluation with deterministic commits.

    The jobs-invariance contract: every batch is evaluated in full (no
    early exit on the first success), verdicts come from
    :func:`evaluate_printed` (a pure function of the printed text), and
    the engine commits the first interesting candidate in enumeration
    order.  ``jobs`` therefore only chooses *where* fresh evaluations
    run; every counter and the reduced program are identical at any
    jobs count.
    """

    def __init__(
        self,
        predicate: Predicate,
        jobs: int,
        speculation: int,
        memoize: bool,
        memo: dict[str, bool] | None,
        metrics: MetricsRegistry | None,
        event_sink: EventSink | None,
        max_oracle_calls: int | None = None,
    ) -> None:
        self._predicate = predicate
        self._jobs = jobs
        self._speculation = max(1, speculation)
        self._max_oracle_calls = max_oracle_calls
        self._memoize = memoize
        self._memo = memo if memo is not None else {}
        self._metrics = metrics
        self._sink = event_sink
        self._key_scope = getattr(predicate, "cache_key", "") or ""
        self._pool = None
        self.attempts = 0
        self.successes = 0
        self.cache_hits = 0
        self.errors = 0
        self.oracle_calls = 0
        self.wasted = 0

    # -- counters ------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        if self._metrics is not None and amount:
            self._metrics.counter(name).inc(amount)

    # -- evaluation ----------------------------------------------------

    def _ensure_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        from .parallel import OracleWorkerConfig, _init_oracle_worker, pool_context

        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._jobs,
                mp_context=pool_context(),
                initializer=_init_oracle_worker,
                initargs=(
                    OracleWorkerConfig(self._predicate, chaos.current_plan()),
                ),
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _evaluate_fresh(
        self, items: list[tuple[str, str]]
    ) -> list[tuple[bool, bool]]:
        """``(verdict, errored)`` per ``(key, text)``, preserving order."""
        if self._jobs > 1 and len(items) > 1:
            from concurrent.futures import BrokenExecutor

            from .parallel import evaluate_candidates

            try:
                pool = self._ensure_pool()
                futures = [
                    pool.submit(evaluate_candidates, [item]) for item in items
                ]
                return [f.result()[0][1:] for f in futures]
            except BrokenExecutor:
                # a dying worker must not doom the round: drop the
                # broken pool (recreated lazily for the next batch) and
                # answer this whole batch in-process — verdicts are the
                # same either way
                self.close()
                self._count("reduction.worker_restarts")
        return [evaluate_printed(self._predicate, text) for _, text in items]

    def evaluate_batch(
        self, texts: list[str]
    ) -> tuple[list[bool], list[bool]]:
        """Verdicts for printed candidates, memo first, fresh calls for
        the rest (pooled when ``jobs > 1``).  Returns ``(verdicts,
        fresh)`` where ``fresh[i]`` marks positions whose verdict cost
        an actual evaluation (the speculative-waste accounting)."""
        verdicts: list[bool | None] = [None] * len(texts)
        fresh = [False] * len(texts)
        pending: list[tuple[str, str, list[int]]] = []  # key, text, positions
        by_key: dict[str, list[int]] = {}
        for i, text in enumerate(texts):
            key = candidate_key(self._key_scope, text)
            if self._memoize:
                cached = self._memo.get(key)
                if cached is not None:
                    verdicts[i] = cached
                    self.cache_hits += 1
                    self._count("reduction.oracle_cache_hits")
                    continue
                positions = by_key.get(key)
                if positions is not None:
                    # duplicate within the batch: the first occurrence's
                    # evaluation answers it (counts as a memo hit)
                    positions.append(i)
                    self.cache_hits += 1
                    self._count("reduction.oracle_cache_hits")
                    continue
                by_key[key] = positions = [i]
                pending.append((key, text, positions))
            else:
                pending.append((key, text, [i]))
        self.oracle_calls += len(pending)
        self._count("reduction.oracle_calls", len(pending))
        results = self._evaluate_fresh([(k, t) for k, t, _ in pending])
        for (key, _text, positions), (verdict, errored) in zip(
            pending, results
        ):
            if errored:
                self.errors += 1
                self._count("reduction.oracle_errors")
            elif self._memoize:
                self._memo[key] = verdict  # errors are never cached
            for pos in positions:
                verdicts[pos] = verdict
                fresh[pos] = True
        return [bool(v) for v in verdicts], fresh

    def check_initial(self, program: ast.Program) -> bool:
        verdicts, _ = self.evaluate_batch([print_program(program)])
        return verdicts[0]

    # -- the speculative commit loop -----------------------------------

    def run_transform(
        self,
        name: str,
        generate: Callable[[ast.Program], Iterator[tuple[str, ast.Program]]],
        current: ast.Program,
        context: dict[str, Any],
    ) -> ast.Program | None:
        """One enumeration of ``name``'s candidates over ``current``;
        returns the first committed candidate, or ``None`` when the
        full enumeration found nothing (fixpoint for this transform)."""
        iterator = generate(current)
        while True:
            if (
                self._max_oracle_calls is not None
                and self.oracle_calls >= self._max_oracle_calls
            ):
                # checked only at batch boundaries, on a jobs-invariant
                # counter, so a budgeted reduction is still byte-
                # identical at any jobs count
                raise _BudgetExhausted
            batch = list(islice(iterator, self._speculation))
            if not batch:
                return None
            texts = [print_program(candidate) for _, candidate in batch]
            verdicts, fresh = self.evaluate_batch(texts)
            commit = next(
                (i for i, verdict in enumerate(verdicts) if verdict), None
            )
            if commit is None:
                self.attempts += len(batch)
                continue
            self.attempts += commit + 1
            self.successes += 1
            wasted = sum(1 for i in range(commit + 1, len(batch)) if fresh[i])
            self.wasted += wasted
            self._count("reduction.speculative_wasted", wasted)
            desc, program = batch[commit]
            if self._sink is not None:
                self._sink(REDUCTION_COMMIT, {
                    **context, "transform": name, "what": desc,
                    "stmts": count_statements(program),
                })
            return program


def reduce_program(
    program: ast.Program,
    interesting: Predicate,
    max_rounds: int = 12,
    memoize_oracle: bool = True,
    metrics: MetricsRegistry | None = None,
    jobs: int = 1,
    speculation: int | None = None,
    memo: dict[str, bool] | None = None,
    event_sink: EventSink | None = None,
    event_attrs: dict[str, Any] | None = None,
    max_oracle_calls: int | None = None,
) -> ReductionResult:
    """Shrink ``program`` while ``interesting`` holds.

    The input program itself must satisfy the predicate, which must be
    a deterministic function of the candidate program (true of
    :class:`MissedMarkerPredicate`); ``memoize_oracle`` then answers
    repeated candidates from a memo keyed on the printed program —
    byte-identical output, far fewer compilations.

    ``jobs`` fans speculative batch evaluations across a process pool
    (the predicate must pickle — module-level classes/functions, not
    closures); the result is byte-identical to ``jobs=1``, counters
    included.  ``speculation`` sets the batch size (default
    :data:`DEFAULT_SPECULATION`; part of the determinism contract, so
    changing it changes which candidates get evaluated).  ``memo``
    shares a verdict dict across calls — only sound when every sharer's
    predicate has a distinct ``cache_key``.  ``event_sink`` receives
    ``reduction.round``/``reduction.commit`` records (deterministic
    attrs; ``event_attrs`` is folded into each).

    ``max_oracle_calls`` caps the total number of fresh oracle
    evaluations: once the cap is reached (checked at batch boundaries,
    so still jobs-invariant) reduction stops cleanly and returns the
    best program so far.  Real campaign findings can cost thousands of
    oracle calls to shrink fully; the budget trades residual size for
    bounded wall time.  The cap is part of the determinism contract —
    the same budget always yields the same partially-reduced program.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    start = time.perf_counter()
    context = dict(event_attrs or {})
    engine = _SpeculativeEngine(
        interesting, jobs, speculation or DEFAULT_SPECULATION,
        memoize_oracle, memo, metrics, event_sink,
        max_oracle_calls=max_oracle_calls,
    )
    rounds = 0
    try:
        current = ast.clone_program(program)
        if not engine.check_initial(current):
            raise ValueError("the initial program is not interesting")
        before = count_statements(current)
        try:
            for _ in range(max_rounds):
                changed = False
                for name, generate in TRANSFORMS:
                    while True:
                        committed = engine.run_transform(
                            name, generate, current, context
                        )
                        if committed is None:
                            break
                        current = committed
                        changed = True
                rounds += 1
                if event_sink is not None:
                    event_sink(REDUCTION_ROUND, {
                        **context, "round": rounds,
                        "stmts": count_statements(current),
                        "attempts": engine.attempts,
                        "commits": engine.successes,
                    })
                if not changed:
                    break
        except _BudgetExhausted:
            # best-so-far is still a valid interesting program; the
            # round counter only covers completed rounds
            pass
    finally:
        engine.close()
    wall_time = time.perf_counter() - start
    if metrics is not None:
        metrics.histogram("reduction.wall_time_ms").observe(wall_time * 1e3)
    return ReductionResult(
        current, engine.attempts, engine.successes, before,
        count_statements(current),
        oracle_cache_hits=engine.cache_hits,
        oracle_errors=engine.errors,
        oracle_calls=engine.oracle_calls,
        speculative_wasted=engine.wasted,
        rounds=rounds,
        wall_time=wall_time,
    )


# -- transformations -------------------------------------------------------
#
# Each transformation is a generator of ``(description, candidate)``
# pairs over a *fixed* snapshot of the program, in deterministic
# largest-first order.  The engine restarts the enumeration after every
# commit (a deletion changes what later candidates should look like)
# and declares the transform done when a full enumeration commits
# nothing.


def _blocks_of(program: ast.Program):
    for func in program.functions():
        for stmt in ast.walk_stmts(func.body):
            if isinstance(stmt, ast.Block):
                yield stmt
        for stmt in ast.walk_stmts(func.body):
            if isinstance(stmt, ast.Switch):
                for case in stmt.cases:
                    yield case.body


def _drop_decl_candidates(program: ast.Program):
    """Drop whole function definitions and globals (``main`` stays)."""
    for i, decl in enumerate(program.decls):
        if isinstance(decl, ast.FuncDef) and decl.name == "main":
            continue
        candidate = ast.clone_program(program)
        del candidate.decls[i]
        name = getattr(decl, "name", decl.__class__.__name__)
        yield f"decl:{name}", candidate


def _delete_stmt_candidates(program: ast.Program):
    """ddmin-flavoured: chunk deletions (whole block, half, singles)."""
    blocks = list(_blocks_of(program))
    for b_idx, block in enumerate(blocks):
        n = len(block.stmts)
        if n == 0:
            continue
        sizes: list[int] = []
        for size in (n, max(n // 2, 1), 1):
            if size not in sizes:
                sizes.append(size)
        for size in sizes:
            for start in range(0, n, size):
                candidate = ast.clone_program(program)
                cand_blocks = list(_blocks_of(candidate))
                del cand_blocks[b_idx].stmts[start:start + size]
                yield f"stmts:b{b_idx}@{start}+{size}", candidate


def _unwrap_candidates(program: ast.Program):
    """Replace ``if (c) { body }`` by ``body``, loops by their bodies."""
    blocks = list(_blocks_of(program))
    for b_idx, block in enumerate(blocks):
        for i, stmt in enumerate(block.stmts):
            if not isinstance(stmt, (ast.If, ast.While, ast.DoWhile, ast.For)):
                continue
            candidate = ast.clone_program(program)
            cand_stmt = list(_blocks_of(candidate))[b_idx].stmts[i]
            if isinstance(cand_stmt, ast.If):
                body = list(cand_stmt.then.stmts)
            else:
                body = list(cand_stmt.body.stmts)  # type: ignore[union-attr]
            list(_blocks_of(candidate))[b_idx].stmts[i:i + 1] = body
            yield f"unwrap:b{b_idx}@{i}", candidate


def _condition_sites(program: ast.Program):
    for func in program.functions():
        for stmt in ast.walk_stmts(func.body):
            if isinstance(stmt, ast.If) and isinstance(stmt.cond, ast.Binary):
                yield stmt


def _simplify_cond_candidates(program: ast.Program):
    """Replace condition subtrees by literals (0 keeps branches dead)."""
    count = sum(1 for _ in _condition_sites(program))
    for idx in range(count):
        for literal in (0, 1):
            candidate = ast.clone_program(program)
            list(_condition_sites(candidate))[idx].cond = ast.IntLit(literal)
            yield f"cond:{idx}={literal}", candidate


TRANSFORMS: tuple[tuple[str, Callable], ...] = (
    ("drop_decls", _drop_decl_candidates),
    ("delete_stmts", _delete_stmt_candidates),
    ("unwrap", _unwrap_candidates),
    ("simplify_conds", _simplify_cond_candidates),
)


# -- finding reduction (campaign follow-up) --------------------------------


def reduction_targets(
    finding: dict, compare_level: str, version: int | None
):
    """Candidate (marker, keeper, witness) triples for one campaign
    finding dict, strongest pairing first."""
    if finding["kind"] == "cross-compiler":
        sides = (
            [("gcclike", "llvmlike", m) for m in finding.get("gcc_misses", ())]
            + [("llvmlike", "gcclike", m) for m in finding.get("llvm_misses", ())]
        )
        for keeper_family, witness_family, marker in sides:
            keeper = CompilerSpec(keeper_family, compare_level, version)
            yield marker, keeper, CompilerSpec(
                witness_family, compare_level, version
            )
            yield marker, keeper, None
    else:
        family = finding.get("family", "gcclike")
        keeper = CompilerSpec(family, compare_level, version)
        for marker in finding["markers"]:
            for witness_level in ("O2", "O1"):
                yield marker, keeper, CompilerSpec(
                    family, witness_level, version
                )
            yield marker, keeper, None


def reduce_finding(
    finding: dict,
    program: ast.Program,
    *,
    compare_level: str = "O3",
    version: int | None = None,
    max_rounds: int = 12,
    speculation: int | None = None,
    jobs: int = 1,
    memo: dict[str, bool] | None = None,
    metrics: MetricsRegistry | None = None,
    event_sink: EventSink | None = None,
    event_attrs: dict[str, Any] | None = None,
    max_oracle_calls: int | None = None,
) -> tuple[str, ReductionResult] | None:
    """Reduce one campaign finding to its paper-faithful fingerprint.

    Tries each :func:`reduction_targets` pairing until one makes the
    initial program interesting, reduces under it, and hashes the
    canonical IR of the result ("we deduplicate cases after reducing
    them", §4.3).  Returns ``(fingerprint, result)``, or ``None`` when
    no pairing holds (the structural fingerprint then applies).
    """
    from ..frontend.lower import lower_program
    from ..ir.printer import fingerprint_module

    for marker, keeper, witness in reduction_targets(
        finding, compare_level, version
    ):
        predicate = MissedMarkerPredicate(marker, keeper, witness)
        try:
            result = reduce_program(
                program, predicate, max_rounds=max_rounds, metrics=metrics,
                jobs=jobs, speculation=speculation, memo=memo,
                event_sink=event_sink, event_attrs=event_attrs,
                max_oracle_calls=max_oracle_calls,
            )
        except ValueError:
            continue  # not interesting as posed; try the next pairing
        reduced = result.program
        info = check_program(reduced)
        module_fp = fingerprint_module(lower_program(reduced, info))
        payload = {"kind": finding["kind"], "module": module_fp}
        fingerprint = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()[:16]
        return fingerprint, result
    return None


@dataclass(frozen=True)
class FindingReductionConfig:
    """Per-pool bootstrap for finding-reduction workers (the same
    initializer-shipped pattern as
    :class:`repro.core.parallel.WorkerConfig`)."""

    generator_config: Any = None
    compare_level: str = "O3"
    version: int | None = None
    max_rounds: int = 12
    speculation: int | None = None
    fault_plan: chaos.FaultPlan | None = None
    #: per-finding oracle-call budget (``None`` = unbounded); real
    #: campaign findings can cost thousands of calls to shrink fully
    max_oracle_calls: int | None = None
    #: memo keys seeded from the persistent artifact store, so workers
    #: can tally ``store_hits`` separately from same-run memo hits
    store_keys: frozenset = frozenset()


_FINDING_WORKER: dict[str, Any] = {}


def _init_finding_worker(config: FindingReductionConfig) -> None:
    _FINDING_WORKER["config"] = config
    chaos.install_plan(config.fault_plan)


class _RecordingMemo(dict):
    """A verdict memo that remembers which entries this process added,
    so a worker ships only its *new* entries back to the parent.

    ``store_keys`` marks entries seeded from the persistent artifact
    store; hits against them tally :attr:`store_hits` (the
    ``store.oracle_hits`` counter) without affecting verdicts.
    """

    def __init__(
        self, seed_entries: dict[str, bool], store_keys=()
    ) -> None:
        super().__init__(seed_entries)
        self.added: dict[str, bool] = {}
        self._store_keys = frozenset(store_keys)
        self.store_hits = 0

    def __setitem__(self, key: str, value: bool) -> None:
        super().__setitem__(key, value)
        self.added[key] = value

    def get(self, key, default=None):
        value = super().get(key, default)
        if value is not None and key in self._store_keys:
            self.store_hits += 1
        return value


@dataclass
class FindingEnvelope:
    """Everything a reduction worker says about one finding, picklable."""

    index: int
    seed: int
    #: reduced-case fingerprint, or ``None`` when no pairing held (the
    #: ledger then falls back to the structural fingerprint)
    fingerprint: str | None
    #: recorded ``(event type, attrs)`` pairs, re-emitted by the parent
    #: in finding order
    events: list[tuple[str, dict[str, Any]]]
    #: memo entries this reduction added (seeds later submissions)
    memo: dict[str, bool]
    #: raw MetricsRegistry.dump() of the worker-side reduction counters
    metrics: dict[str, Any] | None
    #: contained crash, as a CrashEnvelope dict (``phase="reduce"``)
    crash: dict | None = None
    stats: dict[str, Any] = field(default_factory=dict)


def _reduce_finding_task(
    index: int, finding: dict, memo: dict[str, bool]
) -> FindingEnvelope:
    """Pool-worker body: regenerate the finding's program and reduce it
    (crashes contained per finding, never poisoning the queue)."""
    from ..generator import generate_program
    from .markers import instrument_program
    from .resilience import REDUCE_PHASE, crash_envelope

    config: FindingReductionConfig = _FINDING_WORKER["config"]
    seed = finding["seed"]
    registry = MetricsRegistry()
    events: list[tuple[str, dict[str, Any]]] = []
    recording = _RecordingMemo(memo, config.store_keys)
    fingerprint = None
    crash = None
    stats: dict[str, Any] = {}
    try:
        program = instrument_program(
            generate_program(seed, config.generator_config)
        ).program
        outcome = reduce_finding(
            finding, program,
            compare_level=config.compare_level, version=config.version,
            max_rounds=config.max_rounds, speculation=config.speculation,
            max_oracle_calls=config.max_oracle_calls,
            memo=recording, metrics=registry,
            event_sink=lambda type_, attrs: events.append((type_, attrs)),
            event_attrs={"seed": seed, "finding": index},
        )
        if outcome is not None:
            fingerprint, result = outcome
            stats = {
                "oracle_calls": result.oracle_calls,
                "cache_hits": result.oracle_cache_hits,
                "speculative_wasted": result.speculative_wasted,
                "wall_time": result.wall_time,
            }
    except Exception as err:
        crash = crash_envelope(seed, REDUCE_PHASE, err).to_dict()
        events.clear()  # no partial streams: a crashed reduction is silent
    if recording.store_hits:
        stats["store_hits"] = recording.store_hits
    return FindingEnvelope(
        index, seed, fingerprint, events, recording.added,
        registry.dump(), crash, stats,
    )


class _CompletedTask:
    """Future stand-in for tasks the queue ran inline at ``jobs=1``."""

    def __init__(self, envelope: FindingEnvelope) -> None:
        self._envelope = envelope

    def result(self) -> FindingEnvelope:
        return self._envelope


@dataclass
class ReductionCampaignStats:
    """Campaign-level rollup of the reduction queue's work."""

    jobs: int = 1
    submitted: int = 0
    #: findings that produced a reduced fingerprint
    reduced: int = 0
    #: findings that fell back to the structural fingerprint
    fallbacks: int = 0
    crashed: int = 0
    oracle_calls: int = 0
    cache_hits: int = 0
    speculative_wasted: int = 0
    #: memo hits answered by verdicts persisted in the artifact store
    store_hits: int = 0
    #: summed per-finding reduction wall time (worker-side seconds —
    #: overlapped with seed analysis, so not campaign critical path)
    wall_time: float = 0.0


class ReductionQueue:
    """Async finding-reduction pipeline for campaigns.

    ``submit`` is called by the campaign merge loop the moment a
    finding is recorded; each finding becomes one pool task seeded with
    a snapshot of the shared oracle memo (entries shipped back by
    already-finished reductions — the cross-worker memoization).
    ``drain`` collects envelopes **in finding order** once the seed
    loop ends: events re-emit deterministically, worker metrics fold
    into the parent registry, and crashes land in the campaign's
    crash list with ``phase="reduce"``.

    Which memo entries a snapshot happens to contain depends on
    completion timing, so the fresh-call/cache-hit *split* may vary
    across runs at ``jobs > 1`` — but verdicts never do, so
    fingerprints, events, and every other output stay deterministic.

    At effective ``jobs == 1`` no pool is spun up at all: each task
    runs in-process at submit time through the *same* task body, so
    results stay byte-identical while skipping the process-pool
    overhead (measurably negative on 1-CPU hosts).  As a bonus the
    memo split becomes deterministic, since each inline task sees
    every earlier verdict.

    ``store`` is an optional :class:`~repro.store.ArtifactStore`: the
    shared memo seeds from its persisted oracle verdicts (hits tally
    ``store.oracle_hits``) and every *new* verdict is written back
    when the queue drains — so ``reduce`` CLI reruns and later
    campaigns start warm instead of losing worker memo entries at
    process exit.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        generator_config: Any = None,
        compare_level: str = "O3",
        version: int | None = None,
        max_rounds: int = 12,
        speculation: int | None = None,
        max_oracle_calls: int | None = None,
        store=None,
    ) -> None:
        import threading

        self.jobs = max(1, jobs)
        self._store = store
        seeded: dict[str, bool] = (
            store.oracle_entries() if store is not None else {}
        )
        self._config = FindingReductionConfig(
            generator_config, compare_level, version, max_rounds,
            speculation, chaos.current_plan(), max_oracle_calls,
            frozenset(seeded),
        )
        self._pool = None
        self._tasks: list[tuple[int, int, Any]] = []  # index, seed, future
        self._memo: dict[str, bool] = dict(seeded)
        self._lock = threading.Lock()
        self.submitted = 0

    def _ensure_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        from .parallel import pool_context

        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=pool_context(),
                initializer=_init_finding_worker,
                initargs=(self._config,),
            )
        return self._pool

    def submit(self, index: int, finding: dict) -> None:
        """Queue one finding for reduction (returns immediately; the
        reduction overlaps whatever the campaign does next).

        At ``jobs == 1`` the task body runs right here in-process —
        identical results, no pool to spin up or feed.
        """
        if self.jobs == 1:
            if _FINDING_WORKER.get("config") is not self._config:
                _init_finding_worker(self._config)
            envelope = _reduce_finding_task(index, finding, dict(self._memo))
            self._memo.update(envelope.memo)
            self._tasks.append(
                (index, finding["seed"], _CompletedTask(envelope))
            )
            self.submitted += 1
            return
        pool = self._ensure_pool()
        with self._lock:
            snapshot = dict(self._memo)
        future = pool.submit(_reduce_finding_task, index, finding, snapshot)
        future.add_done_callback(self._harvest_memo)
        self._tasks.append((index, finding["seed"], future))
        self.submitted += 1

    def _harvest_memo(self, future) -> None:
        # runs on the executor's collector thread as soon as a task
        # finishes, so later submissions see earlier verdicts even
        # while the campaign is still mid-seed-loop
        try:
            envelope = future.result()
        except Exception:
            return  # worker death etc.; drain() deals with it
        with self._lock:
            self._memo.update(envelope.memo)

    def drain(
        self,
        events=None,
        metrics: MetricsRegistry | None = None,
        crashes: list | None = None,
    ) -> tuple[dict[int, str | None], ReductionCampaignStats]:
        """Wait for every queued reduction and fold the envelopes in
        finding order.  Returns ``(fingerprints by finding index,
        stats)``; reduction events re-emit onto ``events``, worker
        metric snapshots merge into ``metrics``, and contained crashes
        append to ``crashes``."""
        from concurrent.futures import BrokenExecutor

        from .resilience import CrashEnvelope, reduction_death_envelope

        stats = ReductionCampaignStats(
            jobs=self.jobs, submitted=self.submitted
        )
        fingerprints: dict[int, str | None] = {}
        persisted: dict[str, bool] = {}
        try:
            for index, seed, future in self._tasks:
                try:
                    envelope = future.result()
                except BrokenExecutor:
                    # the worker died mid-reduction; contain it like any
                    # other crash and fall back to the structural
                    # fingerprint for this finding
                    fingerprints[index] = None
                    stats.fallbacks += 1
                    stats.crashed += 1
                    if crashes is not None:
                        crashes.append(reduction_death_envelope(seed))
                    self._pool = None  # executor is unusable; new one on demand
                    continue
                fingerprints[index] = envelope.fingerprint
                if envelope.crash is not None:
                    stats.crashed += 1
                    if crashes is not None:
                        crashes.append(CrashEnvelope.from_dict(envelope.crash))
                if envelope.fingerprint is None:
                    stats.fallbacks += 1
                else:
                    stats.reduced += 1
                stats.oracle_calls += envelope.stats.get("oracle_calls", 0)
                stats.cache_hits += envelope.stats.get("cache_hits", 0)
                stats.speculative_wasted += envelope.stats.get(
                    "speculative_wasted", 0
                )
                stats.wall_time += envelope.stats.get("wall_time", 0.0)
                store_hits = envelope.stats.get("store_hits", 0)
                if store_hits:
                    stats.store_hits += store_hits
                    if metrics is not None:
                        metrics.counter("store.oracle_hits").inc(store_hits)
                persisted.update(envelope.memo)
                if metrics is not None and envelope.metrics:
                    metrics.merge(envelope.metrics)
                if events is not None and envelope.events:
                    events.emit_all(envelope.events)
        finally:
            self.close()
        if self._store is not None and persisted:
            # satellite fix: worker-discovered verdicts used to die at
            # process exit; persist them so the next run starts warm
            self._store.record_oracle_entries(persisted)
        return fingerprints, stats

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._tasks = []
