"""Fault isolation for campaigns: crash containment, budgets, checkpoints.

The paper's campaigns survive hundreds of thousands of Csmith programs
only because no single pathological input can take the harness down.
This module gives our campaign engine the same property:

* :func:`analyze_one_resilient` wraps each phase of the per-seed
  pipeline (generate → instrument → ground-truth → compile → analyze)
  in containment.  A crash anywhere becomes a structured
  :class:`CrashEnvelope` — seed, phase, exception type, trimmed
  traceback, a deduplication *bucket* (exception type + deepest
  in-repo frame), and a one-line repro command — instead of aborting
  the campaign (or poisoning a whole parallel shard).
* **Graceful degradation**: a seed whose incremental compile crashes
  is retried once with ``incremental=False``; only a second failure
  counts as a crash (the retry is tallied as *degraded*).
* **Wall-clock budgets**: ``seed_budget`` arms a cooperative deadline
  (:mod:`repro.budget`) polled at pass boundaries and at the
  interpreter's step check, so runaway seeds become ``budget_exceeded``
  skips rather than hangs.
* :class:`CheckpointJournal` appends one JSONL record per finished
  seed; rerunning a campaign with the same journal replays finished
  seeds from disk and analyzes only the rest, reproducing the
  uninterrupted result.

The chaos harness (:mod:`repro.testing.chaos`) injects faults at the
phase hooks below so tests and CI can prove all of this end to end.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from dataclasses import dataclass, field, replace

from .. import budget
from ..budget import SeedBudgetExceeded
from ..compilers import CompilerSpec
from ..compilers.pipeline import PassPipelineError
from ..frontend.typecheck import check_program
from ..generator import GeneratorConfig, generate_program
from ..interp import StepLimitExceeded
from ..observability.metrics import MetricsRegistry
from ..testing import chaos
from .differential import analyze_markers
from .ground_truth import compute_ground_truth
from .markers import instrument_program

#: phases of the per-seed pipeline, in execution order
PHASES = ("generate", "instrument", "ground_truth", "compile", "analyze")

#: synthetic phase for seeds that took a pool worker down with them
WORKER_PHASE = "worker"

#: post-campaign phase for crashes inside finding reduction
REDUCE_PHASE = "reduce"

#: phase for crashes contained by the campaign service's supervisor
#: (a job crashed outside any single seed's analysis)
SERVE_PHASE = "serve"

_REPRO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_TESTING_DIR = os.path.join(_REPRO_ROOT, "testing")


@dataclass(frozen=True)
class CrashEnvelope:
    """Everything worth keeping about one contained per-seed crash."""

    seed: int
    phase: str
    exc_type: str
    message: str
    #: dedup key: exception type + deepest in-repo frame (+ pass name
    #: for pass-pipeline crashes) — stable across runs and jobs counts
    bucket: str
    #: trimmed traceback lines (most recent call last)
    traceback: tuple[str, ...] = ()
    #: one-liner that re-runs the failing seed outside the campaign
    repro: str = ""

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "phase": self.phase,
            "exc_type": self.exc_type,
            "message": self.message,
            "bucket": self.bucket,
            "traceback": list(self.traceback),
            "repro": self.repro,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CrashEnvelope":
        return cls(
            seed=data["seed"],
            phase=data["phase"],
            exc_type=data["exc_type"],
            message=data["message"],
            bucket=data["bucket"],
            traceback=tuple(data.get("traceback", ())),
            repro=data.get("repro", ""),
        )


def repro_command(seed: int) -> str:
    """A shell one-liner reproducing the failing seed's analysis."""
    return (
        f"dce-hunt generate --seed {seed} --instrument | dce-hunt analyze -"
    )


def crash_envelope(
    seed: int, phase: str, exc: BaseException, max_tb_lines: int = 12
) -> CrashEnvelope:
    """Fold a caught exception into a :class:`CrashEnvelope`."""
    import traceback as tb_module

    root = exc
    while root.__cause__ is not None:
        root = root.__cause__
    frame = _deepest_repro_frame(root)
    bucket = type(root).__name__
    if frame is not None:
        bucket += f"@{frame}"
    pass_name = getattr(exc, "pass_name", None)
    if pass_name:
        bucket += f"#{pass_name}"
    lines = tb_module.format_exception(type(exc), exc, exc.__traceback__)
    trimmed = "".join(lines).rstrip("\n").split("\n")[-max_tb_lines:]
    return CrashEnvelope(
        seed=seed,
        phase=phase,
        exc_type=type(root).__name__,
        message=str(exc),
        bucket=bucket,
        traceback=tuple(trimmed),
        repro=repro_command(seed),
    )


def _deepest_repro_frame(exc: BaseException) -> str | None:
    """``file.py:function`` of the deepest traceback frame inside this
    package (line numbers excluded so refactors don't split buckets;
    the chaos harness is excluded so injected faults bucket by the
    production site they fired at, not by the injector)."""
    deepest: str | None = None
    tb = exc.__traceback__
    while tb is not None:
        code = tb.tb_frame.f_code
        path = os.path.abspath(code.co_filename)
        if path.startswith(_REPRO_ROOT) and not path.startswith(_TESTING_DIR):
            deepest = f"{os.path.basename(path)}:{code.co_name}"
        tb = tb.tb_next
    return deepest


def bucket_crashes(
    crashes: list[CrashEnvelope],
) -> dict[str, list[CrashEnvelope]]:
    """Group envelopes by bucket, deterministically: buckets sorted by
    key, envelopes within a bucket in seed order."""
    grouped: dict[str, list[CrashEnvelope]] = {}
    for envelope in sorted(crashes, key=lambda e: e.seed):
        grouped.setdefault(envelope.bucket, []).append(envelope)
    return dict(sorted(grouped.items()))


# -- per-seed resilient analysis -------------------------------------------


@dataclass
class SeedReport:
    """The campaign-facing verdict on one seed — always returned,
    never raised (except for :class:`KeyboardInterrupt` and friends)."""

    seed: int
    outcome: object | None = None  # ProgramOutcome, kept untyped to
    # avoid a circular import with corpus
    #: ground truth exceeded the interpreter step budget (the
    #: pre-existing skip path)
    skipped: bool = False
    crash: CrashEnvelope | None = None
    budget_exceeded: bool = False
    #: the incremental engine crashed but the plain retry succeeded
    degraded: bool = False

    @property
    def completed(self) -> bool:
        return self.outcome is not None


def analyze_one_resilient(
    seed: int,
    specs: list[CompilerSpec],
    version: int | None = None,
    generator_config: GeneratorConfig | None = None,
    metrics: MetricsRegistry | None = None,
    incremental: bool = True,
    seed_budget: float | None = None,
    interp: str | None = None,
    store=None,
) -> SeedReport:
    """Run :func:`repro.core.corpus.analyze_one`'s pipeline with full
    fault isolation; see the module docstring for the contract.

    ``store`` is an optional :class:`~repro.store.StoreSession` threaded
    into the ground-truth and compile phases so known executions and
    eliminated-marker sets are replayed instead of recomputed (and new
    ones recorded into the session's delta for the parent to commit).
    """
    report = SeedReport(seed=seed)
    chaos.set_current_seed(seed)
    try:
        with budget.deadline(seed_budget):
            _run_phases(report, seed, specs, version, generator_config,
                        metrics, incremental, interp, store)
    except SeedBudgetExceeded:
        report.outcome = None
        report.crash = None
        report.budget_exceeded = True
    finally:
        chaos.set_current_seed(None)
    return report


def _run_phases(
    report: SeedReport,
    seed: int,
    specs: list[CompilerSpec],
    version: int | None,
    generator_config: GeneratorConfig | None,
    metrics: MetricsRegistry | None,
    incremental: bool,
    interp: str | None,
    store=None,
) -> None:
    from .corpus import ProgramOutcome

    phase = "generate"
    try:
        chaos.trigger("generate")
        program = generate_program(seed, generator_config)
        phase = "instrument"
        chaos.trigger("instrument")
        instrumented = instrument_program(program)
        info = check_program(instrumented.program)
        phase = "ground_truth"
        try:
            chaos.trigger("ground_truth")
            truth = compute_ground_truth(
                instrumented, info=info, backend=interp, metrics=metrics,
                store=store,
            )
        except StepLimitExceeded:
            report.skipped = True
            return
    except SeedBudgetExceeded:
        raise
    except Exception as err:
        report.crash = crash_envelope(seed, phase, err)
        return

    try:
        chaos.trigger("analyze")
        analysis = analyze_markers(
            instrumented, specs, info=info, ground_truth=truth,
            metrics=metrics, incremental=incremental, store=store,
        )
    except SeedBudgetExceeded:
        raise
    except Exception as err:
        if not incremental:
            report.crash = crash_envelope(seed, _analyze_phase(err), err)
            return
        # graceful degradation: one retry on the independent-compile
        # path before the seed counts as crashed
        try:
            analysis = analyze_markers(
                instrumented, specs, info=info, ground_truth=truth,
                metrics=metrics, incremental=False, store=store,
            )
        except SeedBudgetExceeded:
            raise
        except Exception as retry_err:
            report.crash = crash_envelope(
                seed, _analyze_phase(retry_err), retry_err
            )
            return
        report.degraded = True
    report.outcome = ProgramOutcome(
        seed, len(instrumented.markers), len(truth.dead), analysis
    )


def _analyze_phase(err: Exception) -> str:
    """Attribute an analysis-stage failure: pass-pipeline errors are
    *compile* crashes, anything else failed in the comparison layer."""
    return "compile" if isinstance(err, PassPipelineError) else "analyze"


def worker_death_envelope(seed: int) -> CrashEnvelope:
    """The synthesized envelope for a seed that killed its pool worker
    (isolated by the parallel engine's shard bisection)."""
    return CrashEnvelope(
        seed=seed,
        phase=WORKER_PHASE,
        exc_type="WorkerDeath",
        message=(
            "worker process died while analyzing this seed "
            "(BrokenProcessPool; isolated by shard bisection)"
        ),
        bucket="WorkerDeath@worker",
        traceback=(),
        repro=repro_command(seed),
    )


def reduction_death_envelope(seed: int) -> CrashEnvelope:
    """The synthesized envelope for a finding whose reduction killed
    its pool worker; the campaign keeps the structural fingerprint."""
    return CrashEnvelope(
        seed=seed,
        phase=REDUCE_PHASE,
        exc_type="WorkerDeath",
        message=(
            "worker process died while reducing this finding "
            "(BrokenProcessPool; structural fingerprint kept)"
        ),
        bucket="WorkerDeath@reduce",
        traceback=(),
        repro=repro_command(seed),
    )


def service_crash_envelope(job_id: str, exc: BaseException) -> CrashEnvelope:
    """Fold a service job's crash into the standard envelope machinery.

    There is no single seed to blame (the job may span many), so the
    seed slot is ``-1`` and the repro one-liner is the job itself.
    The bucket keeps the usual ``ExcType@file:func`` dedup key, so a
    flaky handler shows up as one bucket across many retries.
    """
    envelope = crash_envelope(-1, SERVE_PHASE, exc)
    return replace(envelope, repro=f"resubmit job {job_id} via POST /api/v1")


# -- checkpoint journal ----------------------------------------------------


class CheckpointJournal:
    """Append-only JSONL journal of finished seeds.

    One record per seed, written and flushed as soon as the seed
    finishes, so a SIGINT (or a crash of the campaign process itself)
    loses at most the seed in flight.  Completed outcomes are carried
    as base64-pickled payloads inside the JSON record — heavyweight,
    but it makes resumed campaigns *reproduce* the uninterrupted
    :class:`~repro.core.corpus.CampaignResult` without re-analyzing
    journaled seeds.  A truncated trailing line (interrupt mid-write)
    is skipped on load and the seed re-analyzed.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._records: dict[int, SeedReport] = {}
        if os.path.exists(path):
            self._load()
        self._file = open(path, "a")

    def _load(self) -> None:
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    report = _report_from_record(record)
                except (ValueError, KeyError, pickle.UnpicklingError):
                    continue  # torn tail write; re-analyze that seed
                self._records[report.seed] = report

    def get(self, seed: int) -> SeedReport | None:
        return self._records.get(seed)

    def seeds(self) -> frozenset[int]:
        return frozenset(self._records)

    def record(self, report: SeedReport) -> None:
        self._records[report.seed] = report
        json.dump(_record_from_report(report), self._file)
        self._file.write("\n")
        self.flush()

    def flush(self) -> None:
        if not self._file.closed:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __len__(self) -> int:
        return len(self._records)


def _record_from_report(report: SeedReport) -> dict:
    if report.budget_exceeded:
        status = "budget"
    elif report.crash is not None:
        status = "crash"
    elif report.outcome is None:
        status = "skipped"
    else:
        status = "ok"
    record: dict = {"seed": report.seed, "status": status}
    if report.degraded:
        record["degraded"] = True
    if report.crash is not None:
        record["crash"] = report.crash.to_dict()
    if report.outcome is not None:
        record["outcome"] = base64.b64encode(
            pickle.dumps(report.outcome)
        ).decode("ascii")
    return record


def _report_from_record(record: dict) -> SeedReport:
    status = record["status"]
    report = SeedReport(seed=record["seed"])
    report.degraded = bool(record.get("degraded", False))
    if status == "budget":
        report.budget_exceeded = True
    elif status == "crash":
        report.crash = CrashEnvelope.from_dict(record["crash"])
    elif status == "skipped":
        report.skipped = True
    elif status == "ok":
        report.outcome = pickle.loads(base64.b64decode(record["outcome"]))
    else:
        raise KeyError(f"unknown journal status {status!r}")
    return report


def read_journal_crashes(path: str) -> list[CrashEnvelope]:
    """All crash envelopes recorded in a checkpoint journal, in seed
    order (powers ``dce-hunt crashes <journal>``)."""
    crashes: list[CrashEnvelope] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if record.get("status") == "crash":
                crashes.append(CrashEnvelope.from_dict(record["crash"]))
    return sorted(crashes, key=lambda e: e.seed)
