"""Finding triage: deduplication and prioritization (paper §4.2/§4.3).

"The discovered missed opportunities are not necessarily unique, i.e.
the same root cause might be the source of multiple missed
opportunities. We deduplicate cases after reducing them and before
reporting them to compiler developers."

A finding's *signature* approximates its root cause: the structural
shape of the marker's guarding condition plus the set of compiler
knobs whose flip changes the verdict (determined by probing).  Findings
with equal signatures are reported once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compilers import CompilerSpec, compile_minic
from ..frontend.typecheck import SymbolInfo, check_program
from ..lang import ast_nodes as ast

#: Config knobs worth probing, with an alternative value each — the
#: family-differentiator set from repro.compilers.config.
_PROBE_KNOBS: tuple[tuple[str, object], ...] = (
    ("addr_cmp", "all"),
    ("global_fold_mode", "stored-init"),
    ("fold_uniform_const_arrays", True),
    ("gvn_across_calls", True),
    ("vectorize", False),
    ("unswitch", False),
    ("dse_dead_at_exit", True),
    ("vrp", True),
    ("collapse_cast_chains", True),
)


@dataclass(frozen=True)
class Finding:
    """One missed marker in one program under one compiler spec."""

    seed: int
    marker: str
    spec: CompilerSpec
    program: ast.Program = field(compare=False, hash=False)


@dataclass(frozen=True)
class Signature:
    """Root-cause approximation used for deduplication."""

    family: str
    level: str
    condition_shape: str
    sensitive_knobs: tuple[str, ...]


def guarding_condition_shape(program: ast.Program, marker: str) -> str:
    """The structural shape of the innermost condition guarding the
    marker call (operators + operand kinds, no names/values)."""
    for func in program.functions():
        shape = _shape_in_block(func.body, marker)
        if shape is not None:
            return shape
    return "<unguarded>"


def _shape_in_block(block: ast.Block, marker: str) -> str | None:
    for stmt in block.stmts:
        if isinstance(stmt, ast.If):
            if _block_calls(stmt.then, marker):
                return _expr_shape(stmt.cond)
            if stmt.els is not None and _block_calls(stmt.els, marker):
                return f"!({_expr_shape(stmt.cond)})"
        for child in _child_blocks(stmt):
            found = _shape_in_block(child, marker)
            if found is not None:
                return found
    return None


def _child_blocks(stmt: ast.Stmt):
    if isinstance(stmt, ast.Block):
        yield stmt
    elif isinstance(stmt, ast.If):
        yield stmt.then
        if stmt.els is not None:
            yield stmt.els
    elif isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
        yield stmt.body
    elif isinstance(stmt, ast.Switch):
        for case in stmt.cases:
            yield case.body


def _block_calls(block: ast.Block, marker: str) -> bool:
    for stmt in block.stmts:
        if (
            isinstance(stmt, ast.ExprStmt)
            and isinstance(stmt.expr, ast.Call)
            and stmt.expr.callee == marker
        ):
            return True
    return False


def _expr_shape(expr: ast.Expr) -> str:
    if isinstance(expr, ast.IntLit):
        return "C"
    if isinstance(expr, ast.VarRef):
        return "v"
    if isinstance(expr, ast.Index):
        return f"{_expr_shape(expr.base)}[{_expr_shape(expr.index)}]"
    if isinstance(expr, ast.Deref):
        return f"*{_expr_shape(expr.pointer)}"
    if isinstance(expr, ast.AddrOf):
        return f"&{_expr_shape(expr.lvalue)}"
    if isinstance(expr, ast.Unary):
        return f"{expr.op}{_expr_shape(expr.operand)}"
    if isinstance(expr, ast.Cast):
        return f"(T){_expr_shape(expr.operand)}"
    if isinstance(expr, ast.Binary):
        return f"({_expr_shape(expr.lhs)} {expr.op} {_expr_shape(expr.rhs)})"
    if isinstance(expr, ast.Call):
        return "f()"
    return "?"


def sensitive_knobs(
    finding: Finding,
    info: SymbolInfo | None = None,
    marker_prefix: str = "DCEMarker",
) -> tuple[str, ...]:
    """Which config knobs, when flipped, make the marker fold.

    This is a direct probe of the root cause: a finding fixed by
    ``addr_cmp='all'`` is an address-comparison weakness, one fixed by
    ``vectorize=False`` is the vectorizer interaction, and so on.
    """
    if info is None:
        info = check_program(finding.program)
    base_config = finding.spec.config()
    out = []
    for knob, alt in _PROBE_KNOBS:
        if getattr(base_config, knob) == alt:
            continue
        probed = base_config.with_(**{knob: alt})
        alive = _alive_with_config(finding, probed, info, marker_prefix)
        if finding.marker not in alive:
            out.append(knob)
    return tuple(sorted(out))


def _alive_with_config(finding: Finding, config, info, marker_prefix):
    from ..backend.asm import alive_markers, emit_module
    from ..compilers.pipeline import run_pipeline
    from ..frontend.lower import lower_program

    module = lower_program(finding.program, info)
    run_pipeline(module, config)
    return alive_markers(emit_module(module), marker_prefix)


def signature_of(finding: Finding, info: SymbolInfo | None = None) -> Signature:
    return Signature(
        family=finding.spec.family,
        level=finding.spec.level,
        condition_shape=guarding_condition_shape(finding.program, finding.marker),
        sensitive_knobs=sensitive_knobs(finding, info),
    )


@dataclass
class TriageResult:
    unique: list[tuple[Signature, list[Finding]]] = field(default_factory=list)

    @property
    def duplicates_removed(self) -> int:
        return sum(len(group) - 1 for _, group in self.unique)

    def representative_findings(self) -> list[Finding]:
        return [group[0] for _, group in self.unique]


def deduplicate(findings: list[Finding]) -> TriageResult:
    """Group findings by signature; one representative per group."""
    groups: dict[Signature, list[Finding]] = {}
    order: list[Signature] = []
    for finding in findings:
        sig = signature_of(finding)
        if sig not in groups:
            groups[sig] = []
            order.append(sig)
        groups[sig].append(finding)
    return TriageResult([(sig, groups[sig]) for sig in order])
