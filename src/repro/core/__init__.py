"""The paper's contribution: DCE-marker–based missed-optimization
discovery — instrumentation, ground truth, differential testing,
primary-marker analysis, reduction, bisection, reporting."""

from .artifact import (
    ProgramRecord,
    ValidationReport,
    build_corpus,
    load_corpus,
    load_program,
    validate_corpus,
)
from .bisect import BisectionResult, bisect_marker_regression, bisect_versions
from .case_studies import CASE_STUDIES, CaseStudy, case_study, verify_case_study
from .corpus import CampaignResult, analyze_one, default_specs, run_campaign
from .differential import (
    MarkerOutcome,
    ProgramAnalysis,
    analyze_markers,
    missed_between_levels,
)
from .ground_truth import GroundTruth, compute_ground_truth
from .markers import (
    MARKER_PREFIX,
    InstrumentedProgram,
    MarkerInfo,
    instrument_program,
)
from .primary import MarkerGraph, build_marker_graph, primary_missed_markers
from .reduction import (
    MissedMarkerPredicate,
    ReductionCampaignStats,
    ReductionQueue,
    ReductionResult,
    missed_marker_predicate,
    reduce_finding,
    reduce_program,
)
from .regression_watch import WatchReport, watch
from .reports import LEDGER, BugReport, reports_for, table5_counts
from .triage import Finding, Signature, TriageResult, deduplicate, signature_of
from .value_checks import ValueCheckProgram, instrument_value_checks

__all__ = [
    "BisectionResult",
    "BugReport",
    "CASE_STUDIES",
    "Finding",
    "ProgramRecord",
    "Signature",
    "TriageResult",
    "ValidationReport",
    "build_corpus",
    "deduplicate",
    "load_corpus",
    "load_program",
    "signature_of",
    "validate_corpus",
    "CampaignResult",
    "CaseStudy",
    "GroundTruth",
    "InstrumentedProgram",
    "LEDGER",
    "MARKER_PREFIX",
    "MarkerGraph",
    "MarkerInfo",
    "MarkerOutcome",
    "MissedMarkerPredicate",
    "ProgramAnalysis",
    "ReductionCampaignStats",
    "ReductionQueue",
    "ReductionResult",
    "ValueCheckProgram",
    "WatchReport",
    "analyze_markers",
    "analyze_one",
    "bisect_marker_regression",
    "bisect_versions",
    "build_marker_graph",
    "case_study",
    "compute_ground_truth",
    "default_specs",
    "instrument_program",
    "instrument_value_checks",
    "missed_between_levels",
    "missed_marker_predicate",
    "primary_missed_markers",
    "reduce_finding",
    "reduce_program",
    "reports_for",
    "run_campaign",
    "table5_counts",
    "verify_case_study",
    "watch",
]
