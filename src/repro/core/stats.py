"""Plain-text table rendering shared by the benchmark harness."""

from __future__ import annotations

import re

#: a cell that reads as a number: optional sign, digits with optional
#: thousands separators / decimal part, optional trailing ``%`` or
#: unit-ish suffix used by the benches (``ms``, ``s``, ``x``)
_NUMERIC_CELL = re.compile(
    r"^[+-]?\d[\d,_]*(\.\d+)?\s*(%|ms|s|x)?$"
)


def _is_numeric_column(cells: list[str]) -> bool:
    """True when every non-empty cell is numeric (and one exists)."""
    non_empty = [c.strip() for c in cells if c.strip()]
    return bool(non_empty) and all(_NUMERIC_CELL.match(c) for c in non_empty)


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Render an aligned ASCII table (paper-style).

    Columns whose cells are all numeric (percentages, timings, counts,
    signed deltas) are right-aligned, header included, so magnitude
    comparisons read like the paper's tables; text columns stay
    left-aligned.
    """
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    numeric = [
        _is_numeric_column([row[i] for row in rows if i < len(row)])
        for i in range(len(headers))
    ]

    def align(cell: str, i: int) -> str:
        return cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i])

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(align(h, i) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(align(c, i) for i, c in enumerate(row)))
    return "\n".join(lines)


def pct(value: float) -> str:
    return f"{value:.2f}%"
