"""Plain-text table rendering shared by the benchmark harness."""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Render an aligned ASCII table (paper-style)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def pct(value: float) -> str:
    return f"{value:.2f}%"
