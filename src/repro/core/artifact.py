"""Artifact workflow (paper appendix A).

The paper ships a corpus plus scripts to (1) generate programs, (2)
instrument them, (3) compute ground truth and per-compiler eliminated
sets, and (4) validate previously recorded results.  This module is
that workflow: a corpus directory contains the instrumented programs
as ``.c`` files plus a ``results.json`` with every recorded verdict,
and ``validate_corpus`` re-runs the pipeline and diffs.

Layout::

    corpus/
      manifest.json        # seeds, generator config, compiler specs
      results.json         # per-program marker verdicts
      programs/
        seed_000017.c      # instrumented source (round-trips exactly)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..compilers import CompilerSpec, compile_minic
from ..core.ground_truth import compute_ground_truth
from ..core.markers import InstrumentedProgram, MarkerInfo, instrument_program
from ..frontend.typecheck import check_program
from ..generator import GeneratorConfig, generate_program
from ..interp import StepLimitExceeded
from ..lang import parse_program, print_program

FORMAT_VERSION = 1


@dataclass
class ProgramRecord:
    seed: int
    markers: list[str]
    dead: list[str]
    alive: list[str]
    eliminated_by: dict[str, list[str]] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "markers": self.markers,
            "dead": self.dead,
            "alive": self.alive,
            "eliminated_by": self.eliminated_by,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ProgramRecord":
        return cls(
            seed=data["seed"],
            markers=list(data["markers"]),
            dead=list(data["dead"]),
            alive=list(data["alive"]),
            eliminated_by={k: list(v) for k, v in data["eliminated_by"].items()},
        )


@dataclass
class ValidationReport:
    checked: int = 0
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def _spec_key(spec: CompilerSpec) -> str:
    return str(spec)


def _parse_spec(key: str) -> CompilerSpec:
    name, _, version = key.partition("@")
    family, _, level = name.partition("-")
    return CompilerSpec(family, level, int(version) if version else None)


def build_corpus(
    directory: str | Path,
    seeds: list[int],
    specs: list[CompilerSpec] | None = None,
    generator_config: GeneratorConfig | None = None,
) -> list[ProgramRecord]:
    """Generate, instrument, evaluate, and persist a corpus."""
    directory = Path(directory)
    programs_dir = directory / "programs"
    programs_dir.mkdir(parents=True, exist_ok=True)
    specs = specs or [
        CompilerSpec(f, l) for f in ("gcclike", "llvmlike") for l in ("O1", "O3")
    ]

    records: list[ProgramRecord] = []
    skipped: list[int] = []
    for seed in seeds:
        program = generate_program(seed, generator_config)
        instrumented = instrument_program(program)
        info = check_program(instrumented.program)
        try:
            truth = compute_ground_truth(instrumented, info=info)
        except StepLimitExceeded:
            skipped.append(seed)
            continue
        record = ProgramRecord(
            seed=seed,
            markers=sorted(instrumented.marker_names),
            dead=sorted(truth.dead),
            alive=sorted(truth.alive),
        )
        for spec in specs:
            result = compile_minic(instrumented.program, spec, info=info)
            eliminated = instrumented.marker_names - result.alive_markers("DCEMarker")
            record.eliminated_by[_spec_key(spec)] = sorted(eliminated)
        records.append(record)
        path = programs_dir / f"seed_{seed:06d}.c"
        path.write_text(print_program(instrumented.program))

    manifest = {
        "format": FORMAT_VERSION,
        "seeds": [r.seed for r in records],
        "skipped": skipped,
        "specs": [_spec_key(s) for s in specs],
    }
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
    (directory / "results.json").write_text(
        json.dumps([r.to_json() for r in records], indent=2)
    )
    return records


def load_corpus(directory: str | Path) -> tuple[dict, list[ProgramRecord]]:
    directory = Path(directory)
    manifest = json.loads((directory / "manifest.json").read_text())
    if manifest.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported corpus format: {manifest.get('format')}")
    records = [
        ProgramRecord.from_json(item)
        for item in json.loads((directory / "results.json").read_text())
    ]
    return manifest, records


def load_program(directory: str | Path, seed: int) -> InstrumentedProgram:
    """Re-load one instrumented program from its .c file."""
    path = Path(directory) / "programs" / f"seed_{seed:06d}.c"
    program = parse_program(path.read_text())
    markers = [
        MarkerInfo(d.name, "corpus", "")
        for d in program.extern_decls()
        if d.name.startswith("DCEMarker")
    ]
    return InstrumentedProgram(program, markers)


def validate_corpus(directory: str | Path) -> ValidationReport:
    """Re-run every recorded verdict and diff against results.json —
    the artifact appendix's 'validate the existing results' step."""
    manifest, records = load_corpus(directory)
    report = ValidationReport()
    for record in records:
        instrumented = load_program(directory, record.seed)
        info = check_program(instrumented.program)
        truth = compute_ground_truth(instrumented, info=info)
        report.checked += 1
        if sorted(truth.dead) != record.dead:
            report.mismatches.append(f"seed {record.seed}: ground truth drifted")
            continue
        for key, recorded in record.eliminated_by.items():
            spec = _parse_spec(key)
            result = compile_minic(instrumented.program, spec, info=info)
            eliminated = sorted(
                instrumented.marker_names - result.alive_markers("DCEMarker")
            )
            if eliminated != recorded:
                report.mismatches.append(
                    f"seed {record.seed} {key}: eliminated set drifted "
                    f"({len(recorded)} recorded, {len(eliminated)} now)"
                )
    return report
