"""Regression bisection (paper §4.2, 'Missed optimization diversity').

Binary search over a compiler family's commit history for the first
version at which a marker stops being eliminated.  The offending
commit's component/files tags feed Tables 3 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..compilers import CompilerSpec, compile_minic
from ..compilers.versions import Commit, commit_at, history, latest
from ..frontend.typecheck import SymbolInfo, check_program
from ..lang import ast_nodes as ast


@dataclass
class BisectionResult:
    family: str
    first_bad: int
    commit: Commit
    steps: int

    @property
    def component(self) -> str:
        return self.commit.component

    @property
    def files(self) -> tuple[str, ...]:
        return self.commit.files


def bisect_versions(
    family: str,
    is_bad: Callable[[int], bool],
    good: int = 0,
    bad: int | None = None,
) -> BisectionResult:
    """Find the first version ``v`` with ``is_bad(v)``.

    Preconditions (checked): ``not is_bad(good)`` and ``is_bad(bad)``.
    """
    if bad is None:
        bad = latest(family)
    steps = 0
    if is_bad(good):
        raise ValueError(f"version {good} is already bad; nothing to bisect")
    if not is_bad(bad):
        raise ValueError(f"version {bad} is not bad; nothing to bisect")
    steps += 2
    lo, hi = good, bad  # invariant: lo good, hi bad
    while hi - lo > 1:
        mid = (lo + hi) // 2
        steps += 1
        if is_bad(mid):
            hi = mid
        else:
            lo = mid
    return BisectionResult(family, hi, commit_at(family, hi), steps)


def marker_regression_predicate(
    program: ast.Program,
    marker: str,
    family: str,
    level: str,
    info: SymbolInfo | None = None,
    marker_prefix: str = "DCEMarker",
) -> Callable[[int], bool]:
    """``is_bad(version)`` = the marker survives in the assembly at
    that version (i.e. the optimization is missed)."""
    if info is None:
        info = check_program(program)

    cache: dict[int, bool] = {}

    def is_bad(version: int) -> bool:
        if version not in cache:
            spec = CompilerSpec(family, level, version)
            alive = compile_minic(program, spec, info=info).alive_markers(marker_prefix)
            cache[version] = marker in alive
        return cache[version]

    return is_bad


def bisect_marker_regression(
    program: ast.Program,
    marker: str,
    family: str,
    level: str = "O3",
    info: SymbolInfo | None = None,
) -> BisectionResult | None:
    """Bisect a marker that an old version of (family, level)
    eliminated but the tip misses; None when it is not a regression
    (the oldest version misses it too)."""
    is_bad = marker_regression_predicate(program, marker, family, level, info)
    if is_bad(0):
        return None  # not a regression: it was always missed
    if not is_bad(latest(family)):
        return None  # not missed at the tip
    return bisect_versions(family, is_bad)
