"""Primary missed-marker analysis (paper §3.2, step ④).

A missed dead marker is *primary* iff every predecessor marker in the
(inter-procedural) control-flow graph is either alive or was itself
eliminated — i.e. nothing upstream explains the miss.  Only primary
markers are worth triaging: fixing the primary usually resolves its
secondaries for free (paper Fig. 2 / Listing 5).

The marker CFG is recovered from the *unoptimized* lowering of the
instrumented program, so it reflects source structure.  Predecessors
of a marker are the nearest markers on marker-free backward paths;
paths that reach the entry of an executed function count as a live
predecessor, and paths reaching the entry of a never-executed function
continue interprocedurally through its call sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend.lower import lower_program
from ..frontend.typecheck import SymbolInfo, check_program
from ..ir import instructions as ins
from ..ir.function import Block, Module
from .ground_truth import GroundTruth
from .markers import InstrumentedProgram


@dataclass
class MarkerGraph:
    """Predecessor sets over markers, plus a live-entry flag."""

    preds: dict[str, frozenset[str]] = field(default_factory=dict)
    live_entry: dict[str, bool] = field(default_factory=dict)


def build_marker_graph(
    instrumented: InstrumentedProgram,
    executed_functions: frozenset[str],
    info: SymbolInfo | None = None,
) -> MarkerGraph:
    """Compute each marker's predecessor markers on the raw IR CFG."""
    if info is None:
        info = check_program(instrumented.program)
    module = lower_program(instrumented.program, info)
    marker_names = instrumented.marker_names

    # Call sites per defined function: (block, index) of each call.
    call_sites: dict[str, list[tuple[Block, int]]] = {}
    marker_positions: list[tuple[str, Block, int, str]] = []
    func_of_block: dict[int, str] = {}
    entry_of: dict[str, Block] = {}
    for func in module.functions.values():
        entry_of[func.name] = func.entry
        for block in func.blocks:
            func_of_block[id(block)] = func.name
            for idx, instr in enumerate(block.instrs):
                if isinstance(instr, ins.Call):
                    if instr.callee in marker_names:
                        marker_positions.append((instr.callee, block, idx, func.name))
                    elif instr.callee in module.functions:
                        call_sites.setdefault(instr.callee, []).append((block, idx))

    preds_map = {f.name: f.predecessors() for f in module.functions.values()}

    graph = MarkerGraph()
    for name, block, idx, fname in marker_positions:
        preds, live = _backward_search(
            name, block, idx, module, marker_names, call_sites,
            executed_functions, preds_map, func_of_block, entry_of,
        )
        graph.preds[name] = frozenset(preds)
        graph.live_entry[name] = live
    return graph


def _backward_search(
    marker: str,
    block: Block,
    index: int,
    module: Module,
    marker_names: frozenset[str],
    call_sites: dict[str, list[tuple[Block, int]]],
    executed_functions: frozenset[str],
    preds_map: dict[str, dict[Block, list[Block]]],
    func_of_block: dict[int, str],
    entry_of: dict[str, Block],
) -> tuple[set[str], bool]:
    """Nearest markers on marker-free backward paths from (block, index)."""
    found: set[str] = set()
    live_entry = False
    #: work items: (block, start_index) — scan instrs [start_index..0]
    work: list[tuple[Block, int]] = [(block, index - 1)]
    seen: set[tuple[int, int]] = set()
    budget = 200_000  # hard cap; generated programs stay far below it

    while work and budget > 0:
        budget -= 1
        cur_block, start = work.pop()
        key = (id(cur_block), start)
        if key in seen:
            continue
        seen.add(key)
        hit = None
        for i in range(start, -1, -1):
            instr = cur_block.instrs[i]
            if isinstance(instr, ins.Call) and instr.callee in marker_names:
                hit = instr.callee
                break
        if hit is not None:
            if hit != marker:  # self-loops (via back edges) don't count
                found.add(hit)
            continue
        fname = func_of_block[id(cur_block)]
        block_preds = preds_map[fname][cur_block]
        if cur_block is entry_of[fname] and not block_preds:
            if fname == "main" or fname in executed_functions:
                live_entry = True
            else:
                for call_block, call_idx in call_sites.get(fname, ()):  # interprocedural
                    work.append((call_block, call_idx - 1))
            continue
        for pred in block_preds:
            work.append((pred, len(pred.instrs) - 1))
    return found, live_entry


def primary_missed_markers(
    instrumented: InstrumentedProgram,
    ground_truth: GroundTruth,
    eliminated: frozenset[str],
    info: SymbolInfo | None = None,
    graph: MarkerGraph | None = None,
) -> frozenset[str]:
    """The primary subset of the missed dead markers.

    ``eliminated`` is the compiler's eliminated-marker set; the missed
    dead markers are ``ground_truth.dead - eliminated``.
    """
    if graph is None:
        graph = build_marker_graph(
            instrumented, ground_truth.executed_functions(), info
        )
    missed = ground_truth.dead - eliminated
    primary: set[str] = set()
    for marker in missed:
        preds = graph.preds.get(marker, frozenset())
        if all(p in ground_truth.alive or p in eliminated for p in preds):
            primary.add(marker)
    return frozenset(primary)
