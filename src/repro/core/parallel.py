"""Parallel campaign engine: process-pool seed sharding.

``run_campaign(jobs=N)`` delegates here for ``N > 1``.  Seeds split
into contiguous shards, each pool worker runs
:func:`repro.core.corpus.analyze_one` over its shard and sends back a
picklable :class:`SeedEnvelope` per seed (outcome + raw metrics
snapshot + serialized spans).  The parent drains futures as they
complete but folds envelopes into the :class:`CampaignResult` strictly
**in seed order** — out-of-order shards buffer until the gap closes —
so the result is identical to the sequential run regardless of jobs
count, shard size, or completion order.

Observability threads through the pool boundary:

* each worker accumulates into a private
  :class:`~repro.observability.metrics.MetricsRegistry` whose raw
  :meth:`~repro.observability.metrics.MetricsRegistry.dump` snapshot
  merges into the parent registry (histogram observations included),
  in seed order, so merged tallies match the sequential run;
* workers trace into a private
  :class:`~repro.observability.tracer.Tracer` (only when the parent's
  tracer is enabled) and the parent re-parents each per-seed span
  subtree under its own ``campaign`` span via
  :meth:`~repro.observability.tracer.Tracer.adopt_spans`;
* ``progress`` callbacks fire from the as-completed loop as seeds
  merge, so ``campaign --progress`` ticks live.

Workers fork (where the platform supports it) so the pool inherits the
warm interpreter state; on spawn-only platforms everything shipped to
the initializer is picklable.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from ..compilers import FAMILIES
from ..generator import GeneratorConfig
from ..observability.export import spans_to_dicts
from ..observability.metrics import MetricsRegistry
from ..observability.tracer import Tracer, current_tracer, use_tracer
from .corpus import (
    CampaignProgress,
    CampaignResult,
    CrossLevelStats,
    ProgramOutcome,
    _accumulate,
    _record_tallies,
    analyze_one,
    default_specs,
)

#: seeds per pool task: small enough that every worker sees several
#: waves (load balance + live progress), large enough to amortize the
#: per-task pickle round-trip
MAX_SHARD_SIZE = 8


@dataclass
class SeedEnvelope:
    """Everything one worker says about one seed, picklable."""

    seed: int
    outcome: ProgramOutcome | None
    #: raw MetricsRegistry.dump() snapshot (None when metrics are off)
    metrics: dict[str, Any] | None
    #: worker span dicts, completion order (None when tracing is off)
    spans: list[dict[str, Any]] | None


def shard_seeds(
    seeds: Sequence[int], jobs: int, shard_size: int | None = None
) -> list[list[int]]:
    """Split ``seeds`` into contiguous shards.

    The default size aims for ~4 waves per worker so stragglers don't
    serialize the tail, capped at :data:`MAX_SHARD_SIZE`.
    """
    if shard_size is None:
        per_wave = max(1, len(seeds) // (jobs * 4))
        shard_size = min(per_wave, MAX_SHARD_SIZE)
    shard_size = max(1, shard_size)
    return [
        list(seeds[i:i + shard_size])
        for i in range(0, len(seeds), shard_size)
    ]


# -- worker side -----------------------------------------------------------

_WORKER: dict[str, Any] = {}


def _init_worker(
    version: int | None,
    generator_config: GeneratorConfig | None,
    collect_metrics: bool,
    collect_spans: bool,
    incremental: bool = True,
) -> None:
    _WORKER.update(
        specs=default_specs(version),
        version=version,
        generator_config=generator_config,
        collect_metrics=collect_metrics,
        collect_spans=collect_spans,
        incremental=incremental,
    )


def _analyze_shard(seeds: list[int]) -> list[SeedEnvelope]:
    return [_analyze_seed(seed) for seed in seeds]


def _analyze_seed(seed: int) -> SeedEnvelope:
    metrics = MetricsRegistry() if _WORKER["collect_metrics"] else None
    start = time.perf_counter()
    if _WORKER["collect_spans"]:
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("campaign.program", seed=seed) as span:
                outcome = _run_analyze(seed, metrics)
                span.set("skipped", outcome is None)
        spans = spans_to_dicts(tracer)
    else:
        outcome = _run_analyze(seed, metrics)
        spans = None
    if metrics is not None:
        # mirrors the sequential parent's per-program latency histogram
        metrics.histogram("campaign.program_latency_ms").observe(
            (time.perf_counter() - start) * 1e3
        )
    return SeedEnvelope(
        seed, outcome, metrics.dump() if metrics is not None else None, spans
    )


def _run_analyze(seed: int, metrics: MetricsRegistry | None) -> ProgramOutcome | None:
    return analyze_one(
        seed,
        _WORKER["specs"],
        _WORKER["version"],
        _WORKER["generator_config"],
        metrics=metrics,
        incremental=_WORKER["incremental"],
    )


# -- parent side -----------------------------------------------------------


def _pool_context():
    """Prefer fork (cheap, inherits warm module state); fall back to
    the platform default where fork is unavailable."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_campaign_parallel(
    n_programs: int,
    seed_base: int,
    version: int | None,
    generator_config: GeneratorConfig | None,
    keep_analyses: bool,
    compare_level: str,
    metrics: MetricsRegistry | None,
    tracer: Tracer | None,
    progress: Callable[[CampaignProgress], None] | None,
    jobs: int,
    incremental: bool = True,
) -> CampaignResult:
    """The ``jobs > 1`` engine behind
    :func:`repro.core.corpus.run_campaign` (same contract)."""
    if tracer is not None:
        with use_tracer(tracer):
            return _run_parallel(
                n_programs, seed_base, version, generator_config,
                keep_analyses, compare_level, metrics, progress, jobs,
                incremental,
            )
    return _run_parallel(
        n_programs, seed_base, version, generator_config,
        keep_analyses, compare_level, metrics, progress, jobs, incremental,
    )


def _run_parallel(
    n_programs: int,
    seed_base: int,
    version: int | None,
    generator_config: GeneratorConfig | None,
    keep_analyses: bool,
    compare_level: str,
    metrics: MetricsRegistry | None,
    progress: Callable[[CampaignProgress], None] | None,
    jobs: int,
    incremental: bool = True,
) -> CampaignResult:
    result = CampaignResult()
    result.cross_level = {family: CrossLevelStats() for family in FAMILIES}
    tracer = current_tracer()
    start = time.perf_counter()
    shards = shard_seeds(range(seed_base, seed_base + n_programs), jobs)

    with tracer.span(
        "campaign", programs=n_programs, seed_base=seed_base, jobs=jobs
    ) as campaign_span:
        parent_id = campaign_span.span_id if tracer.enabled else None
        if shards:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(shards)),
                mp_context=_pool_context(),
                initializer=_init_worker,
                initargs=(
                    version, generator_config,
                    metrics is not None, tracer.enabled, incremental,
                ),
            ) as pool:
                futures = {
                    pool.submit(_analyze_shard, shard): index
                    for index, shard in enumerate(shards)
                }
                for envelope in _in_seed_order(futures):
                    _merge_envelope(
                        result, envelope, version, compare_level,
                        keep_analyses, metrics, tracer, parent_id,
                        progress, start, n_programs,
                    )
        campaign_span.update(
            completed=len(result.seeds), skipped=len(result.skipped)
        )
    return result


def _in_seed_order(futures: dict[Any, int]) -> Iterator[SeedEnvelope]:
    """Drain shard futures as they complete, yielding envelopes in
    seed order: shards that finish early buffer until every earlier
    shard has been yielded."""
    ready: dict[int, list[SeedEnvelope]] = {}
    next_index = 0
    pending = set(futures)
    while pending:
        done, pending = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            ready[futures[future]] = future.result()
        while next_index in ready:
            yield from ready.pop(next_index)
            next_index += 1
    # a gap here would mean a lost future; surface it loudly
    if ready:  # pragma: no cover - defensive
        raise RuntimeError(f"unmerged shards remain: {sorted(ready)}")


def _merge_envelope(
    result: CampaignResult,
    envelope: SeedEnvelope,
    version: int | None,
    compare_level: str,
    keep_analyses: bool,
    metrics: MetricsRegistry | None,
    tracer: Tracer,
    campaign_parent_id: int | None,
    progress: Callable[[CampaignProgress], None] | None,
    start: float,
    n_programs: int,
) -> None:
    """Fold one worker envelope into the parent state (mirrors one
    iteration of the sequential campaign loop)."""
    if metrics is not None and envelope.metrics is not None:
        metrics.merge(envelope.metrics)
    if tracer.enabled and envelope.spans:
        tracer.adopt_spans(envelope.spans, parent_id=campaign_parent_id)
    if envelope.outcome is None:
        result.skipped.append(envelope.seed)
    else:
        result.seeds.append(envelope.seed)
        _accumulate(result, envelope.outcome, version, compare_level)
        if keep_analyses:
            result.analyses.append(envelope.outcome)
    elapsed = time.perf_counter() - start
    if metrics is not None:
        _record_tallies(result, metrics, elapsed)
    if progress is not None:
        progress(
            CampaignProgress(
                seed=envelope.seed,
                completed=len(result.seeds),
                skipped=len(result.skipped),
                total=n_programs,
                elapsed=elapsed,
                skipped_seed=envelope.outcome is None,
            )
        )
