"""Parallel campaign engine: streaming process-pool seed sharding.

``run_campaign(jobs=N)`` delegates here for ``N > 1``.  Seeds split
into contiguous shards, each pool worker runs
:func:`repro.core.resilience.analyze_one_resilient` over its shard and
sends back a picklable :class:`SeedEnvelope` per seed (per-seed report
+ raw metrics snapshot + serialized spans).

Scheduling is a streaming producer/consumer pipeline with a **bounded
in-flight window** (diopter's ``max_parallel_jobs`` pattern): at most
``window`` shards (default ``jobs * 3``) are submitted at a time, and
each completion both tops the window back up and lets the merge loop
drain whatever became contiguous.  Compared to submitting every shard
upfront this bounds parent-side memory (completed-but-unmerged work
can't pile up faster than the merge loop consumes it — backpressure),
keeps submission overhead off the critical path for huge campaigns,
and lets a slow seed stall only its own shard while later shards keep
flowing through the window.  The parent still folds envelopes into the
:class:`CampaignResult` strictly **in seed order** — out-of-order
completions buffer until the gap closes — so the result (including
crash envelopes and their buckets) is identical to the sequential run
regardless of jobs count, window size, shard size, or completion
order.

Fault isolation at the pool boundary:

* per-seed crashes are contained *inside* the worker (they travel as
  :class:`~repro.core.resilience.CrashEnvelope`\\ s, never poisoning a
  shard);
* a **worker death** (``BrokenProcessPool``) dooms every in-flight
  shard: the engine restarts the pool (``campaign.worker_restarts``)
  and resubmits the doomed shards **bisected**, so repeated deaths
  isolate the killer seed into a singleton shard, which is then
  recorded as a ``WorkerDeath`` crash while every innocent seed is
  re-analyzed;
* with a ``checkpoint`` journal, already-journaled seeds replay from
  disk and only the rest are sharded to the pool; freshly finished
  seeds append to the journal in seed order.

Observability threads through the pool boundary exactly as before:
worker metrics snapshots merge in seed order, worker span subtrees
re-parent under the parent's ``campaign`` span, and ``progress`` ticks
live from the merge loop.  The installed chaos
:class:`~repro.testing.chaos.FaultPlan` (if any) ships through the
pool initializer so fault injection behaves identically under ``fork``
and ``spawn``.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from ..compilers import FAMILIES
from ..generator import GeneratorConfig
from ..observability import events as ev
from ..observability.events import EventBus
from ..observability.export import spans_to_dicts
from ..observability.metrics import MetricsRegistry
from ..observability.tracer import Tracer, current_tracer, use_tracer
from ..testing import chaos
from .corpus import (
    CampaignCancelled,
    CampaignResult,
    CrossLevelStats,
    _merge_report,
    _progress_snapshot,
    _record_tallies,
    _signal_flushes,
    campaign_end_attrs,
    default_specs,
    drain_reduction,
)
from .resilience import (
    CheckpointJournal,
    SeedReport,
    analyze_one_resilient,
    worker_death_envelope,
)

#: seeds per pool task: small enough that every worker sees several
#: waves (load balance + live progress), large enough to amortize the
#: per-task pickle round-trip
MAX_SHARD_SIZE = 8

#: in-flight shards per job when no explicit window is given: enough
#: slack that workers never idle while the parent merges, small enough
#: that completed-but-unmerged envelopes stay bounded
WINDOW_FACTOR = 3


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a pool worker needs, shipped once per pool through
    the initializer (one picklable object instead of a fragile
    positional tuple)."""

    version: int | None = None
    generator_config: GeneratorConfig | None = None
    collect_metrics: bool = False
    collect_spans: bool = False
    incremental: bool = True
    seed_budget: float | None = None
    fault_plan: chaos.FaultPlan | None = None
    collect_events: bool = False
    #: ground-truth interpreter backend (None = process default)
    interp: str | None = None
    #: artifact-store file workers open read-only (None = no store)
    store_path: str | None = None


@dataclass
class SeedEnvelope:
    """Everything one worker says about one seed, picklable."""

    seed: int
    #: the resilient per-seed verdict (outcome / skip / crash / budget)
    report: SeedReport
    #: raw MetricsRegistry.dump() snapshot (None when metrics are off)
    metrics: dict[str, Any] | None
    #: worker span dicts, completion order (None when tracing is off)
    spans: list[dict[str, Any]] | None
    #: recorded ``(event type, attrs)`` pairs for this seed, re-emitted
    #: by the parent in seed order (None when the event bus is off)
    events: list[tuple[str, dict[str, Any]]] | None = None
    #: new artifact-store entries this seed discovered
    #: (:class:`~repro.store.StoreDelta`; the parent commits them in
    #: seed order — workers never write the database)
    delta: Any = None


def shard_seeds(
    seeds: Sequence[int], jobs: int, shard_size: int | None = None
) -> list[list[int]]:
    """Split ``seeds`` into contiguous shards.

    The default size aims for ~4 waves per worker so stragglers don't
    serialize the tail, capped at :data:`MAX_SHARD_SIZE`.
    """
    if shard_size is None:
        per_wave = max(1, len(seeds) // (jobs * 4))
        shard_size = min(per_wave, MAX_SHARD_SIZE)
    shard_size = max(1, shard_size)
    return [
        list(seeds[i:i + shard_size])
        for i in range(0, len(seeds), shard_size)
    ]


# -- worker side -----------------------------------------------------------

_WORKER: dict[str, Any] = {}


def _init_worker(config: WorkerConfig) -> None:
    _WORKER.update(specs=default_specs(config.version), config=config)
    # ship the parent's fault plan so injection also works on
    # spawn-only platforms (fork inherits it anyway)
    chaos.install_plan(config.fault_plan)
    _WORKER["store"] = None
    if config.store_path is not None:
        from ..store import open_store

        # read-only snapshot; a failed open degrades this worker to
        # cold (new entries still ship back through the delta)
        _WORKER["store"] = open_store(config.store_path, read_only=True)


def _analyze_shard(seeds: list[int]) -> list[SeedEnvelope]:
    return [_analyze_seed(seed) for seed in seeds]


def _analyze_seed(seed: int) -> SeedEnvelope:
    config: WorkerConfig = _WORKER["config"]
    metrics = MetricsRegistry() if config.collect_metrics else None
    session = None
    if config.store_path is not None:
        from ..store import StoreSession

        session = StoreSession(_WORKER.get("store"), metrics)
    start = time.perf_counter()
    if config.collect_spans:
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("campaign.program", seed=seed) as span:
                report = _run_analyze(seed, metrics, session)
                span.set("skipped", report.outcome is None)
                if report.crash is not None:
                    span.set("crashed", report.crash.bucket)
                if report.budget_exceeded:
                    span.set("budget_exceeded", True)
                if report.degraded:
                    span.set("degraded", True)
        spans = spans_to_dicts(tracer)
    else:
        report = _run_analyze(seed, metrics, session)
        spans = None
    if metrics is not None:
        # mirrors the sequential parent's per-program latency histogram
        metrics.histogram("campaign.program_latency_ms").observe(
            (time.perf_counter() - start) * 1e3
        )
    return SeedEnvelope(
        seed, report, metrics.dump() if metrics is not None else None, spans,
        ev.seed_event_records(report) if config.collect_events else None,
        delta=(
            session.delta if session is not None and session.delta else None
        ),
    )


def _run_analyze(
    seed: int, metrics: MetricsRegistry | None, store=None
) -> SeedReport:
    config: WorkerConfig = _WORKER["config"]
    return analyze_one_resilient(
        seed,
        _WORKER["specs"],
        config.version,
        config.generator_config,
        metrics=metrics,
        incremental=config.incremental,
        seed_budget=config.seed_budget,
        interp=config.interp,
        store=store,
    )


# -- oracle workers (reduction engine) -------------------------------------


@dataclass(frozen=True)
class OracleWorkerConfig:
    """Bootstrap for the reduction engine's oracle pools: the
    (picklable) interestingness predicate plus the parent's chaos
    plan, shipped once per pool through the initializer — the same
    pattern as :class:`WorkerConfig`."""

    predicate: Any
    fault_plan: chaos.FaultPlan | None = None


_ORACLE: dict[str, Any] = {}


def _init_oracle_worker(config: OracleWorkerConfig) -> None:
    _ORACLE["predicate"] = config.predicate
    chaos.install_plan(config.fault_plan)


def evaluate_candidates(
    items: list[tuple[str, str]],
) -> list[tuple[str, bool, bool]]:
    """Judge printed reduction candidates in an oracle worker.

    ``items`` is ``(memo key, printed text)`` pairs; the result is
    ``(memo key, verdict, errored)`` in the same order, produced by
    the exact evaluation path the in-process engine uses
    (:func:`repro.core.reduction.evaluate_printed`), so ``jobs`` can
    never change a verdict.
    """
    from .reduction import evaluate_printed

    predicate = _ORACLE["predicate"]
    return [
        (key, *evaluate_printed(predicate, text)) for key, text in items
    ]


# -- parent side -----------------------------------------------------------


def pool_context():
    """Prefer fork (cheap, inherits warm module state); fall back to
    the platform default where fork is unavailable.  Shared by the
    campaign scheduler and the reduction engine's oracle pools."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_campaign_parallel(
    n_programs: int,
    seed_base: int,
    version: int | None,
    generator_config: GeneratorConfig | None,
    keep_analyses: bool,
    compare_level: str,
    metrics: MetricsRegistry | None,
    tracer: Tracer | None,
    progress: Callable[..., None] | None,
    jobs: int,
    incremental: bool = True,
    seed_budget: float | None = None,
    checkpoint: str | None = None,
    events: EventBus | None = None,
    interp: str | None = None,
    window: int | None = None,
    reduction=None,
    store=None,
    cancel=None,
) -> CampaignResult:
    """The ``jobs > 1`` engine behind
    :func:`repro.core.corpus.run_campaign` (same contract)."""
    if tracer is not None:
        with use_tracer(tracer):
            return _run_parallel(
                n_programs, seed_base, version, generator_config,
                keep_analyses, compare_level, metrics, progress, jobs,
                incremental, seed_budget, checkpoint, events, interp, window,
                reduction, store, cancel,
            )
    return _run_parallel(
        n_programs, seed_base, version, generator_config,
        keep_analyses, compare_level, metrics, progress, jobs, incremental,
        seed_budget, checkpoint, events, interp, window, reduction, store,
        cancel,
    )


def _run_parallel(
    n_programs: int,
    seed_base: int,
    version: int | None,
    generator_config: GeneratorConfig | None,
    keep_analyses: bool,
    compare_level: str,
    metrics: MetricsRegistry | None,
    progress: Callable[..., None] | None,
    jobs: int,
    incremental: bool = True,
    seed_budget: float | None = None,
    checkpoint: str | None = None,
    events: EventBus | None = None,
    interp: str | None = None,
    window: int | None = None,
    reduction=None,
    store=None,
    cancel: Callable[[], bool] | None = None,
) -> CampaignResult:
    result = CampaignResult()
    result.cross_level = {family: CrossLevelStats() for family in FAMILIES}
    tracer = current_tracer()
    start = time.perf_counter()
    journal = CheckpointJournal(checkpoint) if checkpoint else None
    store_scope: str | None = None
    stored_reports: dict[int, SeedReport] = {}
    if store is not None:
        from ..store import seed_scope_fingerprint

        if store.metrics is None:
            store.metrics = metrics
        store_scope = seed_scope_fingerprint(version, generator_config)
        stored_reports = store.load_seed_reports(
            store_scope, seed_base, seed_base + n_programs
        )
    all_seeds = list(range(seed_base, seed_base + n_programs))
    fresh = [
        s for s in all_seeds
        if (journal is None or journal.get(s) is None)
        and s not in stored_reports
    ]
    if events is not None:
        # identical attrs to the sequential path (no jobs count): the
        # stream must not betray how the campaign was scheduled
        events.emit(
            ev.CAMPAIGN_START, programs=n_programs, seed_base=seed_base,
            compare_level=compare_level, incremental=incremental,
        )

    effective_window = window if window is not None else jobs * WINDOW_FACTOR
    with tracer.span(
        "campaign", programs=n_programs, seed_base=seed_base, jobs=jobs,
        window=effective_window, interp=interp,
    ) as campaign_span, _signal_flushes(journal):
        parent_id = campaign_span.span_id if tracer.enabled else None
        worker_config = WorkerConfig(
            version=version,
            generator_config=generator_config,
            collect_metrics=metrics is not None,
            collect_spans=tracer.enabled,
            incremental=incremental,
            seed_budget=seed_budget,
            fault_plan=chaos.current_plan(),
            collect_events=events is not None,
            interp=interp,
            store_path=store.path if store is not None else None,
        )
        try:
            envelopes = _drain_envelopes(
                fresh, jobs, worker_config,
                on_restart=lambda: _count_restart(metrics),
                window=effective_window,
            )
            for seed in all_seeds:
                if cancel is not None and cancel():
                    # finished seeds are journaled/committed; in-flight
                    # shards die with the pool teardown below
                    raise CampaignCancelled(
                        f"campaign cancelled before seed {seed}",
                        seeds_done=seed - seed_base,
                    )
                replayed = journal.get(seed) if journal is not None else None
                if replayed is not None:
                    if metrics is not None:
                        metrics.counter("campaign.checkpoint_replayed").inc()
                    if events is not None:
                        events.emit(
                            ev.CHECKPOINT_REPLAYED, seed=seed,
                            status=ev.report_status(replayed),
                        )
                    _merge_one(
                        result, replayed, None, None, version, compare_level,
                        keep_analyses, metrics, tracer, parent_id, progress,
                        start, n_programs, events, reduction,
                    )
                    continue
                stored = stored_reports.get(seed)
                if stored is not None:
                    # warm replay: the exact events a fresh worker
                    # would record, re-emitted in seed order
                    if metrics is not None:
                        metrics.counter("store.seeds_skipped").inc()
                    if journal is not None:
                        journal.record(stored)
                    if events is not None:
                        events.emit_all(ev.seed_event_records(stored))
                    _merge_one(
                        result, stored, None, None, version, compare_level,
                        keep_analyses, metrics, tracer, parent_id, progress,
                        start, n_programs, events, reduction,
                    )
                    continue
                envelope = next(envelopes)
                if envelope.seed != seed:  # pragma: no cover - defensive
                    raise RuntimeError(
                        f"seed-order merge broke: expected {seed}, "
                        f"got {envelope.seed}"
                    )
                if journal is not None:
                    journal.record(envelope.report)
                if events is not None and envelope.events is not None:
                    events.emit_all(envelope.events)
                if store is not None:
                    if envelope.delta is not None:
                        store.apply_delta(envelope.delta)
                    store.record_seed_report(store_scope, envelope.report)
                    store.commit()
                _merge_one(
                    result, envelope.report, envelope.metrics, envelope.spans,
                    version, compare_level, keep_analyses, metrics, tracer,
                    parent_id, progress, start, n_programs, events, reduction,
                )
            # reductions overlapped the seed loop; collect them (in
            # finding order) before the campaign narrates its end
            drain_reduction(result, reduction, events, metrics)
            campaign_span.update(
                completed=len(result.seeds), skipped=len(result.skipped),
                crashed=len(result.crashes),
                budget_exceeded=len(result.budget_exceeded),
            )
            if events is not None:
                events.emit(ev.CAMPAIGN_END, **campaign_end_attrs(result))
        finally:
            if journal is not None:
                journal.close()
    return result


def _count_restart(metrics: MetricsRegistry | None) -> None:
    if metrics is not None:
        metrics.counter("campaign.worker_restarts").inc()


def _drain_envelopes(
    seeds: list[int],
    jobs: int,
    config: WorkerConfig,
    on_restart: Callable[[], None],
    window: int | None = None,
) -> Iterator[SeedEnvelope]:
    """Yield one envelope per seed, in seed order, surviving worker
    deaths.

    Fast path: shards stream through one shared pool with at most
    ``window`` of them in flight — each completion tops the window
    back up from the unsubmitted backlog, so the producer never runs
    unboundedly ahead of the seed-order merge loop consuming this
    generator (backpressure).  A worker death marks that pool broken
    and dooms every *in-flight* shard (the executor cannot say which
    one killed it) — but only those: the unsubmitted backlog resumes
    streaming through a fresh shared pool afterwards.  Doomed shards
    enter a recovery queue processed **one shard per fresh pool** —
    there, a break definitively blames the shard: a multi-seed shard
    splits in half and re-queues, and a broken *singleton* shard names
    its seed the killer, yielding a synthesized ``WorkerDeath``
    envelope.  Innocent doomed seeds are simply re-analyzed.
    """
    ready: dict[int, SeedEnvelope] = {}
    next_pos = 0
    shards = shard_seeds(seeds, jobs)
    if window is None:
        window = jobs * WINDOW_FACTOR
    window = max(window, 1)
    backlog = list(reversed(shards))  # pop() takes the next seed-order shard
    while backlog:
        doomed: list[list[int]] = []
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(backlog)),
            mp_context=pool_context(),
            initializer=_init_worker,
            initargs=(config,),
        ) as pool:
            futures: dict[Any, list[int]] = {}
            while backlog and len(futures) < window:
                shard = backlog.pop()
                futures[pool.submit(_analyze_shard, shard)] = shard
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    shard = futures.pop(future)
                    try:
                        for envelope in future.result():
                            ready[envelope.seed] = envelope
                    except BrokenExecutor:
                        doomed.append(shard)
                while next_pos < len(seeds) and seeds[next_pos] in ready:
                    yield ready.pop(seeds[next_pos])
                    next_pos += 1
                if doomed:
                    # the pool is dead: collect every other in-flight
                    # shard (a future that finished before the break
                    # still returns its result here); the unsubmitted
                    # backlog is untouched and restarts the outer loop
                    for future in pending:
                        shard = futures.pop(future)
                        try:
                            for envelope in future.result():
                                ready[envelope.seed] = envelope
                        except BrokenExecutor:
                            doomed.append(shard)
                    pending = set()
                else:
                    # top the in-flight window back up
                    while backlog and len(futures) < window:
                        shard = backlog.pop()
                        future = pool.submit(_analyze_shard, shard)
                        futures[future] = shard
                        pending.add(future)
        # recovery: one doomed shard per fresh pool, so breakage is
        # attributable
        queue = sorted(doomed)
        while queue:
            shard = queue.pop(0)
            on_restart()
            envelopes = _run_shard_isolated(shard, config)
            if envelopes is None:  # this shard really does kill workers
                if len(shard) == 1:
                    seed = shard[0]
                    report = SeedReport(
                        seed=seed, crash=worker_death_envelope(seed)
                    )
                    ready[seed] = SeedEnvelope(
                        seed,
                        report,
                        metrics=None,
                        spans=None,
                        events=(
                            ev.seed_event_records(report)
                            if config.collect_events else None
                        ),
                    )
                else:
                    mid = (len(shard) + 1) // 2
                    queue[:0] = [shard[:mid], shard[mid:]]
            else:
                for envelope in envelopes:
                    ready[envelope.seed] = envelope
            while next_pos < len(seeds) and seeds[next_pos] in ready:
                yield ready.pop(seeds[next_pos])
                next_pos += 1
    if next_pos != len(seeds):  # pragma: no cover - defensive
        raise RuntimeError(
            f"lost envelopes for seeds {seeds[next_pos:]}"
        )


def _run_shard_isolated(
    shard: list[int], config: WorkerConfig
) -> list[SeedEnvelope] | None:
    """Run one doomed shard in its own single-worker pool; ``None``
    means the shard (specifically) killed its worker again."""
    with ProcessPoolExecutor(
        max_workers=1,
        mp_context=pool_context(),
        initializer=_init_worker,
        initargs=(config,),
    ) as pool:
        try:
            return pool.submit(_analyze_shard, shard).result()
        except BrokenExecutor:
            return None


def _merge_one(
    result: CampaignResult,
    report: SeedReport,
    metrics_snapshot: dict[str, Any] | None,
    spans: list[dict[str, Any]] | None,
    version: int | None,
    compare_level: str,
    keep_analyses: bool,
    metrics: MetricsRegistry | None,
    tracer: Tracer,
    campaign_parent_id: int | None,
    progress: Callable[..., None] | None,
    start: float,
    n_programs: int,
    events: EventBus | None = None,
    reduction=None,
) -> None:
    """Fold one per-seed report into the parent state (mirrors one
    iteration of the sequential campaign loop)."""
    if metrics is not None and metrics_snapshot is not None:
        metrics.merge(metrics_snapshot)
    if tracer.enabled and spans:
        tracer.adopt_spans(spans, parent_id=campaign_parent_id)
    _merge_report(
        result, report, version, compare_level, keep_analyses, metrics,
        events, reduction,
    )
    elapsed = time.perf_counter() - start
    if metrics is not None:
        _record_tallies(result, metrics, elapsed)
    if progress is not None:
        progress(_progress_snapshot(result, report, n_programs, elapsed))
