"""Structural shape classification for generated programs.

Barany's liveness-driven generation steers a generator toward program
*shapes* that historically yield findings; the prerequisite is
per-shape yield telemetry.  :func:`program_shape` buckets a program by
the coarse structural features the generator controls — loops,
switches, calls, arrays, pointers — so the campaign can accumulate
markers/dead/findings per shape (``CampaignResult.by_shape``) and the
run ledger can report findings-per-shape across runs.

The label is a deterministic pure function of the AST (marker
instrumentation is ignored), so sequential and parallel campaigns —
and repeated runs over the same seeds — bucket identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import ast_nodes as ast
from .markers import MARKER_PREFIX

#: shape of a program with none of the feature tags
STRAIGHTLINE = "straightline"


def program_shape(program: ast.Program, marker_prefix: str = MARKER_PREFIX) -> str:
    """A compact feature label like ``"arrays+calls+loops"``.

    Tags (alphabetical, joined by ``+``): ``arrays``, ``calls``
    (calls to non-marker functions), ``loops`` (``for``/``while``/
    ``do``), ``pointers`` (address-of or dereference), ``switch``.
    A program with no tags is :data:`STRAIGHTLINE`.
    """
    tags: set[str] = set()
    for decl in program.decls:
        if isinstance(decl, ast.GlobalVar) and _is_array(decl.ty):
            tags.add("arrays")
    for stmt in ast.walk_program_stmts(program):
        if isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
            tags.add("loops")
        elif isinstance(stmt, ast.Switch):
            tags.add("switch")
        for expr in ast.walk_exprs_of_stmt(stmt):
            if isinstance(expr, ast.Call):
                if not expr.callee.startswith(marker_prefix):
                    tags.add("calls")
            elif isinstance(expr, (ast.AddrOf, ast.Deref)):
                tags.add("pointers")
            elif isinstance(expr, ast.Index):
                tags.add("arrays")
        if isinstance(stmt, ast.VarDecl) and _is_array(stmt.ty):
            tags.add("arrays")
    return "+".join(sorted(tags)) if tags else STRAIGHTLINE


def _is_array(ty) -> bool:
    return getattr(ty, "length", None) is not None


@dataclass
class ShapeStats:
    """Per-shape campaign accumulators (marker yield, §ROADMAP 4)."""

    programs: int = 0
    markers: int = 0
    dead: int = 0
    #: dead markers missed at the campaign's compare level, summed
    #: over both families
    missed: int = 0
    #: primary subset of ``missed``
    primary: int = 0
    #: findings (cross-compiler + cross-level) from seeds of this shape
    findings: int = 0

    @property
    def findings_per_program(self) -> float:
        return self.findings / self.programs if self.programs else 0.0

    def to_dict(self) -> dict:
        return {
            "programs": self.programs,
            "markers": self.markers,
            "dead": self.dead,
            "missed": self.missed,
            "primary": self.primary,
            "findings": self.findings,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShapeStats":
        return cls(**{k: data.get(k, 0) for k in (
            "programs", "markers", "dead", "missed", "primary", "findings"
        )})
