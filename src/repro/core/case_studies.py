"""The paper's reduced test cases, as runnable MiniC case studies.

Each case is a MiniC program with an explicit ``DCEMarker*`` call plus
the expected verdict per compiler spec.  Where MiniC lacks a C feature
the paper's listing uses (pointer arrays, ``printf``), or where our
pipeline's pass ordering shifts the mechanism, the case is an adapted
analogue — the ``adaptation`` field documents what changed and why the
relevant behaviour is preserved (see DESIGN.md §2).

The test suite re-verifies every expectation against the actual
compilers; the Table 5 benchmark uses the ``report`` metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compilers import CompilerSpec


@dataclass(frozen=True)
class Expectation:
    """After compiling with ``spec``, ``marker`` is alive/eliminated."""

    spec: CompilerSpec
    marker: str
    alive: bool


@dataclass(frozen=True)
class CaseStudy:
    case_id: str
    paper_ref: str  # listing / bug-tracker reference in the paper
    title: str
    source: str
    expectations: tuple[Expectation, ...]
    dead_markers: tuple[str, ...]  # ground truth: these never execute
    component: str = ""
    adaptation: str = ""
    report: dict = field(default_factory=dict)  # family/status for Table 5


def _gcc(level: str, version: int | None = None) -> CompilerSpec:
    return CompilerSpec("gcclike", level, version)


def _llvm(level: str, version: int | None = None) -> CompilerSpec:
    return CompilerSpec("llvmlike", level, version)


CASE_STUDIES: tuple[CaseStudy, ...] = (
    CaseStudy(
        case_id="listing1-illustrative",
        paper_ref="Listings 1/2 (illustrative example)",
        title="Address comparison vs. static-global value: each compiler "
              "misses what the other catches",
        source="""
void DCEMarker0(void);
void DCEMarker1(void);
void DCEMarker2(void);
char a;
char b[2];
static int c = 0;

int main() {
  char *d = &a;
  char *e = &b[1];
  if (d == e) {
    DCEMarker0();
    int f = 0;
    int g = 0;
    for (; f < 10; f++) {
      DCEMarker1();
      g += f;
    }
  }
  if (c) {
    DCEMarker2();
    b[0] = 1;
    b[1] = 1;
  }
  c = 0;
  return 0;
}
""",
        dead_markers=("DCEMarker0", "DCEMarker1", "DCEMarker2"),
        expectations=(
            Expectation(_gcc("O3"), "DCEMarker0", alive=False),
            Expectation(_gcc("O3"), "DCEMarker1", alive=False),
            Expectation(_gcc("O3"), "DCEMarker2", alive=True),
            Expectation(_llvm("O3"), "DCEMarker0", alive=True),
            Expectation(_llvm("O3"), "DCEMarker1", alive=True),
            Expectation(_llvm("O3"), "DCEMarker2", alive=False),
        ),
        component="Alias Analysis / Value Propagation",
        adaptation="printf replaced by a pure accumulation (MiniC has no varargs).",
    ),
    CaseStudy(
        case_id="listing3-earlycse-addr",
        paper_ref="Listing 3 (LLVM bug 49434)",
        title="EarlyCSE cannot fold &a == &b[1] (index != 0)",
        source="""
void DCEMarker0(void);
char a;
char b[2];

int main() {
  char *c = &a;
  char *d = &b[1];
  if (c == d) {
    DCEMarker0();
  }
  return 0;
}
""",
        dead_markers=("DCEMarker0",),
        expectations=(
            Expectation(_gcc("O3"), "DCEMarker0", alive=False),
            Expectation(_llvm("O3"), "DCEMarker0", alive=True),
        ),
        component="Peephole Optimizations",
        report={"family": "llvmlike", "status": "confirmed"},
    ),
    CaseStudy(
        case_id="listing3b-zero-index",
        paper_ref="Listing 3 discussion (b[0] variant folds)",
        title="With index 0 the same comparison folds in both compilers",
        source="""
void DCEMarker0(void);
char a;
char b[2];

int main() {
  char *c = &a;
  char *d = &b[0];
  if (c == d) {
    DCEMarker0();
  }
  return 0;
}
""",
        dead_markers=("DCEMarker0",),
        expectations=(
            Expectation(_gcc("O3"), "DCEMarker0", alive=False),
            Expectation(_llvm("O3"), "DCEMarker0", alive=False),
        ),
        component="Peephole Optimizations",
    ),
    CaseStudy(
        case_id="listing4-global-store-init",
        paper_ref="Listing 4 (GCC bug 99357)",
        title="GCC's global value analysis is not flow-sensitive; the "
              "store of the initial value back defeats it",
        source="""
void DCEMarker0(void);
static int a = 0;

int main() {
  if (a) {
    DCEMarker0();
  }
  a = 0;
  return 0;
}
""",
        dead_markers=("DCEMarker0",),
        expectations=(
            Expectation(_gcc("O3"), "DCEMarker0", alive=True),
            Expectation(_llvm("O3"), "DCEMarker0", alive=False),
        ),
        component="Value Propagation",
        report={"family": "gcclike", "status": "fixed"},
    ),
    CaseStudy(
        case_id="listing6a-store-one",
        paper_ref="Listing 6a (old LLVM regression, 3.7.1 -> 3.8)",
        title="Storing a different constant defeats both compilers; "
              "the old flow-sensitive LLVM analysis caught it",
        source="""
void DCEMarker0(void);
static int a = 0;

int main() {
  if (a) {
    DCEMarker0();
  }
  a = 1;
  return 0;
}
""",
        dead_markers=("DCEMarker0",),
        expectations=(
            Expectation(_gcc("O3"), "DCEMarker0", alive=True),
            Expectation(_llvm("O3"), "DCEMarker0", alive=True),
            # Version 2 of the llvmlike history predates the GlobalOpt
            # rewrite (3cc38703): the old analysis still folds it.
            Expectation(_llvm("O3", 2), "DCEMarker0", alive=False),
        ),
        component="Value Propagation",
    ),
    CaseStudy(
        case_id="listing6b-dead-store-cycle",
        paper_ref="Listing 6b (both compilers miss)",
        title="A store on the dead path itself blocks the flow-insensitive "
              "analyses of both compilers",
        source="""
void DCEMarker0(void);
static int a = 5;

int main() {
  if (a != 5) {
    DCEMarker0();
    a = 6;
  }
  return 0;
}
""",
        dead_markers=("DCEMarker0",),
        expectations=(
            Expectation(_gcc("O3"), "DCEMarker0", alive=True),
            Expectation(_llvm("O3"), "DCEMarker0", alive=True),
        ),
        component="Value Propagation",
        adaptation="Listing 6b's two-global chain is condensed into the "
                   "minimal self-blocking store; the failure mechanism "
                   "(flow-insensitive global analysis) is identical.",
    ),
    CaseStudy(
        case_id="listing7-gvn-across-calls",
        paper_ref="Listings 7/8a (LLVM -O3 regression; bug 49773)",
        title="-O2 eliminates the dead call but -O3 no longer does, "
              "after a compile-time-motivated MemDep change",
        source="""
void DCEMarker0(void);
int opaque_source(void);
void opaque_sink(void);

int main() {
  long t[2];
  t[0] = opaque_source();
  t[1] = 0;
  long x = t[0];
  opaque_sink();
  if (t[0] != x) {
    DCEMarker0();
  }
  return 0;
}
""",
        dead_markers=("DCEMarker0",),
        expectations=(
            Expectation(_llvm("O2"), "DCEMarker0", alive=False),
            Expectation(_llvm("O3"), "DCEMarker0", alive=True),
            Expectation(_gcc("O3"), "DCEMarker0", alive=False),
        ),
        component="SSA Memory Analysis",
        adaptation="The paper's loop-unswitching interaction is modelled "
                   "by the equivalent O3-only precision loss in load "
                   "forwarding across calls (commit 3cc38712); both are "
                   "'a change meant to help compile time costs DCE at -O3'.",
        report={"family": "llvmlike", "status": "confirmed"},
    ),
    CaseStudy(
        case_id="listing9e-vectorizer",
        paper_ref="Listing 9e (GCC bug 99776)",
        title="-O1 folds the loop-initialized array; -O3's vectorizer "
              "claims the loop first and blocks constant folding",
        source="""
void DCEMarker0(void);
static int c[4];

int main() {
  for (int b = 0; b < 4; b++) {
    c[b] = 7;
  }
  if (c[0] != 7) {
    DCEMarker0();
  }
  return 0;
}
""",
        dead_markers=("DCEMarker0",),
        expectations=(
            Expectation(_gcc("O1"), "DCEMarker0", alive=False),
            Expectation(_gcc("O3"), "DCEMarker0", alive=True),
            Expectation(_llvm("O3"), "DCEMarker0", alive=False),
        ),
        component="Loop Transformations",
        adaptation="The paper's array of pointers becomes an int array "
                   "(MiniC has no pointer arrays); the global loop "
                   "counter becomes a local so the loop is in canonical "
                   "counted form. The blocking mechanism (vectorized "
                   "loops escape full unrolling) is the same.",
        report={"family": "gcclike", "status": "fixed"},
    ),
    CaseStudy(
        case_id="listing9a-shift-range",
        paper_ref="Listing 9a (GCC bug 102546, fixed 5f9ccf17de7)",
        title="Range reasoning through a shift: the bounded shifted "
              "value can never exceed the threshold",
        source="""
void DCEMarker0(void);
int opaque_source(void);

int main() {
  int x = opaque_source();
  int d = (x & 3) << 2;
  if (d > 100) {
    DCEMarker0();
  }
  return 0;
}
""",
        dead_markers=("DCEMarker0",),
        expectations=(
            Expectation(_gcc("O3"), "DCEMarker0", alive=False),
            # Before the range-op commit (92acae24) GCC missed it.
            Expectation(_gcc("O3", 23), "DCEMarker0", alive=True),
            Expectation(_llvm("O3"), "DCEMarker0", alive=False),
        ),
        component="Value Propagation",
        adaptation="The paper's relation is X << Y != 0 implies X != 0; "
                   "MiniC's masked-shift semantics make the equivalent "
                   "range fact 'a bounded value shifted by a constant "
                   "stays bounded', proved by the same range-op "
                   "machinery the fix touched.",
        report={"family": "gcclike", "status": "fixed"},
    ),
    CaseStudy(
        case_id="listing8b-modulo-range",
        paper_ref="Listing 8b (LLVM bug 49731, fixed 611a02cce50)",
        title="Modulo of a constant range could not be simplified "
              "(an omission relative to other operations)",
        source="""
void DCEMarker0(void);
int opaque_source(void);

int main() {
  int f = opaque_source();
  int r = f % 5;
  if (r == 9) {
    DCEMarker0();
  }
  return 0;
}
""",
        dead_markers=("DCEMarker0",),
        expectations=(
            Expectation(_llvm("O3"), "DCEMarker0", alive=False),
            # Before the ConstantRange commit (3cc38722) LLVM missed it.
            Expectation(_llvm("O3", 21), "DCEMarker0", alive=True),
            Expectation(_gcc("O3"), "DCEMarker0", alive=False),
        ),
        component="Value Constraint Analysis",
        adaptation="The paper's [X,X+1) % [Y,Y+1) constant-range case "
                   "is expressed as the equivalent |f % 5| <= 4 range "
                   "fact; the fixed capability (range transfer for "
                   "remainders) is the same.",
        report={"family": "llvmlike", "status": "fixed"},
    ),
    CaseStudy(
        case_id="listing9f-uniform-array",
        paper_ref="Listing 9f (GCC bug 99419, rediscovered)",
        title="Every cell of the read-only array holds 0, but GCC "
              "cannot fold the unknown-index load",
        source="""
void DCEMarker0(void);
int a;
static int b[2] = {0, 0};

int main() {
  if (b[a]) {
    DCEMarker0();
  }
  return 0;
}
""",
        dead_markers=("DCEMarker0",),
        expectations=(
            Expectation(_gcc("O3"), "DCEMarker0", alive=True),
            Expectation(_llvm("O3"), "DCEMarker0", alive=False),
        ),
        component="Constant Propagation",
        report={"family": "gcclike", "status": "duplicate"},
    ),
    CaseStudy(
        case_id="listing9c-os-alias",
        paper_ref="Listing 9c analogue (GCC bug 100051)",
        title="A conservative one-past-the-end rule at -Os misses the "
              "distinct-object address comparison -O1 folds",
        source="""
void DCEMarker0(void);
static char x;
static char y[2];

int main() {
  char *p = &x;
  if (p == &y[1]) {
    DCEMarker0();
  }
  return 0;
}
""",
        dead_markers=("DCEMarker0",),
        expectations=(
            Expectation(_gcc("O1"), "DCEMarker0", alive=False),
            Expectation(_gcc("Os"), "DCEMarker0", alive=True),
            Expectation(_gcc("O2"), "DCEMarker0", alive=False),
        ),
        component="Alias Analysis",
        adaptation="The paper's pointer-through-pointer aliasing needs "
                   "pointer-to-pointer types; the same 'lower level "
                   "folds, another level's conservative alias rule "
                   "does not' behaviour is expressed via the -Os "
                   "one-past-the-end rule (commit 92acae18).",
        report={"family": "gcclike", "status": "fixed"},
    ),
    CaseStudy(
        case_id="listing5-nested-dead",
        paper_ref="Listing 5 / Figure 2 (primary vs secondary)",
        title="Nested dead blocks: only the outer if is a primary miss",
        source="""
void DCEMarker0(void);
void DCEMarker1(void);
int opaque_source(void);
static int flag = 9;

int main() {
  int v = opaque_source();
  if (flag == 13) {
    DCEMarker0();
    if (v) {
      DCEMarker1();
      v = 0;
    }
  }
  flag = 13;
  return v;
}
""",
        dead_markers=("DCEMarker0", "DCEMarker1"),
        expectations=(
            Expectation(_gcc("O3"), "DCEMarker0", alive=True),
            Expectation(_gcc("O3"), "DCEMarker1", alive=True),
        ),
        component="Control Flow Graph Analysis",
        adaptation="expr1/expr2 are concretized: flag==13 is false on "
                   "entry but unprovable for a readonly-only global "
                   "analysis once flag is written; v is opaque input.",
    ),
)


def case_study(case_id: str) -> CaseStudy:
    for case in CASE_STUDIES:
        if case.case_id == case_id:
            return case
    raise KeyError(case_id)


def verify_case_study(case: CaseStudy) -> list[str]:
    """Check ground truth and every expectation; returns mismatches."""
    from ..compilers import compile_minic
    from ..frontend.typecheck import check_program
    from ..lang.parser import parse_program
    from .ground_truth import compute_ground_truth
    from .markers import InstrumentedProgram, MarkerInfo

    program = parse_program(case.source)
    info = check_program(program)
    markers = [
        MarkerInfo(d.name, "case-study", "main")
        for d in program.extern_decls()
        if d.name.startswith("DCEMarker")
    ]
    instrumented = InstrumentedProgram(program, markers)
    truth = compute_ground_truth(instrumented, info=info)
    problems = []
    for name in case.dead_markers:
        if name not in truth.dead:
            problems.append(f"{case.case_id}: {name} is not dead in ground truth")
    for exp in case.expectations:
        alive = compile_minic(program, exp.spec, info=info).alive_markers("DCEMarker")
        actually_alive = exp.marker in alive
        if actually_alive != exp.alive:
            problems.append(
                f"{case.case_id}: {exp.spec} x {exp.marker}: expected "
                f"{'alive' if exp.alive else 'eliminated'}, got "
                f"{'alive' if actually_alive else 'eliminated'}"
            )
    return problems
