"""Corpus campaign runner (paper §4).

Generates a corpus of random programs, instruments them, computes
ground truth, compiles each program under every compiler spec of
interest, and accumulates the statistics behind the paper's Tables 1
and 2 and the §4.1/§4.2 headline numbers.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

from ..compilers import FAMILIES, LEVELS, CompilerSpec
from ..frontend.typecheck import check_program
from ..generator import GeneratorConfig, generate_program
from ..interp import StepLimitExceeded
from ..observability import events as ev
from ..observability.events import EventBus
from ..observability.metrics import MetricsRegistry
from ..observability.tracer import Tracer, current_tracer, use_tracer
from .differential import ProgramAnalysis, analyze_markers, missed_between_levels
from .shapes import ShapeStats, program_shape
from .ground_truth import compute_ground_truth
from .markers import instrument_program
from .primary import build_marker_graph, primary_missed_markers
from .resilience import (
    CheckpointJournal,
    CrashEnvelope,
    SeedReport,
    analyze_one_resilient,
    bucket_crashes,
)


def default_specs(version: int | None = None) -> list[CompilerSpec]:
    """Every family × level at one version (default: tip)."""
    return [
        CompilerSpec(family, level, version)
        for family in FAMILIES
        for level in LEVELS
    ]


@dataclass
class LevelStats:
    """Accumulated per (family, level)."""

    dead_total: int = 0
    missed: int = 0
    primary_missed: int = 0

    @property
    def missed_pct(self) -> float:
        return 100.0 * self.missed / self.dead_total if self.dead_total else 0.0

    @property
    def primary_missed_pct(self) -> float:
        return 100.0 * self.primary_missed / self.dead_total if self.dead_total else 0.0


@dataclass
class CrossCompilerStats:
    """§4.2 'Between GCC and LLVM' accumulators (at one level)."""

    gcc_misses_llvm_catches: int = 0
    llvm_misses_gcc_catches: int = 0
    gcc_primary: int = 0
    llvm_primary: int = 0


@dataclass
class CrossLevelStats:
    """§4.2 'Between optimization levels' accumulators (per family)."""

    missed_at_high: int = 0
    primary: int = 0


@dataclass
class ProgramOutcome:
    seed: int
    marker_count: int
    dead_count: int
    analysis: ProgramAnalysis


@dataclass
class CampaignResult:
    seeds: list[int] = field(default_factory=list)
    skipped: list[int] = field(default_factory=list)
    total_markers: int = 0
    total_dead: int = 0
    total_alive: int = 0
    by_level: dict[tuple[str, str], LevelStats] = field(default_factory=dict)
    cross_compiler: CrossCompilerStats = field(default_factory=CrossCompilerStats)
    cross_level: dict[str, CrossLevelStats] = field(default_factory=dict)
    #: per-seed interesting finds, for triage/reduction follow-ups
    findings: list[dict] = field(default_factory=list)
    soundness_violations: list[dict] = field(default_factory=list)
    #: full per-seed analyses, populated only with ``keep_analyses``
    analyses: list[ProgramOutcome] = field(default_factory=list)
    #: contained per-seed crashes, in seed order (fault isolation:
    #: a crash never aborts the campaign)
    crashes: list[CrashEnvelope] = field(default_factory=list)
    #: seeds skipped because they exceeded the per-seed wall-clock
    #: budget (``seed_budget``)
    budget_exceeded: list[int] = field(default_factory=list)
    #: seeds whose incremental compile crashed but whose plain retry
    #: succeeded (their outcomes are in ``seeds`` as usual)
    degraded: list[int] = field(default_factory=list)
    #: marker-yield accumulators per program shape
    #: (:func:`repro.core.shapes.program_shape`)
    by_shape: dict[str, ShapeStats] = field(default_factory=dict)
    #: reduced-case fingerprint per finding index (None where the
    #: reduction fell back), present only when a reduction queue ran
    reduced_fingerprints: dict[int, str | None] | None = None
    #: :class:`~repro.core.reduction.ReductionCampaignStats` rollup,
    #: present only when a reduction queue ran
    reduction_stats: object | None = None

    @property
    def dead_pct(self) -> float:
        total = self.total_markers
        return 100.0 * self.total_dead / total if total else 0.0

    @property
    def crash_buckets(self) -> dict[str, list[CrashEnvelope]]:
        """Crashes deduplicated by bucket key (exception type + deepest
        in-repo frame), deterministically ordered."""
        return bucket_crashes(self.crashes)

    def level_stats(self, family: str, level: str) -> LevelStats:
        return self.by_level.setdefault((family, level), LevelStats())


@dataclass
class CampaignProgress:
    """A per-program progress snapshot handed to ``progress`` callbacks."""

    seed: int
    completed: int  # programs analyzed so far (excluding skips)
    #: programs that produced no outcome so far (step-limit skips,
    #: budget-exceeded seeds, and contained crashes)
    skipped: int
    total: int
    elapsed: float  # seconds since campaign start
    skipped_seed: bool  # whether *this* seed produced no outcome
    #: breakdown of the ``skipped`` tally
    crashed: int = 0
    budget_exceeded: int = 0

    @property
    def programs_per_sec(self) -> float:
        done = self.completed + self.skipped
        return done / self.elapsed if self.elapsed > 0 else 0.0


class CampaignCancelled(RuntimeError):
    """A campaign stopped at a seed boundary because its ``cancel``
    hook fired (service job timeout or drain).

    Finished seeds are already journaled/committed when this raises,
    so rerunning with the same checkpoint resumes exactly where the
    cancelled run stopped — the same contract as SIGINT/SIGTERM.
    """

    def __init__(self, message: str, seeds_done: int = 0) -> None:
        super().__init__(message)
        self.seeds_done = seeds_done


def run_campaign(
    n_programs: int = 50,
    seed_base: int = 0,
    version: int | None = None,
    generator_config: GeneratorConfig | None = None,
    keep_analyses: bool = False,
    compare_level: str = "O3",
    metrics: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    progress: Callable[[CampaignProgress], None] | None = None,
    jobs: int = 1,
    incremental: bool = True,
    seed_budget: float | None = None,
    checkpoint: str | None = None,
    events: EventBus | None = None,
    interp: str | None = None,
    window: int | None = None,
    reduction=None,
    store=None,
    cancel: Callable[[], bool] | None = None,
) -> CampaignResult:
    """Run the full marker campaign over ``n_programs`` seeds.

    Observability hooks, all optional and overhead-free when unset:

    * ``metrics`` — accumulates per-spec compile-latency histograms,
      per-program analysis latency, throughput, and running
      missed/primary tallies per (family, level).
    * ``tracer`` — installed as the current tracer for the duration,
      so pipeline/interpreter spans nest under one ``campaign`` span.
    * ``progress`` — called with a :class:`CampaignProgress` snapshot
      after every seed (superseded by ``events``; kept for callers
      that want the preaggregated snapshot).
    * ``events`` — an :class:`~repro.observability.events.EventBus`
      receiving the typed campaign event stream (campaign_start,
      seed_start, seed_done, finding, crash, budget_exceeded,
      checkpoint_replayed, campaign_end).  The stream is identical —
      modulo timestamps — at every ``jobs`` count: worker events ship
      through :class:`~repro.core.parallel.SeedEnvelope` and re-emit
      in seed order.

    ``jobs`` shards the per-seed work across a process pool
    (:mod:`repro.core.parallel`).  The default 1 runs the exact
    sequential path in-process; any higher count produces a
    :class:`CampaignResult` with identical contents — outcomes merge
    in seed order regardless of completion order — while metrics fold
    worker snapshots into ``metrics`` and worker spans re-parent under
    the campaign span.

    ``incremental`` selects the prefix-shared compilation engine per
    seed (:mod:`repro.compilers.incremental`, identical results);
    ``False`` compiles every spec independently.

    ``interp`` selects the ground-truth interpreter backend
    (``"bytecode"``/``"ast"``; ``None`` uses the process default,
    normally the bytecode VM — results are bit-identical either way).
    ``window`` bounds the parallel scheduler's in-flight shard window
    (default ``jobs * 3``); ignored at ``jobs=1``.  Like ``jobs``,
    neither knob changes campaign results, so neither is part of the
    run's config fingerprint.

    Fault isolation (:mod:`repro.core.resilience`): per-seed crashes
    are contained into ``result.crashes`` envelopes, ``seed_budget``
    arms a cooperative wall-clock deadline per seed
    (``result.budget_exceeded``), and ``checkpoint`` appends one JSONL
    record per finished seed so an interrupted campaign rerun with the
    same path replays journaled seeds and analyzes only the rest,
    reproducing the uninterrupted result.

    ``reduction`` — a :class:`~repro.core.reduction.ReductionQueue`:
    each recorded finding is submitted the moment the differential
    layer surfaces it (reductions overlap the remaining seed
    analysis), and the queue drains — in finding order, so the event
    stream stays deterministic — before ``campaign_end``, leaving
    ``result.reduced_fingerprints`` and ``result.reduction_stats``.

    ``store`` — a :class:`~repro.store.ArtifactStore`: seeds already
    fully analyzed under this (version, generator_config) scope replay
    their recorded :class:`SeedReport` instead of re-running
    (``store.seeds_skipped``), emitting the exact events a fresh
    analysis would — a warm rerun is byte-identical to a cold one,
    modulo timestamps.  Fresh seeds read through the store's compile
    and ground-truth memos and their new entries are committed back in
    seed order.  A checkpoint journal, when both are given, takes
    precedence for seeds it holds (it alone replays crashes and
    budget blowups).

    ``cancel`` — a zero-argument callable polled at every seed
    boundary (sequential loop and parallel merge alike); returning
    ``True`` raises :class:`CampaignCancelled` after the finished
    seeds have been journaled and committed, so a rerun with the same
    checkpoint resumes rather than restarts.  The campaign service
    uses this for per-job wall-clock timeouts and graceful drain.
    """
    if n_programs < 0:
        raise ValueError(f"n_programs must be >= 0, got {n_programs}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs > 1:
        from .parallel import run_campaign_parallel

        return run_campaign_parallel(
            n_programs, seed_base, version, generator_config,
            keep_analyses, compare_level, metrics, tracer, progress, jobs,
            incremental, seed_budget, checkpoint, events, interp, window,
            reduction, store, cancel,
        )
    if tracer is not None:
        with use_tracer(tracer):
            return _run_campaign_traced(
                n_programs, seed_base, version, generator_config,
                keep_analyses, compare_level, metrics, progress, incremental,
                seed_budget, checkpoint, events, interp, reduction, store,
                cancel,
            )
    return _run_campaign_traced(
        n_programs, seed_base, version, generator_config,
        keep_analyses, compare_level, metrics, progress, incremental,
        seed_budget, checkpoint, events, interp, reduction, store, cancel,
    )


def _run_campaign_traced(
    n_programs: int,
    seed_base: int,
    version: int | None,
    generator_config: GeneratorConfig | None,
    keep_analyses: bool,
    compare_level: str,
    metrics: MetricsRegistry | None,
    progress: Callable[[CampaignProgress], None] | None,
    incremental: bool = True,
    seed_budget: float | None = None,
    checkpoint: str | None = None,
    events: EventBus | None = None,
    interp: str | None = None,
    reduction=None,
    store=None,
    cancel: Callable[[], bool] | None = None,
) -> CampaignResult:
    specs = default_specs(version)
    result = CampaignResult()
    result.cross_level = {family: CrossLevelStats() for family in FAMILIES}
    tracer = current_tracer()
    start = time.perf_counter()
    journal = CheckpointJournal(checkpoint) if checkpoint else None
    store_scope: str | None = None
    stored_reports: dict[int, SeedReport] = {}
    if store is not None:
        from ..store import seed_scope_fingerprint

        if store.metrics is None:
            store.metrics = metrics
        store_scope = seed_scope_fingerprint(version, generator_config)
        stored_reports = store.load_seed_reports(
            store_scope, seed_base, seed_base + n_programs
        )
    if events is not None:
        events.emit(
            ev.CAMPAIGN_START, programs=n_programs, seed_base=seed_base,
            compare_level=compare_level, incremental=incremental,
        )

    with tracer.span(
        "campaign", programs=n_programs, seed_base=seed_base
    ) as campaign_span, _signal_flushes(journal):
        try:
            for seed in range(seed_base, seed_base + n_programs):
                if cancel is not None and cancel():
                    raise CampaignCancelled(
                        f"campaign cancelled before seed {seed}",
                        seeds_done=seed - seed_base,
                    )
                replayed = journal.get(seed) if journal is not None else None
                stored = (
                    stored_reports.get(seed) if replayed is None else None
                )
                if replayed is not None:
                    if metrics is not None:
                        metrics.counter("campaign.checkpoint_replayed").inc()
                    if events is not None:
                        events.emit(
                            ev.CHECKPOINT_REPLAYED, seed=seed,
                            status=ev.report_status(replayed),
                        )
                    report = replayed
                elif stored is not None:
                    # warm replay: same events a fresh analysis emits,
                    # so the stream is byte-identical modulo timestamps
                    if metrics is not None:
                        metrics.counter("store.seeds_skipped").inc()
                    if events is not None:
                        events.emit(ev.SEED_START, seed=seed)
                    if journal is not None:
                        journal.record(stored)
                    if events is not None:
                        events.emit_all(ev.seed_outcome_records(stored))
                    report = stored
                else:
                    if events is not None:
                        events.emit(ev.SEED_START, seed=seed)
                    session = store.session(metrics) if store is not None else None
                    program_start = time.perf_counter()
                    with tracer.span("campaign.program", seed=seed) as span:
                        report = analyze_one_resilient(
                            seed, specs, version, generator_config,
                            metrics=metrics, incremental=incremental,
                            seed_budget=seed_budget, interp=interp,
                            store=session,
                        )
                        span.set("skipped", report.outcome is None)
                        if report.crash is not None:
                            span.set("crashed", report.crash.bucket)
                        if report.budget_exceeded:
                            span.set("budget_exceeded", True)
                        if report.degraded:
                            span.set("degraded", True)
                    if metrics is not None:
                        metrics.histogram(
                            "campaign.program_latency_ms"
                        ).observe((time.perf_counter() - program_start) * 1e3)
                    if journal is not None:
                        journal.record(report)
                    if events is not None:
                        events.emit_all(ev.seed_outcome_records(report))
                    if store is not None:
                        store.commit_seed(store_scope, report, session.delta)
                _merge_report(
                    result, report, version, compare_level, keep_analyses,
                    metrics, events, reduction,
                )
                elapsed = time.perf_counter() - start
                if metrics is not None:
                    _record_tallies(result, metrics, elapsed)
                if progress is not None:
                    progress(_progress_snapshot(
                        result, report, n_programs, elapsed
                    ))
            # reductions overlapped the seed loop; collect them (in
            # finding order) before the campaign narrates its end
            drain_reduction(result, reduction, events, metrics)
            campaign_span.update(
                completed=len(result.seeds), skipped=len(result.skipped),
                crashed=len(result.crashes),
                budget_exceeded=len(result.budget_exceeded),
            )
            if events is not None:
                events.emit(ev.CAMPAIGN_END, **campaign_end_attrs(result))
        finally:
            if journal is not None:
                journal.close()
    return result


def drain_reduction(
    result: CampaignResult,
    reduction,
    events: EventBus | None,
    metrics: MetricsRegistry | None,
) -> None:
    """Collect a campaign's reduction queue into the result (shared by
    the sequential loop and the parallel engine; no-op without a
    queue).  Runs before ``campaign_end`` so the end-of-stream summary
    can report the reduced-finding tally."""
    if reduction is None:
        return
    fingerprints, stats = reduction.drain(
        events=events, metrics=metrics, crashes=result.crashes
    )
    result.reduced_fingerprints = fingerprints
    result.reduction_stats = stats


def campaign_end_attrs(result: CampaignResult) -> dict:
    """The ``campaign_end`` event attributes (shared with the parallel
    engine so both emit identical summaries)."""
    attrs = {
        "completed": len(result.seeds),
        "skipped": len(result.skipped),
        "crashed": len(result.crashes),
        "budget_exceeded": len(result.budget_exceeded),
        "degraded": len(result.degraded),
        "total_markers": result.total_markers,
        "total_dead": result.total_dead,
        "findings": len(result.findings),
    }
    if result.reduction_stats is not None:
        attrs["findings_reduced"] = result.reduction_stats.reduced
    return attrs


def _merge_report(
    result: CampaignResult,
    report: SeedReport,
    version: int | None,
    compare_level: str,
    keep_analyses: bool,
    metrics: MetricsRegistry | None,
    events: EventBus | None = None,
    reduction=None,
) -> None:
    """Fold one per-seed :class:`SeedReport` into the campaign result
    (shared by the sequential loop, the parallel merge, and checkpoint
    replay, so all three count crashes/budget/degraded identically)."""
    if report.budget_exceeded:
        result.budget_exceeded.append(report.seed)
        if metrics is not None:
            metrics.counter("campaign.budget_exceeded").inc()
    elif report.crash is not None:
        result.crashes.append(report.crash)
        if metrics is not None:
            metrics.counter("campaign.crashes").inc()
    elif report.outcome is None:
        result.skipped.append(report.seed)
    else:
        result.seeds.append(report.seed)
        _accumulate(
            result, report.outcome, version, compare_level, events, reduction
        )
        if keep_analyses:
            result.analyses.append(report.outcome)
        if report.degraded:
            result.degraded.append(report.seed)
            if metrics is not None:
                metrics.counter("campaign.degraded").inc()


def _progress_snapshot(
    result: CampaignResult,
    report: SeedReport,
    n_programs: int,
    elapsed: float,
) -> CampaignProgress:
    return CampaignProgress(
        seed=report.seed,
        completed=len(result.seeds),
        skipped=(
            len(result.skipped) + len(result.crashes)
            + len(result.budget_exceeded)
        ),
        total=n_programs,
        elapsed=elapsed,
        skipped_seed=report.outcome is None,
        crashed=len(result.crashes),
        budget_exceeded=len(result.budget_exceeded),
    )


#: signals that interrupt a checkpointed campaign: Ctrl-C and the
#: `systemd`/container stop signal must leave the same flushed journal
_FLUSH_SIGNALS = (signal.SIGINT, signal.SIGTERM)


@contextmanager
def _signal_flushes(journal: CheckpointJournal | None):
    """While a checkpointed campaign runs on the main thread, make
    SIGINT *and* SIGTERM flush the journal to disk before the usual
    :class:`KeyboardInterrupt` propagates (interruption safety: a
    container stop is as survivable as a Ctrl-C).  Inside the campaign
    service the loop runs on worker threads, so this is a no-op there —
    the daemon owns both signals and drains instead."""
    if journal is None or threading.current_thread() is not threading.main_thread():
        yield
        return

    def _flush_and_interrupt(signum, frame):
        journal.flush()
        raise KeyboardInterrupt

    previous = {
        sig: signal.signal(sig, _flush_and_interrupt)
        for sig in _FLUSH_SIGNALS
    }
    try:
        yield
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)


#: backwards-compatible alias (pre-PR 10 name)
_sigint_flushes = _signal_flushes


def _record_tallies(
    result: CampaignResult, metrics: MetricsRegistry, elapsed: float
) -> None:
    """Mirror the running campaign accumulators into the registry."""
    done = (
        len(result.seeds) + len(result.skipped) + len(result.crashes)
        + len(result.budget_exceeded)
    )
    metrics.gauge("campaign.programs_analyzed").set(len(result.seeds))
    metrics.gauge("campaign.programs_skipped").set(len(result.skipped))
    metrics.gauge("campaign.crash_buckets").set(len(result.crash_buckets))
    metrics.gauge("campaign.programs_per_sec").set(
        done / elapsed if elapsed > 0 else 0.0
    )
    metrics.gauge("campaign.total_markers").set(result.total_markers)
    metrics.gauge("campaign.total_dead").set(result.total_dead)
    for (family, level), stats in result.by_level.items():
        metrics.gauge(f"campaign.missed/{family}-{level}").set(stats.missed)
        metrics.gauge(f"campaign.primary_missed/{family}-{level}").set(
            stats.primary_missed
        )


def analyze_one(
    seed: int,
    specs: list[CompilerSpec],
    version: int | None = None,
    generator_config: GeneratorConfig | None = None,
    metrics: MetricsRegistry | None = None,
    incremental: bool = True,
) -> ProgramOutcome | None:
    """Generate + instrument + ground-truth + compile one seed.

    Returns None when the program is unusable (e.g. execution budget
    exceeded), mirroring how a real campaign would skip a timeout.
    """
    program = generate_program(seed, generator_config)
    instrumented = instrument_program(program)
    info = check_program(instrumented.program)
    try:
        truth = compute_ground_truth(instrumented, info=info)
    except StepLimitExceeded:
        return None
    analysis = analyze_markers(
        instrumented, specs, info=info, ground_truth=truth, metrics=metrics,
        incremental=incremental,
    )
    return ProgramOutcome(
        seed, len(instrumented.markers), len(truth.dead), analysis
    )


def _accumulate(
    result: CampaignResult,
    outcome: ProgramOutcome,
    version: int | None,
    compare_level: str,
    events: EventBus | None = None,
    reduction=None,
) -> None:
    analysis = outcome.analysis
    truth = analysis.ground_truth
    instrumented = analysis.instrumented
    result.total_markers += len(instrumented.markers)
    result.total_dead += len(truth.dead)
    result.total_alive += len(truth.alive)
    shape = program_shape(instrumented.program)
    shape_stats = result.by_shape.setdefault(shape, ShapeStats())
    shape_stats.programs += 1
    shape_stats.markers += len(instrumented.markers)
    shape_stats.dead += len(truth.dead)

    def record_finding(finding: dict) -> None:
        index = len(result.findings)
        result.findings.append(finding)
        shape_stats.findings += 1
        if events is not None:
            events.emit(ev.FINDING, shape=shape, **finding)
        if reduction is not None:
            # off the critical path: the queue reduces this finding in
            # a pool worker while the campaign analyzes further seeds
            reduction.submit(index, finding)

    graph = build_marker_graph(instrumented, truth.executed_functions())

    # The primary set is a pure function of the eliminated set (for a
    # fixed program/graph), and the cross-compiler/cross-level sections
    # below revisit the compare-level eliminated sets the by-level loop
    # already handled — and specs frequently coincide on eliminated
    # sets outright — so memoize per distinct set.
    primary_memo: dict[frozenset[str], frozenset[str]] = {}

    def primary_of(eliminated: frozenset[str]) -> frozenset[str]:
        cached = primary_memo.get(eliminated)
        if cached is None:
            cached = primary_memo[eliminated] = primary_missed_markers(
                instrumented, truth, eliminated, graph=graph
            )
        return cached

    for family in FAMILIES:
        for level in LEVELS:
            spec = CompilerSpec(family, level, version)
            missed = analysis.missed_vs_ideal(spec)
            eliminated = analysis.outcome(spec).eliminated
            primary = primary_of(eliminated)
            stats = result.level_stats(family, level)
            stats.dead_total += len(truth.dead)
            stats.missed += len(missed)
            stats.primary_missed += len(primary)
            if level == compare_level:
                shape_stats.missed += len(missed)
                shape_stats.primary += len(missed & primary)
            violations = analysis.soundness_violations(spec)
            if violations:
                result.soundness_violations.append(
                    {"seed": outcome.seed, "spec": str(spec), "markers": sorted(violations)}
                )

    # Cross-compiler at the comparison level.
    gcc_spec = CompilerSpec("gcclike", compare_level, version)
    llvm_spec = CompilerSpec("llvmlike", compare_level, version)
    gcc_misses = analysis.missed_vs(gcc_spec, llvm_spec)
    llvm_misses = analysis.missed_vs(llvm_spec, gcc_spec)
    result.cross_compiler.gcc_misses_llvm_catches += len(gcc_misses)
    result.cross_compiler.llvm_misses_gcc_catches += len(llvm_misses)
    gcc_primary = primary_of(analysis.outcome(gcc_spec).eliminated)
    llvm_primary = primary_of(analysis.outcome(llvm_spec).eliminated)
    result.cross_compiler.gcc_primary += len(gcc_misses & gcc_primary)
    result.cross_compiler.llvm_primary += len(llvm_misses & llvm_primary)
    if gcc_misses or llvm_misses:
        record_finding(
            {
                "seed": outcome.seed,
                "kind": "cross-compiler",
                "gcc_misses": sorted(gcc_misses),
                "llvm_misses": sorted(llvm_misses),
            }
        )

    # Cross-level within each family.
    for family in FAMILIES:
        seized = missed_between_levels(analysis, family, high=compare_level, version=version)
        if not seized:
            continue
        stats = result.cross_level[family]
        stats.missed_at_high += len(seized)
        spec = CompilerSpec(family, compare_level, version)
        primary = primary_of(analysis.outcome(spec).eliminated)
        stats.primary += len(seized & primary)
        record_finding(
            {
                "seed": outcome.seed,
                "kind": "cross-level",
                "family": family,
                "markers": sorted(seized),
            }
        )
