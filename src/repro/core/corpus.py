"""Corpus campaign runner (paper §4).

Generates a corpus of random programs, instruments them, computes
ground truth, compiles each program under every compiler spec of
interest, and accumulates the statistics behind the paper's Tables 1
and 2 and the §4.1/§4.2 headline numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compilers import FAMILIES, LEVELS, CompilerSpec
from ..frontend.typecheck import check_program
from ..generator import GeneratorConfig, generate_program
from ..interp import StepLimitExceeded
from .differential import ProgramAnalysis, analyze_markers, missed_between_levels
from .ground_truth import compute_ground_truth
from .markers import instrument_program
from .primary import build_marker_graph, primary_missed_markers


def default_specs(version: int | None = None) -> list[CompilerSpec]:
    """Every family × level at one version (default: tip)."""
    return [
        CompilerSpec(family, level, version)
        for family in FAMILIES
        for level in LEVELS
    ]


@dataclass
class LevelStats:
    """Accumulated per (family, level)."""

    dead_total: int = 0
    missed: int = 0
    primary_missed: int = 0

    @property
    def missed_pct(self) -> float:
        return 100.0 * self.missed / self.dead_total if self.dead_total else 0.0

    @property
    def primary_missed_pct(self) -> float:
        return 100.0 * self.primary_missed / self.dead_total if self.dead_total else 0.0


@dataclass
class CrossCompilerStats:
    """§4.2 'Between GCC and LLVM' accumulators (at one level)."""

    gcc_misses_llvm_catches: int = 0
    llvm_misses_gcc_catches: int = 0
    gcc_primary: int = 0
    llvm_primary: int = 0


@dataclass
class CrossLevelStats:
    """§4.2 'Between optimization levels' accumulators (per family)."""

    missed_at_high: int = 0
    primary: int = 0


@dataclass
class ProgramOutcome:
    seed: int
    marker_count: int
    dead_count: int
    analysis: ProgramAnalysis


@dataclass
class CampaignResult:
    seeds: list[int] = field(default_factory=list)
    skipped: list[int] = field(default_factory=list)
    total_markers: int = 0
    total_dead: int = 0
    total_alive: int = 0
    by_level: dict[tuple[str, str], LevelStats] = field(default_factory=dict)
    cross_compiler: CrossCompilerStats = field(default_factory=CrossCompilerStats)
    cross_level: dict[str, CrossLevelStats] = field(default_factory=dict)
    #: per-seed interesting finds, for triage/reduction follow-ups
    findings: list[dict] = field(default_factory=list)
    soundness_violations: list[dict] = field(default_factory=list)

    @property
    def dead_pct(self) -> float:
        total = self.total_markers
        return 100.0 * self.total_dead / total if total else 0.0

    def level_stats(self, family: str, level: str) -> LevelStats:
        return self.by_level.setdefault((family, level), LevelStats())


def run_campaign(
    n_programs: int = 50,
    seed_base: int = 0,
    version: int | None = None,
    generator_config: GeneratorConfig | None = None,
    keep_analyses: bool = False,
    compare_level: str = "O3",
) -> CampaignResult:
    """Run the full marker campaign over ``n_programs`` seeds."""
    specs = default_specs(version)
    result = CampaignResult()
    result.cross_level = {family: CrossLevelStats() for family in FAMILIES}
    analyses: list[ProgramOutcome] = []

    for seed in range(seed_base, seed_base + n_programs):
        outcome = analyze_one(seed, specs, version, generator_config)
        if outcome is None:
            result.skipped.append(seed)
            continue
        result.seeds.append(seed)
        _accumulate(result, outcome, version, compare_level)
        if keep_analyses:
            analyses.append(outcome)
    if keep_analyses:
        result.findings.append({"analyses": analyses})
    return result


def analyze_one(
    seed: int,
    specs: list[CompilerSpec],
    version: int | None = None,
    generator_config: GeneratorConfig | None = None,
) -> ProgramOutcome | None:
    """Generate + instrument + ground-truth + compile one seed.

    Returns None when the program is unusable (e.g. execution budget
    exceeded), mirroring how a real campaign would skip a timeout.
    """
    program = generate_program(seed, generator_config)
    instrumented = instrument_program(program)
    info = check_program(instrumented.program)
    try:
        truth = compute_ground_truth(instrumented, info=info)
    except StepLimitExceeded:
        return None
    analysis = analyze_markers(instrumented, specs, info=info, ground_truth=truth)
    return ProgramOutcome(
        seed, len(instrumented.markers), len(truth.dead), analysis
    )


def _accumulate(
    result: CampaignResult,
    outcome: ProgramOutcome,
    version: int | None,
    compare_level: str,
) -> None:
    analysis = outcome.analysis
    truth = analysis.ground_truth
    instrumented = analysis.instrumented
    result.total_markers += len(instrumented.markers)
    result.total_dead += len(truth.dead)
    result.total_alive += len(truth.alive)

    graph = build_marker_graph(instrumented, truth.executed_functions())

    for family in FAMILIES:
        for level in LEVELS:
            spec = CompilerSpec(family, level, version)
            missed = analysis.missed_vs_ideal(spec)
            eliminated = analysis.outcome(spec).eliminated
            primary = primary_missed_markers(
                instrumented, truth, eliminated, graph=graph
            )
            stats = result.level_stats(family, level)
            stats.dead_total += len(truth.dead)
            stats.missed += len(missed)
            stats.primary_missed += len(primary)
            violations = analysis.soundness_violations(spec)
            if violations:
                result.soundness_violations.append(
                    {"seed": outcome.seed, "spec": str(spec), "markers": sorted(violations)}
                )

    # Cross-compiler at the comparison level.
    gcc_spec = CompilerSpec("gcclike", compare_level, version)
    llvm_spec = CompilerSpec("llvmlike", compare_level, version)
    gcc_misses = analysis.missed_vs(gcc_spec, llvm_spec)
    llvm_misses = analysis.missed_vs(llvm_spec, gcc_spec)
    result.cross_compiler.gcc_misses_llvm_catches += len(gcc_misses)
    result.cross_compiler.llvm_misses_gcc_catches += len(llvm_misses)
    gcc_elim = analysis.outcome(gcc_spec).eliminated
    llvm_elim = analysis.outcome(llvm_spec).eliminated
    gcc_primary = primary_missed_markers(instrumented, truth, gcc_elim, graph=graph)
    llvm_primary = primary_missed_markers(instrumented, truth, llvm_elim, graph=graph)
    result.cross_compiler.gcc_primary += len(gcc_misses & gcc_primary)
    result.cross_compiler.llvm_primary += len(llvm_misses & llvm_primary)
    if gcc_misses or llvm_misses:
        result.findings.append(
            {
                "seed": outcome.seed,
                "kind": "cross-compiler",
                "gcc_misses": sorted(gcc_misses),
                "llvm_misses": sorted(llvm_misses),
            }
        )

    # Cross-level within each family.
    for family in FAMILIES:
        seized = missed_between_levels(analysis, family, high=compare_level, version=version)
        if not seized:
            continue
        stats = result.cross_level[family]
        stats.missed_at_high += len(seized)
        spec = CompilerSpec(family, compare_level, version)
        eliminated = analysis.outcome(spec).eliminated
        primary = primary_missed_markers(instrumented, truth, eliminated, graph=graph)
        stats.primary += len(seized & primary)
        result.findings.append(
            {
                "seed": outcome.seed,
                "kind": "cross-level",
                "family": family,
                "markers": sorted(seized),
            }
        )
