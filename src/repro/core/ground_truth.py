"""Ground truth (paper §4.1).

The test programs are deterministic and input-free, so one execution
decides liveness for all executions: markers hit during interpretation
are *alive*, the rest are *dead*.  This is how the paper compares real
compilers against a hypothetically ideal one that eliminates all dead
code.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..frontend.typecheck import SymbolInfo, check_program
from ..interp import (
    DEFAULT_STEP_LIMIT,
    ExecutionResult,
    get_default_backend,
    run_program,
)
from ..observability.tracer import current_tracer
from .markers import InstrumentedProgram


@dataclass
class GroundTruth:
    all_markers: frozenset[str]
    alive: frozenset[str]
    execution: ExecutionResult

    @property
    def dead(self) -> frozenset[str]:
        return self.all_markers - self.alive

    @property
    def dead_fraction(self) -> float:
        if not self.all_markers:
            return 0.0
        return len(self.dead) / len(self.all_markers)

    def executed_functions(self) -> frozenset[str]:
        return frozenset(self.execution.function_calls)


def compute_ground_truth(
    instrumented: InstrumentedProgram,
    info: SymbolInfo | None = None,
    step_limit: int = DEFAULT_STEP_LIMIT,
    backend: str | None = None,
    metrics=None,
) -> GroundTruth:
    """Execute the instrumented program and classify its markers.

    ``backend`` selects the interpreter (``"bytecode"``/``"ast"``;
    ``None`` uses the process default).  When a ``MetricsRegistry`` is
    passed, the per-backend seed counters and ``interp.steps`` (the
    numerator of the report's steps/sec gauge) are incremented.
    """
    if info is None:
        info = check_program(instrumented.program)
    if backend is None:
        backend = get_default_backend()
    with current_tracer().span(
        "ground_truth", markers=len(instrumented.marker_names), backend=backend
    ) as span:
        execution = run_program(
            instrumented.program,
            step_limit=step_limit,
            info=info,
            backend=backend,
        )
        alive = frozenset(
            name
            for name in execution.marker_hits
            if name in instrumented.marker_names
        )
        span.update(
            steps=execution.steps,
            alive=len(alive),
            dead=len(instrumented.marker_names) - len(alive),
        )
    if metrics is not None:
        metrics.counter(f"interp.{backend}_seeds").inc()
        metrics.counter("interp.steps").inc(execution.steps)
    return GroundTruth(instrumented.marker_names, alive, execution)
