"""Ground truth (paper §4.1).

The test programs are deterministic and input-free, so one execution
decides liveness for all executions: markers hit during interpretation
are *alive*, the rest are *dead*.  This is how the paper compares real
compilers against a hypothetically ideal one that eliminates all dead
code.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..frontend.typecheck import SymbolInfo, check_program
from ..interp import (
    DEFAULT_STEP_LIMIT,
    ExecutionResult,
    StepLimitExceeded,
    get_default_backend,
    run_program,
)
from ..lang import print_program
from ..observability.tracer import current_tracer
from .markers import InstrumentedProgram


def _encode_execution(execution: ExecutionResult) -> dict:
    """JSON-safe summary of one execution for the artifact store."""
    return {
        "status": "ok",
        "exit_code": execution.exit_code,
        "marker_hits": dict(execution.marker_hits),
        "steps": execution.steps,
        "checksum": execution.checksum,
        "call_trace": execution.call_trace,
        "function_calls": dict(execution.function_calls),
    }


def _decode_execution(record: dict) -> ExecutionResult:
    return ExecutionResult(
        exit_code=int(record["exit_code"]),
        marker_hits={
            str(k): int(v) for k, v in record["marker_hits"].items()
        },
        steps=int(record["steps"]),
        checksum=int(record["checksum"]),
        call_trace=int(record["call_trace"]),
        function_calls={
            str(k): int(v) for k, v in record["function_calls"].items()
        },
    )


@dataclass
class GroundTruth:
    all_markers: frozenset[str]
    alive: frozenset[str]
    execution: ExecutionResult

    @property
    def dead(self) -> frozenset[str]:
        return self.all_markers - self.alive

    @property
    def dead_fraction(self) -> float:
        if not self.all_markers:
            return 0.0
        return len(self.dead) / len(self.all_markers)

    def executed_functions(self) -> frozenset[str]:
        return frozenset(self.execution.function_calls)


def compute_ground_truth(
    instrumented: InstrumentedProgram,
    info: SymbolInfo | None = None,
    step_limit: int = DEFAULT_STEP_LIMIT,
    backend: str | None = None,
    metrics=None,
    store=None,
) -> GroundTruth:
    """Execute the instrumented program and classify its markers.

    ``backend`` selects the interpreter (``"bytecode"``/``"ast"``;
    ``None`` uses the process default).  When a ``MetricsRegistry`` is
    passed, the per-backend seed counters and ``interp.steps`` (the
    numerator of the report's steps/sec gauge) are incremented.

    ``store`` is an optional
    :class:`~repro.store.StoreSession`: executions are memoized on
    ``(sha256(printed program), step_limit)`` — both backends are
    bit-identical by contract, so a recorded summary (including a
    step-limit blowup, re-raised as :class:`StepLimitExceeded`)
    replaces interpretation entirely on a hit.  Hits bump
    ``store.truth_hits`` instead of the interp counters.
    """
    if info is None:
        info = check_program(instrumented.program)
    if backend is None:
        backend = get_default_backend()
    program_hash = None
    if store is not None:
        program_hash = _store_program_key(instrumented)
        record = store.lookup_truth(program_hash, step_limit)
        if record is not None:
            if record.get("status") == "step_limit":
                raise StepLimitExceeded(
                    f"execution exceeded {step_limit} steps"
                )
            execution = _decode_execution(record)
            alive = frozenset(
                name
                for name in execution.marker_hits
                if name in instrumented.marker_names
            )
            return GroundTruth(instrumented.marker_names, alive, execution)
    with current_tracer().span(
        "ground_truth", markers=len(instrumented.marker_names), backend=backend
    ) as span:
        try:
            execution = run_program(
                instrumented.program,
                step_limit=step_limit,
                info=info,
                backend=backend,
            )
        except StepLimitExceeded:
            if store is not None:
                store.record_truth(
                    program_hash,
                    step_limit,
                    {"status": "step_limit"},
                    print_program(instrumented.program),
                )
            raise
        alive = frozenset(
            name
            for name in execution.marker_hits
            if name in instrumented.marker_names
        )
        span.update(
            steps=execution.steps,
            alive=len(alive),
            dead=len(instrumented.marker_names) - len(alive),
        )
    if metrics is not None:
        metrics.counter(f"interp.{backend}_seeds").inc()
        metrics.counter("interp.steps").inc(execution.steps)
    if store is not None:
        store.record_truth(
            program_hash,
            step_limit,
            _encode_execution(execution),
            print_program(instrumented.program),
        )
    return GroundTruth(instrumented.marker_names, alive, execution)


def _store_program_key(instrumented: InstrumentedProgram) -> str:
    from ..store import program_text_key

    return program_text_key(print_program(instrumented.program))
