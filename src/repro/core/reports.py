"""Bug-report ledger (paper §4.3, Table 5).

The paper reported 53 GCC and 31 LLVM missed optimizations; 43 and 19
were confirmed, 5 GCC reports were duplicates, and 12 / 11 were fixed.
This module models that reporting campaign: a ledger of report
records, a handful of which are backed by the executable case studies
in :mod:`repro.core.case_studies` (the rest stand in for reduced
corpus findings of the same categories).  ``table5_counts`` regenerates
the table; the test suite checks the ledger is internally consistent
and that every case-study-backed report still reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass

from .case_studies import CASE_STUDIES

STATUSES = ("reported", "confirmed", "duplicate", "fixed")


@dataclass(frozen=True)
class BugReport:
    report_id: str
    family: str  # 'gcclike' | 'llvmlike'
    component: str
    status: str  # 'reported' | 'confirmed' | 'duplicate' | 'fixed'
    title: str
    case_id: str | None = None  # backing case study, when available


def _ledger() -> tuple[BugReport, ...]:
    reports: list[BugReport] = []

    # Case-study-backed reports first.
    for case in CASE_STUDIES:
        meta = case.report
        if not meta:
            continue
        reports.append(
            BugReport(
                report_id=f"RPT-{case.case_id}",
                family=meta["family"],
                component=case.component,
                status=meta["status"],
                title=case.title,
                case_id=case.case_id,
            )
        )

    # Synthetic records standing in for the remaining reduced corpus
    # findings, distributed over the same components the paper names.
    gcc_components = (
        "Value Propagation", "Alias Analysis", "Constant Propagation",
        "Loop Transformations", "Jump Threading", "Inlining",
        "Value Numbering", "Common Subexpression Elimination",
        "Interprocedural Analyses", "Peephole Optimizations",
        "Pass Management", "Control Flow Graph Analysis",
    )
    llvm_components = (
        "Peephole Optimizations", "Value Propagation",
        "Loop Transformations", "SSA Memory Analysis", "Jump Threading",
        "Instruction Operand Folding", "Pass Management",
        "Value Constraint Analysis", "Alias Analysis",
    )

    def fill(family: str, components: tuple[str, ...], statuses: list[str]) -> None:
        existing = sum(1 for r in reports if r.family == family)
        for i, status in enumerate(statuses[existing:], start=existing):
            component = components[i % len(components)]
            reports.append(
                BugReport(
                    report_id=f"RPT-{family}-{i:03d}",
                    family=family,
                    component=component,
                    status=status,
                    title=f"missed DCE opportunity in {component.lower()}",
                )
            )

    # Target Table 5 totals (statuses of *all* reports incl. backed
    # ones).  'reported' below means reported-but-not-yet-confirmed.
    gcc_statuses = (
        ["fixed"] * 12 + ["duplicate"] * 5 + ["confirmed"] * (43 - 12) + ["reported"] * (53 - 43 - 5)
    )
    llvm_statuses = ["fixed"] * 11 + ["confirmed"] * (19 - 11) + ["reported"] * (31 - 19)

    # Account for statuses already covered by backed reports.
    def adjust(family: str, wanted: list[str]) -> list[str]:
        backed = [r.status for r in reports if r.family == family]
        remaining = list(wanted)
        for status in backed:
            if status in remaining:
                remaining.remove(status)
        return backed + remaining

    fill("gcclike", gcc_components, adjust("gcclike", gcc_statuses))
    fill("llvmlike", llvm_components, adjust("llvmlike", llvm_statuses))
    return tuple(reports)


LEDGER: tuple[BugReport, ...] = _ledger()


def table5_counts() -> dict[str, dict[str, int]]:
    """{family: {reported, confirmed, duplicate, fixed}} — the paper's
    Table 5 semantics: 'reported' counts everything submitted,
    'confirmed' includes fixed reports."""
    out: dict[str, dict[str, int]] = {}
    for family in ("gcclike", "llvmlike"):
        rows = [r for r in LEDGER if r.family == family]
        confirmed = sum(1 for r in rows if r.status in ("confirmed", "fixed"))
        out[family] = {
            "reported": len(rows),
            "confirmed": confirmed,
            "duplicate": sum(1 for r in rows if r.status == "duplicate"),
            "fixed": sum(1 for r in rows if r.status == "fixed"),
        }
    return out


def reports_for(family: str) -> list[BugReport]:
    return [r for r in LEDGER if r.family == family]
