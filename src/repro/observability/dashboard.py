"""Live campaign dashboard: a single-line TTY status renderer.

:class:`LiveDashboard` subscribes to the campaign
:class:`~repro.observability.events.EventBus` and keeps one status
line updated in place (carriage return + erase-to-end) while the
campaign runs::

    [ 12/50] 1.32 seeds/s · 3 findings · 1 crash · ETA 29s

On a non-TTY stream it degrades to plain per-seed progress lines (CI
logs stay readable, nothing is overprinted).  Either way the output
goes to *stderr* by default so redirected stdout
(``campaign ... > result.json``) stays machine-clean.

The renderer is a pure event consumer: it never touches campaign
state, so attaching it cannot perturb results, and tests drive it with
synthetic events and an injected clock.
"""

from __future__ import annotations

import sys
import time

from .events import Event, EventBus


class LiveDashboard:
    """Event-bus subscriber rendering live campaign status.

    ``stream`` defaults to ``sys.stderr``; ``force_tty`` overrides TTY
    detection (tests); ``now`` injects a clock.  ``metrics`` (the
    campaign's registry, optional) lets the status line surface
    artifact-store activity — replayed seeds and compile/oracle hits
    are visible only as counters, never as events, because warm
    replays keep the event stream byte-identical to a cold run.
    """

    def __init__(
        self,
        stream=None,
        *,
        force_tty: bool | None = None,
        now=time.monotonic,
        metrics=None,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        if force_tty is None:
            force_tty = bool(getattr(self._stream, "isatty", lambda: False)())
        self._tty = force_tty
        self._now = now
        self._metrics = metrics
        self._start: float | None = None
        self._total = 0
        self._done = 0
        self._findings = 0
        self._crashes = 0
        self._budget = 0
        self._reduction_commits = 0
        self._jobs_done = 0
        self._job_retries = 0
        self._cases = 0
        self._cases_advanced = 0
        self._line_open = False

    # -- wiring --------------------------------------------------------

    def attach(self, bus: EventBus) -> "LiveDashboard":
        bus.subscribe(self)
        return self

    def detach(self, bus: EventBus) -> None:
        bus.unsubscribe(self)

    # -- event consumption ---------------------------------------------

    def __call__(self, event: Event) -> None:
        # dot-named types (reduction.commit) map to _on_reduction_commit
        name = event.type.replace(".", "_")
        handler = getattr(self, f"_on_{name}", None)
        if handler is not None:
            handler(event)

    def _on_campaign_start(self, event: Event) -> None:
        self._start = self._now()
        self._total = event.attrs.get("programs", 0)
        self._done = self._findings = self._crashes = self._budget = 0
        self._reduction_commits = 0
        if not self._tty:
            self._print(
                f"campaign: {self._total} programs "
                f"from seed {event.attrs.get('seed_base', '?')}"
            )

    def _on_checkpoint_replayed(self, event: Event) -> None:
        self._seed_finished(event, event.attrs.get("status", "replayed"))

    def _on_seed_done(self, event: Event) -> None:
        detail = ""
        if "markers" in event.attrs:
            detail = (
                f" ({event.attrs['markers']} markers, "
                f"{event.attrs['dead']} dead)"
            )
        self._seed_finished(event, event.attrs.get("status", "ok") + detail)

    def _on_crash(self, event: Event) -> None:
        self._crashes += 1
        self._seed_finished(
            event, f"crash [{event.attrs.get('bucket', '?')}]"
        )

    def _on_budget_exceeded(self, event: Event) -> None:
        self._budget += 1
        self._seed_finished(event, "over budget")

    def _on_finding(self, event: Event) -> None:
        self._findings += 1
        if self._tty:
            self._render()

    def _on_reduction_round(self, event: Event) -> None:
        # round-level progress is noise on the one-line TTY; narrate it
        # only in plain mode (the drain happens after the seed loop, so
        # it never interleaves with per-seed lines)
        if not self._tty:
            self._print(
                f"reduce seed {event.attrs.get('seed', '?')}: "
                f"round {event.attrs.get('round', '?')}, "
                f"{event.attrs.get('stmts', '?')} stmts, "
                f"{event.attrs.get('commits', 0)} commits"
            )

    def _on_reduction_commit(self, event: Event) -> None:
        self._reduction_commits += 1
        if self._tty:
            self._render()

    # -- service (daemon) events ---------------------------------------

    def _on_job_started(self, event: Event) -> None:
        if not self._tty:
            attempt = event.attrs.get("attempt", 0)
            retry = f" (retry {attempt})" if attempt else ""
            self._print(
                f"job {event.attrs.get('job', '?')}: started{retry}"
            )

    def _on_job_retried(self, event: Event) -> None:
        self._job_retries += 1
        if self._tty:
            self._render()
        else:
            self._print(
                f"job {event.attrs.get('job', '?')}: "
                f"{event.attrs.get('kind', '?')}, retry "
                f"{event.attrs.get('attempt', '?')} in "
                f"{event.attrs.get('delay', 0):.1f}s"
            )

    def _on_job_done(self, event: Event) -> None:
        self._jobs_done += 1
        if self._tty:
            self._render()
        else:
            self._print(
                f"job {event.attrs.get('job', '?')}: done "
                f"({event.attrs.get('findings', 0)} findings)"
            )

    def _on_job_failed(self, event: Event) -> None:
        if not self._tty:
            self._print(
                f"job {event.attrs.get('job', '?')}: FAILED after "
                f"{event.attrs.get('attempts', '?')} attempts"
            )

    def _on_case_found(self, event: Event) -> None:
        self._cases += 1
        if self._tty:
            self._render()
        else:
            self._print(
                f"case {event.attrs.get('fingerprint', '?')[:16]}: found "
                f"({event.attrs.get('kind', '?')}, seed "
                f"{event.attrs.get('seed', '?')})"
            )

    def _on_case_advanced(self, event: Event) -> None:
        self._cases_advanced += 1
        if self._tty:
            self._render()
        else:
            self._print(
                f"case {event.attrs.get('fingerprint', '?')[:16]}: "
                f"-> {event.attrs.get('state', '?')}"
            )

    def _on_campaign_end(self, event: Event) -> None:
        if self._line_open:
            self._stream.write("\n")
            self._line_open = False
        elapsed = self._elapsed()
        reduced = event.attrs.get("findings_reduced")
        self._print(
            f"campaign done: {event.attrs.get('completed', self._done)} seeds, "
            f"{event.attrs.get('findings', self._findings)} findings, "
            f"{event.attrs.get('crashed', self._crashes)} crashes "
            + (f"({reduced} reduced) " if reduced is not None else "")
            + f"in {elapsed:.1f}s"
        )

    # -- rendering -----------------------------------------------------

    def _seed_finished(self, event: Event, status: str) -> None:
        self._done += 1
        if self._tty:
            self._render()
        else:
            seed = event.attrs.get("seed", "?")
            self._print(
                f"[{self._done}/{self._total}] seed {seed}: {status}"
            )

    def _elapsed(self) -> float:
        return self._now() - self._start if self._start is not None else 0.0

    def status_line(self) -> str:
        """The current one-line status (what the TTY shows)."""
        elapsed = self._elapsed()
        rate = self._done / elapsed if elapsed > 0 else 0.0
        remaining = max(0, self._total - self._done)
        eta = f"{remaining / rate:.0f}s" if rate > 0 else "--"
        width = len(str(self._total))
        parts = [
            f"[{self._done:>{width}}/{self._total}]",
            f"{rate:.2f} seeds/s",
            f"{self._findings} findings",
            f"{self._crashes} crashes",
        ]
        if self._budget:
            parts.append(f"{self._budget} over budget")
        if self._reduction_commits:
            parts.append(f"{self._reduction_commits} shrinks")
        if self._jobs_done or self._job_retries:
            blurb = f"{self._jobs_done} jobs"
            if self._job_retries:
                blurb += f" ({self._job_retries} retries)"
            parts.append(blurb)
        if self._cases:
            blurb = f"{self._cases} cases"
            if self._cases_advanced:
                blurb += f" ({self._cases_advanced} advanced)"
            parts.append(blurb)
        store = self._store_blurb()
        if store:
            parts.append(store)
        parts.append(f"ETA {eta}")
        return " · ".join(parts)

    def _store_blurb(self) -> str:
        """Store activity out of the metrics registry ('' when idle)."""
        if self._metrics is None:
            return ""
        snapshot = self._metrics.to_dict()

        def value(name: str) -> int:
            return int(snapshot.get(name, {}).get("value", 0))

        skipped = value("store.seeds_skipped")
        hits = value("store.compile_hits") + value("store.oracle_hits")
        if not skipped and not hits:
            return ""
        bits = []
        if skipped:
            bits.append(f"{skipped} replayed")
        if hits:
            bits.append(f"{hits} hits")
        return "store " + "+".join(bits)

    def _render(self) -> None:
        # \r + erase-to-end keeps a single line updated in place
        self._stream.write("\r\x1b[K" + self.status_line())
        self._stream.flush()
        self._line_open = True

    def _print(self, line: str) -> None:
        self._stream.write(line + "\n")
        self._stream.flush()


class ProgressPrinter:
    """Event-bus twin of the classic ``--progress`` per-seed lines.

    Emits ``[n/total] seed S: STATUS`` to ``stream`` (stderr by
    default) for every finished seed — the non-TTY fallback wired to
    the same event stream workers ship, so parallel campaigns report
    progress in deterministic seed order.
    """

    def __init__(self, stream=None) -> None:
        self._dashboard = LiveDashboard(stream, force_tty=False)

    def attach(self, bus: EventBus) -> "ProgressPrinter":
        bus.subscribe(self._dashboard)
        return self

    def detach(self, bus: EventBus) -> None:
        bus.unsubscribe(self._dashboard)

    def __call__(self, event: Event) -> None:
        self._dashboard(event)
