"""Trace/metrics serialization and plain-text rendering.

Spans export to JSON Lines (one span object per line, completion
order) and round-trip back through :func:`read_spans_jsonl`;
:func:`format_trace` renders a tracer's span tree as an indented
listing for terminal output (``dce-hunt analyze --trace``).
"""

from __future__ import annotations

import json
from typing import Any, Iterable, TextIO

from .tracer import Span, Tracer


def spans_to_dicts(tracer: Tracer) -> list[dict[str, Any]]:
    return [span.to_dict() for span in tracer.spans]


def write_spans_jsonl(spans: Iterable[Span], path_or_file: str | TextIO) -> int:
    """Write one JSON object per span; returns the number written."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "w") as handle:
            return write_spans_jsonl(spans, handle)
    count = 0
    for span in spans:
        path_or_file.write(json.dumps(span.to_dict(), sort_keys=True))
        path_or_file.write("\n")
        count += 1
    return count


def read_spans_jsonl(path_or_file: str | TextIO) -> list[Span]:
    """Parse spans written by :func:`write_spans_jsonl` (blank lines
    are skipped)."""
    if isinstance(path_or_file, str):
        with open(path_or_file) as handle:
            return read_spans_jsonl(handle)
    spans = []
    for line in path_or_file:
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


def write_trace_json(tracer: Tracer, path: str) -> None:
    """Write the whole trace as one JSON document."""
    payload = {"spans": spans_to_dicts(tracer), "dropped": tracer.dropped}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


#: span attributes too bulky for the one-line tree rendering
_VERBOSE_ATTRS = {"markers_eliminated"}


def format_trace(tracer: Tracer, max_attrs: int = 6) -> str:
    """Indented plain-text rendering of the span tree."""
    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        attrs = {
            k: v for k, v in span.attrs.items() if k not in _VERBOSE_ATTRS
        }
        shown = list(attrs.items())[:max_attrs]
        rendered = " ".join(f"{k}={v}" for k, v in shown)
        if len(attrs) > max_attrs:
            rendered += " …"
        suffix = f"  [{rendered}]" if rendered else ""
        lines.append(
            f"{'  ' * depth}{span.name:<{max(1, 24 - 2 * depth)}} "
            f"{span.duration * 1e3:8.3f} ms{suffix}"
        )
        for child in tracer.children(span):
            walk(child, depth + 1)

    for root in tracer.roots():
        walk(root, 0)
    if tracer.dropped:
        lines.append(f"... {tracer.dropped} span(s) dropped (max_spans)")
    return "\n".join(lines)
