"""Run reports and cross-run regression comparison.

Renders one :class:`~repro.observability.ledger.RunRow` as a terminal
report or a self-contained HTML page (``dce-hunt report``), and
compares two runs (``dce-hunt compare``) flagging regressions against
configurable thresholds:

* **incremental reuse drop** — ``compile.pass_execs_saved`` per
  program fell (a run without the counter scores 0, so a
  ``--no-incremental`` run against an incremental baseline flags a
  100% drop);
* **compilation-cost increase** — ``campaign.compilations`` per
  program rose (cache or sharing regression);
* **yield drop** — findings per completed program fell (generator or
  oracle regression);
* **interpreter throughput drop** — ``interp.steps`` per wall-clock
  second fell (ground-truth engine slowdown, e.g. a bytecode-VM
  regression or an accidental ``--no-bytecode`` run).

All comparisons normalize per completed program so runs of different
sizes compare meaningfully.  The HTML report embeds its styling inline
and references nothing external, so it can be archived as a single CI
artifact.
"""

from __future__ import annotations

import html
import time
from dataclasses import dataclass, field

from .ledger import FindingRow, RunRow

PASS_EXECS_SAVED = "compile.pass_execs_saved"
COMPILATIONS = "campaign.compilations"
INTERP_STEPS = "interp.steps"


def steps_per_sec(run: RunRow) -> float:
    """Ground-truth interpreter throughput: total ``interp.steps``
    over campaign wall time (0 when either is unrecorded)."""
    if run.wall_time <= 0:
        return 0.0
    return run.metric_value(INTERP_STEPS) / run.wall_time

LATENCY_PREFIX = "compile_latency_ms/"
PERCENTILE_KEYS = ("p50", "p90", "p99")


# -- comparison ------------------------------------------------------------


@dataclass(frozen=True)
class CompareThresholds:
    """Relative-change limits; fractions (0.10 = 10%)."""

    pass_execs_saved_drop: float = 0.10
    compilations_increase: float = 0.10
    yield_drop: float = 0.10
    steps_per_sec_drop: float = 0.10


@dataclass
class Delta:
    """One compared quantity between baseline and candidate."""

    name: str
    baseline: float
    candidate: float
    #: signed relative change vs baseline (0.25 = +25%); ``None``
    #: when the baseline is 0 and the candidate is not
    change: float | None
    regression: bool = False
    note: str = ""

    @property
    def change_pct(self) -> str:
        if self.change is None:
            return "n/a"
        return f"{self.change:+.1%}"


@dataclass
class RunComparison:
    """``compare_runs`` output: every delta plus the regressed subset."""

    baseline: RunRow
    candidate: RunRow
    deltas: list[Delta] = field(default_factory=list)

    @property
    def regressions(self) -> list[Delta]:
        return [d for d in self.deltas if d.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _relative_change(baseline: float, candidate: float) -> float | None:
    if baseline == 0:
        return None if candidate else 0.0
    return (candidate - baseline) / baseline


def compare_runs(
    baseline: RunRow,
    candidate: RunRow,
    thresholds: CompareThresholds | None = None,
) -> RunComparison:
    """Compare ``candidate`` against ``baseline`` (see module docs)."""
    limits = thresholds or CompareThresholds()
    comparison = RunComparison(baseline, candidate)

    def add(
        name: str,
        base: float,
        cand: float,
        *,
        bad_drop: float | None = None,
        bad_rise: float | None = None,
        note: str = "",
    ) -> Delta:
        change = _relative_change(base, cand)
        regression = False
        if bad_drop is not None:
            # a vanished quantity (baseline > 0, candidate 0) is a
            # full drop; a quantity absent on both sides is no change
            drop = -(change if change is not None else 0.0)
            regression = base > 0 and drop > bad_drop
        if bad_rise is not None and change is not None:
            regression = regression or change > bad_rise
        if bad_rise is not None and change is None:
            regression = True  # appeared out of nothing: treat as rise
        delta = Delta(name, base, cand, change, regression, note)
        comparison.deltas.append(delta)
        return delta

    add(
        "pass_execs_saved/program",
        baseline.per_program(PASS_EXECS_SAVED),
        candidate.per_program(PASS_EXECS_SAVED),
        bad_drop=limits.pass_execs_saved_drop,
        note="incremental-engine reuse",
    )
    add(
        "compilations/program",
        baseline.per_program(COMPILATIONS),
        candidate.per_program(COMPILATIONS),
        bad_rise=limits.compilations_increase,
        note="compile cost",
    )
    add(
        "findings/program",
        baseline.findings / baseline.completed if baseline.completed else 0.0,
        candidate.findings / candidate.completed if candidate.completed else 0.0,
        bad_drop=limits.yield_drop,
        note="campaign yield",
    )
    add(
        "interp_steps_per_sec",
        steps_per_sec(baseline),
        steps_per_sec(candidate),
        bad_drop=limits.steps_per_sec_drop,
        note="ground-truth interpreter throughput",
    )
    # informational rows (never flagged)
    add("dead_markers_pct", baseline.dead_pct, candidate.dead_pct)
    add("crashes", baseline.crashed, candidate.crashed)
    add("wall_time_s", baseline.wall_time, candidate.wall_time)
    return comparison


def comparison_text(comparison: RunComparison) -> str:
    """Terminal rendering of a :class:`RunComparison`."""
    a, b = comparison.baseline, comparison.candidate
    lines = [
        f"compare: run {a.run_id} (baseline) -> run {b.run_id} (candidate)",
        f"  configs: {a.config_fingerprint} -> {b.config_fingerprint}"
        + ("" if a.config_fingerprint == b.config_fingerprint else "  [differ]"),
        "",
    ]
    rows = [
        (
            ("REGRESSION" if d.regression else "ok"),
            d.name,
            f"{d.baseline:.3f}",
            f"{d.candidate:.3f}",
            d.change_pct,
            d.note,
        )
        for d in comparison.deltas
    ]
    lines.extend(_text_table(
        ("", "metric", "baseline", "candidate", "change", ""), rows
    ))
    lines.append("")
    if comparison.ok:
        lines.append("no regressions")
    else:
        names = ", ".join(d.name for d in comparison.regressions)
        lines.append(f"{len(comparison.regressions)} regression(s): {names}")
    return "\n".join(lines)


# -- single-run report -----------------------------------------------------


def _fmt_when(epoch: float) -> str:
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(epoch))


def _report_sections(
    run: RunRow, findings: list[FindingRow]
) -> list[tuple[str, list[tuple], list[tuple]]]:
    """(title, header row, data rows) triples shared by both renderers."""
    sections: list[tuple[str, list[tuple], list[tuple]]] = []

    sections.append((
        "Outcome",
        [("completed", "skipped", "crashed", "budget", "degraded",
          "markers", "dead", "dead %", "findings", "soundness")],
        [(run.completed, run.skipped, run.crashed, run.budget_exceeded,
          run.degraded, run.total_markers, run.total_dead,
          f"{run.dead_pct:.1f}", run.findings, run.soundness_violations)],
    ))

    sections.append((
        "Marker yield by O-level",
        [("pipeline", "dead total", "missed", "primary")],
        [
            (spec, s["dead_total"], s["missed"], s["primary_missed"])
            for spec, s in sorted(run.by_level.items())
        ],
    ))

    if run.shape_yield:
        sections.append((
            "Yield by program shape",
            [("shape", "programs", "markers", "dead", "missed", "primary",
              "findings", "findings/program")],
            [
                (shape, s["programs"], s["markers"], s["dead"], s["missed"],
                 s["primary"], s["findings"],
                 f"{s['findings'] / s['programs']:.2f}" if s["programs"] else "0")
                for shape, s in sorted(run.shape_yield.items())
            ],
        ))

    if run.pass_attribution:
        total = sum(run.pass_attribution.values())
        sections.append((
            "Marker kills by pass",
            [("pass", "markers killed", "share")],
            [
                (name, kills, f"{100.0 * kills / total:.1f}%")
                for name, kills in sorted(
                    run.pass_attribution.items(), key=lambda kv: -kv[1]
                )
            ],
        ))

    latency_rows = []
    for name, entry in sorted(run.metrics.items()):
        if not name.startswith(LATENCY_PREFIX) or entry.get("type") != "histogram":
            continue
        if not entry.get("count"):
            continue
        latency_rows.append((
            name[len(LATENCY_PREFIX):],
            entry["count"],
            f"{entry.get('mean', 0.0):.2f}",
            *(f"{entry.get(k, 0.0):.2f}" for k in PERCENTILE_KEYS),
        ))
    if latency_rows:
        sections.append((
            "Compile latency (ms)",
            [("pipeline", "count", "mean", *PERCENTILE_KEYS)],
            latency_rows,
        ))

    if run.crash_buckets:
        sections.append((
            "Crash buckets",
            [("bucket", "crashes")],
            sorted(run.crash_buckets.items()),
        ))

    if run.reduction_oracle_calls:
        cache_hits = run.metric_value("reduction.oracle_cache_hits")
        total = run.reduction_oracle_calls + cache_hits
        sections.append((
            "Finding reduction",
            [("reduce jobs", "oracle calls", "cache hits", "memo hit %",
              "speculative wasted", "reduce wall (s)")],
            [(
                run.reduce_jobs or 1,
                run.reduction_oracle_calls,
                int(cache_hits),
                f"{100.0 * cache_hits / total:.1f}%" if total else "0%",
                run.reduction_speculative_wasted or 0,
                f"{run.reduction_wall_time or 0.0:.1f}",
            )],
        ))

    if run.store_seeds_skipped is not None:
        # a --store run: show how much of it resolved from the store.
        # compilations counts only *cold* compiles, so hit rate is
        # hits / (hits + compiles); replayed seeds never reach the
        # compile layer at all and get their own column.
        compile_hits = run.store_compile_hits or 0
        cold = int(run.metric_value(COMPILATIONS))
        compile_total = compile_hits + cold
        sections.append((
            "Persistent store",
            [("seeds replayed", "compile hits", "compile hit %",
              "truth hits", "oracle hits", "store errors")],
            [(
                run.store_seeds_skipped,
                compile_hits,
                f"{100.0 * compile_hits / compile_total:.1f}%"
                if compile_total else "n/a",
                run.store_truth_hits or 0,
                run.store_oracle_hits or 0,
                int(run.metric_value("store.errors")),
            )],
        ))

    if findings:
        sections.append((
            "Findings (deduplicated)",
            [("fingerprint", "kind", "occurrences", "first run", "last run",
              "seeds")],
            [
                (f.fingerprint, f.kind, f.occurrences, f.first_seen_run,
                 f.last_seen_run,
                 ", ".join(str(s) for s in f.seeds[:8])
                 + ("…" if len(f.seeds) > 8 else ""))
                for f in findings
            ],
        ))
    return sections


def _interp_blurb(run: RunRow) -> str:
    blurb = f"interp={run.interp or 'bytecode'}"
    rate = steps_per_sec(run)
    if rate > 0:
        blurb += f" ({rate:,.0f} steps/sec)"
    return blurb


def _run_header(run: RunRow) -> list[str]:
    return [
        f"run {run.run_id}  [{_fmt_when(run.started_at)}]"
        f"  config {run.config_fingerprint}",
        f"  {run.programs} programs from seed {run.seed_base}, "
        f"compare {run.compare_level}, jobs={run.jobs}, "
        f"incremental={'on' if run.incremental else 'off'}, "
        f"{_interp_blurb(run)}, "
        f"wall {run.wall_time:.1f}s",
    ]


def _lifecycle_section(lifecycle: dict) -> tuple:
    """A report section for the service's case-lifecycle tallies
    (``found -> reduced -> bisected -> reported``)."""
    states = list(lifecycle)
    return (
        "case lifecycle",
        [tuple(states)],
        [tuple(lifecycle[state] for state in states)],
    )


def run_report_text(
    run: RunRow,
    findings: list[FindingRow],
    lifecycle: dict | None = None,
) -> str:
    """Terminal report for one ledger run.  ``lifecycle`` (the
    service's :meth:`~.ledger.RunLedger.lifecycle_counts`) adds a
    case-state tally section when the ledger carries cases."""
    lines = _run_header(run)
    sections = list(_report_sections(run, findings))
    if lifecycle is not None:
        sections.append(_lifecycle_section(lifecycle))
    for title, header, rows in sections:
        lines.append("")
        lines.append(f"== {title} ==")
        lines.extend(_text_table(header[0], rows))
    return "\n".join(lines)


def _text_table(header: tuple, rows: list[tuple]) -> list[str]:
    table = [tuple(str(c) for c in header)]
    table.extend(tuple(str(c) for c in row) for row in rows)
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    out = []
    for index, row in enumerate(table):
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if index == 0:
            out.append("  ".join("-" * w for w in widths))
    return out


_HTML_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 70rem; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 1.6rem; }
.meta { color: #555; }
table { border-collapse: collapse; margin-top: .4rem; }
th, td { border: 1px solid #ccc; padding: .25rem .6rem;
         font-size: .85rem; text-align: left; }
th { background: #f2f2f2; }
tr:nth-child(even) td { background: #fafafa; }
code { background: #f4f4f4; padding: 0 .2rem; }
""".strip()


def run_report_html(
    run: RunRow,
    findings: list[FindingRow],
    lifecycle: dict | None = None,
) -> str:
    """Self-contained single-file HTML report (inline CSS, no external
    references — safe to archive as a CI artifact)."""
    esc = html.escape
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>dce-hunt run {run.run_id}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>dce-hunt run {run.run_id}</h1>",
        '<p class="meta">'
        + esc(
            f"{_fmt_when(run.started_at)} · config {run.config_fingerprint}"
            f" · {run.programs} programs from seed {run.seed_base}"
            f" · compare {run.compare_level} · jobs={run.jobs}"
            f" · incremental={'on' if run.incremental else 'off'}"
            f" · {_interp_blurb(run)}"
            f" · wall {run.wall_time:.1f}s"
        )
        + "</p>",
    ]
    sections = list(_report_sections(run, findings))
    if lifecycle is not None:
        sections.append(_lifecycle_section(lifecycle))
    for title, header, rows in sections:
        parts.append(f"<h2>{esc(title)}</h2>")
        parts.append("<table><tr>")
        parts.extend(f"<th>{esc(str(c))}</th>" for c in header[0])
        parts.append("</tr>")
        for row in rows:
            parts.append("<tr>")
            parts.extend(f"<td>{esc(str(c))}</td>" for c in row)
            parts.append("</tr>")
        parts.append("</table>")
    parts.append("</body></html>")
    return "\n".join(parts)
