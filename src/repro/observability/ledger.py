"""Persistent run ledger: campaigns and findings across runs, in SQLite.

Campaigns stop being fire-and-forget here: every ``campaign --ledger``
appends one **run row** (config fingerprint, outcome counters,
marker-yield per generator shape, pass-attribution rollup, crash
buckets, latency summaries) and upserts one **finding row** per
deduplicated finding — first seen / last seen / occurrence count
across runs — so yield trends and regressions are queryable long after
the process exits (``dce-hunt runs`` / ``show-run`` / ``report`` /
``compare``).

Finding deduplication
---------------------

Findings dedupe on a deterministic fingerprint.  Two modes:

* ``reduce=False`` (default): the *structural signature* — the
  finding kind plus the guarding-condition shapes
  (:func:`repro.core.triage.guarding_condition_shape`) of its missed
  markers on the regenerated program.  Cheap (no compilation), stable
  across runs and job counts, and merges findings whose markers sit
  behind structurally identical conditions.
* ``reduce=True``: the paper-faithful fingerprint — delta-reduce the
  case with :func:`repro.core.reduction.reduce_program` under the
  missed-marker predicate, lower the reduced program, and hash
  :func:`repro.ir.printer.fingerprint_module` of the result ("we
  deduplicate cases after reducing them", §4.3).  This recompiles per
  reduction candidate, so it is opt-in (``campaign --ledger
  --reduce-findings``); when the predicate cannot be established the
  fingerprint falls back to the structural signature.

Both fingerprints are pure functions of (seed, generator config,
compare level), so re-running the same campaign config yields the same
fingerprints and the occurrence counters accumulate across runs.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import time
from dataclasses import asdict, dataclass, field
from typing import Any

from typing import TYPE_CHECKING

from .metrics import MetricsRegistry

if TYPE_CHECKING:  # heavyweight sibling packages import this module's
    # package transitively, so runtime imports stay inside functions
    from ..generator import GeneratorConfig
    from ..lang import ast_nodes as ast

#: metrics counter prefix holding the per-pass marker-kill rollup
#: (written by the incremental engine)
ATTRIBUTION_PREFIX = "attribution.marker_kills/"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id INTEGER PRIMARY KEY AUTOINCREMENT,
    started_at REAL NOT NULL,
    wall_time REAL NOT NULL,
    config_fingerprint TEXT NOT NULL,
    programs INTEGER NOT NULL,
    seed_base INTEGER NOT NULL,
    jobs INTEGER NOT NULL,
    incremental INTEGER NOT NULL,
    compare_level TEXT NOT NULL,
    version INTEGER,
    completed INTEGER NOT NULL,
    skipped INTEGER NOT NULL,
    crashed INTEGER NOT NULL,
    budget_exceeded INTEGER NOT NULL,
    degraded INTEGER NOT NULL,
    total_markers INTEGER NOT NULL,
    total_dead INTEGER NOT NULL,
    total_alive INTEGER NOT NULL,
    findings INTEGER NOT NULL,
    soundness_violations INTEGER NOT NULL,
    by_level_json TEXT NOT NULL,
    cross_compiler_json TEXT NOT NULL,
    cross_level_json TEXT NOT NULL,
    shape_yield_json TEXT NOT NULL,
    pass_attribution_json TEXT NOT NULL,
    crash_buckets_json TEXT NOT NULL,
    metrics_json TEXT NOT NULL,
    interp TEXT,
    sched_window INTEGER,
    reduce_jobs INTEGER,
    reduction_oracle_calls INTEGER,
    reduction_speculative_wasted INTEGER,
    reduction_wall_time REAL,
    store_seeds_skipped INTEGER,
    store_compile_hits INTEGER,
    store_truth_hits INTEGER,
    store_oracle_hits INTEGER
);
CREATE INDEX IF NOT EXISTS idx_runs_config ON runs(config_fingerprint);
CREATE TABLE IF NOT EXISTS findings (
    fingerprint TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    detail_json TEXT NOT NULL,
    seeds_json TEXT NOT NULL,
    first_seen_run INTEGER NOT NULL,
    last_seen_run INTEGER NOT NULL,
    occurrences INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS run_findings (
    run_id INTEGER NOT NULL,
    fingerprint TEXT NOT NULL,
    seed INTEGER NOT NULL,
    kind TEXT NOT NULL,
    PRIMARY KEY (run_id, fingerprint, seed)
);
"""


def config_fingerprint(
    n_programs: int,
    seed_base: int,
    version: int | None = None,
    generator_config: GeneratorConfig | None = None,
    compare_level: str = "O3",
    incremental: bool = True,
) -> str:
    """A short stable hash of everything that determines a campaign's
    results.  ``jobs``, the scheduler ``window``, and the ``interp``
    backend are deliberately excluded: results are bit-identical under
    any of them, so reruns at different parallelism or on the AST
    cross-check interpreter share the fingerprint (and ``compare``
    treats them as the same campaign)."""
    payload = {
        "n_programs": n_programs,
        "seed_base": seed_base,
        "version": version,
        "generator_config": (
            asdict(generator_config) if generator_config is not None else None
        ),
        "compare_level": compare_level,
        "incremental": incremental,
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()
    return digest[:16]


# -- finding fingerprints --------------------------------------------------


def _finding_markers(finding: dict) -> list[tuple[str, str]]:
    """``(side, marker)`` pairs for a finding dict, sorted."""
    if finding["kind"] == "cross-compiler":
        return sorted(
            [("gcclike", m) for m in finding.get("gcc_misses", ())]
            + [("llvmlike", m) for m in finding.get("llvm_misses", ())]
        )
    return sorted((finding.get("family", "?"), m) for m in finding["markers"])


def finding_fingerprint(
    finding: dict,
    generator_config: GeneratorConfig | None = None,
    compare_level: str = "O3",
    version: int | None = None,
    reduce: bool = False,
    program: ast.Program | None = None,
) -> str:
    """Deterministic dedup key for one campaign finding dict.

    ``program`` overrides the regenerated-from-seed instrumented
    program (tests exercise the reduce path on small fixtures this
    way).  See the module docstring for the two modes.
    """
    if program is None:
        from ..core.markers import instrument_program
        from ..generator import generate_program

        program = instrument_program(
            generate_program(finding["seed"], generator_config)
        ).program
    if reduce:
        fingerprint = _reduced_fingerprint(
            finding, program, compare_level, version
        )
        if fingerprint is not None:
            return fingerprint
    return _structural_fingerprint(finding, program)


def _structural_fingerprint(finding: dict, program: "ast.Program") -> str:
    from ..core.triage import guarding_condition_shape

    shapes = [
        (side, guarding_condition_shape(program, marker))
        for side, marker in _finding_markers(finding)
    ]
    payload = {
        "kind": finding["kind"],
        "family": finding.get("family"),
        "shapes": shapes,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()[:16]


def _reduced_fingerprint(
    finding: dict,
    program: ast.Program,
    compare_level: str,
    version: int | None,
) -> str | None:
    """Reduce the case and hash the canonical IR of the result, or
    ``None`` when no (keeper, witness) pairing makes the initial
    program interesting (the structural signature then applies).
    Delegates to :func:`repro.core.reduction.reduce_finding` — the
    same engine a campaign's reduction queue runs off-path."""
    from ..core.reduction import reduce_finding

    outcome = reduce_finding(
        finding, program, compare_level=compare_level, version=version
    )
    return outcome[0] if outcome is not None else None


# -- row types -------------------------------------------------------------


@dataclass
class RunRow:
    """One campaign, as persisted (JSON columns parsed)."""

    run_id: int
    started_at: float
    wall_time: float
    config_fingerprint: str
    programs: int
    seed_base: int
    jobs: int
    incremental: bool
    compare_level: str
    version: int | None
    completed: int
    skipped: int
    crashed: int
    budget_exceeded: int
    degraded: int
    total_markers: int
    total_dead: int
    total_alive: int
    findings: int
    soundness_violations: int
    #: ground-truth interpreter backend ("bytecode"/"ast"); like
    #: ``jobs``/``window`` it is metadata, not part of the fingerprint
    interp: str | None = None
    #: parallel scheduler in-flight shard window (None = default)
    window: int | None = None
    #: reduction-queue pool size (None = no reduction queue ran)
    reduce_jobs: int | None = None
    #: reduction-queue rollups (None when no queue ran)
    reduction_oracle_calls: int | None = None
    reduction_speculative_wasted: int | None = None
    reduction_wall_time: float | None = None
    #: persistent artifact-store hit counters (None = no --store)
    store_seeds_skipped: int | None = None
    store_compile_hits: int | None = None
    store_truth_hits: int | None = None
    store_oracle_hits: int | None = None
    by_level: dict[str, dict[str, int]] = field(default_factory=dict)
    cross_compiler: dict[str, int] = field(default_factory=dict)
    cross_level: dict[str, dict[str, int]] = field(default_factory=dict)
    shape_yield: dict[str, dict[str, int]] = field(default_factory=dict)
    pass_attribution: dict[str, int] = field(default_factory=dict)
    crash_buckets: dict[str, int] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def dead_pct(self) -> float:
        total = self.total_markers
        return 100.0 * self.total_dead / total if total else 0.0

    def metric_value(self, name: str, default: float = 0.0) -> float:
        """A counter/gauge value out of the stored metrics snapshot."""
        entry = self.metrics.get(name)
        if not entry:
            return default
        return entry.get("value", default)

    def per_program(self, name: str) -> float:
        """A counter normalized by completed programs (comparison
        across runs of different sizes)."""
        return self.metric_value(name) / self.completed if self.completed else 0.0


@dataclass
class FindingRow:
    """One deduplicated finding with its cross-run lifecycle."""

    fingerprint: str
    kind: str
    detail: dict
    seeds: list[int]
    first_seen_run: int
    last_seen_run: int
    occurrences: int


class RunLedger:
    """SQLite-backed store of campaign runs and deduplicated findings.

    Usable as a context manager; ``path`` may be ``":memory:"``.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.row_factory = sqlite3.Row
        self._conn.executescript(_SCHEMA)
        self._migrate()
        self._conn.commit()

    def _migrate(self) -> None:
        """Add columns introduced after a ledger file was created."""
        have = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(runs)")
        }
        for name, decl in (
            ("interp", "TEXT"),
            ("sched_window", "INTEGER"),
            # PR 8: reduction-queue metadata; like jobs/window/interp
            # these stay out of the config fingerprint
            ("reduce_jobs", "INTEGER"),
            ("reduction_oracle_calls", "INTEGER"),
            ("reduction_speculative_wasted", "INTEGER"),
            ("reduction_wall_time", "REAL"),
            # PR 9: persistent artifact-store hit counters (NULL = the
            # run had no --store; 0 = store on but cold)
            ("store_seeds_skipped", "INTEGER"),
            ("store_compile_hits", "INTEGER"),
            ("store_truth_hits", "INTEGER"),
            ("store_oracle_hits", "INTEGER"),
        ):
            if name not in have:
                self._conn.execute(
                    f"ALTER TABLE runs ADD COLUMN {name} {decl}"
                )

    # -- ingest --------------------------------------------------------

    def record_run(
        self,
        result,
        *,
        n_programs: int,
        seed_base: int,
        jobs: int = 1,
        incremental: bool = True,
        compare_level: str = "O3",
        version: int | None = None,
        generator_config: GeneratorConfig | None = None,
        metrics: MetricsRegistry | None = None,
        wall_time: float = 0.0,
        started_at: float | None = None,
        reduce_findings: bool = False,
        interp: str | None = None,
        window: int | None = None,
        reduce_jobs: int | None = None,
        store_used: bool = False,
    ) -> int:
        """Persist one :class:`~repro.core.corpus.CampaignResult`;
        returns the new run id.  Findings upsert against prior runs
        (dedup within the run first, so ``occurrences`` counts *runs*
        in which a fingerprint was seen).

        ``interp`` (ground-truth backend; ``None`` resolves to the
        process default), ``window`` (parallel scheduler in-flight
        cap), and ``reduce_jobs`` (reduction-queue pool size) are
        recorded as run metadata but stay out of the config
        fingerprint — none of them changes results.

        When the campaign ran a reduction queue
        (``result.reduced_fingerprints``), those precomputed reduced
        fingerprints are used directly instead of re-reducing every
        finding here, and the queue's oracle-call/speculation/wall-time
        rollup lands in the run row.

        ``store_used`` marks that a persistent artifact store backed
        the run: the four ``store_*`` hit-counter columns then fill
        from the metrics snapshot (0 when the store was stone cold)
        instead of staying NULL."""
        if interp is None:
            from ..interp import get_default_backend

            interp = get_default_backend()
        snapshot = metrics.to_dict() if metrics is not None else {}
        reduction_stats = getattr(result, "reduction_stats", None)
        attribution = {
            name[len(ATTRIBUTION_PREFIX):]: entry["value"]
            for name, entry in snapshot.items()
            if name.startswith(ATTRIBUTION_PREFIX)
        }

        def _store_counter(name: str) -> int | None:
            if not store_used:
                return None
            return int(snapshot.get(name, {}).get("value", 0))

        row = (
            started_at if started_at is not None else time.time(),
            wall_time,
            config_fingerprint(
                n_programs, seed_base, version, generator_config,
                compare_level, incremental,
            ),
            n_programs,
            seed_base,
            jobs,
            int(incremental),
            compare_level,
            version,
            len(result.seeds),
            len(result.skipped),
            len(result.crashes),
            len(result.budget_exceeded),
            len(result.degraded),
            result.total_markers,
            result.total_dead,
            result.total_alive,
            len(result.findings),
            len(result.soundness_violations),
            json.dumps({
                f"{family}-{level}": {
                    "dead_total": stats.dead_total,
                    "missed": stats.missed,
                    "primary_missed": stats.primary_missed,
                }
                for (family, level), stats in sorted(result.by_level.items())
            }),
            json.dumps(asdict(result.cross_compiler)),
            json.dumps({
                family: asdict(stats)
                for family, stats in sorted(result.cross_level.items())
            }),
            json.dumps({
                shape: stats.to_dict()
                for shape, stats in sorted(result.by_shape.items())
            }),
            json.dumps(attribution, sort_keys=True),
            json.dumps({
                bucket: len(envelopes)
                for bucket, envelopes in result.crash_buckets.items()
            }),
            json.dumps(snapshot, sort_keys=True),
            interp,
            window,
            reduce_jobs,
            reduction_stats.oracle_calls if reduction_stats else None,
            reduction_stats.speculative_wasted if reduction_stats else None,
            reduction_stats.wall_time if reduction_stats else None,
            _store_counter("store.seeds_skipped"),
            _store_counter("store.compile_hits"),
            _store_counter("store.truth_hits"),
            _store_counter("store.oracle_hits"),
        )
        cursor = self._conn.execute(
            """INSERT INTO runs (
                started_at, wall_time, config_fingerprint, programs,
                seed_base, jobs, incremental, compare_level, version,
                completed, skipped, crashed, budget_exceeded, degraded,
                total_markers, total_dead, total_alive, findings,
                soundness_violations, by_level_json, cross_compiler_json,
                cross_level_json, shape_yield_json, pass_attribution_json,
                crash_buckets_json, metrics_json, interp, sched_window,
                reduce_jobs, reduction_oracle_calls,
                reduction_speculative_wasted, reduction_wall_time,
                store_seeds_skipped, store_compile_hits,
                store_truth_hits, store_oracle_hits
            ) VALUES (%s)""" % ", ".join("?" * 36),
            row,
        )
        run_id = cursor.lastrowid
        self._record_findings(
            run_id, result.findings, generator_config, compare_level,
            version, reduce_findings,
            precomputed=getattr(result, "reduced_fingerprints", None),
        )
        self._conn.commit()
        return run_id

    def _record_findings(
        self,
        run_id: int,
        findings: list[dict],
        generator_config: GeneratorConfig | None,
        compare_level: str,
        version: int | None,
        reduce_findings: bool,
        precomputed: dict[int, str | None] | None = None,
    ) -> None:
        deduped: dict[str, dict] = {}
        for index, finding in enumerate(findings):
            fingerprint = (
                precomputed.get(index) if precomputed is not None else None
            )
            if fingerprint is None:
                # no queue ran (reduce here if asked), or the queue
                # fell back on this finding (structural signature)
                fingerprint = finding_fingerprint(
                    finding, generator_config, compare_level, version,
                    reduce=reduce_findings and precomputed is None,
                )
            entry = deduped.setdefault(
                fingerprint,
                {"kind": finding["kind"], "detail": finding, "seeds": set()},
            )
            entry["seeds"].add(finding["seed"])
        for fingerprint, entry in sorted(deduped.items()):
            existing = self._conn.execute(
                "SELECT seeds_json FROM findings WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
            if existing is None:
                self._conn.execute(
                    """INSERT INTO findings (
                        fingerprint, kind, detail_json, seeds_json,
                        first_seen_run, last_seen_run, occurrences
                    ) VALUES (?, ?, ?, ?, ?, ?, 1)""",
                    (
                        fingerprint,
                        entry["kind"],
                        json.dumps(entry["detail"], sort_keys=True),
                        json.dumps(sorted(entry["seeds"])),
                        run_id,
                        run_id,
                    ),
                )
            else:
                seeds = set(json.loads(existing["seeds_json"]))
                seeds.update(entry["seeds"])
                self._conn.execute(
                    """UPDATE findings SET last_seen_run = ?,
                        occurrences = occurrences + 1, seeds_json = ?
                        WHERE fingerprint = ?""",
                    (run_id, json.dumps(sorted(seeds)), fingerprint),
                )
            for seed in sorted(entry["seeds"]):
                self._conn.execute(
                    """INSERT OR IGNORE INTO run_findings
                        (run_id, fingerprint, seed, kind)
                        VALUES (?, ?, ?, ?)""",
                    (run_id, fingerprint, seed, entry["kind"]),
                )

    # -- queries -------------------------------------------------------

    def runs(
        self,
        config: str | None = None,
        limit: int | None = None,
        since: float | None = None,
    ) -> list[RunRow]:
        """Run rows, newest first.  ``config`` filters on a
        config-fingerprint prefix; ``since`` on ``started_at``."""
        query = "SELECT * FROM runs"
        clauses, params = [], []
        if config:
            clauses.append("config_fingerprint LIKE ?")
            params.append(config + "%")
        if since is not None:
            clauses.append("started_at >= ?")
            params.append(since)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY run_id DESC"
        if limit is not None:
            query += " LIMIT ?"
            params.append(limit)
        return [self._run_row(r) for r in self._conn.execute(query, params)]

    def run(self, run_id: int) -> RunRow | None:
        row = self._conn.execute(
            "SELECT * FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        return self._run_row(row) if row is not None else None

    def findings(self, run_id: int | None = None) -> list[FindingRow]:
        """All finding rows (fingerprint order), or those seen in one
        run."""
        if run_id is None:
            rows = self._conn.execute(
                "SELECT * FROM findings ORDER BY fingerprint"
            )
        else:
            rows = self._conn.execute(
                """SELECT f.* FROM findings f
                    JOIN (SELECT DISTINCT fingerprint FROM run_findings
                          WHERE run_id = ?) rf
                    ON f.fingerprint = rf.fingerprint
                    ORDER BY f.fingerprint""",
                (run_id,),
            )
        return [
            FindingRow(
                fingerprint=r["fingerprint"],
                kind=r["kind"],
                detail=json.loads(r["detail_json"]),
                seeds=json.loads(r["seeds_json"]),
                first_seen_run=r["first_seen_run"],
                last_seen_run=r["last_seen_run"],
                occurrences=r["occurrences"],
            )
            for r in rows
        ]

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    @staticmethod
    def _run_row(row: sqlite3.Row) -> RunRow:
        return RunRow(
            run_id=row["run_id"],
            started_at=row["started_at"],
            wall_time=row["wall_time"],
            config_fingerprint=row["config_fingerprint"],
            programs=row["programs"],
            seed_base=row["seed_base"],
            jobs=row["jobs"],
            incremental=bool(row["incremental"]),
            compare_level=row["compare_level"],
            version=row["version"],
            completed=row["completed"],
            skipped=row["skipped"],
            crashed=row["crashed"],
            budget_exceeded=row["budget_exceeded"],
            degraded=row["degraded"],
            total_markers=row["total_markers"],
            total_dead=row["total_dead"],
            total_alive=row["total_alive"],
            findings=row["findings"],
            soundness_violations=row["soundness_violations"],
            interp=row["interp"],
            window=row["sched_window"],
            reduce_jobs=row["reduce_jobs"],
            reduction_oracle_calls=row["reduction_oracle_calls"],
            reduction_speculative_wasted=row["reduction_speculative_wasted"],
            reduction_wall_time=row["reduction_wall_time"],
            store_seeds_skipped=row["store_seeds_skipped"],
            store_compile_hits=row["store_compile_hits"],
            store_truth_hits=row["store_truth_hits"],
            store_oracle_hits=row["store_oracle_hits"],
            by_level=json.loads(row["by_level_json"]),
            cross_compiler=json.loads(row["cross_compiler_json"]),
            cross_level=json.loads(row["cross_level_json"]),
            shape_yield=json.loads(row["shape_yield_json"]),
            pass_attribution=json.loads(row["pass_attribution_json"]),
            crash_buckets=json.loads(row["crash_buckets_json"]),
            metrics=json.loads(row["metrics_json"]),
        )
